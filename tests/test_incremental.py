"""The incremental CC tier: delta maintenance must be bit-identical.

The core property: removing a random subset of a graph's edges, running
any delta-eligible method on the remainder, and delta-inserting the
removed edges back must reproduce — bit for bit — what a from-scratch
run of the same method on the full graph returns.  Swept over the
whole generator zoo for every method in ``DELTA_METHODS``.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import graph_from_pairs, graph_zoo
from repro.api import connected_components
from repro.graph import CSRGraph, build_graph, from_pairs
from repro.graph.generators import star_graph
from repro.graph.mutate import (canonical_edge_batch, insert_edges,
                                remove_edges)
from repro.incremental import (DELTA_METHODS, PLANTED_METHODS,
                               DeltaIneligible, IncrementalCC,
                               decode_parent, delta_update, hub_stable)


def undirected_pairs(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Each undirected edge once, as (lo, hi) with lo < hi."""
    src = np.repeat(np.arange(graph.num_vertices, dtype=np.int64),
                    np.diff(graph.indptr))
    dst = graph.indices.astype(np.int64)
    mask = src < dst
    return src[mask], dst[mask]


def split_graph(graph: CSRGraph, seed: int, fraction: float = 0.3
                ) -> tuple[CSRGraph, np.ndarray, np.ndarray]:
    """(base graph, removed src, removed dst): remove a random subset."""
    src, dst = undirected_pairs(graph)
    rng = np.random.default_rng(seed)
    drop = rng.random(src.size) < fraction
    kept = list(zip(src[~drop].tolist(), dst[~drop].tolist()))
    base = build_graph(from_pairs(kept, graph.num_vertices),
                       drop_zero_degree=False)
    return base, src[drop], dst[drop]


class TestEdgeBatches:
    def test_canonical_batch_orders_dedups_drops_loops(self):
        lo, hi = canonical_edge_batch([3, 1, 1, 5, 2], [1, 3, 3, 5, 4])
        assert lo.tolist() == [1, 2]
        assert hi.tolist() == [3, 4]

    def test_insert_filters_present_edges(self, triangle):
        new, lo, hi = insert_edges(triangle, [0, 0], [1, 2])
        assert new is triangle  # every edge already present: no-op
        assert lo.size == 0 and hi.size == 0

    def test_insert_returns_genuinely_new_batch(self, triangle):
        new, lo, hi = insert_edges(triangle, [0, 1], [1, 0])
        assert new is triangle  # duplicates of one existing edge
        g2 = graph_from_pairs([(0, 1), (1, 2), (2, 0), (0, 3)])
        new, lo, hi = insert_edges(g2, [3, 1], [0, 3])
        assert new is not g2
        assert lo.tolist() == [1] and hi.tolist() == [3]

    def test_remove_noop_returns_same_object(self, two_triangles):
        # (0, 3) is in range but not an edge: nothing to remove.
        assert remove_edges(two_triangles, [0], [3]) is two_triangles

    def test_remove_out_of_range_rejected(self, triangle):
        with pytest.raises(ValueError):
            remove_edges(triangle, [0], [5])

    def test_remove_drops_both_directions(self, triangle):
        g = remove_edges(triangle, [1], [0])
        src, dst = undirected_pairs(g)
        assert list(zip(src.tolist(), dst.tolist())) == [(0, 2), (1, 2)]


class TestDecodeParent:
    def test_jt_is_ineligible(self, triangle):
        labels = connected_components(triangle, method="afforest").labels
        with pytest.raises(DeltaIneligible):
            decode_parent(labels, "jt")

    def test_planted_needs_hub(self, triangle):
        labels = connected_components(triangle, method="thrifty").labels
        with pytest.raises(DeltaIneligible):
            decode_parent(labels, "thrifty")

    def test_non_fixpoint_labels_rejected(self):
        # Not a per-component-minimum assignment: vertex 0 claims
        # label 1 whose representative (vertex 1) carries label 1 but
        # vertex 1's own label maps back fine — break the fixpoint.
        labels = np.array([1, 0, 2], dtype=np.int64)
        with pytest.raises(DeltaIneligible):
            decode_parent(labels, "afforest")

    def test_out_of_range_labels_rejected(self):
        labels = np.array([0, 7, 2], dtype=np.int64)
        with pytest.raises(DeltaIneligible):
            decode_parent(labels, "afforest")


@pytest.mark.parametrize("method", sorted(DELTA_METHODS))
@pytest.mark.parametrize("zoo_name", [name for name, _ in graph_zoo()])
class TestDeltaBitIdentical:
    """The tentpole property, over the zoo x every eligible method."""

    def test_remove_reinsert_matches_fresh_run(self, zoo_name, method):
        full = dict(graph_zoo())[zoo_name]
        base, ins_src, ins_dst = split_graph(full, seed=hash(zoo_name) % 997)
        if ins_src.size == 0:
            pytest.skip("nothing removed from this zoo graph")
        hub = (base.max_degree_vertex()
               if method in PLANTED_METHODS else None)
        if method in PLANTED_METHODS and not hub_stable(full, hub):
            pytest.skip("hub moves across this split: recompute path")
        seed_labels = connected_components(base, method=method).labels
        outcome = delta_update(seed_labels, ins_src, ins_dst,
                               method=method, hub=hub)
        fresh = connected_components(full, method=method).labels
        np.testing.assert_array_equal(outcome.labels, fresh)

    def test_chained_batches_match_fresh_run(self, zoo_name, method):
        full = dict(graph_zoo())[zoo_name]
        base, ins_src, ins_dst = split_graph(full, seed=hash(zoo_name) % 991)
        if ins_src.size < 2:
            pytest.skip("batch too small to chain")
        hub = (base.max_degree_vertex()
               if method in PLANTED_METHODS else None)
        if method in PLANTED_METHODS and not hub_stable(full, hub):
            pytest.skip("hub moves across this split: recompute path")
        labels = connected_components(base, method=method).labels
        cut = ins_src.size // 2
        graph = base
        for s, d in ((ins_src[:cut], ins_dst[:cut]),
                     (ins_src[cut:], ins_dst[cut:])):
            graph, lo, hi = insert_edges(graph, s, d)
            if method in PLANTED_METHODS and not hub_stable(graph, hub):
                pytest.skip("hub moves mid-chain: recompute path")
            labels = delta_update(labels, lo, hi, method=method,
                                  hub=hub).labels
        fresh = connected_components(graph, method=method).labels
        np.testing.assert_array_equal(labels, fresh)


class TestDeltaMechanics:
    def test_no_merge_returns_same_labels_object(self, two_triangles):
        labels = connected_components(two_triangles,
                                      method="afforest").labels
        # An edge inside component {0,1,2}: no merge, zero relabels.
        out = delta_update(labels, [0], [2], method="afforest")
        assert out.labels is labels
        assert out.delta.num_merges == 0
        assert out.delta.relabeled == 0

    def test_merge_reports_absorbed_into(self, two_triangles):
        labels = connected_components(two_triangles,
                                      method="afforest").labels
        out = delta_update(labels, [2], [3], method="afforest")
        assert out.delta.num_merges == 1
        assert out.delta.absorbed.tolist() == [3]
        assert out.delta.into.tolist() == [0]
        assert out.delta.relabeled == 3
        assert np.unique(out.labels).size == 1

    def test_counters_charge_touched_set_work(self, two_triangles):
        labels = connected_components(two_triangles,
                                      method="afforest").labels
        out = delta_update(labels, [2], [3], method="afforest")
        c = out.counters
        assert c.edges_processed == 1
        assert c.label_writes >= out.delta.relabeled
        # Relabel pass is a sequential scan, not a full random re-run.
        assert c.sequential_accesses == 2 * labels.size


class TestIncrementalCC:
    def test_insert_applies_delta(self, two_triangles):
        inc = IncrementalCC(two_triangles, method="afforest")
        assert inc.num_components == 2
        delta = inc.insert([2], [3])
        assert delta is not None and delta.num_merges == 1
        assert inc.num_components == 1
        assert inc.deltas_applied == 1
        assert inc.recomputes == 1  # only the initial run
        fresh = connected_components(inc.graph, method="afforest").labels
        np.testing.assert_array_equal(inc.labels, fresh)

    def test_remove_always_recomputes(self, two_triangles):
        inc = IncrementalCC(two_triangles, method="afforest")
        inc.remove([0], [1])
        assert inc.recomputes == 2
        fresh = connected_components(inc.graph, method="afforest").labels
        np.testing.assert_array_equal(inc.labels, fresh)

    def test_noop_insert_is_free(self, triangle):
        inc = IncrementalCC(triangle, method="afforest")
        delta = inc.insert([0], [1])
        assert delta is not None and delta.num_merges == 0
        assert inc.deltas_applied == 0
        assert inc.recomputes == 1

    def test_planted_hub_move_falls_back_to_recompute(self):
        # Hub is the star center (vertex 5, degree 7, the unique
        # max-degree vertex).  Connecting vertex 0 to every other leaf
        # ties its degree at 7 — and the hub is the *lowest-id*
        # max-degree vertex, so it moves to 0.
        star5 = graph_from_pairs([(5, v) for v in (0, 1, 2, 3, 4, 6, 7)])
        inc = IncrementalCC(star5, method="thrifty")
        assert inc.graph.max_degree_vertex() == 5
        others = np.array([1, 2, 3, 4, 6, 7], dtype=np.int64)
        delta = inc.insert(np.zeros(others.size, dtype=np.int64), others)
        assert delta is None  # hub moved: recomputed
        assert inc.recomputes == 2
        assert inc.graph.max_degree_vertex() == 0
        fresh = connected_components(inc.graph, method="thrifty").labels
        np.testing.assert_array_equal(inc.labels, fresh)

    def test_ineligible_method_rejected(self, triangle):
        with pytest.raises(DeltaIneligible):
            IncrementalCC(triangle, method="jt")


class TestHubStable:
    def test_stable_on_unchanged_star(self):
        star = star_graph(9)
        assert hub_stable(star, star.max_degree_vertex())
        assert not hub_stable(star, 3)


# ---------------------------------------------------------------------------
# Serving-layer integration: registry lineage + delta-served cache misses.
# ---------------------------------------------------------------------------

from repro.graph.generators import rmat_graph, with_dust_components  # noqa: E402
from repro.options import ServiceOptions  # noqa: E402
from repro.service import CCRequest, CCService  # noqa: E402


@pytest.fixture(scope="module")
def mutating_graph() -> CSRGraph:
    return with_dust_components(rmat_graph(9, 6, seed=21), 10, seed=21)


def _batch(n: int, k: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, k), rng.integers(0, n, k)


class TestRegistryMutate:
    def test_successor_records_insert_lineage(self, mutating_graph):
        svc = CCService()
        parent = svc.register(mutating_graph, name="g")
        src, dst = _batch(mutating_graph.num_vertices, 16, seed=1)
        child = svc.mutate("g", insert=(src, dst))
        assert child.fingerprint != parent.fingerprint
        assert child.parent_fingerprint == parent.fingerprint
        assert child.delta_src is not None and child.delta_src.size > 0
        assert child.version == parent.version + 1
        # The name now resolves to the successor; the predecessor
        # stays addressable by fingerprint.
        assert svc.registry.get("g") is child
        assert svc.registry.get(parent.fingerprint) is parent

    def test_noop_mutation_returns_predecessor(self, mutating_graph):
        svc = CCService()
        parent = svc.register(mutating_graph, name="g")
        src, dst = undirected_pairs(mutating_graph)
        assert svc.mutate("g", insert=(src[:4], dst[:4])) is parent

    def test_removal_breaks_lineage(self, mutating_graph):
        svc = CCService()
        svc.register(mutating_graph, name="g")
        src, dst = undirected_pairs(mutating_graph)
        child = svc.mutate("g", remove=(src[:2], dst[:2]))
        assert child.parent_fingerprint is None
        assert child.delta_src is None

    def test_successor_inherits_probes(self, mutating_graph):
        svc = CCService()
        parent = svc.register(mutating_graph, name="g")
        parent.probes  # force computation
        src, dst = _batch(mutating_graph.num_vertices, 16, seed=2)
        child = svc.mutate("g", insert=(src, dst))
        assert child.probe_computations == 0
        assert child.probes.num_edges == child.graph.num_edges


class TestDeltaServing:
    def test_mutated_repeat_is_delta_served_bit_identical(
            self, mutating_graph):
        svc = CCService()
        svc.register(mutating_graph, name="g")
        r0 = svc.submit(CCRequest(key="g", method="afforest"))
        assert not r0.cache_hit and not r0.delta_hit
        src, dst = _batch(mutating_graph.num_vertices, 24, seed=3)
        entry = svc.mutate("g", insert=(src, dst))
        r1 = svc.submit(CCRequest(key="g", method="afforest"))
        assert r1.delta_hit and not r1.cache_hit
        assert r1.fingerprint == entry.fingerprint
        fresh = connected_components(entry.graph, method="afforest").labels
        np.testing.assert_array_equal(r1.result.labels, fresh)
        # The delta result is cached under the full-run key: repeat
        # requests are plain hits.
        r2 = svc.submit(CCRequest(key="g", method="afforest"))
        assert r2.cache_hit and not r2.delta_hit
        snap = svc.metrics.snapshot()
        assert snap["delta_hits"] == 1
        assert snap["cache_misses"] == 1
        assert snap["effective_hit_rate"] == pytest.approx(2 / 3)

    def test_delta_work_is_less_than_full_run(self, mutating_graph):
        svc = CCService()
        svc.register(mutating_graph, name="g")
        r0 = svc.submit(CCRequest(key="g", method="afforest"))
        src, dst = _batch(mutating_graph.num_vertices, 8, seed=4)
        svc.mutate("g", insert=(src, dst))
        r1 = svc.submit(CCRequest(key="g", method="afforest"))
        assert r1.delta_hit
        assert r1.simulated_ms < r0.simulated_ms
        assert r1.result.extras["delta_chain"] == 1

    def test_chain_of_unqueried_mutations_replays_all_batches(
            self, mutating_graph):
        svc = CCService()
        svc.register(mutating_graph, name="g")
        svc.submit(CCRequest(key="g", method="afforest"))
        for seed in (5, 6, 7):
            src, dst = _batch(mutating_graph.num_vertices, 8, seed=seed)
            svc.mutate("g", insert=(src, dst))
        r = svc.submit(CCRequest(key="g", method="afforest"))
        assert r.delta_hit
        assert r.result.extras["delta_chain"] == 3
        entry = svc.registry.get("g")
        fresh = connected_components(entry.graph, method="afforest").labels
        np.testing.assert_array_equal(r.result.labels, fresh)

    def test_chain_past_bound_recomputes(self, mutating_graph):
        svc = CCService(service_options=ServiceOptions(max_delta_chain=2))
        svc.register(mutating_graph, name="g")
        svc.submit(CCRequest(key="g", method="afforest"))
        for seed in (8, 9, 10):
            src, dst = _batch(mutating_graph.num_vertices, 8, seed=seed)
            svc.mutate("g", insert=(src, dst))
        r = svc.submit(CCRequest(key="g", method="afforest"))
        assert not r.delta_hit  # seed is 3 steps back, bound is 2
        entry = svc.registry.get("g")
        fresh = connected_components(entry.graph, method="afforest").labels
        np.testing.assert_array_equal(r.result.labels, fresh)

    def test_delta_serving_disabled_recomputes(self, mutating_graph):
        svc = CCService(
            service_options=ServiceOptions(delta_serving=False))
        svc.register(mutating_graph, name="g")
        svc.submit(CCRequest(key="g", method="afforest"))
        src, dst = _batch(mutating_graph.num_vertices, 8, seed=11)
        svc.mutate("g", insert=(src, dst))
        r = svc.submit(CCRequest(key="g", method="afforest"))
        assert not r.delta_hit
        assert svc.metrics.delta_hits == 0

    def test_removal_mutation_recomputes(self, mutating_graph):
        svc = CCService()
        svc.register(mutating_graph, name="g")
        svc.submit(CCRequest(key="g", method="afforest"))
        src, dst = undirected_pairs(mutating_graph)
        entry = svc.mutate("g", remove=(src[:3], dst[:3]))
        r = svc.submit(CCRequest(key="g", method="afforest"))
        assert not r.delta_hit
        fresh = connected_components(entry.graph, method="afforest").labels
        np.testing.assert_array_equal(r.result.labels, fresh)

    def test_planted_method_delta_served(self, mutating_graph):
        svc = CCService()
        svc.register(mutating_graph, name="g")
        svc.submit(CCRequest(key="g", method="thrifty"))
        # A batch confined to high vertex ids cannot move an rmat
        # graph's low-id hub.
        n = mutating_graph.num_vertices
        rng = np.random.default_rng(12)
        src = rng.integers(n // 2, n, 16)
        dst = rng.integers(n // 2, n, 16)
        entry = svc.mutate("g", insert=(src, dst))
        assert hub_stable(entry.graph,
                          mutating_graph.max_degree_vertex())
        r = svc.submit(CCRequest(key="g", method="thrifty"))
        assert r.delta_hit
        fresh = connected_components(entry.graph, method="thrifty").labels
        np.testing.assert_array_equal(r.result.labels, fresh)

    def test_ineligible_method_never_delta_served(self, mutating_graph):
        svc = CCService()
        svc.register(mutating_graph, name="g")
        svc.submit(CCRequest(key="g", method="jt"))
        src, dst = _batch(mutating_graph.num_vertices, 8, seed=13)
        svc.mutate("g", insert=(src, dst))
        r = svc.submit(CCRequest(key="g", method="jt"))
        assert not r.delta_hit

    def test_eviction_of_seed_recomputes(self, mutating_graph):
        svc = CCService(cache_capacity=1)
        svc.register(mutating_graph, name="g")
        svc.submit(CCRequest(key="g", method="afforest"))
        src, dst = _batch(mutating_graph.num_vertices, 8, seed=14)
        svc.mutate("g", insert=(src, dst))
        # Fill the 1-slot cache with an unrelated result: the seed
        # entry is evicted, so no delta opportunity remains.
        other = rmat_graph(7, 5, seed=22)
        svc.submit(CCRequest(graph=other, method="afforest"))
        r = svc.submit(CCRequest(key="g", method="afforest"))
        assert not r.delta_hit
        entry = svc.registry.get("g")
        fresh = connected_components(entry.graph, method="afforest").labels
        np.testing.assert_array_equal(r.result.labels, fresh)

"""Property-based tests for the extension subsystems."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import random_relabel, relabel
from repro.connectit import connectit_cc
from repro.core import KLAOptions, kla_cc
from repro.distributed import DistributedOptions, distributed_cc
from repro.graph import build_graph, from_pairs
from repro.graph.properties import component_labels_reference
from repro.validate import same_partition


@st.composite
def graphs(draw, max_vertices=20, max_edges=50):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m))
    return build_graph(from_pairs(pairs, n), drop_zero_degree=False)


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(1, 6),
       st.sampled_from(["lp", "fastsv"]),
       st.sampled_from(["block", "degree_balanced"]))
def test_distributed_matches_oracle_any_rank_count(g, ranks, algorithm,
                                                   partition):
    r = distributed_cc(g, DistributedOptions(
        num_ranks=ranks, algorithm=algorithm, partition=partition))
    assert same_partition(r.labels, component_labels_reference(g))


@settings(max_examples=30, deadline=None)
@given(graphs(), st.booleans(), st.booleans(), st.booleans())
def test_distributed_flags_never_break_correctness(g, zp, zc, dd):
    opts = DistributedOptions(num_ranks=3, zero_planting=zp,
                              zero_convergence=zc, dedup_sends=dd)
    r = distributed_cc(g, opts)
    assert same_partition(r.labels, component_labels_reference(g))


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(1, 6),
       st.sampled_from(["lp", "fastsv"]))
def test_combining_identical_labels_never_more_traffic(g, ranks,
                                                       algorithm):
    """Sender-side combining is a pure wire optimization: bit-identical
    labels, never more messages, never more modeled bytes."""
    naive = distributed_cc(g, DistributedOptions(
        num_ranks=ranks, algorithm=algorithm, combining=False))
    comb = distributed_cc(g, DistributedOptions(
        num_ranks=ranks, algorithm=algorithm, combining=True))
    assert np.array_equal(naive.labels, comb.labels)
    ns, cs = naive.extras["comm"], comb.extras["comm"]
    assert cs.messages <= ns.messages
    assert cs.modeled_bytes <= ns.modeled_bytes
    assert cs.updates <= ns.updates


@settings(max_examples=30, deadline=None)
@given(graphs(), st.sampled_from(["kout", "bfs", "ldd", "none"]),
       st.sampled_from(["skip-giant", "all-edges", "thrifty-pull"]),
       st.integers(0, 3))
def test_connectit_space_correct_on_random_graphs(g, sampling, finish,
                                                  seed):
    r = connectit_cc(g, sampling=sampling, finish=finish, seed=seed)
    assert same_partition(r.labels, component_labels_reference(g))


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(1, 10), st.booleans())
def test_kla_any_depth_correct(g, k, planting):
    r = kla_cc(g, KLAOptions(k=k, zero_planting=planting))
    assert same_partition(r.labels, component_labels_reference(g))


@settings(max_examples=25, deadline=None)
@given(graphs(), st.integers(0, 2**31 - 1))
def test_relabel_preserves_components(g, seed):
    g2, perm = random_relabel(g, seed=seed)
    ref = component_labels_reference(g)
    ref2 = component_labels_reference(g2)
    assert same_partition(ref2[perm], ref)
    # Degrees are permutation-equivariant.
    assert np.array_equal(g2.degrees[perm], g.degrees)


@settings(max_examples=25, deadline=None)
@given(graphs())
def test_relabel_roundtrip_inverse(g):
    g2, perm = random_relabel(g, seed=1)
    inverse = np.argsort(perm)
    g3, _ = relabel(g2, inverse.astype(np.int64))
    assert np.array_equal(g3.indptr, g.indptr)
    assert np.array_equal(g3.indices, g.indices)

"""Tests for the vectorized traversal kernels against naive references."""

import numpy as np
import pytest

from repro.core.kernels import (
    block_async_min,
    concat_adjacency,
    intra_block_groups,
    pull_block,
    segment_min,
    zero_cut_scan_lengths,
)
from repro.graph import CSRGraph
from repro.graph.generators import path_graph, rmat_graph, star_graph


def naive_pull(graph, labels, lo, hi):
    new = labels[lo:hi].copy()
    for i, v in enumerate(range(lo, hi)):
        for u in graph.neighbors(v):
            new[i] = min(new[i], labels[u])
    return new


def naive_zero_cut(graph, labels, lo, hi):
    out = []
    for v in range(lo, hi):
        if labels[v] == 0:
            out.append(0)
            continue
        scanned = 0
        for u in graph.neighbors(v):
            scanned += 1
            if labels[u] == 0:
                break
        out.append(scanned)
    return np.array(out, dtype=np.int64)


class TestSegmentMin:
    def test_simple(self):
        vals = np.array([5, 3, 9, 1, 7])
        out = segment_min(vals, np.array([0, 2]), np.array([2, 5]),
                          np.array([10, 10]))
        assert out.tolist() == [3, 1]

    def test_empty_segment_gets_fill(self):
        vals = np.array([4, 2])
        out = segment_min(vals, np.array([0, 1, 1]),
                          np.array([1, 1, 2]),
                          np.array([9, 9, 9]))
        assert out.tolist() == [4, 9, 2]

    def test_all_empty(self):
        out = segment_min(np.array([1]), np.array([0, 0]),
                          np.array([0, 0]), np.array([7, 8]))
        assert out.tolist() == [7, 8]


class TestPullBlock:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_naive(self, seed):
        g = rmat_graph(7, 6, seed=seed)
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 40, size=g.num_vertices).astype(np.int64)
        for lo, hi in [(0, g.num_vertices), (5, 20),
                       (g.num_vertices - 3, g.num_vertices)]:
            new, changed = pull_block(g, labels, lo, hi)
            expect = naive_pull(g, labels, lo, hi)
            assert np.array_equal(new, expect)
            assert np.array_equal(changed, expect < labels[lo:hi])

    def test_empty_block(self):
        g = path_graph(5)
        labels = np.arange(5, dtype=np.int64)
        new, changed = pull_block(g, labels, 3, 3)
        assert new.size == 0 and changed.size == 0

    def test_isolated_vertex(self):
        # Degree-0 vertex keeps its own label.
        g = CSRGraph(np.array([0, 0, 1, 2]), np.array([2, 1]))
        labels = np.array([5, 3, 1], dtype=np.int64)
        new, changed = pull_block(g, labels, 0, 3)
        # Vertex 0 (isolated) keeps 5; vertex 1 pulls 1; vertex 2 keeps 1.
        assert new.tolist() == [5, 1, 1]
        assert changed.tolist() == [False, True, False]
        assert np.array_equal(new, naive_pull(g, labels, 0, 3))


class TestZeroCut:
    @pytest.mark.parametrize("seed", [4, 5])
    def test_matches_naive(self, seed):
        g = rmat_graph(7, 6, seed=seed)
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 5, size=g.num_vertices).astype(np.int64)
        got = zero_cut_scan_lengths(g, labels, 0, g.num_vertices)
        assert np.array_equal(got, naive_zero_cut(g, labels, 0,
                                                  g.num_vertices))

    def test_no_zeros_scans_full_degree(self):
        g = star_graph(5)
        labels = np.arange(1, 7, dtype=np.int64)
        got = zero_cut_scan_lengths(g, labels, 0, 6)
        assert np.array_equal(got, g.degrees)

    def test_all_zero_skipped(self):
        g = star_graph(4)
        labels = np.zeros(5, dtype=np.int64)
        got = zero_cut_scan_lengths(g, labels, 0, 5)
        assert got.sum() == 0

    def test_partial_block(self):
        g = path_graph(10)
        labels = np.arange(10, dtype=np.int64)  # vertex 0 holds zero
        got = zero_cut_scan_lengths(g, labels, 1, 4)
        assert np.array_equal(got, naive_zero_cut(g, labels, 1, 4))

    def test_explicit_skip_mask(self):
        g = star_graph(3)
        labels = np.array([1, 2, 3, 4], dtype=np.int64)
        skip = np.array([True, False, False, False])
        got = zero_cut_scan_lengths(g, labels, 0, 4, skip)
        assert got[0] == 0


class TestConcatAdjacency:
    def test_matches_neighbors(self):
        g = rmat_graph(6, 5, seed=6)
        rows = np.array([0, 3, 7], dtype=np.int64)
        targets, counts = concat_adjacency(g, rows)
        expect = np.concatenate([g.neighbors(int(r)) for r in rows])
        assert np.array_equal(targets, expect)
        assert np.array_equal(counts, g.degrees[rows])

    def test_empty_rows(self):
        g = path_graph(4)
        targets, counts = concat_adjacency(g, np.empty(0, np.int64))
        assert targets.size == 0

    def test_zero_degree_rows(self):
        g = CSRGraph(np.array([0, 0, 2, 4]), np.array([2, 2, 1, 1]))
        targets, counts = concat_adjacency(g, np.array([0, 1]))
        assert counts.tolist() == [0, 2]
        assert targets.tolist() == [2, 2]


class TestIntraBlockGroups:
    def test_path_split_by_blocks(self):
        g = path_graph(10)
        groups = intra_block_groups(g, np.array([5, 10]))
        # Vertices 0-4 one group, 5-9 another.
        assert np.array_equal(groups[:5], np.zeros(5))
        assert np.array_equal(groups[5:], np.full(5, 5))

    def test_single_block_is_component_labels(self):
        g = path_graph(6)
        groups = intra_block_groups(g, np.array([6]))
        assert np.array_equal(groups, np.zeros(6))

    def test_matches_per_block_reference(self):
        import networkx as nx
        g = rmat_graph(7, 6, seed=7)
        n = g.num_vertices
        bounds = np.array([n // 3, 2 * n // 3, n])
        groups = intra_block_groups(g, bounds)
        # Reference: per-block networkx CC.
        block_of = np.searchsorted(bounds, np.arange(n), side="right")
        nxg = nx.Graph()
        nxg.add_nodes_from(range(n))
        src = g.edge_sources()
        for u, v in zip(src, g.indices):
            if block_of[u] == block_of[v]:
                nxg.add_edge(int(u), int(v))
        for comp in nx.connected_components(nxg):
            comp = sorted(comp)
            assert np.all(groups[comp] == comp[0])

    def test_empty_graph(self):
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        assert intra_block_groups(g, np.array([0])).size == 0


class TestBlockAsyncMin:
    def test_floods_group(self):
        jac = np.array([7, 3, 9, 2], dtype=np.int64)
        groups = np.array([0, 0, 1, 1])
        out = block_async_min(jac, groups)
        assert out.tolist() == [3, 3, 2, 2]

    def test_singletons_unchanged(self):
        jac = np.array([5, 4], dtype=np.int64)
        out = block_async_min(jac, np.array([0, 1]))
        assert out.tolist() == [5, 4]

"""Shared fixtures: a zoo of small graphs with known structure."""

from __future__ import annotations

import pytest

from repro.graph import CSRGraph, build_graph, from_pairs
from repro.graph.generators import (
    chung_lu_graph,
    erdos_renyi_graph,
    path_graph,
    rmat_graph,
    road_network_graph,
    star_graph,
    with_dust_components,
)


def graph_from_pairs(pairs, n=None) -> CSRGraph:
    """Edge pairs -> canonical CSR (keeps isolated vertices out)."""
    return build_graph(from_pairs(pairs, n), drop_zero_degree=False)


@pytest.fixture
def triangle() -> CSRGraph:
    return graph_from_pairs([(0, 1), (1, 2), (2, 0)])


@pytest.fixture
def two_triangles() -> CSRGraph:
    """Two components: {0,1,2} and {3,4,5}."""
    return graph_from_pairs([(0, 1), (1, 2), (2, 0),
                             (3, 4), (4, 5), (5, 3)])


@pytest.fixture
def path10() -> CSRGraph:
    return path_graph(10)


@pytest.fixture
def star20() -> CSRGraph:
    return star_graph(20)


@pytest.fixture
def figure2_graph() -> CSRGraph:
    """The worked example of paper Figure 2 (A..G -> 0..6).

    A(0)-B(1), B-C(2), C-D(3), C-E(4), D-E, D-F(5), E-F, E-G(6), F-G.
    Vertex E(4) is in the core; A(0) on the fringe.
    """
    return graph_from_pairs([(0, 1), (1, 2), (2, 3), (2, 4), (3, 4),
                             (3, 5), (4, 5), (4, 6), (5, 6)])


@pytest.fixture(scope="session")
def small_skewed() -> CSRGraph:
    """A small power-law graph with one giant component + dust."""
    g = rmat_graph(9, 8, seed=11)
    return with_dust_components(g, 12, seed=11)


@pytest.fixture(scope="session")
def small_social() -> CSRGraph:
    return chung_lu_graph(600, 10.0, exponent=2.1, seed=12)


@pytest.fixture(scope="session")
def small_road() -> CSRGraph:
    return road_network_graph(24, 18, seed=13)


@pytest.fixture(scope="session")
def small_uniform() -> CSRGraph:
    return erdos_renyi_graph(400, 6.0, seed=14)


def graph_zoo() -> list[tuple[str, CSRGraph]]:
    """Deterministic suite used by exhaustive correctness tests."""
    zoo = [
        ("single", graph_from_pairs([], 1)),
        ("one_edge", graph_from_pairs([(0, 1)])),
        ("triangle", graph_from_pairs([(0, 1), (1, 2), (2, 0)])),
        ("two_comp", graph_from_pairs([(0, 1), (1, 2), (3, 4)])),
        ("path", path_graph(17)),
        ("star", star_graph(9)),
        ("rmat", rmat_graph(8, 6, seed=5)),
        ("chung_lu", chung_lu_graph(300, 8.0, seed=6)),
        ("road", road_network_graph(12, 12, seed=7)),
        ("uniform", erdos_renyi_graph(200, 4.0, seed=8)),
        ("dusty", with_dust_components(rmat_graph(7, 8, seed=9), 8,
                                       seed=9)),
    ]
    return zoo


@pytest.fixture(scope="session", params=[name for name, _ in graph_zoo()])
def zoo_graph(request) -> CSRGraph:
    return dict(graph_zoo())[request.param]

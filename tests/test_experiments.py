"""Tests for the experiment harness (small scale)."""

import pytest

from repro.options import ThriftyOptions
from repro.experiments import (
    clear_cache,
    fig1_speedup_summary,
    fig3_dolp_convergence,
    fig5_work_reduction,
    fig6_hw_counters,
    fig7_8_convergence_comparison,
    fig9_10_ablation,
    format_table,
    table1_giant_component,
    table4_execution_times,
    table5_iterations,
    table6_initial_push,
    table7_threshold,
    timed_run,
)

SCALE = 0.12
SMALL = ("Pkc", "WWiki")


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRunner:
    def test_timed_run_fields(self):
        run = timed_run("Pkc", "thrifty", scale=SCALE)
        assert run.total_ms > 0
        assert run.num_iterations >= 1
        assert 0 < run.edges_fraction < 10
        assert run.hardware().instructions > 0

    def test_memoization(self):
        a = timed_run("Pkc", "thrifty", scale=SCALE)
        b = timed_run("Pkc", "thrifty", scale=SCALE)
        assert a is b

    def test_options_get_their_own_cache_entry(self):
        a = timed_run("Pkc", "thrifty", scale=SCALE)
        b = timed_run("Pkc", "thrifty", scale=SCALE,
                      options=ThriftyOptions(threshold=0.02))
        c = timed_run("Pkc", "thrifty", scale=SCALE,
                      options=ThriftyOptions(threshold=0.02))
        assert a is not b
        assert b is c   # frozen options memoize like defaults
        # an explicitly defaulted options object aliases the default run
        d = timed_run("Pkc", "thrifty", scale=SCALE)
        assert a is d

    def test_machine_by_name_or_spec(self):
        from repro.parallel import EPYC
        a = timed_run("Pkc", "dolp", "Epyc", scale=SCALE)
        b = timed_run("Pkc", "dolp", EPYC, scale=SCALE)
        assert a is b


class TestDrivers:
    def test_fig1(self):
        out = fig1_speedup_summary(datasets=SMALL, scale=SCALE)
        assert set(out) == {"sv", "bfs", "dolp", "jt", "afforest"}
        assert all(v > 0 for v in out.values())

    def test_table1(self):
        rows = table1_giant_component(datasets=SMALL, scale=SCALE)
        assert len(rows) == 2
        assert all(0 <= r["vertices_pct"] <= 100 for r in rows)

    def test_table4(self):
        rows = table4_execution_times(machines=("SkylakeX",),
                                      datasets=SMALL,
                                      methods=("dolp", "thrifty"),
                                      scale=SCALE)
        assert rows[0]["SkylakeX/thrifty"] > 0

    def test_table5(self):
        rows = table5_iterations(datasets=SMALL, scale=SCALE)
        assert all(r["thrifty"] >= 1 for r in rows)

    def test_fig3(self):
        rows = fig3_dolp_convergence("Pkc", scale=SCALE)
        assert rows[0]["iteration"] == 0
        assert rows[-1]["converged_pct"] == pytest.approx(100.0)

    def test_fig5(self):
        rows = fig5_work_reduction(datasets=SMALL, scale=SCALE)
        for r in rows:
            assert r["work_reduction_pct"] > 50

    def test_fig6(self):
        rows = fig6_hw_counters(datasets=SMALL, scale=SCALE)
        for r in rows:
            assert r["instructions_reduction_pct"] > 0

    def test_fig7_8(self):
        out = fig7_8_convergence_comparison("Pkc", scale=SCALE)
        assert out["dolp"][-1] == pytest.approx(100.0)
        assert out["thrifty"][-1] == pytest.approx(100.0)

    def test_table6(self):
        rows = table6_initial_push(datasets=SMALL, scale=SCALE)
        for r in rows:
            assert r["dolp_iter0_ms"] > 0
            assert r["speedup"] > 0

    def test_table7(self):
        out = table7_threshold("Pkc", thresholds=(0.01, 0.05),
                               scale=SCALE)
        assert set(out) == {0.01, 0.05}
        for rows in out.values():
            assert rows[0]["traversal"] == "initial-push"

    def test_fig9_10(self):
        rows = fig9_10_ablation(datasets=SMALL, scale=SCALE)
        for r in rows:
            assert r["thrifty_ms"] <= r["dolp_ms"] * 2   # sanity


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.50" in out

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"


class TestCacheIsolation:
    def test_clear_cache_forces_rerun(self):
        a = timed_run("Pkc", "thrifty", scale=SCALE)
        clear_cache()
        b = timed_run("Pkc", "thrifty", scale=SCALE)
        assert a is not b
        assert a.total_ms == b.total_ms   # deterministic anyway

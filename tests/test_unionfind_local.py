"""Worklist-local vs all-vertex union-find: equivalence sweep.

The tentpole contract of the local substrate (see
repro.baselines.disjoint_set): for every tree-hooking baseline and
ConnectIt combination, the worklist-local path (``local=True``)
produces **identical final labels and identical link counts** to the
all-vertex reference (``local=False``).  Only the find-cost
accounting (``hops`` -> ``dependent_accesses``/``label_reads``) may
differ, because that is the bug the local path fixes: charging
pointer chases for vertices the algorithm never touches.

The sweep crosses >= 3 graph families x {SV, JT, Afforest, two
ConnectIt combos}.
"""

import numpy as np
import pytest

from repro.baselines import (
    afforest_cc,
    jayanti_tarjan_cc,
    shiloach_vishkin_cc,
)
from repro.connectit import connectit_cc
from repro.graph.generators import (
    chung_lu_graph,
    erdos_renyi_graph,
    rmat_graph,
    road_network_graph,
    star_graph,
    with_dust_components,
)
from repro.validate import validate_against_reference

GRAPHS = [
    ("rmat", lambda: rmat_graph(9, 8, seed=21)),
    ("rmat_dusty", lambda: with_dust_components(rmat_graph(8, 8, seed=22),
                                                10, seed=22)),
    ("chung_lu", lambda: chung_lu_graph(500, 9.0, exponent=2.1, seed=23)),
    ("road", lambda: road_network_graph(20, 16, seed=24)),
    ("uniform", lambda: erdos_renyi_graph(400, 5.0, seed=25)),
    ("star", lambda: star_graph(64)),
]

STRATEGIES = [
    ("sv", lambda g, local: shiloach_vishkin_cc(g, local=local)),
    ("jt", lambda g, local: jayanti_tarjan_cc(g, seed=3, local=local)),
    ("afforest", lambda g, local: afforest_cc(g, seed=3, local=local)),
    ("connectit_kout_skip", lambda g, local: connectit_cc(
        g, sampling="kout", finish="skip-giant", seed=3, local=local)),
    ("connectit_bfs_all", lambda g, local: connectit_cc(
        g, sampling="bfs", finish="all-edges", seed=3, local=local)),
]


def _links(result):
    """Total successful links (hook/CAS commits) across the run."""
    return result.counters().cas_successes


@pytest.mark.parametrize("strategy,run",
                         STRATEGIES, ids=[s for s, _ in STRATEGIES])
@pytest.mark.parametrize("family,make",
                         GRAPHS, ids=[g for g, _ in GRAPHS])
def test_local_matches_reference(family, make, strategy, run):
    graph = make()
    local = run(graph, True)
    reference = run(graph, False)
    assert np.array_equal(local.labels, reference.labels)
    assert _links(local) == _links(reference)


@pytest.mark.parametrize("strategy,run",
                         STRATEGIES, ids=[s for s, _ in STRATEGIES])
def test_local_path_is_correct(strategy, run):
    """The local path also agrees with the ground-truth components."""
    graph = with_dust_components(rmat_graph(8, 8, seed=26), 6, seed=26)
    validate_against_reference(graph, run(graph, True))

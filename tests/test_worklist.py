"""Tests for the per-thread local worklists + shared byte array."""

import numpy as np
import pytest

from repro.parallel import LocalWorklists


class TestLocalWorklists:
    def test_dedup_across_threads(self):
        wl = LocalWorklists(10, 2)
        assert wl.push_batch(0, np.array([1, 2, 3])) == 3
        assert wl.push_batch(1, np.array([2, 3, 4])) == 1
        assert wl.total_enqueued() == 4

    def test_dedup_within_batch(self):
        wl = LocalWorklists(10, 1)
        assert wl.push_batch(0, np.array([5, 5, 5])) == 1

    def test_drain_covers_everything(self):
        wl = LocalWorklists(20, 4)
        wl.push_batch(0, np.array([0, 1]))
        wl.push_batch(2, np.array([7]))
        wl.push_batch(3, np.array([9, 10]))
        assert set(wl.drain_order().tolist()) == {0, 1, 7, 9, 10}

    def test_thread_vertices(self):
        wl = LocalWorklists(10, 2)
        wl.push_batch(0, np.array([1]))
        wl.push_batch(0, np.array([2]))
        assert set(wl.thread_vertices(0).tolist()) == {1, 2}
        assert wl.thread_vertices(1).size == 0

    def test_empty_batch(self):
        wl = LocalWorklists(5, 1)
        assert wl.push_batch(0, np.empty(0, np.int64)) == 0
        assert wl.drain_order().size == 0

    def test_clear(self):
        wl = LocalWorklists(5, 1)
        wl.push_batch(0, np.array([1]))
        wl.clear()
        assert wl.total_enqueued() == 0
        # After clear, the byte array is reset: re-enqueue allowed.
        assert wl.push_batch(0, np.array([1])) == 1

    def test_race_injection_duplicates(self):
        # With race_rate=0.99 nearly every duplicate gets re-enqueued,
        # modelling the unsynchronized byte-array race.
        wl = LocalWorklists(100, 2, race_rate=0.99, seed=1)
        wl.push_batch(0, np.arange(50))
        extra = wl.push_batch(1, np.arange(50))
        assert extra > 25   # most duplicates slip through

    def test_race_rate_validation(self):
        with pytest.raises(ValueError):
            LocalWorklists(5, 1, race_rate=1.0)

    def test_thread_count_validation(self):
        with pytest.raises(ValueError):
            LocalWorklists(5, 0)

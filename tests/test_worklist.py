"""Tests for the per-thread local worklists + shared byte array."""

import numpy as np
import pytest

from repro.parallel import LocalWorklists


class TestLocalWorklists:
    def test_dedup_across_threads(self):
        wl = LocalWorklists(10, 2)
        assert wl.push_batch(0, np.array([1, 2, 3])) == 3
        assert wl.push_batch(1, np.array([2, 3, 4])) == 1
        assert wl.total_enqueued() == 4

    def test_dedup_within_batch(self):
        wl = LocalWorklists(10, 1)
        assert wl.push_batch(0, np.array([5, 5, 5])) == 1

    def test_drain_covers_everything(self):
        wl = LocalWorklists(20, 4)
        wl.push_batch(0, np.array([0, 1]))
        wl.push_batch(2, np.array([7]))
        wl.push_batch(3, np.array([9, 10]))
        assert set(wl.drain_order().tolist()) == {0, 1, 7, 9, 10}

    def test_thread_vertices(self):
        wl = LocalWorklists(10, 2)
        wl.push_batch(0, np.array([1]))
        wl.push_batch(0, np.array([2]))
        assert set(wl.thread_vertices(0).tolist()) == {1, 2}
        assert wl.thread_vertices(1).size == 0

    def test_empty_batch(self):
        wl = LocalWorklists(5, 1)
        assert wl.push_batch(0, np.empty(0, np.int64)) == 0
        assert wl.drain_order().size == 0

    def test_clear(self):
        wl = LocalWorklists(5, 1)
        wl.push_batch(0, np.array([1]))
        wl.clear()
        assert wl.total_enqueued() == 0
        # After clear, the byte array is reset: re-enqueue allowed.
        assert wl.push_batch(0, np.array([1])) == 1

    def test_race_injection_duplicates(self):
        # With race_rate=0.99 nearly every duplicate gets re-enqueued,
        # modelling the unsynchronized byte-array race.
        wl = LocalWorklists(100, 2, race_rate=0.99, seed=1)
        wl.push_batch(0, np.arange(50))
        extra = wl.push_batch(1, np.arange(50))
        assert extra > 25   # most duplicates slip through

    def test_race_rate_validation(self):
        with pytest.raises(ValueError):
            LocalWorklists(5, 1, race_rate=1.0)

    def test_thread_count_validation(self):
        with pytest.raises(ValueError):
            LocalWorklists(5, 0)


class TestDrainOrderStealing:
    """The documented Section IV-E drain: own batches front-to-back,
    then steal the most-loaded victim's last batch."""

    def test_single_thread_fifo(self):
        wl = LocalWorklists(20, 1)
        wl.push_batch(0, np.array([4, 5]))
        wl.push_batch(0, np.array([1]))
        wl.push_batch(0, np.array([9, 10]))
        assert wl.drain_order().tolist() == [4, 5, 1, 9, 10]

    def test_steal_takes_victims_last_batch(self):
        # t0 drains its single batch, then steals t1's batches from the
        # BACK while t1 keeps consuming from the front: the drain is
        # [5], [1,2] (t1 own), [4] (stolen), [3] (stolen) — not the
        # thread-order concatenation [5, 1, 2, 3, 4].
        wl = LocalWorklists(20, 2)
        wl.push_batch(0, np.array([5]))
        wl.push_batch(1, np.array([1, 2]))
        wl.push_batch(1, np.array([3]))
        wl.push_batch(1, np.array([4]))
        assert wl.drain_order().tolist() == [5, 1, 2, 4, 3]

    def test_steal_prefers_most_loaded_victim(self):
        # t1 has nothing; both t0 and t2 still hold work when t1
        # steals.  t2 carries more remaining load, so t1 must take
        # t2's last batch even though t0 has a lower id.
        wl = LocalWorklists(20, 3)
        wl.push_batch(0, np.array([0]))
        wl.push_batch(0, np.array([1]))
        wl.push_batch(2, np.array([2, 3]))
        wl.push_batch(2, np.array([4, 5]))
        assert wl.drain_order().tolist() == [0, 4, 5, 2, 3, 1]

    def test_drain_covers_everything_under_stealing(self):
        rng = np.random.default_rng(3)
        wl = LocalWorklists(500, 4)
        pushed = set()
        for t in range(4):
            for _ in range(rng.integers(0, 5)):
                batch = rng.choice(500, size=rng.integers(1, 20),
                                   replace=False)
                wl.push_batch(t, batch)
                pushed.update(batch.tolist())
        order = wl.drain_order()
        assert set(order.tolist()) == {
            int(v) for t in range(4)
            for v in wl.thread_vertices(t).tolist()}
        assert order.size == wl.total_enqueued()

    def test_drain_is_repeatable(self):
        wl = LocalWorklists(50, 3)
        wl.push_batch(0, np.array([1, 2, 3]))
        wl.push_batch(2, np.array([10, 11]))
        wl.push_batch(2, np.array([12]))
        first = wl.drain_order()
        assert np.array_equal(first, wl.drain_order())

"""Tests for the edges -> canonical CSR pipeline."""

import numpy as np
import pytest

from repro.graph import build_graph, compact_vertices, from_pairs
from repro.graph.coo import EdgeList


class TestFromPairs:
    def test_basic(self):
        e = from_pairs([(0, 1), (2, 3)])
        assert e.num_vertices == 4
        assert e.num_edges == 2

    def test_explicit_num_vertices(self):
        e = from_pairs([(0, 1)], num_vertices=10)
        assert e.num_vertices == 10

    def test_empty(self):
        e = from_pairs([])
        assert e.num_edges == 0

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match=r"\(u, v\)"):
            from_pairs([(0, 1, 2)])


class TestCompactVertices:
    def test_removes_isolated(self):
        e = from_pairs([(0, 5)], num_vertices=10)
        compacted, old_ids = compact_vertices(e)
        assert compacted.num_vertices == 2
        assert np.array_equal(old_ids, [0, 5])

    def test_mapping_preserves_edges(self):
        e = from_pairs([(2, 7), (7, 9)], num_vertices=12)
        compacted, old_ids = compact_vertices(e)
        # Every compacted edge maps back to an original edge.
        back = set(zip(old_ids[compacted.src], old_ids[compacted.dst]))
        assert back == {(2, 7), (7, 9)}

    def test_empty_edge_list(self):
        e = from_pairs([], num_vertices=5)
        compacted, old_ids = compact_vertices(e)
        assert compacted.num_vertices == 0
        assert old_ids.size == 0


class TestBuildGraph:
    def test_symmetrizes(self):
        g = build_graph(from_pairs([(0, 1)]))
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_drops_self_loops_by_default(self):
        g = build_graph(from_pairs([(0, 0), (0, 1)]))
        assert not g.has_edge(0, 0)
        assert g.num_undirected_edges == 1

    def test_keep_self_loops_opt_in(self):
        g = build_graph(from_pairs([(0, 0), (0, 1)]),
                        keep_self_loops=True)
        assert g.has_edge(0, 0)

    def test_drops_zero_degree_by_default(self):
        g = build_graph(from_pairs([(0, 9)], num_vertices=10))
        assert g.num_vertices == 2

    def test_keeps_zero_degree_on_request(self):
        g = build_graph(from_pairs([(0, 9)], num_vertices=10),
                        drop_zero_degree=False)
        assert g.num_vertices == 10
        assert g.degree(5) == 0

    def test_dedups_parallel_edges(self):
        g = build_graph(from_pairs([(0, 1), (0, 1), (1, 0)]))
        assert g.num_undirected_edges == 1

    def test_empty_input(self):
        g = build_graph(EdgeList(np.empty(0, np.int64),
                                 np.empty(0, np.int64), 0))
        assert g.num_vertices == 0


class TestStreamedBuilder:
    def test_matches_batch_builder(self):
        from repro.graph import build_graph_streamed
        from repro.graph.generators import rmat_edges
        e = rmat_edges(8, 600, seed=9)
        batch = build_graph(e)
        # Split into 7 uneven chunks.
        cuts = np.linspace(0, e.num_edges, 8).astype(int)
        chunks = [(e.src[a:b], e.dst[a:b])
                  for a, b in zip(cuts, cuts[1:])]
        streamed = build_graph_streamed(chunks, e.num_vertices)
        assert np.array_equal(batch.indptr, streamed.indptr)
        assert np.array_equal(batch.indices, streamed.indices)

    def test_self_loops_and_duplicates_normalized(self):
        from repro.graph import build_graph_streamed
        chunks = [(np.array([0, 0, 1]), np.array([0, 1, 0]))]
        g = build_graph_streamed(chunks, 2, drop_zero_degree=False)
        assert g.num_undirected_edges == 1
        assert not g.has_edge(0, 0)

    def test_zero_degree_compaction(self):
        from repro.graph import build_graph_streamed
        chunks = [(np.array([0]), np.array([9]))]
        g = build_graph_streamed(chunks, 10)
        assert g.num_vertices == 2

    def test_out_of_range_rejected(self):
        from repro.graph import build_graph_streamed
        with pytest.raises(ValueError, match="out of range"):
            build_graph_streamed([(np.array([5]), np.array([0]))], 3)

    def test_empty_stream(self):
        from repro.graph import build_graph_streamed
        g = build_graph_streamed([], 4, drop_zero_degree=False)
        assert g.num_vertices == 4
        assert g.num_edges == 0

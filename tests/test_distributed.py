"""Tests for the sharded (distributed) CC tier."""

import numpy as np
import pytest

from repro.distributed import (
    ETHERNET_25G,
    HDR_INFINIBAND,
    DistributedOptions,
    Fabric,
    distributed_cc,
    edge_cut,
    rank_bounds,
    simulate_distributed_time,
)
from repro.distributed.comm import (
    ENVELOPE_HEADER_BYTES,
    varint_bytes,
)
from repro.distributed.partition import rank_of_vertex
from repro.graph import component_labels_reference
from repro.graph.generators import path_graph, rmat_graph, star_graph
from repro.validate import same_partition, validate_against_reference


class TestVarint:
    def test_boundaries_exact(self):
        assert varint_bytes(np.array([0])) == 1
        assert varint_bytes(np.array([127])) == 1
        assert varint_bytes(np.array([128])) == 2
        assert varint_bytes(np.array([16383])) == 2
        assert varint_bytes(np.array([16384])) == 3

    def test_sums_over_array(self):
        assert varint_bytes(np.array([1, 200, 20000])) == 1 + 2 + 3

    def test_empty(self):
        assert varint_bytes(np.empty(0, np.int64)) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            varint_bytes(np.array([-1]))


class TestFabric:
    def test_exchange_delivers_and_counts(self):
        f = Fabric(2)
        f.send(0, 1, np.array([3, 4]), np.array([7, 8]))
        inboxes = f.exchange()
        vs, ls = inboxes[1]
        assert vs.tolist() == [3, 4]
        assert ls.tolist() == [7, 8]
        assert inboxes[0][0].size == 0
        assert f.stats.messages == 2
        assert f.stats.bytes == 16
        assert f.stats.supersteps == 1

    def test_deterministic_sender_order(self):
        f = Fabric(3)
        f.send(2, 0, np.array([9]), np.array([9]))
        f.send(1, 0, np.array([5]), np.array([5]))
        vs, _ = f.exchange()[0]
        assert vs.tolist() == [5, 9]   # rank 1 before rank 2

    def test_self_send_rejected(self):
        f = Fabric(2)
        with pytest.raises(ValueError, match="local"):
            f.send(0, 0, np.array([1]), np.array([1]))

    def test_rank_bounds(self):
        f = Fabric(2)
        with pytest.raises(ValueError):
            f.send(0, 5, np.array([1]), np.array([1]))
        with pytest.raises(ValueError):
            f.send(-1, 1, np.array([1]), np.array([1]))

    def test_empty_send_free(self):
        f = Fabric(2)
        f.send(0, 1, np.empty(0, np.int64), np.empty(0, np.int64))
        f.exchange()
        assert f.stats.messages == 0

    def test_pending(self):
        f = Fabric(2)
        f.send(0, 1, np.array([1]), np.array([1]))
        assert f.pending_messages() == 1
        f.exchange()
        assert f.pending_messages() == 0

    def test_at_least_one_rank(self):
        with pytest.raises(ValueError):
            Fabric(0)


class TestFabricCombining:
    def test_min_combines_per_vertex(self):
        f = Fabric(2, combining=True)
        f.send(0, 1, np.array([5, 5, 3]), np.array([9, 2, 4]))
        vs, ls = f.exchange()[1]
        # One update per vertex, min label, sorted by vertex id.
        assert vs.tolist() == [3, 5]
        assert ls.tolist() == [4, 2]
        assert f.stats.updates == 2
        assert f.stats.combined_updates == 1

    def test_one_envelope_per_src_dst(self):
        f = Fabric(3, combining=True)
        f.send(0, 2, np.array([1, 2]), np.array([1, 2]))
        f.send(0, 2, np.array([3]), np.array([3]))     # same pair
        f.send(1, 2, np.array([4]), np.array([4]))     # second sender
        f.exchange()
        assert f.stats.messages == 2                   # two envelopes
        assert f.stats.header_bytes == 2 * ENVELOPE_HEADER_BYTES

    def test_delta_varint_payload(self):
        f = Fabric(2, combining=True)
        # ids 1000, 1001: delta-coded as 1000 (+2B) then 1 (+1B);
        # labels 1, 2: one varint byte each.
        f.send(0, 1, np.array([1000, 1001]), np.array([1, 2]))
        f.exchange()
        assert f.stats.payload_bytes == 2 + 1 + 1 + 1
        assert f.stats.modeled_bytes == ENVELOPE_HEADER_BYTES + 5

    def test_combined_delivery_equivalent_to_naive(self):
        rng = np.random.default_rng(3)
        vs = rng.integers(0, 50, size=200)
        ls = rng.integers(0, 1000, size=200)
        merged_naive = np.full(50, 10**9, dtype=np.int64)
        merged_comb = merged_naive.copy()
        for combining, merged in ((False, merged_naive),
                                  (True, merged_comb)):
            f = Fabric(2, combining=combining)
            f.send(0, 1, vs, ls)
            rv, rl = f.exchange()[1]
            np.minimum.at(merged, rv, rl)
        assert np.array_equal(merged_naive, merged_comb)

    def test_combining_never_more_wire_traffic(self):
        rng = np.random.default_rng(7)
        vs = rng.integers(0, 64, size=300)
        ls = rng.integers(0, 10**6, size=300)
        stats = []
        for combining in (False, True):
            f = Fabric(2, combining=combining)
            f.send(0, 1, vs, ls)
            f.exchange()
            stats.append(f.stats)
        naive, comb = stats
        assert comb.messages <= naive.messages
        assert comb.modeled_bytes <= naive.modeled_bytes


class TestPartition:
    def test_block_bounds_cover_range(self, small_skewed):
        b = rank_bounds(small_skewed, 4, "block")
        assert b[0] == 0 and b[-1] == small_skewed.num_vertices
        assert np.all(np.diff(b) >= 0)

    def test_degree_balanced_bounds_balance_edges(self, small_skewed):
        b = rank_bounds(small_skewed, 4, "degree_balanced")
        per_rank = np.diff(small_skewed.indptr[b])
        # Every rank's edge load is within 2x of the ideal share
        # (exact balance is impossible with contiguous cuts).
        ideal = small_skewed.num_edges / 4
        assert per_rank.max() <= 2 * ideal + small_skewed.degrees.max()

    def test_unknown_strategy_rejected(self, small_skewed):
        with pytest.raises(ValueError, match="partition strategy"):
            rank_bounds(small_skewed, 2, "metis")

    def test_rank_of_vertex_matches_bounds(self, small_skewed):
        b = rank_bounds(small_skewed, 3, "block")
        r = rank_of_vertex(b, small_skewed.num_vertices)
        for rank in range(3):
            sel = r == rank
            if sel.any():
                idx = np.flatnonzero(sel)
                assert idx.min() >= b[rank]
                assert idx.max() < b[rank + 1]

    def test_edge_cut_zero_on_one_rank(self, small_skewed):
        b = rank_bounds(small_skewed, 1, "block")
        r = rank_of_vertex(b, small_skewed.num_vertices)
        assert edge_cut(small_skewed, r) == 0


ALGOS = ["lp", "fastsv"]
PARTITIONS = ["block", "degree_balanced"]


class TestDistributedCC:
    @pytest.mark.parametrize("ranks", [1, 2, 4, 7])
    def test_correct_across_rank_counts(self, ranks, small_skewed):
        r = distributed_cc(small_skewed,
                           DistributedOptions(num_ranks=ranks))
        validate_against_reference(small_skewed, r)

    def test_matches_shared_memory(self, small_skewed):
        from repro import connected_components
        shared = connected_components(small_skewed, "thrifty")
        dist = distributed_cc(small_skewed)
        assert same_partition(shared.labels, dist.labels)

    @pytest.mark.parametrize("algorithm", ALGOS)
    @pytest.mark.parametrize("partition", PARTITIONS)
    @pytest.mark.parametrize("ranks", [1, 3, 8])
    def test_sweep_all_families(self, zoo_graph, ranks, partition,
                                algorithm):
        """Label agreement on every generator family in the zoo."""
        r = distributed_cc(zoo_graph, DistributedOptions(
            num_ranks=ranks, partition=partition, algorithm=algorithm))
        validate_against_reference(zoo_graph, r)

    def test_single_rank_no_messages(self, small_skewed):
        r = distributed_cc(small_skewed,
                           DistributedOptions(num_ranks=1))
        assert r.extras["comm"].messages == 0

    def test_empty_graph(self):
        from repro.graph import CSRGraph
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        r = distributed_cc(g)
        assert r.labels.size == 0
        assert "comm" in r.extras

    def test_extras_record_run_facts(self, small_skewed):
        opts = DistributedOptions(num_ranks=4,
                                  partition="degree_balanced")
        r = distributed_cc(small_skewed, opts)
        assert r.extras["num_ranks"] == 4
        assert r.extras["partition"] == "degree_balanced"
        assert r.extras["algorithm"] == "lp"
        assert r.extras["edge_cut"] >= 0
        assert r.extras["comm"].supersteps == r.num_iterations

    def test_ablation_flags_all_correct(self, small_skewed):
        ref = component_labels_reference(small_skewed)
        for zp in (False, True):
            for zc in (False, True):
                for dd in (False, True):
                    opts = DistributedOptions(
                        num_ranks=3, zero_planting=zp,
                        zero_convergence=zc, dedup_sends=dd)
                    r = distributed_cc(small_skewed, opts)
                    assert same_partition(r.labels, ref), (zp, zc, dd)

    def test_path_supersteps_scale_with_distance(self):
        # Labels cross rank boundaries one superstep at a time.
        g = path_graph(64)
        r = distributed_cc(g, DistributedOptions(num_ranks=8,
                                                 algorithm="lp",
                                                 zero_planting=False))
        assert r.extras["comm"].supersteps >= 8

    def test_dedup_reduces_messages(self):
        g = rmat_graph(9, 8, seed=5)
        base = DistributedOptions(num_ranks=4, combining=False,
                                  dedup_sends=False)
        dedup = DistributedOptions(num_ranks=4, combining=False,
                                   dedup_sends=True)
        m_base = distributed_cc(g, base).extras["comm"].messages
        m_dedup = distributed_cc(g, dedup).extras["comm"].messages
        assert m_dedup < m_base

    @pytest.mark.parametrize("algorithm", ALGOS)
    @pytest.mark.parametrize("partition", PARTITIONS)
    def test_combining_bit_identical_and_cheaper(self, small_skewed,
                                                 partition, algorithm):
        """The headline property: the combiner changes the wire cost,
        never the answer."""
        runs = {}
        for combining in (False, True):
            runs[combining] = distributed_cc(
                small_skewed, DistributedOptions(
                    num_ranks=5, partition=partition,
                    algorithm=algorithm, combining=combining))
        assert np.array_equal(runs[True].labels, runs[False].labels)
        naive = runs[False].extras["comm"]
        comb = runs[True].extras["comm"]
        assert comb.messages <= naive.messages
        assert comb.modeled_bytes <= naive.modeled_bytes

    def test_zero_convergence_reduces_scanned_edges(self, small_skewed):
        on = distributed_cc(small_skewed, DistributedOptions(
            num_ranks=3, zero_convergence=True))
        off = distributed_cc(small_skewed, DistributedOptions(
            num_ranks=3, zero_convergence=False))
        assert (on.counters().edges_processed
                < off.counters().edges_processed)
        assert same_partition(on.labels, off.labels)

    def test_star_fast_convergence(self):
        g = star_graph(100)
        r = distributed_cc(g, DistributedOptions(num_ranks=4))
        assert r.extras["comm"].supersteps <= 4
        validate_against_reference(g, r)

    def test_superstep_guard(self):
        g = path_graph(50)
        with pytest.raises(RuntimeError, match="converge"):
            distributed_cc(g, DistributedOptions(num_ranks=4,
                                                 max_supersteps=2))

    def test_options_validation(self):
        with pytest.raises(ValueError):
            DistributedOptions(num_ranks=0)
        with pytest.raises(ValueError):
            DistributedOptions(algorithm="bfs")
        with pytest.raises(ValueError):
            DistributedOptions(partition="metis")

    def test_fastsv_trace_named(self, small_skewed):
        r = distributed_cc(small_skewed,
                           DistributedOptions(algorithm="fastsv"))
        assert r.algorithm == "distributed-fastsv"


class TestFrontDoorIntegration:
    def test_front_door_method(self, small_skewed):
        from repro import connected_components
        r = connected_components(
            small_skewed, "distributed",
            options=DistributedOptions(num_ranks=3))
        validate_against_reference(small_skewed, r)
        assert "comm" in r.extras

    def test_legacy_name_warns_and_aliases(self):
        import repro.distributed as dist
        with pytest.warns(DeprecationWarning, match="DistributedLPOptions"):
            legacy = dist.DistributedLPOptions
        assert legacy is DistributedOptions

    def test_unknown_attribute_raises(self):
        import repro.distributed as dist
        with pytest.raises(AttributeError):
            dist.NoSuchThing


class TestNetworkCostModel:
    def test_transfer_time_components(self):
        from repro.distributed import NetworkSpec
        net = NetworkSpec("test", latency_us=10.0, bandwidth_gbps=1.0)
        # Latency-only for zero bytes.
        assert net.transfer_ms(0) == pytest.approx(0.01)
        # 1 Gb at 1 Gbps = 1 s.
        assert net.transfer_ms(125_000_000) == pytest.approx(
            1000.01, rel=1e-3)

    def test_spec_validation(self):
        from repro.distributed import NetworkSpec
        with pytest.raises(ValueError):
            NetworkSpec("bad", latency_us=0, bandwidth_gbps=1)

    def test_single_rank_pays_no_network(self, small_skewed):
        r = distributed_cc(small_skewed,
                           DistributedOptions(num_ranks=1))
        t = simulate_distributed_time(r, small_skewed.num_vertices, 1)
        assert t > 0

    def test_faster_network_never_slower(self, small_skewed):
        r = distributed_cc(small_skewed,
                           DistributedOptions(num_ranks=4))
        slow = simulate_distributed_time(r, small_skewed.num_vertices,
                                         4, network=ETHERNET_25G)
        fast = simulate_distributed_time(r, small_skewed.num_vertices,
                                         4, network=HDR_INFINIBAND)
        assert fast <= slow

    def test_num_ranks_defaults_from_extras(self, small_skewed):
        r = distributed_cc(small_skewed,
                           DistributedOptions(num_ranks=4))
        assert simulate_distributed_time(
            r, small_skewed.num_vertices) == pytest.approx(
            simulate_distributed_time(r, small_skewed.num_vertices, 4))

    def test_rank_validation(self, small_skewed):
        r = distributed_cc(small_skewed)
        with pytest.raises(ValueError):
            simulate_distributed_time(r, 10, 0)

    def test_requires_comm_extras(self, small_skewed):
        from repro import connected_components
        r = connected_components(small_skewed, "thrifty")
        with pytest.raises(ValueError, match="comm"):
            simulate_distributed_time(r, small_skewed.num_vertices, 2)

"""Tests for the distributed LP simulation."""

import numpy as np
import pytest

from repro.distributed import (
    DistributedLPOptions,
    Fabric,
    distributed_cc,
)
from repro.graph import component_labels_reference
from repro.graph.generators import path_graph, rmat_graph, star_graph
from repro.validate import same_partition, validate_against_reference


class TestFabric:
    def test_exchange_delivers_and_counts(self):
        f = Fabric(2)
        f.send(0, 1, np.array([3, 4]), np.array([7, 8]))
        inboxes = f.exchange()
        vs, ls = inboxes[1]
        assert vs.tolist() == [3, 4]
        assert ls.tolist() == [7, 8]
        assert inboxes[0][0].size == 0
        assert f.stats.messages == 2
        assert f.stats.bytes == 16
        assert f.stats.supersteps == 1

    def test_deterministic_sender_order(self):
        f = Fabric(3)
        f.send(2, 0, np.array([9]), np.array([9]))
        f.send(1, 0, np.array([5]), np.array([5]))
        vs, _ = f.exchange()[0]
        assert vs.tolist() == [5, 9]   # rank 1 before rank 2

    def test_self_send_rejected(self):
        f = Fabric(2)
        with pytest.raises(ValueError, match="local"):
            f.send(0, 0, np.array([1]), np.array([1]))

    def test_rank_bounds(self):
        f = Fabric(2)
        with pytest.raises(ValueError):
            f.send(0, 5, np.array([1]), np.array([1]))
        with pytest.raises(ValueError):
            f.send(-1, 1, np.array([1]), np.array([1]))

    def test_empty_send_free(self):
        f = Fabric(2)
        f.send(0, 1, np.empty(0, np.int64), np.empty(0, np.int64))
        f.exchange()
        assert f.stats.messages == 0

    def test_pending(self):
        f = Fabric(2)
        f.send(0, 1, np.array([1]), np.array([1]))
        assert f.pending_messages() == 1
        f.exchange()
        assert f.pending_messages() == 0

    def test_at_least_one_rank(self):
        with pytest.raises(ValueError):
            Fabric(0)


class TestDistributedCC:
    @pytest.mark.parametrize("ranks", [1, 2, 4, 7])
    def test_correct_across_rank_counts(self, ranks, small_skewed):
        r = distributed_cc(small_skewed,
                           DistributedLPOptions(num_ranks=ranks))
        validate_against_reference(small_skewed, r.result)

    def test_matches_shared_memory(self, small_skewed):
        from repro import connected_components
        shared = connected_components(small_skewed, "thrifty")
        dist = distributed_cc(small_skewed)
        assert same_partition(shared.labels, dist.labels)

    def test_on_zoo(self, zoo_graph):
        r = distributed_cc(zoo_graph,
                           DistributedLPOptions(num_ranks=3))
        validate_against_reference(zoo_graph, r.result)

    def test_single_rank_no_messages(self, small_skewed):
        r = distributed_cc(small_skewed,
                           DistributedLPOptions(num_ranks=1))
        assert r.comm.messages == 0

    def test_empty_graph(self):
        from repro.graph import CSRGraph
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        r = distributed_cc(g)
        assert r.labels.size == 0

    def test_ablation_flags_all_correct(self, small_skewed):
        ref = component_labels_reference(small_skewed)
        for zp in (False, True):
            for zc in (False, True):
                for dd in (False, True):
                    opts = DistributedLPOptions(
                        num_ranks=3, zero_planting=zp,
                        zero_convergence=zc, dedup_sends=dd)
                    r = distributed_cc(small_skewed, opts)
                    assert same_partition(r.labels, ref), (zp, zc, dd)

    def test_path_supersteps_scale_with_distance(self):
        # Labels cross rank boundaries one superstep at a time.
        g = path_graph(64)
        r = distributed_cc(g, DistributedLPOptions(num_ranks=8,
                                                   zero_planting=False))
        assert r.supersteps >= 8

    def test_dedup_reduces_messages(self):
        g = rmat_graph(9, 8, seed=5)
        base = DistributedLPOptions(num_ranks=4, dedup_sends=False)
        dedup = DistributedLPOptions(num_ranks=4, dedup_sends=True)
        m_base = distributed_cc(g, base).comm.messages
        m_dedup = distributed_cc(g, dedup).comm.messages
        assert m_dedup < m_base

    def test_star_fast_convergence(self):
        g = star_graph(100)
        r = distributed_cc(g, DistributedLPOptions(num_ranks=4))
        assert r.supersteps <= 4
        validate_against_reference(g, r.result)

    def test_superstep_guard(self):
        g = path_graph(50)
        with pytest.raises(RuntimeError, match="converge"):
            distributed_cc(g, DistributedLPOptions(num_ranks=4,
                                                   max_supersteps=2))

    def test_options_validation(self):
        with pytest.raises(ValueError):
            DistributedLPOptions(num_ranks=0)


class TestNetworkCostModel:
    def test_transfer_time_components(self):
        from repro.distributed import NetworkSpec
        net = NetworkSpec("test", latency_us=10.0, bandwidth_gbps=1.0)
        # Latency-only for zero bytes.
        assert net.transfer_ms(0) == pytest.approx(0.01)
        # 1 Gb at 1 Gbps = 1 s.
        assert net.transfer_ms(125_000_000) == pytest.approx(
            1000.01, rel=1e-3)

    def test_spec_validation(self):
        from repro.distributed import NetworkSpec
        with pytest.raises(ValueError):
            NetworkSpec("bad", latency_us=0, bandwidth_gbps=1)

    def test_single_rank_pays_no_network(self, small_skewed):
        from repro.distributed import (DistributedLPOptions,
                                       distributed_cc,
                                       simulate_distributed_time)
        r = distributed_cc(small_skewed,
                           DistributedLPOptions(num_ranks=1))
        t = simulate_distributed_time(r, small_skewed.num_vertices, 1)
        assert t > 0

    def test_faster_network_never_slower(self, small_skewed):
        from repro.distributed import (ETHERNET_25G, HDR_INFINIBAND,
                                       DistributedLPOptions,
                                       distributed_cc,
                                       simulate_distributed_time)
        r = distributed_cc(small_skewed,
                           DistributedLPOptions(num_ranks=4))
        slow = simulate_distributed_time(r, small_skewed.num_vertices,
                                         4, network=ETHERNET_25G)
        fast = simulate_distributed_time(r, small_skewed.num_vertices,
                                         4, network=HDR_INFINIBAND)
        assert fast <= slow

    def test_rank_validation(self, small_skewed):
        from repro.distributed import (DistributedLPOptions,
                                       distributed_cc,
                                       simulate_distributed_time)
        r = distributed_cc(small_skewed)
        with pytest.raises(ValueError):
            simulate_distributed_time(r, 10, 0)

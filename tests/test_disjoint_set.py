"""Tests for the union-find substrate."""

import numpy as np
import pytest

from repro.baselines import (
    DisjointSet,
    charge_finds,
    charge_union,
    flatten_parents,
    link_roots,
    pointer_jump_roots,
    resolve_roots_local,
    shortcut_parents,
    union_edge_batch,
)
from repro.instrument.counters import OpCounters


class TestDisjointSet:
    def test_initial_singletons(self):
        ds = DisjointSet(5)
        assert ds.num_sets == 5
        assert all(ds.find(i) == i for i in range(5))

    def test_union_merges(self):
        ds = DisjointSet(4)
        assert ds.union(0, 1)
        assert ds.same_set(0, 1)
        assert ds.num_sets == 3

    def test_union_idempotent(self):
        ds = DisjointSet(4)
        ds.union(0, 1)
        assert not ds.union(1, 0)
        assert ds.num_sets == 3

    def test_transitivity(self):
        ds = DisjointSet(6)
        ds.union(0, 1)
        ds.union(1, 2)
        ds.union(4, 5)
        assert ds.same_set(0, 2)
        assert not ds.same_set(0, 4)

    def test_labels_partition(self):
        ds = DisjointSet(5)
        ds.union(0, 3)
        ds.union(1, 2)
        labels = ds.labels()
        assert labels[0] == labels[3]
        assert labels[1] == labels[2]
        assert labels[0] != labels[1]

    def test_path_halving_shortens(self):
        ds = DisjointSet(8)
        # Build a deliberate chain.
        for i in range(7):
            ds.parent[i + 1] = i
        ds.find(7)
        # Path halving: 7 no longer points at 6.
        assert ds.parent[7] != 6 or ds.parent[7] == ds.find(7)

    def test_negative_size(self):
        with pytest.raises(ValueError):
            DisjointSet(-1)


class TestVectorizedPrimitives:
    def test_pointer_jump_roots(self):
        parent = np.array([0, 0, 1, 2, 4])
        roots, hops = pointer_jump_roots(parent)
        assert roots.tolist() == [0, 0, 0, 0, 4]
        assert hops > 0

    def test_pointer_jump_already_flat(self):
        parent = np.array([0, 0, 0])
        roots, hops = pointer_jump_roots(parent)
        assert hops == 0

    def test_flatten_parents(self):
        parent = np.array([0, 0, 1, 2])
        flat = flatten_parents(parent)
        assert flat.tolist() == [0, 0, 0, 0]

    def test_link_roots_min_convention(self):
        parent = np.arange(5)
        linked = link_roots(parent, np.array([3, 4]), np.array([1, 1]))
        assert linked == 2
        assert parent[3] == 1 and parent[4] == 1

    def test_link_roots_conflict_keeps_min(self):
        parent = np.arange(5)
        link_roots(parent, np.array([4, 4]), np.array([2, 1]))
        assert parent[4] == 1

    def test_link_roots_priority(self):
        parent = np.arange(3)
        priority = np.array([2, 0, 1])   # vertex 1 has best priority
        link_roots(parent, np.array([0]), np.array([1]),
                   priority)
        assert parent[0] == 1

    def test_link_roots_acyclic_with_priority(self):
        rng = np.random.default_rng(0)
        parent = np.arange(50)
        priority = rng.permutation(50)
        a = rng.integers(0, 50, 200)
        b = rng.integers(0, 50, 200)
        link_roots(parent, a, b, priority)
        # Must terminate: no cycles.
        roots, _ = pointer_jump_roots(parent)
        assert np.all(parent[roots] == roots)

    def test_link_roots_self_pairs_ignored(self):
        parent = np.arange(4)
        assert link_roots(parent, np.array([2]), np.array([2])) == 0


def _chain_parent(n):
    """parent = [0, 0, 1, 2, ...]: vertex i at depth i."""
    parent = np.arange(n, dtype=np.int64)
    parent[1:] = np.arange(n - 1)
    return parent


class TestResolveRootsLocal:
    def test_untouched_entries_never_read_or_written(self):
        parent = np.array([0, 0, 1, 3, 3], dtype=np.int64)
        before = parent.copy()
        roots, _ = resolve_roots_local(parent, np.array([4]))
        assert roots.tolist() == [3]
        # Only the touched entry may change (here it was already flat).
        assert np.array_equal(parent, before)

    def test_roots_match_pointer_jump(self):
        rng = np.random.default_rng(3)
        parent = np.arange(200, dtype=np.int64)
        link_roots(parent, rng.integers(0, 200, 300),
                   rng.integers(0, 200, 300))
        reference, _ = pointer_jump_roots(parent)
        touched = rng.integers(0, 200, 80)
        roots, _ = resolve_roots_local(parent, touched)
        assert np.array_equal(roots, reference[touched])

    def test_compression_preserves_all_roots(self):
        rng = np.random.default_rng(4)
        parent = np.arange(100, dtype=np.int64)
        link_roots(parent, rng.integers(0, 100, 150),
                   rng.integers(0, 100, 150))
        reference, _ = pointer_jump_roots(parent)
        resolve_roots_local(parent, rng.integers(0, 100, 40))
        after, _ = pointer_jump_roots(parent)
        assert np.array_equal(after, reference)

    def test_hops_is_depth_for_first_find(self):
        # Vertex 5 sits at depth 5 in a chain: one sequential find.
        parent = _chain_parent(8)
        _, hops = resolve_roots_local(parent, np.array([5]))
        assert hops == 5

    def test_root_find_costs_one_hop(self):
        parent = np.arange(4, dtype=np.int64)
        _, hops = resolve_roots_local(parent, np.array([2]))
        assert hops == 1

    def test_duplicate_finds_hit_the_memo_cache(self):
        parent = _chain_parent(8)
        _, hops = resolve_roots_local(parent, np.array([5, 5, 5]))
        # First find walks the depth-5 path; the two repeats cost one
        # (memoized) read each.
        assert hops == 5 + 2

    def test_second_batch_sees_compressed_path(self):
        parent = _chain_parent(8)
        resolve_roots_local(parent, np.array([5]))
        _, hops = resolve_roots_local(parent, np.array([5]))
        assert hops == 1

    def test_empty_batch(self):
        parent = np.arange(3, dtype=np.int64)
        roots, hops = resolve_roots_local(parent, np.array([], np.int64))
        assert roots.size == 0 and hops == 0


class TestShortcutParents:
    def test_local_matches_reference_array(self):
        rng = np.random.default_rng(5)
        a = np.arange(300, dtype=np.int64)
        link_roots(a, rng.integers(0, 300, 500),
                   rng.integers(0, 300, 500))
        b = a.copy()
        shortcut_parents(a, local=True)
        shortcut_parents(b, local=False)
        assert np.array_equal(a, b)
        assert np.array_equal(a[a], a)       # depth <= 1 everywhere

    def test_round_counts_agree(self):
        rng = np.random.default_rng(6)
        a = np.arange(128, dtype=np.int64)
        link_roots(a, rng.integers(0, 128, 200),
                   rng.integers(0, 128, 200))
        b = a.copy()
        rounds_local, _ = shortcut_parents(a, local=True)
        rounds_ref, _ = shortcut_parents(b, local=False)
        assert rounds_local == rounds_ref

    def test_flat_array_is_zero_work(self):
        parent = np.zeros(6, dtype=np.int64)
        assert shortcut_parents(parent.copy(), local=True) == (0, 0)
        assert shortcut_parents(parent.copy(), local=False) == (0, 0)

    def test_touched_counts_only_moved_entries(self):
        parent = _chain_parent(4)        # depths 0,1,2,3
        rounds, touched = shortcut_parents(parent.copy(), local=True)
        # Round 1 moves vertices at depth >= 2 (two of them); round 2
        # re-checks; the doubling flattens depth 3 in one more touch.
        _, touched_ref = shortcut_parents(parent.copy(), local=False)
        assert touched == touched_ref


class TestUnionEdgeBatchLocal:
    @pytest.mark.parametrize("with_priority", [False, True])
    def test_local_and_reference_agree(self, with_priority):
        rng = np.random.default_rng(7)
        n = 500
        eu = rng.integers(0, n, 2000)
        ev = rng.integers(0, n, 2000)
        priority = rng.permutation(n) if with_priority else None
        pa = np.arange(n, dtype=np.int64)
        pb = np.arange(n, dtype=np.int64)
        links_a, _ = union_edge_batch(pa, eu, ev, priority=priority,
                                      local=True)
        links_b, _ = union_edge_batch(pb, eu, ev, priority=priority,
                                      local=False)
        assert links_a == links_b
        assert np.array_equal(flatten_parents(pa), flatten_parents(pb))

    def test_local_hops_floor_is_per_endpoint(self):
        # Round one charges at least one read per endpoint occurrence.
        parent = np.arange(10, dtype=np.int64)
        eu = np.array([0, 2, 4])
        ev = np.array([1, 3, 5])
        _, hops = union_edge_batch(parent, eu, ev, local=True)
        assert hops >= 2 * eu.size

    def test_local_hops_never_charge_untouched_vertices(self):
        # Thousands of deep trees the batch never touches: the
        # all-vertex reference charges their pointer chases anyway;
        # the local path charges only the four touched endpoints.
        n = 10_000
        pa = _chain_parent(n)            # vertex i at depth i
        pa[:5] = np.arange(5)            # detach the touched corner
        pb = pa.copy()
        eu = np.array([0, 1])
        ev = np.array([2, 3])
        _, hops_local = union_edge_batch(pa, eu, ev, local=True)
        _, hops_ref = union_edge_batch(pb, eu, ev, local=False)
        assert hops_local < 20
        assert hops_ref > n              # charges vertices never touched


class TestChargeHelpers:
    def test_charge_union_recipe(self):
        c = OpCounters()
        charge_union(c, edges=10, links=4, hops=7)
        assert c.edges_processed == 10
        assert c.random_accesses == 10 + 4     # endpoint gathers + links
        assert c.label_reads == 10 + 7
        assert c.cas_attempts == 10
        assert c.cas_successes == 4
        assert c.label_writes == 4
        assert c.branches == 10
        assert c.unpredictable_branches == 10
        assert c.dependent_accesses == 7

    def test_charge_union_two_endpoint_reads(self):
        c = OpCounters()
        charge_union(c, edges=5, links=0, hops=0, endpoint_reads=2)
        assert c.random_accesses == 10
        assert c.label_reads == 10

    def test_charge_finds(self):
        c = OpCounters()
        charge_finds(c, 9)
        assert c.dependent_accesses == 9
        assert c.label_reads == 9

"""Tests for the union-find substrate."""

import numpy as np
import pytest

from repro.baselines import (
    DisjointSet,
    flatten_parents,
    link_roots,
    pointer_jump_roots,
)


class TestDisjointSet:
    def test_initial_singletons(self):
        ds = DisjointSet(5)
        assert ds.num_sets == 5
        assert all(ds.find(i) == i for i in range(5))

    def test_union_merges(self):
        ds = DisjointSet(4)
        assert ds.union(0, 1)
        assert ds.same_set(0, 1)
        assert ds.num_sets == 3

    def test_union_idempotent(self):
        ds = DisjointSet(4)
        ds.union(0, 1)
        assert not ds.union(1, 0)
        assert ds.num_sets == 3

    def test_transitivity(self):
        ds = DisjointSet(6)
        ds.union(0, 1)
        ds.union(1, 2)
        ds.union(4, 5)
        assert ds.same_set(0, 2)
        assert not ds.same_set(0, 4)

    def test_labels_partition(self):
        ds = DisjointSet(5)
        ds.union(0, 3)
        ds.union(1, 2)
        labels = ds.labels()
        assert labels[0] == labels[3]
        assert labels[1] == labels[2]
        assert labels[0] != labels[1]

    def test_path_halving_shortens(self):
        ds = DisjointSet(8)
        # Build a deliberate chain.
        for i in range(7):
            ds.parent[i + 1] = i
        ds.find(7)
        # Path halving: 7 no longer points at 6.
        assert ds.parent[7] != 6 or ds.parent[7] == ds.find(7)

    def test_negative_size(self):
        with pytest.raises(ValueError):
            DisjointSet(-1)


class TestVectorizedPrimitives:
    def test_pointer_jump_roots(self):
        parent = np.array([0, 0, 1, 2, 4])
        roots, hops = pointer_jump_roots(parent)
        assert roots.tolist() == [0, 0, 0, 0, 4]
        assert hops > 0

    def test_pointer_jump_already_flat(self):
        parent = np.array([0, 0, 0])
        roots, hops = pointer_jump_roots(parent)
        assert hops == 0

    def test_flatten_parents(self):
        parent = np.array([0, 0, 1, 2])
        flat = flatten_parents(parent)
        assert flat.tolist() == [0, 0, 0, 0]

    def test_link_roots_min_convention(self):
        parent = np.arange(5)
        linked = link_roots(parent, np.array([3, 4]), np.array([1, 1]))
        assert linked == 2
        assert parent[3] == 1 and parent[4] == 1

    def test_link_roots_conflict_keeps_min(self):
        parent = np.arange(5)
        link_roots(parent, np.array([4, 4]), np.array([2, 1]))
        assert parent[4] == 1

    def test_link_roots_priority(self):
        parent = np.arange(3)
        priority = np.array([2, 0, 1])   # vertex 1 has best priority
        link_roots(parent, np.array([0]), np.array([1]),
                   priority)
        assert parent[0] == 1

    def test_link_roots_acyclic_with_priority(self):
        rng = np.random.default_rng(0)
        parent = np.arange(50)
        priority = rng.permutation(50)
        a = rng.integers(0, 50, 200)
        b = rng.integers(0, 50, 200)
        link_roots(parent, a, b, priority)
        # Must terminate: no cycles.
        roots, _ = pointer_jump_roots(parent)
        assert np.all(parent[roots] == roots)

    def test_link_roots_self_pairs_ignored(self):
        parent = np.arange(4)
        assert link_roots(parent, np.array([2]), np.array([2])) == 0

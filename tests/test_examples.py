"""Smoke tests: the fast examples must run end to end."""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    sys.argv = [name]
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_figure2_walkthrough(self, capsys):
        out = run_example("figure2_walkthrough.py", capsys)
        assert "Zero Planting" in out
        # The paper's story: DO-LP needs 4 iterations, Thrifty 3.
        assert "converged after 4" in out
        assert "converged after 3" in out

    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "all algorithms agree." in out
        assert "initial-push" in out

    def test_all_examples_importable(self):
        """Every example compiles (full runs are exercised manually)."""
        import py_compile
        for path in sorted(EXAMPLES.glob("*.py")):
            py_compile.compile(str(path), doraise=True)

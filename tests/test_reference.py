"""Tests for the per-vertex pseudocode reference implementations."""

import numpy as np
import pytest

from repro.core import thrifty_cc
from repro.core.reference import (
    reference_dolp,
    reference_label_propagation_iterations,
    reference_thrifty,
)
from repro.graph import component_labels_reference
from repro.graph.generators import path_graph, rmat_graph, star_graph
from repro.validate import same_partition


SMALL_SEEDS = [1, 2, 3]


class TestReferenceDolp:
    @pytest.mark.parametrize("seed", SMALL_SEEDS)
    def test_correct_components(self, seed):
        g = rmat_graph(6, 5, seed=seed)
        labels, iters = reference_dolp(g)
        assert same_partition(labels, component_labels_reference(g))
        assert iters >= 1

    def test_path_takes_diameter_iterations(self):
        g = path_graph(20)
        _, iters = reference_dolp(g)
        assert iters >= 19   # wavefront: one hop per iteration


class TestReferenceThrifty:
    @pytest.mark.parametrize("seed", SMALL_SEEDS)
    def test_correct_components(self, seed):
        g = rmat_graph(6, 5, seed=seed)
        labels, _ = reference_thrifty(g)
        assert same_partition(labels, component_labels_reference(g))

    def test_agrees_with_reference_dolp(self):
        g = rmat_graph(6, 6, seed=4)
        l1, _ = reference_dolp(g)
        l2, _ = reference_thrifty(g)
        assert same_partition(l1, l2)

    def test_star_two_iterations(self):
        # Initial push resolves everything; one pull confirms.
        g = star_graph(15)
        labels, iters = reference_thrifty(g)
        assert np.all(labels == 0)
        assert iters <= 3

    def test_giant_component_converges_to_zero(self):
        g = rmat_graph(6, 8, seed=5)
        labels, _ = reference_thrifty(g)
        hub = g.max_degree_vertex()
        assert labels[hub] == 0
        # Most of the vertices share the hub's (zero) label.
        assert np.mean(labels == 0) > 0.5

    def test_empty_graph(self):
        from repro.graph import CSRGraph
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        labels, iters = reference_thrifty(g)
        assert labels.size == 0 and iters == 0


class TestProductionAgainstReference:
    """The vectorized engine and the pseudocode must agree."""

    @pytest.mark.parametrize("seed", SMALL_SEEDS)
    def test_same_components(self, seed):
        g = rmat_graph(6, 6, seed=seed)
        ref_labels, _ = reference_thrifty(g)
        prod = thrifty_cc(g)
        assert same_partition(prod.labels, ref_labels)

    def test_iteration_counts_comparable(self):
        """Block-async modelling may differ from per-vertex sweeps,
        but not wildly (within 3x either way on a small graph)."""
        g = rmat_graph(7, 6, seed=6)
        _, ref_iters = reference_thrifty(g)
        prod_iters = thrifty_cc(g).num_iterations
        assert prod_iters <= 3 * ref_iters
        assert ref_iters <= 3 * prod_iters


class TestPlainLP:
    def test_iteration_bound(self):
        g = path_graph(12)
        iters = reference_label_propagation_iterations(g)
        assert iters == 12   # diameter + termination round

"""Typed options front door: construction, canonicalization, shim."""

import numpy as np
import pytest

from repro import ALGORITHMS, connected_components
from repro.options import (
    OPTION_TYPES,
    AfforestOptions,
    ThriftyOptions,
    options_for,
    resolve_options,
    to_call_kwargs,
)


class TestOptionTypes:
    def test_every_algorithm_has_options(self):
        assert set(OPTION_TYPES) == set(ALGORITHMS)

    def test_options_are_frozen_and_hashable(self):
        from dataclasses import FrozenInstanceError, fields
        for method, cls in OPTION_TYPES.items():
            opts = cls()
            for f in fields(opts):
                with pytest.raises(FrozenInstanceError):
                    setattr(opts, f.name, None)
                break
            assert hash(opts) == hash(cls()), method
            assert opts == cls(), method

    def test_default_options_flatten_to_no_kwargs_for_lp(self):
        # None fields are "use canonical value" and must be dropped.
        assert to_call_kwargs(ThriftyOptions()) == {}

    def test_defaulted_fields_survive_flattening(self):
        kw = to_call_kwargs(AfforestOptions(neighbor_rounds=3))
        assert kw["neighbor_rounds"] == 3
        assert kw["sample_size"] == 1024    # non-None class default

    def test_options_for_unknown_method(self):
        with pytest.raises(ValueError, match="auto"):
            options_for("magic")

    def test_options_for_unknown_field_lists_valid(self):
        with pytest.raises(ValueError, match="threshold"):
            options_for("thrifty", thresold=0.1)   # typo

    def test_options_for_builds_right_type(self):
        for method, cls in OPTION_TYPES.items():
            assert type(options_for(method)) is cls


class TestResolveOptions:
    def test_none_resolves_to_defaults(self):
        assert resolve_options("thrifty", None, {}) == ThriftyOptions()

    def test_legacy_kwargs_warn_and_map(self):
        with pytest.warns(DeprecationWarning, match="ThriftyOptions"):
            opts = resolve_options("thrifty", None, {"threshold": 0.2})
        assert opts == ThriftyOptions(threshold=0.2)

    def test_both_spellings_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_options("thrifty", ThriftyOptions(),
                            {"threshold": 0.2})

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="AfforestOptions"):
            resolve_options("afforest", ThriftyOptions(), {})


class TestRoundTrip:
    @pytest.mark.parametrize("method,legacy", [
        ("thrifty", {"threshold": 0.2, "num_threads": 4}),
        ("dolp", {"num_threads": 8}),
        ("unified", {"block_size": 32}),
        ("sv", {"local": False}),
        ("jt", {"seed": 9}),
        ("afforest", {"neighbor_rounds": 1, "seed": 2}),
        ("lp-shortcut", {"shortcut_depth": 3}),
        ("kla", {"k": 2}),
        ("connectit", {"sampling": "kout", "seed": 1}),
        ("distributed", {"num_ranks": 3, "partition": "degree_balanced",
                         "combining": False}),
    ])
    def test_legacy_and_typed_bit_identical(self, method, legacy,
                                            small_skewed):
        typed = connected_components(
            small_skewed, method, options=options_for(method, **legacy))
        with pytest.warns(DeprecationWarning):
            shim = connected_components(small_skewed, method, **legacy)
        assert np.array_equal(typed.labels, shim.labels)
        assert typed.counters().as_dict() == shim.counters().as_dict()
        assert typed.num_iterations == shim.num_iterations

"""Tests for the validation utilities."""

import numpy as np
import pytest

from repro import connected_components
from repro.validate import (
    canonicalize,
    check_labels_consistent,
    same_partition,
    validate_against_reference,
)


class TestCanonicalize:
    def test_min_member_convention(self):
        labels = np.array([9, 9, 4, 4, 9])
        assert canonicalize(labels).tolist() == [0, 0, 2, 2, 0]

    def test_idempotent(self):
        labels = np.array([3, 1, 3, 1])
        once = canonicalize(labels)
        assert np.array_equal(canonicalize(once), once)

    def test_empty(self):
        assert canonicalize(np.empty(0)).size == 0


class TestSamePartition:
    def test_equal_up_to_renaming(self):
        a = np.array([5, 5, 2, 2])
        b = np.array([0, 0, 9, 9])
        assert same_partition(a, b)

    def test_different_partitions(self):
        assert not same_partition(np.array([0, 0, 1]),
                                  np.array([0, 1, 1]))

    def test_shape_mismatch(self):
        assert not same_partition(np.array([0]), np.array([0, 0]))

    def test_accepts_ccresults(self, triangle):
        a = connected_components(triangle, "thrifty")
        b = connected_components(triangle, "sv")
        assert same_partition(a, b)


class TestValidateAgainstReference:
    def test_passes_for_correct(self, two_triangles):
        r = connected_components(two_triangles, "jt")
        validate_against_reference(two_triangles, r)

    def test_fails_for_wrong(self, two_triangles):
        r = connected_components(two_triangles, "jt")
        r.labels[:] = 0   # merge everything incorrectly
        with pytest.raises(AssertionError, match="wrong components"):
            validate_against_reference(two_triangles, r)


class TestConsistencyCheck:
    def test_correct_labels_pass(self, two_triangles):
        check_labels_consistent(two_triangles,
                                np.array([1, 1, 1, 2, 2, 2]))

    def test_crossing_edge_detected(self, triangle):
        with pytest.raises(AssertionError, match="crosses"):
            check_labels_consistent(triangle, np.array([0, 0, 1]))

    def test_over_merged_detected(self, two_triangles):
        with pytest.raises(AssertionError, match="true components"):
            check_labels_consistent(two_triangles, np.zeros(6))

    def test_wrong_shape_detected(self, triangle):
        with pytest.raises(AssertionError, match="shape"):
            check_labels_consistent(triangle, np.zeros(7))

"""Tests for edge-balanced partitioning."""

import numpy as np
import pytest

from repro.graph.generators import path_graph, rmat_graph, star_graph
from repro.parallel import (
    PARTITIONS_PER_THREAD,
    Partitioning,
    edge_balanced_partitions,
)


class TestPartitioning:
    def test_bounds_cover_all_vertices(self):
        g = rmat_graph(9, 8, seed=1)
        p = edge_balanced_partitions(g, 4)
        assert p.bounds[0] == 0
        assert p.bounds[-1] == g.num_vertices
        assert p.num_partitions == 4 * PARTITIONS_PER_THREAD

    def test_edge_counts_sum_to_total(self):
        g = rmat_graph(9, 8, seed=1)
        p = edge_balanced_partitions(g, 4)
        assert int(p.edge_counts(g).sum()) == g.num_edges

    def test_balance_quality_uniform_graph(self):
        g = path_graph(10_000)
        p = edge_balanced_partitions(g, 8)
        counts = p.edge_counts(g)
        ideal = g.num_edges / p.num_partitions
        assert counts.max() <= 2 * ideal + 2

    def test_skewed_hub_allowed_to_overflow(self):
        # One vertex with most of the edges cannot be split.
        g = star_graph(5000)
        p = edge_balanced_partitions(g, 4)
        assert p.edge_counts(g).max() >= 5000

    def test_ownership_layout(self):
        g = rmat_graph(8, 8, seed=2)
        p = edge_balanced_partitions(g, 4)
        assert list(p.owned_by(0)) == list(range(PARTITIONS_PER_THREAD))
        assert p.owner_of(0) == 0
        assert p.owner_of(p.num_partitions - 1) == 3

    def test_vertex_range(self):
        g = path_graph(100)
        p = edge_balanced_partitions(g, 2, partitions_per_thread=2)
        ranges = [p.vertex_range(i) for i in range(4)]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 100
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_validation(self):
        g = path_graph(10)
        with pytest.raises(ValueError):
            edge_balanced_partitions(g, 0)
        with pytest.raises(ValueError):
            edge_balanced_partitions(g, 2, partitions_per_thread=0)

    def test_bounds_validation(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Partitioning(np.array([0, 5, 3]), 1)
        with pytest.raises(ValueError, match="2 entries"):
            Partitioning(np.array([0]), 1)
        with pytest.raises(ValueError, match="num_threads"):
            Partitioning(np.array([0, 3]), 0)

    def test_more_partitions_than_vertices(self):
        g = path_graph(5)
        p = edge_balanced_partitions(g, 4)   # 128 partitions, 5 vertices
        assert p.num_vertices == 5
        assert int(p.edge_counts(g).sum()) == g.num_edges


class TestVertexBalanced:
    def test_equal_vertex_counts(self):
        from repro.parallel import vertex_balanced_partitions
        g = rmat_graph(9, 8, seed=3)
        p = vertex_balanced_partitions(g, 4)
        sizes = np.diff(p.bounds)
        assert sizes.max() - sizes.min() <= 1
        assert p.bounds[-1] == g.num_vertices

    def test_skewed_edge_imbalance(self):
        from repro.parallel import vertex_balanced_partitions
        g = star_graph(5000)
        pv = vertex_balanced_partitions(g, 4)
        pe = edge_balanced_partitions(g, 4)
        # The hub's partition dominates under vertex balancing; the
        # spread of per-partition edges is far wider than edge-balanced.
        assert pv.edge_counts(g).max() >= pe.edge_counts(g).max()

    def test_validation(self):
        from repro.parallel import vertex_balanced_partitions
        g = path_graph(10)
        with pytest.raises(ValueError):
            vertex_balanced_partitions(g, 0)
        with pytest.raises(ValueError):
            vertex_balanced_partitions(g, 2, partitions_per_thread=0)


class TestPartitionOf:
    def test_inverse_of_vertex_range(self):
        g = rmat_graph(9, 8, seed=3)
        part = edge_balanced_partitions(g, 4, 4)
        for v in range(g.num_vertices):
            p = part.partition_of(v)
            lo, hi = part.vertex_range(p)
            assert lo <= v < hi

    def test_skewed_hub_partition(self):
        g = star_graph(100)
        part = edge_balanced_partitions(g, 4, 1)
        assert part.partition_of(0) == 0
        # The hub absorbs most edges, so late vertices map to late
        # partitions even though their ids are small multiples of the
        # thread count.
        lo, hi = part.vertex_range(part.num_partitions - 1)
        assert part.partition_of(hi - 1) == part.num_partitions - 1

    def test_out_of_range_rejected(self):
        g = path_graph(10)
        part = edge_balanced_partitions(g, 2, 1)
        with pytest.raises(ValueError):
            part.partition_of(-1)
        with pytest.raises(ValueError):
            part.partition_of(10)

    def test_consistent_with_owner_layout(self):
        g = rmat_graph(8, 8, seed=4)
        part = edge_balanced_partitions(g, 4, 2)
        for v in range(0, g.num_vertices, 7):
            p = part.partition_of(v)
            assert 0 <= part.owner_of(p) < 4

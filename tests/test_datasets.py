"""Tests for the Table II surrogate registry."""

from repro.graph import load
import numpy as np
import pytest

from repro.graph import (
    ALL_DATASET_NAMES,
    DATASETS,
    LARGE_DATASET_NAMES,
    POWER_LAW_DATASET_NAMES,
    ROAD_DATASET_NAMES,
    extract_giant_component,
    is_skewed,
    max_degree_component_fraction,
)
from repro.graph.generators import star_graph, with_dust_components


class TestRegistry:
    def test_all_17_table2_datasets_present(self):
        assert len(ALL_DATASET_NAMES) == 17

    def test_15_power_law_and_2_roads(self):
        assert len(POWER_LAW_DATASET_NAMES) == 15
        assert set(ROAD_DATASET_NAMES) == {"GBRd", "USRd"}

    def test_large_set_matches_paper(self):
        # Table II: datasets with >= 1B edges.
        assert "Wbbs" in LARGE_DATASET_NAMES
        assert "ClWb9" in LARGE_DATASET_NAMES
        assert "Pkc" not in LARGE_DATASET_NAMES

    def test_paper_metadata_recorded(self):
        spec = DATASETS["ClWb9"]
        assert spec.paper_vertices_m == 1685
        assert spec.paper_cc == 5642809

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="not a known dataset"):
            load("nope")


class TestSurrogateStructure:
    @pytest.mark.parametrize("name", ["Pkc", "WWiki", "Twtr", "SK"])
    def test_power_law_surrogates_are_skewed(self, name):
        assert is_skewed(load(name, 0.5))

    @pytest.mark.parametrize("name", ROAD_DATASET_NAMES)
    def test_road_surrogates_not_skewed(self, name):
        assert not is_skewed(load(name, 0.5))

    @pytest.mark.parametrize("name", ["Pkc", "LJLnks", "Twtr"])
    def test_giant_component_premise(self, name):
        """Table I: the hub's component holds >~94% of vertices."""
        g = load(name, 0.5)
        assert max_degree_component_fraction(g) > 0.90

    @pytest.mark.parametrize("name", ["Pkc", "LJGrp", "TwtrMpi"])
    def test_single_component_datasets(self, name):
        from repro.graph import component_sizes
        g = load(name, 0.25)
        assert len(component_sizes(g)) == 1

    def test_multi_component_dataset(self):
        from repro.graph import component_sizes
        g = load("WWiki", 0.5)
        assert len(component_sizes(g)) > 5

    def test_scale_shrinks(self):
        big = load("Pkc", 0.5)
        small = load("Pkc", 0.1)
        assert small.num_vertices < big.num_vertices

    def test_memoized(self):
        assert load("Pkc", 0.5) is load("Pkc", 0.5)


class TestExtractGiant:
    def test_star_identity(self):
        g = star_graph(5)
        g2 = extract_giant_component(g)
        assert g2.num_vertices == 6
        assert g2.num_edges == g.num_edges

    def test_drops_dust(self):
        g = with_dust_components(star_graph(20), 5, seed=1)
        g2 = extract_giant_component(g)
        assert g2.num_vertices == 21

    def test_edges_remapped_consistently(self):
        g = with_dust_components(star_graph(10), 2, seed=2)
        g2 = extract_giant_component(g)
        assert g2.degree(0) == 10
        assert np.array_equal(g2.neighbors(0), np.arange(1, 11))

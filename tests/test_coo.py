"""Unit tests for the COO edge-list layer."""

import numpy as np
import pytest

from repro.graph.coo import (
    EdgeList,
    dedup,
    remove_self_loops,
    symmetrize,
)


def make(pairs, n=None):
    arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    nv = n if n is not None else (int(arr.max()) + 1 if arr.size else 0)
    return EdgeList(arr[:, 0], arr[:, 1], nv)


class TestEdgeListValidation:
    def test_basic_construction(self):
        e = make([(0, 1), (1, 2)])
        assert e.num_edges == 2
        assert e.num_vertices == 3

    def test_empty(self):
        e = make([], n=0)
        assert e.num_edges == 0
        assert e.is_symmetric()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="lengths differ"):
            EdgeList(np.array([0, 1]), np.array([1]), 2)

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            EdgeList(np.array([-1]), np.array([0]), 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            make([(0, 5)], n=3)

    def test_negative_num_vertices_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EdgeList(np.empty(0, np.int64), np.empty(0, np.int64), -1)

    def test_2d_arrays_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            EdgeList(np.zeros((2, 2), np.int64),
                     np.zeros((2, 2), np.int64), 4)

    def test_arrays_coerced_to_int64(self):
        e = EdgeList(np.array([0], np.int32), np.array([1], np.int32), 2)
        assert e.src.dtype == np.int64
        assert e.dst.dtype == np.int64


class TestSymmetry:
    def test_asymmetric_detected(self):
        assert not make([(0, 1)]).is_symmetric()

    def test_symmetric_detected(self):
        assert make([(0, 1), (1, 0)]).is_symmetric()

    def test_symmetrize_produces_symmetry(self):
        e = symmetrize(make([(0, 1), (2, 3), (1, 2)]))
        assert e.is_symmetric()
        assert e.num_edges == 6

    def test_symmetrize_idempotent(self):
        e1 = symmetrize(make([(0, 1), (1, 2)]))
        e2 = symmetrize(e1)
        assert e1.num_edges == e2.num_edges

    def test_symmetrize_dedups_existing_reverse(self):
        e = symmetrize(make([(0, 1), (1, 0)]))
        assert e.num_edges == 2


class TestDedup:
    def test_removes_duplicates(self):
        e = dedup(make([(0, 1), (0, 1), (0, 1), (1, 2)]))
        assert e.num_edges == 2

    def test_keeps_direction_distinct(self):
        e = dedup(make([(0, 1), (1, 0)]))
        assert e.num_edges == 2

    def test_empty_noop(self):
        e = make([], n=3)
        assert dedup(e) is e


class TestSelfLoops:
    def test_removed(self):
        e = remove_self_loops(make([(0, 0), (0, 1), (2, 2)]))
        assert e.num_edges == 1

    def test_noop_when_clean(self):
        e = make([(0, 1)])
        assert remove_self_loops(e) is e

"""Tests for structural graph property measurement."""

import numpy as np
import pytest

from repro.graph import (
    component_labels_reference,
    component_sizes,
    degree_stats,
    estimate_diameter,
    giant_component_fraction,
    is_skewed,
    max_degree_component_fraction,
)
from repro.graph.generators import path_graph, cycle_graph, star_graph


class TestDegreeStats:
    def test_star(self):
        s = degree_stats(star_graph(50))
        assert s.max == 50
        assert s.min == 1
        assert s.mean == pytest.approx(100 / 51)
        assert s.skew_ratio > 20

    def test_path_uniform(self):
        s = degree_stats(path_graph(100))
        assert s.max == 2
        assert s.gini < 0.05

    def test_gini_bounds(self, small_social, small_road):
        for g in (small_social, small_road):
            s = degree_stats(g)
            assert 0.0 <= s.gini <= 1.0

    def test_top1pct_share_sums(self, small_social):
        s = degree_stats(small_social)
        assert 0.0 < s.top1pct_edge_share <= 1.0


class TestSkewHeuristic:
    def test_star_is_skewed(self):
        assert is_skewed(star_graph(200))

    def test_road_not_skewed(self, small_road):
        assert not is_skewed(small_road)

    def test_uniform_not_skewed(self, small_uniform):
        assert not is_skewed(small_uniform)

    def test_power_law_skewed(self, small_social):
        assert is_skewed(small_social)


class TestComponents:
    def test_two_triangles(self, two_triangles):
        sizes = component_sizes(two_triangles)
        assert np.array_equal(sizes, [3, 3])

    def test_giant_fraction(self, two_triangles):
        assert giant_component_fraction(two_triangles) == pytest.approx(0.5)

    def test_max_degree_fraction_on_star(self):
        assert max_degree_component_fraction(star_graph(9)) == 1.0

    def test_labels_reference_partitions(self, two_triangles):
        labels = component_labels_reference(two_triangles)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]


class TestDiameter:
    def test_path_exact(self):
        assert estimate_diameter(path_graph(50)) == 49

    def test_cycle_half(self):
        assert estimate_diameter(cycle_graph(40)) == 20

    def test_star_small(self):
        assert estimate_diameter(star_graph(30)) == 2

    def test_lower_bound_on_road(self, small_road):
        # 24x18 grid: diameter >= rows+cols-ish even with shortcuts
        assert estimate_diameter(small_road) >= 20

"""Async serving executor: coalescing, admission control, lanes,
tenant fairness, and the simulated-clock scheduling invariants."""

import numpy as np
import pytest

from repro.graph import rmat_graph
from repro.service import (
    REJECT_QUEUE_DEPTH,
    REJECT_QUEUE_FULL,
    REJECT_TENANT_QUOTA,
    CCRequest,
    CCService,
    ServiceOptions,
    plan_for_graph,
)

#: Small distinct graphs so every job is a fresh compute.
G = {name: rmat_graph(8, 8, seed=seed)
     for name, seed in (("a", 1), ("b", 2), ("c", 3), ("d", 4))}


def _service(**kwargs):
    svc = CCService(service_options=ServiceOptions(**kwargs))
    for name, graph in G.items():
        svc.register(graph, name=name)
    return svc


class TestServiceOptions:
    @pytest.mark.parametrize("bad", [
        {"concurrency": 0}, {"num_lanes": 0}, {"max_queue_ms": -1.0},
        {"max_queue_depth": -1}, {"tenant_quota_ms": 0.0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ServiceOptions(**bad)

    def test_defaults_are_unbounded(self):
        opts = ServiceOptions()
        assert opts.concurrency == 1
        assert opts.max_queue_ms is None
        assert opts.max_queue_depth is None
        assert opts.tenant_quota_ms is None


class TestCoalescing:
    def test_identical_inflight_requests_share_one_compute(self):
        svc = _service(concurrency=1)
        reqs = [CCRequest(key="a", method="thrifty", arrival_ms=0.0)
                for _ in range(3)]
        r0, r1, r2 = svc.run_trace(reqs)
        assert not r0.coalesced
        assert r1.coalesced and r2.coalesced
        # one compute: the waiters observe the SAME result object
        assert r1.result is r0.result and r2.result is r0.result
        # and are charged the same simulated compute verbatim
        assert r1.simulated_ms == r0.simulated_ms == r2.simulated_ms
        assert svc.metrics.cache_misses == 1
        assert svc.metrics.coalesced == 2
        assert svc.metrics.cache_hits == 0
        assert svc.metrics.effective_hit_rate == pytest.approx(2 / 3)

    def test_waiters_do_no_algorithm_work(self):
        svc = _service(concurrency=1)
        svc.run_trace([CCRequest(key="a", arrival_ms=0.0)
                       for _ in range(4)])
        solo = _service()
        solo.submit(CCRequest(key="a"))
        assert svc.metrics.algorithm_work.as_dict() == \
            solo.metrics.algorithm_work.as_dict()

    def test_different_budgets_do_not_coalesce(self):
        # Mismatched budgets must not share a blown/clean outcome;
        # the duplicate is instead served by the dequeue-time cache
        # re-check once the first compute lands.
        svc = _service(concurrency=1)
        r1, r2 = svc.run_trace([
            CCRequest(key="a", method="thrifty", arrival_ms=0.0),
            CCRequest(key="a", method="thrifty", arrival_ms=0.0,
                      budget_ms=1e9),
        ])
        assert not r1.coalesced and not r2.coalesced
        assert r2.cache_hit
        assert r2.queue_delay_ms > 0.0
        assert r2.result is r1.result
        assert svc.metrics.cache_misses == 1 and svc.metrics.cache_hits == 1


class TestScheduling:
    def test_concurrency_overlaps_independent_jobs(self):
        seq = _service(concurrency=1)
        par = _service(concurrency=2)
        reqs = lambda: [CCRequest(key="a", arrival_ms=0.0),  # noqa: E731
                        CCRequest(key="b", arrival_ms=0.0)]
        s1, s2 = seq.run_trace(reqs())
        p1, p2 = par.run_trace(reqs())
        # serial: the second job waits for the first worker
        assert s2.queue_delay_ms == pytest.approx(s1.simulated_ms)
        assert seq.clock_ms == pytest.approx(
            s1.simulated_ms + s2.simulated_ms)
        # parallel: both start at t=0, makespan is the max
        assert p1.queue_delay_ms == 0.0 and p2.queue_delay_ms == 0.0
        assert par.clock_ms == pytest.approx(
            max(p1.simulated_ms, p2.simulated_ms))
        assert seq.metrics.queue_delay.summary()["count"] == 2

    def test_latency_is_queue_delay_plus_compute(self):
        svc = _service(concurrency=1)
        resp = svc.run_trace([CCRequest(key="a", arrival_ms=0.0),
                              CCRequest(key="b", arrival_ms=0.0)])[1]
        assert resp.finish_ms - resp.arrival_ms == pytest.approx(
            resp.queue_delay_ms + resp.simulated_ms)
        assert resp.start_ms == pytest.approx(
            resp.arrival_ms + resp.queue_delay_ms)

    def test_responses_in_input_order(self):
        svc = _service(concurrency=1)
        out = svc.run_trace([CCRequest(key="b", arrival_ms=5.0),
                             CCRequest(key="a", arrival_ms=0.0)])
        assert out[0].fingerprint == svc.registry.get("b").fingerprint
        assert out[1].fingerprint == svc.registry.get("a").fingerprint
        assert out[1].start_ms <= out[0].start_ms

    def test_priority_lane_drains_first(self):
        svc = _service(concurrency=1, num_lanes=2)
        blocker = CCRequest(key="a", arrival_ms=0.0)
        low = CCRequest(key="b", arrival_ms=1e-6, priority=1)
        high = CCRequest(key="c", arrival_ms=2e-6, priority=0)
        _, r_low, r_high = svc.run_trace([blocker, low, high])
        # lane 0 drains before lane 1 despite arriving later
        assert r_high.start_ms < r_low.start_ms

    def test_priority_clamped_to_lanes(self):
        svc = _service(concurrency=1, num_lanes=2)
        out = svc.run_trace([CCRequest(key="a", priority=99),
                             CCRequest(key="b", priority=-5)])
        assert all(r.status == "ok" for r in out)

    def test_tenant_fairness_interleaves(self):
        # heavy queues three jobs; light's single job is served ahead
        # of heavy's backlog (least-served-tenant pick within a lane)
        svc = _service(concurrency=1)
        heavy = [CCRequest(key=k, tenant="heavy", arrival_ms=0.0)
                 for k in ("a", "b", "c")]
        light = [CCRequest(key="d", tenant="light", arrival_ms=1e-6)]
        ra, rb, _, rd = svc.run_trace(heavy + light)
        assert rd.start_ms < rb.start_ms
        assert svc.metrics.per_tenant == {"heavy": 3, "light": 1}

    def test_sync_submit_has_no_queue_delay(self):
        svc = _service()
        resp = svc.submit(CCRequest(key="a"))
        assert resp.status == "ok"
        assert resp.queue_delay_ms == 0.0
        assert resp.start_ms == resp.arrival_ms
        assert resp.finish_ms == pytest.approx(
            resp.arrival_ms + resp.simulated_ms)


class TestAdmissionControl:
    def test_queue_depth_rejects_beyond_cap(self):
        svc = _service(concurrency=1, max_queue_depth=0)
        r1, r2, r3 = svc.run_trace([
            CCRequest(key="a", arrival_ms=0.0),
            CCRequest(key="b", arrival_ms=0.0),
            CCRequest(key="c", arrival_ms=0.0)])
        assert r1.status == "ok"
        assert r2.status == r3.status == "rejected"
        assert r2.reject_reason == REJECT_QUEUE_DEPTH
        assert r2.result is None
        assert svc.metrics.rejected == 2
        assert svc.metrics.rejected_by_reason == {REJECT_QUEUE_DEPTH: 2}

    def test_queue_ms_rejects_predicted_backlog(self):
        svc = _service(concurrency=1, max_queue_ms=1e-12)
        r1, r2 = svc.run_trace([CCRequest(key="a", arrival_ms=0.0),
                                CCRequest(key="b", arrival_ms=0.0)])
        assert r1.status == "ok"
        assert r2.status == "rejected"
        assert r2.reject_reason == REJECT_QUEUE_FULL

    def test_queue_frees_as_jobs_finish(self):
        svc = _service(concurrency=1, max_queue_depth=1)
        # b queues; c arrives after a finished, so the queue has room
        r1, r2, r3 = svc.run_trace([
            CCRequest(key="a", arrival_ms=0.0),
            CCRequest(key="b", arrival_ms=0.0),
            CCRequest(key="c", arrival_ms=1e6)])
        assert [r.status for r in (r1, r2, r3)] == ["ok"] * 3

    def test_tenant_quota_caps_outstanding_work(self):
        pred = {k: plan_for_graph(G[k]).predicted_ms for k in G}
        quota = pred["a"] + 0.5 * pred["b"]
        svc = _service(concurrency=1, tenant_quota_ms=quota)
        r1, r2, r3 = svc.run_trace([
            CCRequest(key="a", tenant="t0", arrival_ms=0.0),
            CCRequest(key="b", tenant="t0", arrival_ms=0.0),
            CCRequest(key="b", tenant="t1", arrival_ms=0.0)])
        assert r1.status == "ok"
        assert r2.status == "rejected"
        assert r2.reject_reason == REJECT_TENANT_QUOTA
        # another tenant is unaffected by t0's quota
        assert r3.status == "ok"
        # quota releases with the job: a resubmit is admitted
        assert svc.submit(CCRequest(key="c", tenant="t0")).status == "ok"

    def test_rejected_response_raises_on_num_components(self):
        svc = _service(concurrency=1, max_queue_depth=0)
        rej = svc.run_trace([CCRequest(key="a", arrival_ms=0.0),
                             CCRequest(key="b", arrival_ms=0.0)])[1]
        with pytest.raises(ValueError, match="rejected"):
            rej.num_components

    def test_coalesced_waiters_bypass_admission(self):
        # duplicates of an in-flight job add no work, so they attach
        # even when the queue is formally full
        svc = _service(concurrency=1, max_queue_depth=0)
        out = svc.run_trace([CCRequest(key="a", arrival_ms=0.0)
                             for _ in range(5)])
        assert all(r.status == "ok" for r in out)
        assert sum(r.coalesced for r in out) == 4


class TestTraceEquivalence:
    def test_trace_matches_sync_results(self):
        svc = _service(concurrency=4)
        trace = [CCRequest(key=k, arrival_ms=i * 1e-3)
                 for i, k in enumerate(("a", "b", "c", "a", "b", "d"))]
        out = svc.run_trace(trace)
        ref = _service()
        for resp in out:
            name = next(k for k in G
                        if svc.registry.get(k).fingerprint
                        == resp.fingerprint)
            direct = ref.submit(CCRequest(key=name))
            assert np.array_equal(
                np.unique(direct.result.labels, return_inverse=True)[1],
                np.unique(resp.result.labels, return_inverse=True)[1])

    def test_trace_error_resets_scheduler(self):
        svc = _service(concurrency=2)
        with pytest.raises(ValueError, match="unknown method"):
            svc.run_trace([CCRequest(key="a", arrival_ms=0.0),
                           CCRequest(key="b", method="magic",
                                     arrival_ms=0.0)])
        # the service stays usable after the aborted trace
        out = svc.run_trace([CCRequest(key="c"), CCRequest(key="d")])
        assert all(r.status == "ok" for r in out)

"""Tests for the trial protocol and report generator."""

import pytest

from repro.experiments import TrialStats, generate_report, run_trials
from repro.graph import load


@pytest.fixture(scope="module")
def small_graph():
    return load("Pkc", 0.15)


class TestRunTrials:
    def test_verified_trials(self, small_graph):
        st = run_trials(small_graph, "thrifty", num_trials=3)
        assert st.num_trials == 3
        assert st.verified
        assert st.mean_ms > 0

    def test_deterministic_algorithms_zero_variance(self, small_graph):
        st = run_trials(small_graph, "dolp", num_trials=3)
        assert st.stdev_ms == 0.0
        assert st.min_ms == st.max_ms

    def test_seeded_algorithms_get_distinct_seeds(self, small_graph):
        st = run_trials(small_graph, "jt", num_trials=4, seed_base=10)
        assert st.num_trials == 4
        # Distinct seeds can change find-path work, but not by much;
        # the important property is every trial verified.
        assert all(t > 0 for t in st.trials)

    def test_bad_trial_count(self, small_graph):
        with pytest.raises(ValueError):
            run_trials(small_graph, "thrifty", num_trials=0)

    def test_iterations_recorded(self, small_graph):
        st = run_trials(small_graph, "thrifty", num_trials=2)
        assert len(st.iterations) == 2
        assert st.iterations[0] == st.iterations[1]

    def test_stats_empty(self):
        st = TrialStats(method="x", machine="SkylakeX")
        assert st.mean_ms == 0.0
        assert st.stdev_ms == 0.0


class TestReport:
    def test_generates_markdown(self):
        text = generate_report(scale=0.08)
        assert text.startswith("# Thrifty reproduction report")
        for section in ("Figure 1", "Table I", "Table IV", "Table V",
                        "Figure 5", "Table VII", "Figures 9/10"):
            assert section in text

    def test_cli_report_command(self, tmp_path):
        from repro.cli import main
        out = tmp_path / "r.md"
        assert main(["report", "--out", str(out),
                     "--scale", "0.08"]) == 0
        assert out.read_text().startswith("# Thrifty")

"""Out-of-core tier: streamed Thrifty runs, planner fit, service wiring."""

import numpy as np
import pytest

from repro.core import thrifty_cc, validate_extras
from repro.graph import load, rmat_graph
from repro.options import ThriftyOptions
from repro.parallel.machine import MACHINES
from repro.service import (
    CCRequest,
    CCService,
    LP_METHOD,
    RouterFeedback,
    edge_array_bytes,
    plan,
    replan,
    runner_up,
)
from repro.service.registry import probe_graph
from repro.storage import BlockedGraph, write_blocked

SPEC = MACHINES["SkylakeX"]


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(10, 8, seed=11)


@pytest.fixture(scope="module")
def resident_result(graph):
    return thrifty_cc(graph)


def tight_budget(graph):
    """Under a quarter of the edge-array bytes — forces real eviction."""
    return max(4096, graph.indices.nbytes // 5)


class TestStreamedEngine:
    def test_blocked_graph_bit_identical(self, graph, resident_result,
                                         tmp_path):
        path = tmp_path / "g.rbcsr"
        write_blocked(graph, path, edges_per_block=512)
        bg = BlockedGraph.open(path, resident_bytes=tight_budget(graph))
        try:
            streamed = thrifty_cc(bg)
        finally:
            bg.close()
        assert np.array_equal(streamed.labels, resident_result.labels)
        assert streamed.num_iterations == resident_result.num_iterations
        assert streamed.counters() == resident_result.counters()

    def test_io_extras_schema(self, graph, tmp_path):
        path = tmp_path / "g.rbcsr"
        write_blocked(graph, path, edges_per_block=512)
        bg = BlockedGraph.open(path, resident_bytes=tight_budget(graph))
        try:
            result = thrifty_cc(bg)
        finally:
            bg.close()
        io = validate_extras(result.extras)["io"]
        assert io["blocks_read"] > 0
        assert io["bytes_read"] > 0
        assert io["modeled_ms"] > 0.0
        assert io["disk"] == "nvme-ssd"

    def test_peak_resident_within_budget(self, graph, tmp_path):
        budget = tight_budget(graph)
        path = tmp_path / "g.rbcsr"
        write_blocked(graph, path, edges_per_block=256)
        bg = BlockedGraph.open(path, resident_bytes=budget)
        try:
            result = thrifty_cc(bg)
        finally:
            bg.close()
        io = result.extras["io"]
        assert io["peak_resident_bytes"] <= budget
        assert io["blocks_reread"] > 0     # the budget actually bit

    def test_spool_path(self, graph, resident_result):
        budget = tight_budget(graph)
        result = thrifty_cc(graph, storage="out_of_core",
                            resident_bytes=budget)
        assert np.array_equal(result.labels, resident_result.labels)
        io = result.extras["io"]
        assert io["peak_resident_bytes"] <= budget
        assert io["budget_bytes"] == budget

    def test_resident_run_has_no_io_extras(self, resident_result):
        assert "io" not in resident_result.extras

    def test_converged_block_skipping(self, graph, tmp_path):
        """Fused pulls skip converged blocks: >=2x fewer fetches than
        the reference strategy that gathers every block every pull."""
        budget = tight_budget(graph)
        fetches = {}
        for fused in (True, False):
            path = tmp_path / f"g{fused}.rbcsr"
            write_blocked(graph, path, edges_per_block=256)
            bg = BlockedGraph.open(path, resident_bytes=budget)
            try:
                result = thrifty_cc(bg, fuse_pull_blocks=fused)
            finally:
                bg.close()
            fetches[fused] = (result.extras["io"]["blocks_read"]
                              + result.extras["io"]["blocks_reread"])
        assert fetches[False] >= 2 * fetches[True]


class TestPlannerFit:
    def test_edge_array_bytes(self, graph):
        probes = probe_graph(graph)
        assert edge_array_bytes(probes) == graph.num_edges * 4

    def test_over_budget_routes_out_of_core(self, graph):
        probes = probe_graph(graph)
        route = plan(probes, SPEC,
                     resident_byte_budget=edge_array_bytes(probes) // 4)
        assert route.storage == "out_of_core"
        assert route.method == LP_METHOD
        assert route.family == "lp"

    def test_under_budget_stays_resident(self, graph):
        probes = probe_graph(graph)
        route = plan(probes, SPEC,
                     resident_byte_budget=edge_array_bytes(probes) * 10)
        assert route.storage == "resident"

    def test_no_budget_stays_resident(self, graph):
        probes = probe_graph(graph)
        assert plan(probes, SPEC).storage == "resident"

    def test_distributed_cliff_wins_over_fit(self, graph):
        probes = probe_graph(graph)
        route = plan(probes, SPEC, single_node_edge_budget=1,
                     resident_byte_budget=1)
        assert route.family == "distributed"
        assert route.storage == "resident"

    def test_replan_preserves_out_of_core(self, graph):
        probes = probe_graph(graph)
        base = plan(probes, SPEC, resident_byte_budget=1)
        feedback = RouterFeedback()
        # Teach the posterior that UF is much faster -- a fit decision
        # must not flip anyway (UF would thrash the block cache).
        for _ in range(8):
            feedback.observe("g", "afforest", 100.0, 1.0,
                             machine=SPEC.name)
            feedback.observe("g", base.method, 100.0, 10_000.0,
                             machine=SPEC.name)
        route = replan(base, feedback, "g")
        assert route.storage == "out_of_core"
        assert route.family == "lp"

    def test_runner_up_keeps_out_of_core_route(self, graph):
        probes = probe_graph(graph)
        base = plan(probes, SPEC, resident_byte_budget=1)
        assert runner_up(base) is base


class TestServicePath:
    def test_auto_routes_streamed_run(self, graph):
        svc = CCService(resident_byte_budget=tight_budget(graph))
        resp = svc.submit(CCRequest(graph=graph, method="auto"))
        assert resp.plan is not None
        assert resp.plan.storage == "out_of_core"
        io = resp.result.extras["io"]
        assert io["peak_resident_bytes"] <= tight_budget(graph)
        # The disk charge joins the simulated time like the fabric
        # charge does on the distributed tier.
        assert resp.simulated_ms >= io["modeled_ms"]

    def test_streamed_result_matches_resident_service(self, graph):
        budget = tight_budget(graph)
        streamed = CCService(resident_byte_budget=budget).submit(
            CCRequest(graph=graph, method="auto"))
        resident = CCService().submit(
            CCRequest(graph=graph, method="thrifty",
                      options=ThriftyOptions()))
        assert np.array_equal(streamed.result.labels,
                              resident.result.labels)

    def test_large_budget_stays_resident(self, graph):
        svc = CCService(resident_byte_budget=graph.indices.nbytes * 100)
        resp = svc.submit(CCRequest(graph=graph, method="auto"))
        assert resp.plan.storage == "resident"
        assert "io" not in resp.result.extras

    def test_explicit_storage_option(self, graph):
        svc = CCService()
        resp = svc.submit(CCRequest(
            graph=graph, method="thrifty",
            options=ThriftyOptions(storage="out_of_core",
                                   resident_bytes=tight_budget(graph))))
        assert "io" in resp.result.extras

    def test_register_path_and_run(self, graph, tmp_path):
        budget = tight_budget(graph)
        path = tmp_path / "g.rbcsr"
        write_blocked(graph, path, edges_per_block=512)
        svc = CCService(resident_byte_budget=budget)
        entry = svc.register_path(path, name="disk-graph")
        resp = svc.submit(CCRequest(key="disk-graph", method="auto"))
        assert resp.fingerprint == entry.fingerprint
        assert "io" in resp.result.extras
        assert np.array_equal(resp.result.labels,
                              thrifty_cc(graph).labels)

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            CCService(resident_byte_budget=0)

    def test_load_auto_table_storage_column(self, graph):
        from repro.experiments.routing import auto_routing_table
        rows = auto_routing_table(scale=0.2, datasets=("Pkc",),
                                  resident_byte_budget=1)
        assert rows[0]["storage"] == "out_of_core"
        rows = auto_routing_table(scale=0.2, datasets=("Pkc",))
        assert rows[0]["storage"] == "resident"

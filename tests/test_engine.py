"""Tests for the LP engine: DO-LP, unified, Thrifty, and ablations."""

import itertools

import numpy as np
import pytest

from repro.core import (
    LPOptions,
    dolp_cc,
    label_propagation_cc,
    thrifty_cc,
    unified_dolp_cc,
)
from repro.graph import CSRGraph, component_labels_reference
from repro.graph.generators import path_graph, star_graph
from repro.instrument import Direction
from repro.validate import same_partition, validate_against_reference


class TestCorrectness:
    def test_dolp_on_zoo(self, zoo_graph):
        validate_against_reference(zoo_graph, dolp_cc(zoo_graph))

    def test_thrifty_on_zoo(self, zoo_graph):
        validate_against_reference(zoo_graph, thrifty_cc(zoo_graph))

    def test_unified_on_zoo(self, zoo_graph):
        validate_against_reference(zoo_graph, unified_dolp_cc(zoo_graph))

    def test_all_ablation_combinations_correct(self, small_skewed):
        """Every subset of the four optimizations yields correct CC."""
        ref = component_labels_reference(small_skewed)
        for flags in itertools.product([False, True], repeat=4):
            unified, zero_conv, planting, push = flags
            opts = LPOptions(
                unified_labels=unified,
                zero_convergence=zero_conv,
                zero_planting=planting,
                initial_push=push,
                count_only_pulls=True,
                threshold=0.02,
                num_threads=4,
                algorithm_name=f"ablation-{flags}",
            )
            result = label_propagation_cc(small_skewed, opts)
            assert same_partition(result.labels, ref), flags

    def test_empty_graph(self):
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        result = thrifty_cc(g)
        assert result.labels.size == 0
        assert result.num_iterations == 0

    def test_single_vertex(self):
        g = CSRGraph(np.array([0, 0]), np.empty(0, np.int64))
        result = thrifty_cc(g)
        assert result.num_components == 1

    def test_race_injection_still_correct(self, small_skewed):
        result = thrifty_cc(small_skewed, race_rate=0.5)
        validate_against_reference(small_skewed, result)

    def test_thread_counts_do_not_change_components(self, small_skewed):
        ref = None
        for threads in (1, 2, 8, 32):
            r = thrifty_cc(small_skewed, num_threads=threads)
            if ref is None:
                ref = r.labels
            assert same_partition(r.labels, ref)


class TestTraceShape:
    def test_thrifty_starts_with_initial_push(self, small_skewed):
        trace = thrifty_cc(small_skewed).trace
        assert trace.iterations[0].direction == Direction.INITIAL_PUSH
        assert trace.iterations[0].active_vertices == 1

    def test_dolp_starts_with_pull(self, small_skewed):
        trace = dolp_cc(small_skewed).trace
        assert trace.iterations[0].direction == Direction.PULL
        assert trace.iterations[0].active_vertices == \
            small_skewed.num_vertices

    def test_thrifty_pull_frontier_before_pushes(self, small_skewed):
        dirs = thrifty_cc(small_skewed).trace.directions()
        if Direction.PUSH in dirs:
            first_push = dirs.index(Direction.PUSH)
            assert Direction.PULL_FRONTIER in dirs[:first_push] or \
                Direction.INITIAL_PUSH in dirs[:first_push]

    def test_convergence_curve_monotone(self, small_skewed):
        for fn in (dolp_cc, thrifty_cc):
            curve = fn(small_skewed).trace.convergence_curve()
            assert all(b >= a - 1e-12
                       for a, b in zip(curve, curve[1:]))
            assert curve[-1] == pytest.approx(1.0)

    def test_setup_counters_populated(self, small_skewed):
        trace = thrifty_cc(small_skewed).trace
        assert trace.setup_counters.label_writes >= \
            small_skewed.num_vertices

    def test_densities_recorded(self, small_skewed):
        trace = dolp_cc(small_skewed).trace
        assert trace.iterations[0].density > 1.0   # full frontier
        assert all(r.density >= 0 for r in trace.iterations)

    def test_iteration_counters_sum_to_total(self, small_skewed):
        result = thrifty_cc(small_skewed)
        total = result.counters()
        per_iter = sum(r.counters.edges_processed
                       for r in result.trace.iterations)
        assert total.edges_processed == per_iter


class TestSemantics:
    def test_zero_convergence_reduces_edges(self, small_skewed):
        with_zc = thrifty_cc(small_skewed)
        without = thrifty_cc(small_skewed, zero_convergence=False)
        assert with_zc.counters().edges_processed < \
            without.counters().edges_processed

    def test_thrifty_processes_far_fewer_edges_than_dolp(
            self, small_skewed):
        t = thrifty_cc(small_skewed).counters().edges_processed
        d = dolp_cc(small_skewed).counters().edges_processed
        assert t < 0.25 * d

    def test_unified_never_more_iterations_than_dolp(self):
        """On id-ascending paths the unified sweep converges faster."""
        g = path_graph(200)
        u = unified_dolp_cc(g).num_iterations
        d = dolp_cc(g).num_iterations
        assert u < d

    def test_dolp_sync_pass_counted(self, small_skewed):
        d = dolp_cc(small_skewed).counters()
        u = unified_dolp_cc(small_skewed).counters()
        # DO-LP pays one labels-array copy per iteration.
        assert d.label_writes > u.label_writes

    def test_star_converges_after_initial_push(self):
        g = star_graph(50)
        result = thrifty_cc(g)
        # Push from the hub reaches every leaf; one confirming pull.
        assert result.num_iterations <= 3
        rec0 = result.trace.iterations[0]
        assert rec0.changed_vertices == 50

    def test_threshold_affects_schedule(self, small_skewed):
        lo = thrifty_cc(small_skewed, threshold=0.001)
        hi = thrifty_cc(small_skewed, threshold=0.5)
        assert same_partition(lo.labels, hi.labels)
        # A high threshold treats more frontiers as sparse -> fewer
        # pull iterations, more pushes.
        lo_pulls = sum(1 for d in lo.trace.directions()
                       if d in (Direction.PULL, Direction.PULL_FRONTIER))
        hi_pulls = sum(1 for d in hi.trace.directions()
                       if d in (Direction.PULL, Direction.PULL_FRONTIER))
        assert hi_pulls <= lo_pulls


class TestOptionsValidation:
    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            LPOptions(threshold=0.0)
        with pytest.raises(ValueError):
            LPOptions(threshold=1.5)

    def test_thread_bounds(self):
        with pytest.raises(ValueError):
            LPOptions(num_threads=0)

    def test_block_size_bounds(self):
        with pytest.raises(ValueError):
            LPOptions(block_size=0)

    def test_max_iterations_guard(self):
        g = path_graph(50)
        with pytest.raises(RuntimeError, match="max_iterations"):
            label_propagation_cc(
                g, LPOptions(max_iterations=2, algorithm_name="t"))

    def test_race_rate_bounds(self):
        with pytest.raises(ValueError, match="race_rate"):
            LPOptions(race_rate=-0.1)
        with pytest.raises(ValueError, match="race_rate"):
            LPOptions(race_rate=1.0)
        LPOptions(race_rate=0.0)          # boundaries that are legal
        LPOptions(race_rate=0.999)

    def test_max_iterations_bounds(self):
        with pytest.raises(ValueError, match="max_iterations"):
            LPOptions(max_iterations=0)
        with pytest.raises(ValueError, match="max_iterations"):
            LPOptions(max_iterations=-3)
        LPOptions(max_iterations=1)

    def test_partitions_per_thread_bounds(self):
        with pytest.raises(ValueError, match="partitions_per_thread"):
            LPOptions(partitions_per_thread=0)
        LPOptions(partitions_per_thread=1)

    def test_frontier_switch_density_bounds(self):
        with pytest.raises(ValueError, match="frontier_switch_density"):
            LPOptions(frontier_switch_density=0.0)
        with pytest.raises(ValueError, match="frontier_switch_density"):
            LPOptions(frontier_switch_density=1.5)
        LPOptions(frontier_switch_density=1.0)

    def test_with_machine_retargets(self):
        from repro.parallel import EPYC
        opts = LPOptions().with_machine(EPYC)
        assert opts.machine is EPYC
        assert opts.num_threads == 128


class TestPushOwnership:
    """Push chunks run on the thread owning their partition
    (``Partitioning.owner_of``), not ``chunk[0] % num_threads``."""

    @staticmethod
    def _engine(graph, **overrides):
        from repro.core.engine import _Engine
        base = dict(num_threads=2, partitions_per_thread=1,
                    block_size=4, zero_planting=False,
                    track_convergence=False)
        base.update(overrides)
        return _Engine(graph, LPOptions(**base), "")

    @staticmethod
    def _skewed():
        # Hub 0 swallows most edges, so the second partition starts at
        # a low vertex id: partition ownership and id-modulo disagree.
        from tests.conftest import graph_from_pairs
        pairs = [(0, i) for i in range(1, 7)] + [(7, 8), (8, 9)]
        return graph_from_pairs(pairs, 10)

    def test_chunk_lands_on_partition_owner(self):
        import numpy as np
        from repro.parallel import Frontier
        g = self._skewed()
        eng = self._engine(g)
        part = eng.partitioning
        p = part.partition_of(8)
        owner = part.owner_of(p)
        # The scenario must discriminate the policies, or the test is
        # vacuous: the buggy owner (8 % 2 == 0) differs.
        assert owner == 1 and 8 % 2 == 0
        frontier = Frontier(g.num_vertices)
        frontier.set_many(g, np.array([8]))
        eng.push(frontier)
        # Vertex 8's push lowers 9; the batch must sit on thread 1.
        assert eng.last_worklists.thread_vertices(owner).tolist() == [9]
        assert eng.last_worklists.thread_vertices(0).size == 0
        assert eng.last_drain_order.tolist() == [9]

    def test_drain_order_matches_ownership_replay(self):
        """Pin the full drain order of a push on a skewed graph
        against an independent replay using partition ownership, and
        check the seed's id-modulo policy would give a different
        drain."""
        import numpy as np
        from tests.conftest import graph_from_pairs
        from repro.core.kernels import concat_adjacency
        from repro.parallel import (Frontier, LocalWorklists,
                                    batch_atomic_min)
        # Hub 0 fills the first partition by itself; every chain
        # vertex lives in partition 1 whatever its id parity, so the
        # two ownership policies scatter the chain pushes onto
        # different threads and the steals interleave differently.
        pairs = [(0, i) for i in range(1, 13)] + \
            [(13, 14), (14, 15), (15, 16), (16, 17), (18, 19), (19, 20)]
        g = graph_from_pairs(pairs, 21)
        eng = self._engine(g, block_size=1)
        part = eng.partitioning
        active = np.array([13, 14, 18])
        frontier = Frontier(g.num_vertices)
        frontier.set_many(g, active)

        def replay(owner_fn):
            labels = np.arange(g.num_vertices, dtype=np.int64)
            wl = LocalWorklists(g.num_vertices, 2)
            for lo in range(active.size):
                chunk = active[lo:lo + 1]
                targets, deg = concat_adjacency(g, chunk)
                if targets.size == 0:
                    continue
                values = np.repeat(labels[chunk], deg)
                changed = batch_atomic_min(
                    labels, targets.astype(np.int64), values)
                if changed.size:
                    wl.push_batch(owner_fn(int(chunk[0])), changed)
            return wl.drain_order()

        expected = replay(lambda v: part.owner_of(part.partition_of(v)))
        buggy = replay(lambda v: v % 2)
        assert not np.array_equal(expected, buggy)   # test has teeth
        eng.push(frontier)
        assert np.array_equal(eng.last_drain_order, expected)


class TestPushChunkStraddle:
    """A push chunk must never straddle a partition boundary.

    The seed split the active list at ``block_size`` strides only, so
    a chunk spanning two partitions was attributed wholly — work,
    thread ownership, and the resulting worklist batch — to the
    partition containing its *first* vertex.  The engine now cuts the
    list at partition bounds first, so each side lands on its own
    owner (and, since straddling chunks also committed their edges in
    one atomic-min batch, the intra-iteration label snapshot each
    chunk reads changes too).
    """

    @pytest.fixture(params=[True, False], ids=["fused", "sequential"])
    def engine(self, request):
        # path_graph(10) edge-balances into [0, 5) and [5, 10): the
        # frontier {4, 5} straddles the boundary inside one block.
        g = path_graph(10)
        opts = LPOptions(num_threads=2, partitions_per_thread=1,
                         block_size=4, zero_planting=False,
                         track_convergence=False,
                         fuse_push=request.param)
        from repro.core.engine import _Engine
        eng = _Engine(g, opts, "")
        assert eng.partitioning.bounds.tolist() == [0, 5, 10]
        return g, eng

    def test_straddling_frontier_charges_both_partitions(self, engine):
        from repro.parallel import Frontier
        g, eng = engine
        frontier = Frontier(g.num_vertices)
        frontier.set_many(g, np.array([4, 5]))
        eng.push(frontier)
        # One chunk per side: vertex 4 (1 vertex + 2 edges) on
        # partition 0, vertex 5 likewise on partition 1.  The seed
        # billed a single chunk [4, 5] entirely to partition 0
        # (work [6, 0]).
        assert eng._last_work.tolist() == [3.0, 3.0]

    def test_straddling_frontier_batches_on_both_owners(self, engine):
        from repro.parallel import Frontier
        g, eng = engine
        frontier = Frontier(g.num_vertices)
        frontier.set_many(g, np.array([4, 5]))
        eng.push(frontier)
        wl = eng.last_worklists
        # Chunk [4] lowers 5 and enqueues it on thread 0; chunk [5]
        # then reads 5's *updated* label (4) and lowers 6 onto thread
        # 1.  The seed produced one thread-0 batch [5, 6] and left
        # labels[6] at 5.
        assert [b.tolist() for b in wl.thread_batches(0)] == [[5]]
        assert [b.tolist() for b in wl.thread_batches(1)] == [[6]]
        assert eng.labels[5] == 4 and eng.labels[6] == 4
        assert eng.last_drain_order.tolist() == [5, 6]


class TestMakespan:
    def test_every_iteration_has_positive_makespan(self, small_skewed):
        result = thrifty_cc(small_skewed)
        spans = result.trace.makespans()
        assert len(spans) == result.num_iterations
        assert all(s > 0 for s in spans)
        assert result.trace.total_makespan() == sum(spans)

    def test_makespan_bounded_by_total_work(self, small_skewed):
        # The makespan of a parallel-for can never exceed its serial
        # work (vertices scanned + edges processed) and never beat a
        # perfect T-way split of it.
        result = thrifty_cc(small_skewed, num_threads=4)
        for rec in result.trace.iterations:
            c = rec.counters
            serial = c.vertex_reads + c.edges_processed
            if serial == 0:
                continue
            assert rec.makespan <= serial
            assert rec.makespan >= serial / 4 - 1e-9

    def test_makespan_default_zero_for_other_algorithms(self, path10):
        from repro import connected_components
        result = connected_components(path10, "connectit")
        assert all(r.makespan == 0.0 for r in result.trace.iterations)


class TestPullFusionIdentity:
    """fuse_pull_blocks only changes wall-clock: labels, counters and
    traces stay bit-identical to the per-block reference strategy."""

    OPTION_GRID = [
        {},
        {"zero_convergence": False},
        {"initial_push": False},
        {"zero_planting": False},
        {"count_only_pulls": False},
        {"threshold": 1.0},
        {"block_size": 1},
        {"block_size": 7},
        {"num_threads": 4, "partitions_per_thread": 2},
    ]

    def test_bit_identical_runs(self, small_skewed):
        for overrides in self.OPTION_GRID:
            results = [
                label_propagation_cc(
                    small_skewed,
                    LPOptions(fuse_pull_blocks=fuse,
                              track_convergence=False, **overrides))
                for fuse in (True, False)]
            fused, ref = results
            assert np.array_equal(fused.labels, ref.labels), overrides
            assert fused.num_iterations == ref.num_iterations, overrides
            for a, b in zip(fused.trace.iterations, ref.trace.iterations):
                assert a.direction == b.direction, overrides
                assert a.counters.as_dict() == b.counters.as_dict(), \
                    (overrides, a.index)
                assert a.makespan == b.makespan, (overrides, a.index)

    def test_bit_identical_on_zoo(self, zoo_graph):
        results = [
            label_propagation_cc(
                zoo_graph, LPOptions(fuse_pull_blocks=fuse,
                                     track_convergence=False))
            for fuse in (True, False)]
        fused, ref = results
        assert np.array_equal(fused.labels, ref.labels)
        for a, b in zip(fused.trace.iterations, ref.trace.iterations):
            assert a.counters.as_dict() == b.counters.as_dict()

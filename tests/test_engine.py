"""Tests for the LP engine: DO-LP, unified, Thrifty, and ablations."""

import itertools

import numpy as np
import pytest

from repro.core import (
    LPOptions,
    dolp_cc,
    label_propagation_cc,
    thrifty_cc,
    unified_dolp_cc,
)
from repro.graph import CSRGraph, component_labels_reference
from repro.graph.generators import path_graph, star_graph
from repro.instrument import Direction
from repro.validate import same_partition, validate_against_reference


class TestCorrectness:
    def test_dolp_on_zoo(self, zoo_graph):
        validate_against_reference(zoo_graph, dolp_cc(zoo_graph))

    def test_thrifty_on_zoo(self, zoo_graph):
        validate_against_reference(zoo_graph, thrifty_cc(zoo_graph))

    def test_unified_on_zoo(self, zoo_graph):
        validate_against_reference(zoo_graph, unified_dolp_cc(zoo_graph))

    def test_all_ablation_combinations_correct(self, small_skewed):
        """Every subset of the four optimizations yields correct CC."""
        ref = component_labels_reference(small_skewed)
        for flags in itertools.product([False, True], repeat=4):
            unified, zero_conv, planting, push = flags
            opts = LPOptions(
                unified_labels=unified,
                zero_convergence=zero_conv,
                zero_planting=planting,
                initial_push=push,
                count_only_pulls=True,
                threshold=0.02,
                num_threads=4,
                algorithm_name=f"ablation-{flags}",
            )
            result = label_propagation_cc(small_skewed, opts)
            assert same_partition(result.labels, ref), flags

    def test_empty_graph(self):
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        result = thrifty_cc(g)
        assert result.labels.size == 0
        assert result.num_iterations == 0

    def test_single_vertex(self):
        g = CSRGraph(np.array([0, 0]), np.empty(0, np.int64))
        result = thrifty_cc(g)
        assert result.num_components == 1

    def test_race_injection_still_correct(self, small_skewed):
        result = thrifty_cc(small_skewed, race_rate=0.5)
        validate_against_reference(small_skewed, result)

    def test_thread_counts_do_not_change_components(self, small_skewed):
        ref = None
        for threads in (1, 2, 8, 32):
            r = thrifty_cc(small_skewed, num_threads=threads)
            if ref is None:
                ref = r.labels
            assert same_partition(r.labels, ref)


class TestTraceShape:
    def test_thrifty_starts_with_initial_push(self, small_skewed):
        trace = thrifty_cc(small_skewed).trace
        assert trace.iterations[0].direction == Direction.INITIAL_PUSH
        assert trace.iterations[0].active_vertices == 1

    def test_dolp_starts_with_pull(self, small_skewed):
        trace = dolp_cc(small_skewed).trace
        assert trace.iterations[0].direction == Direction.PULL
        assert trace.iterations[0].active_vertices == \
            small_skewed.num_vertices

    def test_thrifty_pull_frontier_before_pushes(self, small_skewed):
        dirs = thrifty_cc(small_skewed).trace.directions()
        if Direction.PUSH in dirs:
            first_push = dirs.index(Direction.PUSH)
            assert Direction.PULL_FRONTIER in dirs[:first_push] or \
                Direction.INITIAL_PUSH in dirs[:first_push]

    def test_convergence_curve_monotone(self, small_skewed):
        for fn in (dolp_cc, thrifty_cc):
            curve = fn(small_skewed).trace.convergence_curve()
            assert all(b >= a - 1e-12
                       for a, b in zip(curve, curve[1:]))
            assert curve[-1] == pytest.approx(1.0)

    def test_setup_counters_populated(self, small_skewed):
        trace = thrifty_cc(small_skewed).trace
        assert trace.setup_counters.label_writes >= \
            small_skewed.num_vertices

    def test_densities_recorded(self, small_skewed):
        trace = dolp_cc(small_skewed).trace
        assert trace.iterations[0].density > 1.0   # full frontier
        assert all(r.density >= 0 for r in trace.iterations)

    def test_iteration_counters_sum_to_total(self, small_skewed):
        result = thrifty_cc(small_skewed)
        total = result.counters()
        per_iter = sum(r.counters.edges_processed
                       for r in result.trace.iterations)
        assert total.edges_processed == per_iter


class TestSemantics:
    def test_zero_convergence_reduces_edges(self, small_skewed):
        with_zc = thrifty_cc(small_skewed)
        without = thrifty_cc(small_skewed, zero_convergence=False)
        assert with_zc.counters().edges_processed < \
            without.counters().edges_processed

    def test_thrifty_processes_far_fewer_edges_than_dolp(
            self, small_skewed):
        t = thrifty_cc(small_skewed).counters().edges_processed
        d = dolp_cc(small_skewed).counters().edges_processed
        assert t < 0.25 * d

    def test_unified_never_more_iterations_than_dolp(self):
        """On id-ascending paths the unified sweep converges faster."""
        g = path_graph(200)
        u = unified_dolp_cc(g).num_iterations
        d = dolp_cc(g).num_iterations
        assert u < d

    def test_dolp_sync_pass_counted(self, small_skewed):
        d = dolp_cc(small_skewed).counters()
        u = unified_dolp_cc(small_skewed).counters()
        # DO-LP pays one labels-array copy per iteration.
        assert d.label_writes > u.label_writes

    def test_star_converges_after_initial_push(self):
        g = star_graph(50)
        result = thrifty_cc(g)
        # Push from the hub reaches every leaf; one confirming pull.
        assert result.num_iterations <= 3
        rec0 = result.trace.iterations[0]
        assert rec0.changed_vertices == 50

    def test_threshold_affects_schedule(self, small_skewed):
        lo = thrifty_cc(small_skewed, threshold=0.001)
        hi = thrifty_cc(small_skewed, threshold=0.5)
        assert same_partition(lo.labels, hi.labels)
        # A high threshold treats more frontiers as sparse -> fewer
        # pull iterations, more pushes.
        lo_pulls = sum(1 for d in lo.trace.directions()
                       if d in (Direction.PULL, Direction.PULL_FRONTIER))
        hi_pulls = sum(1 for d in hi.trace.directions()
                       if d in (Direction.PULL, Direction.PULL_FRONTIER))
        assert hi_pulls <= lo_pulls


class TestOptionsValidation:
    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            LPOptions(threshold=0.0)
        with pytest.raises(ValueError):
            LPOptions(threshold=1.5)

    def test_thread_bounds(self):
        with pytest.raises(ValueError):
            LPOptions(num_threads=0)

    def test_block_size_bounds(self):
        with pytest.raises(ValueError):
            LPOptions(block_size=0)

    def test_max_iterations_guard(self):
        g = path_graph(50)
        with pytest.raises(RuntimeError, match="max_iterations"):
            label_propagation_cc(
                g, LPOptions(max_iterations=2, algorithm_name="t"))

    def test_with_machine_retargets(self):
        from repro.parallel import EPYC
        opts = LPOptions().with_machine(EPYC)
        assert opts.machine is EPYC
        assert opts.num_threads == 128

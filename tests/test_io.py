"""Tests for edge-list text and npz serialization."""

import io

import numpy as np
import pytest

from repro.graph import (
    build_graph,
    from_pairs,
    load,
    save_csr_npz,
    save_edge_list_text,
)
from repro.graph.io import _load_csr_npz, _load_edge_list_text


class TestTextFormat:
    def test_roundtrip(self, tmp_path):
        e = from_pairs([(0, 1), (2, 3), (1, 3)])
        path = tmp_path / "g.txt"
        save_edge_list_text(e, path)
        e2 = _load_edge_list_text(path)
        assert np.array_equal(np.sort(e.src), np.sort(e2.src))
        assert e2.num_edges == 3

    def test_header_written_as_comment(self, tmp_path):
        e = from_pairs([(0, 1)])
        path = tmp_path / "g.txt"
        save_edge_list_text(e, path, header="hello\nworld")
        text = path.read_text()
        assert text.startswith("# hello\n# world\n")

    def test_comments_and_blank_lines_skipped(self):
        buf = io.StringIO("# comment\n\n% also comment\n0 1\n2 3\n")
        e = _load_edge_list_text(buf)
        assert e.num_edges == 2

    def test_extra_columns_tolerated(self):
        buf = io.StringIO("0 1 17.5\n")   # weighted lists keep working
        e = _load_edge_list_text(buf)
        assert e.num_edges == 1

    def test_malformed_line_raises(self):
        buf = io.StringIO("0\n")
        with pytest.raises(ValueError, match="line 1"):
            _load_edge_list_text(buf)

    def test_empty_file(self):
        e = _load_edge_list_text(io.StringIO(""))
        assert e.num_edges == 0

    def test_explicit_num_vertices(self):
        e = _load_edge_list_text(io.StringIO("0 1\n"), num_vertices=9)
        assert e.num_vertices == 9


class TestNpzFormat:
    def test_roundtrip_lossless(self, tmp_path):
        g = build_graph(from_pairs([(0, 1), (1, 2), (0, 2)]))
        path = tmp_path / "g.npz"
        save_csr_npz(g, path)
        g2 = _load_csr_npz(path)
        assert np.array_equal(g.indptr, g2.indptr)
        assert np.array_equal(g.indices, g2.indices)


class TestLoadGraph:
    def test_dispatch_by_extension(self, tmp_path):
        g = build_graph(from_pairs([(0, 1), (1, 2)]))
        npz = tmp_path / "g.npz"
        txt = tmp_path / "g.txt"
        save_csr_npz(g, npz)
        save_edge_list_text(g.to_edge_list(), txt)
        assert load(npz).num_vertices == 3
        assert load(txt).num_vertices == 3

    def test_text_load_normalizes(self, tmp_path):
        txt = tmp_path / "g.txt"
        txt.write_text("0 1\n0 1\n1 0\n2 2\n")
        g = load(txt)
        # dedup + self-loop removal + symmetrization
        assert g.num_undirected_edges == 1

"""The measured-cost feedback loop: posterior, routing, recovery.

Covers the RouterFeedback store itself (EWMA math, clamping, LRU
bound, invalidation), cold-start bit-identity of the corrected
planner, misprediction recovery through the full service (a poisoned
probe converges to the measured winner within a handful of
observations), feedback lifecycle across `GraphRegistry.mutate`, the
deterministic exploration policy, and the rejection-invariant metrics
rates (satellite regression for the `record_rejection` deflation bug).
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.graph import rmat_graph
from repro.graph import load
from repro.options import ServiceOptions
from repro.service import (
    LP_METHOD,
    UF_METHOD,
    CCRequest,
    CCService,
    GraphRegistry,
    RouterFeedback,
    ServiceMetrics,
    delta_feedback_key,
    method_family,
    plan,
    replan,
    runner_up,
)
from repro.service.metrics import MISPREDICTION_RATIO


@pytest.fixture(scope="module")
def road():
    return load("GBRd", 0.05)


@pytest.fixture(scope="module")
def skewed():
    return rmat_graph(9, 8, seed=11)


def _poison_diameter(service, entry, diameter=3):
    """Feed the planner a deliberately wrong probe: a short diameter
    makes LP's wavefront look cheap, routing a road graph to Thrifty
    (the measured loser)."""
    entry._probes = replace(entry.probes, diameter=diameter)
    service._plan_memo.pop(entry.fingerprint, None)


class TestRouterFeedback:
    def test_prior_correction_is_one(self):
        fb = RouterFeedback()
        assert fb.correction("fp", "thrifty") == 1.0
        assert fb.observations("fp", "thrifty") == 0
        assert len(fb) == 0

    def test_ewma_converges_to_persistent_ratio(self):
        fb = RouterFeedback(alpha=0.5)
        for _ in range(12):
            c = fb.observe("fp", "thrifty", 10.0, 40.0)
        assert c == pytest.approx(4.0, rel=1e-3)
        assert fb.correction("fp", "thrifty") == c
        assert fb.observations("fp", "thrifty") == 12

    def test_log_space_symmetry(self):
        """4x-over then 4x-under is *right on average* in log space."""
        fb = RouterFeedback(alpha=0.5)
        fb.observe("fp", "m", 10.0, 40.0)
        fb.observe("fp", "m", 10.0, 2.5)
        # alpha=0.5: ewma = 0.5*log(1/4) + 0.25*log(4) -> exp < 1
        # but a plain-ratio mean would sit at 2.125.
        assert fb.correction("fp", "m") < 2.0

    def test_observation_clamped(self):
        fb = RouterFeedback(alpha=1.0, max_log_ratio=math.log(64.0))
        c = fb.observe("fp", "m", 1.0, 1e9)
        assert c == pytest.approx(64.0)
        c = fb.observe("fp", "m", 1e9, 1e-9)
        assert c == pytest.approx(1.0 / 64.0)

    def test_nonpositive_prediction_ignored(self):
        fb = RouterFeedback()
        assert fb.observe("fp", "m", 0.0, 5.0) == 1.0
        assert fb.total_observations == 0

    def test_keys_are_independent(self):
        fb = RouterFeedback(alpha=1.0)
        fb.observe("fp", "thrifty", 1.0, 2.0)
        fb.observe("fp", "afforest", 1.0, 8.0, machine="Epyc")
        assert fb.correction("fp", "thrifty") == pytest.approx(2.0)
        assert fb.correction("fp", "afforest") == 1.0  # machine differs
        assert fb.correction("fp", "afforest",
                             machine="Epyc") == pytest.approx(8.0)

    def test_delta_key_separate_from_full_run(self):
        fb = RouterFeedback(alpha=1.0)
        fb.observe("fp", delta_feedback_key("thrifty"), 1.0, 4.0)
        assert fb.correction("fp", "thrifty") == 1.0
        assert fb.correction(
            "fp", delta_feedback_key("thrifty")) == pytest.approx(4.0)

    def test_lru_bounded(self):
        fb = RouterFeedback(capacity=4)
        for i in range(10):
            fb.observe(f"fp{i}", "m", 1.0, 2.0)
        assert len(fb) == 4
        assert fb.correction("fp0", "m") == 1.0       # evicted
        assert fb.correction("fp9", "m") != 1.0       # retained
        assert fb.total_observations == 10            # lifetime counter

    def test_invalidate_fingerprint(self):
        fb = RouterFeedback(alpha=1.0)
        fb.observe("a", "thrifty", 1.0, 2.0)
        fb.observe("a", "afforest", 1.0, 2.0)
        fb.observe("b", "thrifty", 1.0, 2.0)
        assert fb.invalidate_fingerprint("a") == 2
        assert fb.correction("a", "thrifty") == 1.0
        assert fb.correction("b", "thrifty") != 1.0
        assert fb.invalidated_cells == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            RouterFeedback(alpha=0.0)
        with pytest.raises(ValueError, match="max_log_ratio"):
            RouterFeedback(max_log_ratio=0.0)
        with pytest.raises(ValueError, match="capacity"):
            RouterFeedback(capacity=0)

    def test_snapshot(self):
        fb = RouterFeedback(alpha=1.0)
        fb.observe("abcdef0123456789", "thrifty", 1.0, 2.0)
        snap = fb.snapshot()
        assert snap["cells"] == 1
        assert snap["total_observations"] == 1
        assert snap["corrections"] == {"abcdef012345/thrifty": 2.0}


class TestColdStartIdentity:
    def test_replan_empty_feedback_returns_base_object(self, skewed):
        reg = GraphRegistry()
        entry = reg.register(skewed)
        base = plan(entry.probes)
        assert replan(base, RouterFeedback(), entry.fingerprint) is base
        assert replan(base, None, entry.fingerprint) is base
        assert replan(base, reg.feedback, None) is base

    def test_cold_start_plan_fields_unchanged(self, skewed, road):
        for g in (skewed, road):
            reg = GraphRegistry()
            entry = reg.register(g)
            static = plan(entry.probes)
            with_fb = plan(entry.probes, feedback=reg.feedback,
                           fingerprint=entry.fingerprint)
            assert with_fb == static
            assert with_fb.correction_lp == 1.0
            assert with_fb.correction_uf == 1.0
            assert with_fb.margin == static.margin
            assert with_fb.predicted_ms == static.predicted_ms

    def test_fresh_service_routes_like_static_planner(self, skewed):
        static = CCService(
            service_options=ServiceOptions(feedback=False))
        tuned = CCService()
        r1 = static.submit(CCRequest(graph=skewed))
        r2 = tuned.submit(CCRequest(graph=skewed))
        assert r1.method == r2.method
        assert np.array_equal(r1.result.labels, r2.result.labels)


class TestMispredictionRecovery:
    def test_poisoned_probe_converges_to_measured_winner(self, road):
        """The tentpole scenario: a wrong probe routes the road graph
        to Thrifty; one measured run later the posterior flips the
        route to Afforest, and it stays flipped."""
        svc = CCService(cache_capacity=1)
        entry = svc.register(road, name="road")
        _poison_diameter(svc, entry)
        assert svc._plan_for(entry).method == LP_METHOD

        svc.cache.invalidate_fingerprint(entry.fingerprint)
        r1 = svc.submit(CCRequest(key="road"))
        assert r1.method == LP_METHOD       # first run trusts the prior
        assert svc.metrics.predictions == 1

        methods = []
        for _ in range(4):
            svc.cache.invalidate_fingerprint(entry.fingerprint)
            methods.append(svc.submit(CCRequest(key="road")).method)
        # Converges within k=2 observations (the EWMA needs two runs
        # to push the correction past this poisoning's 4.4x gap), and
        # stays converged.
        flip = methods.index(UF_METHOD)
        assert flip <= 1
        assert all(m == UF_METHOD for m in methods[flip:])
        assert svc.metrics.route_flips >= len(methods) - flip
        assert svc.metrics.mispredictions >= 1
        correction = svc.registry.feedback.correction(
            entry.fingerprint, LP_METHOD, machine=svc.machine.name)
        assert correction > MISPREDICTION_RATIO

    def test_feedback_disabled_never_flips(self, road):
        svc = CCService(
            cache_capacity=1,
            service_options=ServiceOptions(feedback=False))
        entry = svc.register(road, name="road")
        _poison_diameter(svc, entry)
        for _ in range(3):
            svc.cache.invalidate_fingerprint(entry.fingerprint)
            assert svc.submit(CCRequest(key="road")).method == LP_METHOD
        assert len(svc.registry.feedback) == 0
        assert svc.metrics.route_flips == 0

    def test_corrections_price_admission(self, road):
        """After the posterior learns Thrifty is slow here, the
        explicit-method admission prediction carries the correction."""
        from repro.service import predicted_method_ms
        svc = CCService(cache_capacity=1)
        entry = svc.register(road, name="road")
        _poison_diameter(svc, entry)
        svc.submit(CCRequest(key="road"))
        base = predicted_method_ms(entry.probes, LP_METHOD, svc.machine)
        corrected = predicted_method_ms(
            entry.probes, LP_METHOD, svc.machine,
            feedback=svc.registry.feedback,
            fingerprint=entry.fingerprint)
        assert corrected > base


class TestFeedbackLifecycle:
    def test_mutation_drops_feedback(self, road):
        svc = CCService(cache_capacity=1)
        entry = svc.register(road, name="road")
        _poison_diameter(svc, entry)
        svc.submit(CCRequest(key="road"))
        fb = svc.registry.feedback
        assert fb.observations(entry.fingerprint, LP_METHOD,
                               machine=svc.machine.name) == 1

        n = road.num_vertices
        successor = svc.mutate("road", insert=(
            np.array([0, 1], dtype=np.int64),
            np.array([n - 1, n - 2], dtype=np.int64)))
        assert successor.fingerprint != entry.fingerprint
        # Predecessor cells purged with the lineage step; the
        # successor starts from the clean prior.
        assert fb.observations(entry.fingerprint, LP_METHOD,
                               machine=svc.machine.name) == 0
        assert fb.correction(successor.fingerprint, LP_METHOD,
                             machine=svc.machine.name) == 1.0
        assert fb.observations(successor.fingerprint, LP_METHOD,
                               machine=svc.machine.name) == 0
        assert fb.invalidated_cells >= 1

    def test_quarantine_drops_feedback(self, skewed):
        from repro.graph import CSRGraph
        g = CSRGraph(skewed.indptr.copy(), skewed.indices.copy())
        svc = CCService()
        entry = svc.register(g)
        svc.submit(CCRequest(graph=g))
        fp = entry.fingerprint
        fb = svc.registry.feedback
        assert any(key[0] == fp for key in fb._cells)
        # Unsanctioned in-place mutation -> quarantine on next sight.
        g.indices.flags.writeable = True
        g.indices[:] = g.indices[::-1].copy()
        svc.register(g)
        assert not any(key[0] == fp for key in fb._cells)


class TestExploration:
    def _near_margin_service(self, rate, seed=7):
        svc = CCService(
            cache_capacity=1,
            service_options=ServiceOptions(
                feedback=True, explore_rate=rate,
                explore_margin=float("inf") if rate else 1.0,
                explore_seed=seed))
        return svc

    def test_exploration_runs_runner_up(self, skewed):
        svc = CCService(
            cache_capacity=1,
            service_options=ServiceOptions(
                explore_rate=1.0, explore_margin=1e9, explore_seed=0))
        entry = svc.register(skewed, name="sk")
        static = svc._plan_for(entry).method
        resp = svc.submit(CCRequest(key="sk"))
        assert resp.method != static
        assert resp.plan.explored
        assert svc.metrics.explorations == 1

    def test_margin_one_never_explores(self, skewed):
        svc = CCService(
            cache_capacity=1,
            service_options=ServiceOptions(
                explore_rate=1.0, explore_margin=1.0, explore_seed=0))
        svc.register(skewed, name="sk")
        for _ in range(3):
            svc.cache.invalidate_fingerprint(
                svc.registry.get("sk").fingerprint)
            svc.submit(CCRequest(key="sk"))
        assert svc.metrics.explorations == 0

    def test_deterministic_given_seed(self, skewed):
        def pattern(seed):
            svc = CCService(
                cache_capacity=1,
                service_options=ServiceOptions(
                    explore_rate=0.5, explore_margin=1e9,
                    explore_seed=seed))
            svc.register(skewed, name="sk")
            out = []
            for _ in range(8):
                svc.cache.invalidate_fingerprint(
                    svc.registry.get("sk").fingerprint)
                out.append(svc.submit(CCRequest(key="sk")).method)
            return out

        assert pattern(3) == pattern(3)
        # Not a vacuous determinism check: rate 0.5 mixes both arms.
        assert len(set(pattern(3))) == 2

    def test_runner_up_swaps_family(self, skewed):
        reg = GraphRegistry()
        entry = reg.register(skewed)
        base = plan(entry.probes)
        other = runner_up(base)
        assert other.family != base.family
        assert other.explored
        assert method_family(other.method) == other.family


class TestRejectionInvariantRates:
    def test_hit_rate_ignores_rejections(self):
        m = ServiceMetrics()
        m.record_request("thrifty", 1.0, cache_hit=False)
        m.record_request("thrifty", 0.0, cache_hit=True)
        assert m.hit_rate == 0.5
        assert m.effective_hit_rate == 0.5
        for _ in range(10):
            m.record_rejection("queue-full")
        # The regression: rejections used to deflate both rates.
        assert m.hit_rate == 0.5
        assert m.effective_hit_rate == 0.5
        snap = m.snapshot()
        assert snap["requests"] == 12
        assert snap["served"] == 2
        assert snap["rejected"] == 10

    def test_all_rejected_rates_zero(self):
        m = ServiceMetrics()
        m.record_rejection("queue-depth")
        assert m.served == 0
        assert m.hit_rate == 0.0
        assert m.effective_hit_rate == 0.0


class TestPredictionMetrics:
    def test_misprediction_thresholds(self):
        m = ServiceMetrics()
        m.record_prediction("thrifty", 10.0, 10.0)    # exact
        m.record_prediction("thrifty", 10.0, 19.9)    # within 2x
        m.record_prediction("thrifty", 10.0, 20.0)    # boundary: miss
        m.record_prediction("thrifty", 10.0, 5.0)     # boundary: miss
        m.record_prediction("thrifty", 10.0, 100.0)   # gross miss
        assert m.predictions == 5
        assert m.mispredictions == 3
        assert m.prediction_error["thrifty"].summary()["count"] == 5

    def test_nonpositive_prediction_skipped(self):
        m = ServiceMetrics()
        m.record_prediction("thrifty", 0.0, 5.0)
        assert m.predictions == 0

    def test_executed_runs_feed_metrics(self, skewed):
        svc = CCService()
        svc.submit(CCRequest(graph=skewed))
        assert svc.metrics.predictions == 1
        snap = svc.metrics.snapshot()
        assert set(snap["prediction_error"]) == {LP_METHOD} \
            or set(snap["prediction_error"]) == {UF_METHOD}

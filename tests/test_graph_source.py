"""Tests for the unified ``repro.graph.load`` front door."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    GraphSource,
    build_graph,
    from_pairs,
    load,
    save_csr_npz,
    save_edge_list_text,
)
from repro.graph.generators import star_graph
from repro.storage import write_blocked


@pytest.fixture()
def graph():
    return star_graph(5)


class TestInfer:
    def test_graph_passthrough(self, graph):
        assert GraphSource.infer(graph).kind == "graph"

    def test_edge_list(self):
        edges = from_pairs([(0, 1), (1, 2)])
        assert GraphSource.infer(edges).kind == "edges"

    def test_pairs_array(self):
        assert GraphSource.infer([(0, 1), (1, 2)]).kind == "edges"
        assert GraphSource.infer(
            np.array([[0, 1], [1, 2]])).kind == "edges"

    def test_src_dst_tuple(self):
        src = np.array([0, 1])
        dst = np.array([1, 2])
        assert GraphSource.infer((src, dst)).kind == "edges"

    def test_dataset_name(self):
        assert GraphSource.infer("Pkc").kind == "dataset"

    def test_file_path(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_csr_npz(graph, path)
        assert GraphSource.infer(str(path)).kind == "file"

    def test_blocked_path(self, graph, tmp_path):
        path = tmp_path / "g.rbcsr"
        write_blocked(graph, path)
        assert GraphSource.infer(str(path)).kind == "blocked"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="not a known dataset"):
            GraphSource.infer("no-such-thing")

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            GraphSource.infer(3.14)

    def test_source_passthrough(self, graph):
        src = GraphSource.infer(graph)
        assert GraphSource.infer(src) is src


class TestLoad:
    def test_graph_identity(self, graph):
        assert load(graph) is graph

    def test_dataset_memoized(self):
        assert load("Pkc", 0.2) is load("Pkc", 0.2)

    def test_edges(self):
        g = load([(0, 1), (1, 2), (3, 4)])
        assert isinstance(g, CSRGraph)
        assert g.num_vertices == 5
        assert g.num_undirected_edges == 3

    def test_src_dst_pair(self):
        g = load((np.array([0, 1]), np.array([1, 2])))
        assert g.num_undirected_edges == 2

    def test_npz_file(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_csr_npz(graph, path)
        g = load(str(path))
        assert np.array_equal(g.indices, graph.indices)

    def test_text_file(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list_text(graph.to_edge_list(), path)
        g = load(str(path))
        assert np.array_equal(g.indices, graph.indices)

    def test_blocked_file(self, graph, tmp_path):
        path = tmp_path / "g.rbcsr"
        write_blocked(graph, path)
        g = load(str(path), resident_bytes=1 << 16)
        assert hasattr(g, "block_cache")
        assert g.resident_bytes == 1 << 16
        assert np.array_equal(np.asarray(g.indices), graph.indices)
        g.close()

    def test_num_vertices_forwarded(self):
        g = load([(0, 1)], num_vertices=10, drop_zero_degree=False)
        assert g.num_vertices == 10

    def test_build_kwargs_forwarded(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("0 0\n0 1\n")
        g = load(str(path))
        assert not g.has_edge(0, 0)     # self-loops dropped by default


class TestLegacyShims:
    """The legacy loaders warn; pyproject promotes the warning to an
    error everywhere except inside an explicit ``pytest.warns``."""

    def test_load_dataset_warns(self):
        from repro.graph import load_dataset
        with pytest.warns(DeprecationWarning, match="legacy graph loader"):
            g = load_dataset("Pkc", 0.2)
        assert g is load("Pkc", 0.2)    # same memoized object

    def test_load_graph_warns(self, graph, tmp_path):
        from repro.graph import load_graph
        path = tmp_path / "g.npz"
        save_csr_npz(graph, path)
        with pytest.warns(DeprecationWarning, match="legacy graph loader"):
            g = load_graph(str(path))
        assert np.array_equal(g.indices, graph.indices)

    def test_reader_shims_warn(self, graph, tmp_path):
        from repro.graph import load_csr_npz, load_edge_list_text

        npz = tmp_path / "g.npz"
        save_csr_npz(graph, npz)
        with pytest.warns(DeprecationWarning, match="legacy graph loader"):
            load_csr_npz(npz)
        txt = tmp_path / "g.txt"
        save_edge_list_text(graph.to_edge_list(), txt)
        with pytest.warns(DeprecationWarning, match="legacy graph loader"):
            load_edge_list_text(txt)

    def test_shims_error_outside_warns_block(self):
        from repro.graph import load_dataset
        with pytest.raises(DeprecationWarning):
            load_dataset("Pkc", 0.2)

    def test_format_shims_warn(self, tmp_path):
        from repro.graph.io import load_konect, load_matrix_market

        mtx = tmp_path / "g.mtx"
        mtx.write_text("%%MatrixMarket matrix coordinate pattern general\n"
                       "3 3 2\n1 2\n2 3\n")
        with pytest.warns(DeprecationWarning, match="legacy graph loader"):
            load_matrix_market(mtx)
        kon = tmp_path / "out.test"
        kon.write_text("% sym\n1 2\n2 3\n")
        with pytest.warns(DeprecationWarning, match="legacy graph loader"):
            load_konect(kon)


class TestEquivalence:
    """One content, four doors: every spelling yields the same graph."""

    def test_all_sources_agree(self, tmp_path):
        base = load("Pkc", 0.2)
        npz = tmp_path / "pkc.npz"
        save_csr_npz(base, npz)
        rbcsr = tmp_path / "pkc.rbcsr"
        write_blocked(base, rbcsr)
        from_npz = load(str(npz))
        from_blocked = load(str(rbcsr))
        try:
            assert np.array_equal(from_npz.indices, base.indices)
            assert np.array_equal(np.asarray(from_blocked.indices),
                                  base.indices)
        finally:
            from_blocked.close()

    def test_edges_source_round_trip(self):
        g = build_graph(from_pairs([(0, 1), (1, 2), (2, 0)]))
        g2 = load(g.to_edge_list())
        assert np.array_equal(g2.indptr, g.indptr)
        assert np.array_equal(g2.indices, g.indices)

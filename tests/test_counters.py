"""Tests for operation counters."""

import pytest

from repro.instrument import OpCounters


class TestArithmetic:
    def test_add(self):
        a = OpCounters(edges_processed=3)
        b = OpCounters(edges_processed=4, label_reads=1)
        c = a + b
        assert c.edges_processed == 7
        assert c.label_reads == 1

    def test_iadd(self):
        a = OpCounters(branches=1)
        a += OpCounters(branches=2)
        assert a.branches == 3

    def test_sub_delta(self):
        later = OpCounters(edges_processed=10)
        earlier = OpCounters(edges_processed=4)
        assert (later - earlier).edges_processed == 6

    def test_sub_wrong_order_raises(self):
        with pytest.raises(ValueError, match="negative"):
            OpCounters() - OpCounters(edges_processed=1)

    def test_copy_is_independent(self):
        a = OpCounters(edges_processed=1)
        b = a.copy()
        b.edges_processed = 99
        assert a.edges_processed == 1


class TestRecorders:
    def test_pull_scan(self):
        c = OpCounters()
        c.record_pull_scan(edges=100, vertices=10)
        assert c.edges_processed == 100
        assert c.random_accesses == 100
        assert c.sequential_accesses == 20
        assert c.unpredictable_branches == 100

    def test_push_scan_counts_cas(self):
        c = OpCounters()
        c.record_push_scan(edges=50, vertices=5)
        assert c.cas_attempts == 50
        assert c.edges_processed == 50

    def test_cas_successes_are_writes(self):
        c = OpCounters()
        c.record_cas_successes(7)
        assert c.label_writes == 7
        assert c.random_accesses == 7

    def test_label_commits_classified(self):
        c = OpCounters()
        c.record_label_commits(3, random=True)
        c.record_label_commits(2, random=False)
        assert c.random_accesses == 3
        assert c.sequential_accesses == 2
        assert c.label_writes == 5

    def test_finds_are_dependent(self):
        c = OpCounters()
        c.record_finds(10, avg_path_length=2.5)
        assert c.dependent_accesses == 25

    def test_sync_pass(self):
        c = OpCounters()
        c.record_sync_pass(100)
        assert c.label_reads == 100
        assert c.label_writes == 100
        assert c.sequential_accesses == 200

    def test_memory_accesses_total(self):
        c = OpCounters(random_accesses=1, sequential_accesses=2,
                       dependent_accesses=3)
        assert c.memory_accesses == 6

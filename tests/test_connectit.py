"""Tests for the ConnectIt sampling x finish framework."""

import numpy as np
import pytest

from repro.connectit import (
    FINISH_STRATEGIES,
    SAMPLING_STRATEGIES,
    connectit_cc,
    connectit_design_space,
)
from repro.connectit.sampling import sample_bfs, sample_kout, sample_ldd
from repro.graph.generators import star_graph
from repro.validate import validate_against_reference


class TestDesignSpace:
    def test_all_combinations_listed(self):
        combos = connectit_design_space()
        assert len(combos) == \
            len(SAMPLING_STRATEGIES) * len(FINISH_STRATEGIES)

    @pytest.mark.parametrize("sampling", sorted(SAMPLING_STRATEGIES))
    @pytest.mark.parametrize("finish", sorted(FINISH_STRATEGIES))
    def test_every_combination_correct(self, sampling, finish,
                                       small_skewed):
        r = connectit_cc(small_skewed, sampling=sampling, finish=finish)
        validate_against_reference(small_skewed, r)

    @pytest.mark.parametrize("sampling", ["kout", "bfs"])
    def test_zoo_coverage(self, sampling, zoo_graph):
        r = connectit_cc(zoo_graph, sampling=sampling,
                         finish="skip-giant")
        validate_against_reference(zoo_graph, r)

    def test_unknown_strategy_rejected(self, triangle):
        with pytest.raises(ValueError, match="unknown sampling"):
            connectit_cc(triangle, sampling="magic")
        with pytest.raises(ValueError, match="unknown finish"):
            connectit_cc(triangle, finish="magic")

    def test_empty_graph(self):
        from repro.graph import CSRGraph
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        assert connectit_cc(g).labels.size == 0

    def test_trace_has_two_phases(self, small_skewed):
        r = connectit_cc(small_skewed)
        assert r.num_iterations == 2
        assert r.algorithm == "connectit[kout+skip-giant]"


class TestSamplingBehaviour:
    def test_kout_equals_afforest_phase1_cost(self, small_skewed):
        parent = np.arange(small_skewed.num_vertices, dtype=np.int64)
        out = sample_kout(small_skewed, parent, k=2)
        # k-out samples at most k edges per vertex.
        assert out.edges_sampled <= 2 * small_skewed.num_vertices
        # and it actually merged things.
        assert np.count_nonzero(parent !=
                                np.arange(parent.size)) > 0

    def test_kout_k_scales_work(self, small_skewed):
        p1 = np.arange(small_skewed.num_vertices, dtype=np.int64)
        p3 = p1.copy()
        e1 = sample_kout(small_skewed, p1, k=1).edges_sampled
        e3 = sample_kout(small_skewed, p3, k=3).edges_sampled
        assert e3 > e1

    def test_bfs_sampling_merges_hub_neighbourhood(self):
        g = star_graph(50)
        parent = np.arange(51, dtype=np.int64)
        sample_bfs(g, parent, rounds=1)
        from repro.baselines import flatten_parents
        flat = flatten_parents(parent)
        assert np.unique(flat).size == 1   # whole star merged

    def test_ldd_sampling_bounded_rounds(self, small_skewed):
        parent = np.arange(small_skewed.num_vertices, dtype=np.int64)
        out = sample_ldd(small_skewed, parent, rounds=2, seed=1)
        assert out.edges_sampled >= 0

    def test_sampling_reduces_finish_work(self, small_skewed):
        sampled = connectit_cc(small_skewed, sampling="kout",
                               finish="skip-giant")
        unsampled = connectit_cc(small_skewed, sampling="none",
                                 finish="skip-giant")
        assert sampled.counters().edges_processed < \
            unsampled.counters().edges_processed

    def test_ldd_tie_breaks_toward_lower_seed_index(self):
        # Path 0-1-2 with seeds drawn as [2, 0] (seed index 0 is
        # vertex 2).  Both clusters reach vertex 1 in round one; the
        # docstring promises the lower *seed index* wins, so vertex 1
        # must join vertex 2's cluster — not vertex 0's, which is what
        # frontier-order tie-breaking used to produce.
        from repro.baselines import flatten_parents
        from repro.graph import build_graph, from_pairs
        g = build_graph(from_pairs([(0, 1), (1, 2)]),
                        drop_zero_degree=False)
        assert np.random.default_rng(21).choice(
            3, size=2, replace=False).tolist() == [2, 0]
        parent = np.arange(3, dtype=np.int64)
        sample_ldd(g, parent, num_seeds=2, rounds=1, seed=21)
        flat = flatten_parents(parent)
        assert flat[1] == flat[2]
        assert flat[0] != flat[1]


class TestCounterParity:
    """Every union call site charges through the one shared recipe.

    charge_union/charge_finds imply the cross-counter identity
    ``label_reads == (random_accesses - cas_successes) +
    dependent_accesses``: endpoint gathers are mirrored into
    label_reads, find hops into dependent_accesses and label_reads,
    and link commits into random_accesses only.  finish_skip_giant
    used to omit every label_reads charge and fail this.
    """

    @staticmethod
    def _assert_recipe(c):
        assert c.label_reads == \
            (c.random_accesses - c.cas_successes) + c.dependent_accesses

    @pytest.mark.parametrize("sampling", ["kout", "bfs"])
    def test_sampling_strategies(self, sampling, small_skewed):
        parent = np.arange(small_skewed.num_vertices, dtype=np.int64)
        out = SAMPLING_STRATEGIES[sampling](small_skewed, parent)
        self._assert_recipe(out.counters)

    @pytest.mark.parametrize("finish", ["skip-giant", "all-edges"])
    def test_finish_strategies(self, finish, small_skewed):
        parent = np.arange(small_skewed.num_vertices, dtype=np.int64)
        sample_kout(small_skewed, parent, k=2)
        out = FINISH_STRATEGIES[finish](small_skewed, parent.copy())
        self._assert_recipe(out.counters)

    def test_skip_giant_charges_label_reads(self, small_skewed):
        parent = np.arange(small_skewed.num_vertices, dtype=np.int64)
        sample_kout(small_skewed, parent, k=1)
        out = FINISH_STRATEGIES["skip-giant"](small_skewed, parent)
        assert out.counters.label_reads >= out.counters.edges_processed
        assert out.counters.dependent_accesses > 0

"""Tests for SV, JT, Afforest and BFS-CC."""

import math

import numpy as np
import pytest

from repro.baselines import (
    afforest_cc,
    bfs_cc,
    jayanti_tarjan_cc,
    shiloach_vishkin_cc,
)
from repro.graph.generators import path_graph, star_graph
from repro.validate import same_partition, validate_against_reference

ALL = [shiloach_vishkin_cc, jayanti_tarjan_cc, afforest_cc, bfs_cc]


class TestCorrectness:
    @pytest.mark.parametrize("algo", ALL,
                             ids=["sv", "jt", "afforest", "bfs"])
    def test_on_zoo(self, algo, zoo_graph):
        validate_against_reference(zoo_graph, algo(zoo_graph))

    @pytest.mark.parametrize("algo", ALL,
                             ids=["sv", "jt", "afforest", "bfs"])
    def test_empty_graph(self, algo):
        from repro.graph import CSRGraph
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        assert algo(g).labels.size == 0

    def test_jt_seed_does_not_change_partition(self, small_skewed):
        a = jayanti_tarjan_cc(small_skewed, seed=1)
        b = jayanti_tarjan_cc(small_skewed, seed=2)
        assert same_partition(a.labels, b.labels)

    def test_afforest_seed_does_not_change_partition(self, small_skewed):
        a = afforest_cc(small_skewed, seed=1)
        b = afforest_cc(small_skewed, seed=2)
        assert same_partition(a.labels, b.labels)

    def test_afforest_neighbor_rounds_variants(self, small_skewed):
        for k in (1, 2, 4):
            r = afforest_cc(small_skewed, neighbor_rounds=k)
            validate_against_reference(small_skewed, r)


class TestCostShapes:
    def test_sv_processes_all_edges_every_round(self, small_skewed):
        r = shiloach_vishkin_cc(small_skewed)
        m = small_skewed.num_edges
        assert r.counters().edges_processed == r.num_iterations * m

    def test_sv_logarithmic_rounds(self, small_skewed):
        r = shiloach_vishkin_cc(small_skewed)
        bound = 2 * math.log2(small_skewed.num_vertices) + 4
        assert r.num_iterations <= bound

    def test_jt_processes_each_edge_once(self, small_skewed):
        r = jayanti_tarjan_cc(small_skewed)
        assert r.counters().edges_processed == \
            small_skewed.num_undirected_edges
        assert r.num_iterations == 1

    def test_jt_charges_finds(self, small_skewed):
        c = jayanti_tarjan_cc(small_skewed).counters()
        assert c.dependent_accesses >= \
            2 * small_skewed.num_undirected_edges

    def test_afforest_skips_giant_component(self, small_skewed):
        c = afforest_cc(small_skewed).counters()
        # Phase 1 samples ~2 edges/vertex; phase 3 only the dust.
        assert c.edges_processed < 3 * small_skewed.num_vertices
        assert c.edges_processed < 0.5 * small_skewed.num_edges

    def test_afforest_trace_has_three_phases(self, small_skewed):
        assert afforest_cc(small_skewed).num_iterations == 3

    def test_bfs_labels_are_component_minima(self, two_triangles):
        r = bfs_cc(two_triangles)
        assert np.array_equal(r.labels, [0, 0, 0, 3, 3, 3])

    def test_bfs_levels_reflect_diameter(self):
        g = path_graph(64)
        r = bfs_cc(g)
        assert r.num_iterations >= 63

    def test_bfs_direction_optimization_on_star(self):
        # Hub-first BFS: one big top-down level should flip bottom-up.
        g = star_graph(2000)
        r = bfs_cc(g)
        assert r.num_iterations <= 3
        total = r.counters().edges_processed
        assert total <= 3 * g.num_edges

    def test_converged_fraction_reaches_one(self, small_skewed):
        for algo in ALL:
            trace = algo(small_skewed).trace
            assert trace.iterations[-1].converged_fraction == \
                pytest.approx(1.0)

    def test_afforest_phase1_trace_counts_actual_edges(self):
        # Star graph: round 0 offers every vertex's first neighbour
        # (n+1 edges... n leaves + hub), round 1 only the hub has a
        # second neighbour.  The old trace recorded neighbor_rounds*n.
        g = star_graph(50)
        n = g.num_vertices                       # 51
        r = afforest_cc(g, neighbor_rounds=2)
        phase1 = r.trace.iterations[0]
        assert phase1.active_edges == n + 1      # not 2 * n
        assert phase1.active_edges == phase1.counters.edges_processed

    def test_afforest_phase1_trace_matches_counters(self, small_skewed):
        r = afforest_cc(small_skewed)
        phase1 = r.trace.iterations[0]
        assert phase1.active_edges == phase1.counters.edges_processed

    def test_afforest_phase2_charges_sampled_find_cost(self, small_skewed):
        c = afforest_cc(small_skewed).trace.iterations[1].counters
        # The sampled finds cost at least one read per sampled vertex
        # and are mirrored into label_reads (shared find recipe).
        sample = min(1024, small_skewed.num_vertices)
        assert c.dependent_accesses >= sample
        assert c.label_reads == c.dependent_accesses

    def test_sv_counts_duplicate_hooks_once(self):
        # Two edges hook the same root in one round: one linearized
        # commit, so changed_vertices must be 1, not 2.
        from repro.graph import build_graph, from_pairs
        g = build_graph(from_pairs([(0, 2), (1, 2)]),
                        drop_zero_degree=False)
        r = shiloach_vishkin_cc(g)
        assert r.trace.iterations[0].changed_vertices == 1
        assert r.trace.iterations[0].counters.cas_successes == 1

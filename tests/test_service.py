"""Serving layer: registry, fingerprints, cache, executor, metrics."""

import numpy as np
import pytest

from repro.graph import rmat_graph
from repro.graph import load
from repro.options import (AfforestOptions, DistributedOptions,
                           ThriftyOptions)
from repro.service import (
    CCRequest,
    CCService,
    GraphRegistry,
    ResultCache,
    graph_fingerprint,
    plan_for_graph,
    result_cache_key,
)
from repro.validate import validate_against_reference


@pytest.fixture(scope="module")
def skewed():
    return rmat_graph(9, 8, seed=11)


@pytest.fixture(scope="module")
def road():
    return load("GBRd", 0.05)


class TestFingerprint:
    def test_stable_across_instances(self):
        a = rmat_graph(8, 8, seed=4)
        b = rmat_graph(8, 8, seed=4)
        assert a is not b
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_distinct_graphs_differ(self):
        a = rmat_graph(8, 8, seed=4)
        b = rmat_graph(8, 8, seed=5)
        assert graph_fingerprint(a) != graph_fingerprint(b)


class TestRegistry:
    def test_register_idempotent_on_content(self):
        reg = GraphRegistry()
        e1 = reg.register(rmat_graph(8, 8, seed=4))
        e2 = reg.register(rmat_graph(8, 8, seed=4))
        assert e1 is e2
        assert len(reg) == 1

    def test_probes_computed_once(self, skewed):
        reg = GraphRegistry()
        entry = reg.register(skewed)
        assert reg.probe_computations == 0
        p1 = entry.probes
        p2 = entry.probes
        assert p1 is p2
        assert reg.probe_computations == 1
        assert p1.num_vertices == skewed.num_vertices
        assert p1.diameter >= 1
        assert 0.0 < p1.giant_fraction <= 1.0

    def test_lookup_by_name_and_fingerprint(self, skewed):
        reg = GraphRegistry()
        entry = reg.register(skewed, name="sk")
        assert reg.get("sk") is entry
        assert reg.get(entry.fingerprint) is entry
        assert "sk" in reg and entry.fingerprint in reg
        with pytest.raises(KeyError):
            reg.get("missing")

    def test_name_collision_rejected(self, skewed):
        reg = GraphRegistry()
        reg.register(skewed, name="sk")
        with pytest.raises(ValueError, match="already registered"):
            reg.register(rmat_graph(7, 8, seed=1), name="sk")


class TestResultCache:
    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        keys = [result_cache_key(f"fp{i}", "thrifty", "SkylakeX",
                                 ThriftyOptions()) for i in range(3)]
        for k in keys:
            cache.put(k, object())
        assert keys[0] not in cache          # evicted, oldest
        assert keys[1] in cache and keys[2] in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = ResultCache(capacity=2)
        keys = [result_cache_key(f"fp{i}", "thrifty", "SkylakeX",
                                 ThriftyOptions()) for i in range(3)]
        cache.put(keys[0], object())
        cache.put(keys[1], object())
        cache.get(keys[0])                   # now most-recent
        cache.put(keys[2], object())
        assert keys[0] in cache
        assert keys[1] not in cache

    def test_options_canonicalization_shares_entries(self):
        # Spelled-default options and explicit defaults are one key.
        k1 = result_cache_key("fp", "afforest", "SkylakeX",
                              AfforestOptions())
        k2 = result_cache_key("fp", "afforest", "SkylakeX",
                              AfforestOptions(neighbor_rounds=2,
                                              sample_size=1024, seed=0))
        assert k1 == k2


class TestService:
    def test_miss_then_hit(self, skewed):
        svc = CCService()
        r1 = svc.connected_components(skewed, method="thrifty")
        r2 = svc.connected_components(skewed, method="thrifty")
        assert not r1.cache_hit and r2.cache_hit
        assert r2.simulated_ms == 0.0
        assert np.array_equal(r1.result.labels, r2.result.labels)
        validate_against_reference(skewed, r1.result)

    def test_cache_hit_performs_zero_algorithm_work(self, skewed):
        svc = CCService()
        svc.connected_components(skewed, method="thrifty")
        before = svc.metrics.work_snapshot()
        resp = svc.connected_components(skewed, method="thrifty")
        delta = svc.metrics.algorithm_work - before
        assert resp.cache_hit
        assert all(v == 0 for v in delta.as_dict().values())

    def test_equal_content_different_object_hits(self, skewed):
        svc = CCService()
        svc.connected_components(rmat_graph(9, 8, seed=11))
        resp = svc.connected_components(rmat_graph(9, 8, seed=11))
        assert resp.cache_hit

    def test_distinct_options_are_distinct_entries(self, skewed):
        svc = CCService()
        r1 = svc.connected_components(
            skewed, method="thrifty", options=ThriftyOptions())
        r2 = svc.connected_components(
            skewed, method="thrifty",
            options=ThriftyOptions(threshold=0.2))
        assert not r2.cache_hit
        assert np.array_equal(r1.result.labels, r2.result.labels)

    def test_auto_resolves_before_caching(self, skewed):
        # auto and the concrete method it routes to share cache slots.
        svc = CCService()
        first = svc.connected_components(skewed)              # auto
        again = svc.connected_components(skewed,
                                         method=first.method)
        assert first.plan is not None
        assert again.cache_hit

    def test_auto_rejects_options(self, skewed):
        svc = CCService()
        with pytest.raises(ValueError, match="auto"):
            svc.connected_components(skewed,
                                     options=ThriftyOptions())

    def test_unknown_method_lists_auto(self, skewed):
        svc = CCService()
        with pytest.raises(ValueError, match="auto"):
            svc.submit(CCRequest(graph=skewed, method="magic"))

    def test_request_needs_graph_or_key(self):
        svc = CCService()
        with pytest.raises(ValueError, match="graph or a registry key"):
            svc.submit(CCRequest())

    def test_submit_by_registered_key(self, skewed):
        svc = CCService()
        svc.register(skewed, name="sk")
        resp = svc.submit(CCRequest(key="sk", method="sv"))
        assert resp.method == "sv"
        validate_against_reference(skewed, resp.result)

    def test_budget_fallback_to_afforest(self, skewed):
        svc = CCService()
        resp = svc.connected_components(skewed, method="thrifty",
                                        budget_ms=1e-12)
        assert resp.budget_exceeded and resp.fallback
        assert resp.method == "afforest"
        validate_against_reference(skewed, resp.result)
        # both runs were charged
        r_thrifty = CCService().connected_components(skewed,
                                                     method="thrifty")
        assert resp.simulated_ms > r_thrifty.simulated_ms
        assert svc.metrics.fallbacks == 1

    def test_no_fallback_from_afforest(self, skewed):
        svc = CCService()
        resp = svc.connected_components(skewed, method="afforest",
                                        budget_ms=1e-12)
        assert resp.budget_exceeded and not resp.fallback

    def test_batch_later_requests_hit(self, skewed, road):
        svc = CCService()
        reqs = [CCRequest(graph=g) for g in (skewed, road,
                                             skewed, road)]
        out = svc.submit_batch(reqs)
        assert [o.cache_hit for o in out] == [False, False, True, True]
        assert svc.metrics.hit_rate == 0.5

    def test_metrics_snapshot_shape(self, skewed):
        svc = CCService()
        svc.connected_components(skewed)
        svc.connected_components(skewed)
        snap = svc.metrics.snapshot()
        assert snap["requests"] == 2
        assert snap["cache_hits"] == 1
        assert snap["auto_routed"] == 2
        assert sum(snap["per_method"].values()) == 2
        assert snap["latency"]["count"] == 2
        assert snap["algorithm_work"]["edges_processed"] > 0


class TestPlanner:
    def test_skewed_routes_lp(self, skewed):
        plan = plan_for_graph(skewed)
        assert plan.family == "lp" and plan.method == "thrifty"
        assert plan.predicted_lp_ms < plan.predicted_uf_ms

    def test_road_routes_uf(self, road):
        plan = plan_for_graph(road)
        assert plan.family == "uf" and plan.method == "afforest"
        assert plan.predicted_uf_ms < plan.predicted_lp_ms
        assert plan.margin > 1.0

    def test_edge_budget_routes_distributed(self, skewed):
        plan = plan_for_graph(skewed, single_node_edge_budget=1)
        assert plan.method == "distributed"
        assert plan.family == "distributed"

    def test_edge_budget_not_exceeded_keeps_crossover(self, skewed):
        plan = plan_for_graph(
            skewed, single_node_edge_budget=10 * skewed.num_edges)
        assert plan.method == "thrifty"


class TestDistributedServing:
    def test_explicit_method_runs_and_caches(self, skewed):
        svc = CCService()
        opts = DistributedOptions(num_ranks=4)
        r1 = svc.connected_components(skewed, method="distributed",
                                      options=opts)
        assert not r1.cache_hit
        assert r1.simulated_ms > 0
        assert "comm" in r1.result.extras
        validate_against_reference(skewed, r1.result)
        r2 = svc.connected_components(skewed, method="distributed",
                                      options=opts)
        assert r2.cache_hit

    def test_distinct_distributed_options_distinct_entries(self, skewed):
        svc = CCService()
        a = svc.connected_components(
            skewed, method="distributed",
            options=DistributedOptions(num_ranks=2))
        b = svc.connected_components(
            skewed, method="distributed",
            options=DistributedOptions(num_ranks=4))
        assert not a.cache_hit and not b.cache_hit
        assert np.array_equal(a.result.labels, b.result.labels)

    def test_auto_with_multirank_options_routes_distributed(self, skewed):
        svc = CCService()
        resp = svc.connected_components(
            skewed, options=DistributedOptions(num_ranks=4))
        assert resp.method == "distributed"
        assert resp.result.extras["num_ranks"] == 4
        validate_against_reference(skewed, resp.result)

    def test_auto_with_single_rank_options_rejected(self, skewed):
        svc = CCService()
        with pytest.raises(ValueError, match="num_ranks > 1"):
            svc.connected_components(
                skewed, options=DistributedOptions(num_ranks=1))

    def test_auto_edge_budget_routes_distributed(self, skewed):
        svc = CCService(single_node_edge_budget=1)
        resp = svc.connected_components(skewed)
        assert resp.method == "distributed"
        assert resp.plan is not None
        assert resp.plan.family == "distributed"
        validate_against_reference(skewed, resp.result)

    def test_distributed_priced_with_network(self, skewed):
        # More ranks on the same graph must pay more per-superstep
        # latency than a single rank (which pays none).
        svc = CCService()
        one = svc.connected_components(
            skewed, method="distributed",
            options=DistributedOptions(num_ranks=1))
        eight = svc.connected_components(
            skewed, method="distributed",
            options=DistributedOptions(num_ranks=8))
        assert one.simulated_ms > 0 and eight.simulated_ms > 0


class TestBudgetAccounting:
    """Budget edges + the honest-flags contract (cache hits replay the
    recorded budget outcome of the run that produced the entry)."""

    def test_budget_exactly_equal_is_not_exceeded(self, skewed):
        cost = CCService().connected_components(
            skewed, method="thrifty").simulated_ms
        resp = CCService().connected_components(
            skewed, method="thrifty", budget_ms=cost)
        assert not resp.budget_exceeded and not resp.fallback
        assert resp.method == "thrifty"

    def test_hit_after_blown_run_replays_flags(self, skewed):
        svc = CCService()
        r1 = svc.connected_components(skewed, method="thrifty",
                                      budget_ms=1e-12)
        r2 = svc.connected_components(skewed, method="thrifty",
                                      budget_ms=1e-12)
        assert r1.budget_exceeded and r1.fallback
        assert r2.cache_hit and r2.simulated_ms == 0.0
        # the hit replays the recorded outcome, not a clean bill
        assert r2.budget_exceeded and r2.fallback
        assert r2.method == "afforest"
        assert r2.result is r1.result
        assert svc.metrics.flag_replays == 1
        # only the executed fallback run counts as a fallback
        assert svc.metrics.fallbacks == 1

    def test_hit_with_affordable_budget_stays_clean(self, skewed):
        svc = CCService()
        svc.connected_components(skewed, method="thrifty",
                                 budget_ms=1e-12)
        clean = svc.connected_components(skewed, method="thrifty")
        roomy = svc.connected_components(skewed, method="thrifty",
                                         budget_ms=1e9)
        for resp in (clean, roomy):
            assert resp.cache_hit
            assert not resp.budget_exceeded and not resp.fallback
            assert resp.method == "thrifty"
        assert svc.metrics.flag_replays == 0

    def test_blown_uf_primary_hit_replays_exceeded_only(self, skewed):
        # afforest is its own fallback: exceeded, but no second run —
        # and the replayed hit must agree.
        svc = CCService()
        r1 = svc.connected_components(skewed, method="afforest",
                                      budget_ms=1e-12)
        r2 = svc.connected_components(skewed, method="afforest",
                                      budget_ms=1e-12)
        assert r1.budget_exceeded and not r1.fallback
        assert r2.cache_hit and r2.budget_exceeded and not r2.fallback
        assert r2.result is r1.result
        assert svc.metrics.fallbacks == 0
        assert svc.metrics.flag_replays == 1

    def test_evicted_fallback_reruns_fallback_only(self, skewed):
        svc = CCService()
        r1 = svc.connected_components(skewed, method="thrifty",
                                      budget_ms=1e-12)
        # evict the fallback's entry; the thrifty entry stays
        fp = r1.fingerprint
        fb_key = result_cache_key(fp, "afforest", svc.machine.name,
                                  AfforestOptions())
        assert svc.cache.invalidate(fb_key)
        r2 = svc.connected_components(skewed, method="thrifty",
                                      budget_ms=1e-12)
        # the contract still promises the fallback result: only the
        # union-find run re-executes (cheaper than primary+fallback)
        assert r2.budget_exceeded and r2.fallback
        assert r2.method == "afforest"
        assert not r2.cache_hit
        assert 0.0 < r2.simulated_ms < r1.simulated_ms
        assert np.array_equal(r1.result.labels, r2.result.labels)
        assert svc.metrics.fallbacks == 2

    def test_fallback_attributed_to_routed_method(self, skewed):
        # regression: the blown primary used to be recorded under
        # union-find, hiding the routing misprediction
        svc = CCService()
        svc.connected_components(skewed, method="thrifty",
                                 budget_ms=1e-12)
        assert svc.metrics.per_method == {"thrifty": 1}
        assert svc.metrics.fallback_per_method == {"afforest": 1}
        snap = svc.metrics.snapshot()
        assert snap["fallback_per_method"] == {"afforest": 1}


class TestRegistryCopyMemo:
    """Equal copies are hashed once each, via a bounded strong-ref memo
    (regression: only the first-registered object was memoized, so a
    client resubmitting its own copy re-hashed per request)."""

    def test_repeat_copy_object_hashes_once(self):
        reg = GraphRegistry()
        original = rmat_graph(7, 8, seed=3)
        copy = rmat_graph(7, 8, seed=3)
        assert reg.register(original) is reg.register(copy)
        assert reg.fingerprint_computations == 2
        for _ in range(5):
            reg.register(copy)
            reg.register(original)
        assert reg.fingerprint_computations == 2

    def test_copy_memo_is_bounded_lru(self):
        reg = GraphRegistry()
        reg.COPY_MEMO_CAPACITY = 2
        reg.register(rmat_graph(7, 8, seed=3))   # the entry's own graph
        copies = [rmat_graph(7, 8, seed=3) for _ in range(3)]
        for g in copies:
            reg.register(g)
        assert reg.fingerprint_computations == 4
        reg.register(copies[2])            # still memoized
        assert reg.fingerprint_computations == 4
        reg.register(copies[0])            # evicted -> re-hash
        assert reg.fingerprint_computations == 5


class TestCacheAccounting:
    def test_peek_is_stat_neutral(self):
        cache = ResultCache(capacity=2)
        key = result_cache_key("fp", "thrifty", "SkylakeX",
                               ThriftyOptions())
        cache.put(key, object())
        assert cache.peek(key) is not None
        missing = result_cache_key("fpX", "thrifty", "SkylakeX",
                                   ThriftyOptions())
        assert cache.peek(missing) is None
        assert cache.hits == 0 and cache.misses == 0

    def test_peek_does_not_refresh_recency(self):
        cache = ResultCache(capacity=2)
        keys = [result_cache_key(f"fp{i}", "thrifty", "SkylakeX",
                                 ThriftyOptions()) for i in range(3)]
        cache.put(keys[0], object())
        cache.put(keys[1], object())
        cache.peek(keys[0])                  # must NOT save it
        cache.put(keys[2], object())
        assert keys[0] not in cache          # still the LRU victim

    def test_touch_refreshes_recency_without_stats(self):
        cache = ResultCache(capacity=2)
        keys = [result_cache_key(f"fp{i}", "thrifty", "SkylakeX",
                                 ThriftyOptions()) for i in range(3)]
        cache.put(keys[0], object())
        cache.put(keys[1], object())
        cache.touch(keys[0])
        cache.put(keys[2], object())
        assert keys[0] in cache and keys[1] not in cache
        assert cache.hits == 0 and cache.misses == 0

    def test_put_existing_key_at_capacity_never_evicts(self):
        cache = ResultCache(capacity=2)
        keys = [result_cache_key(f"fp{i}", "thrifty", "SkylakeX",
                                 ThriftyOptions()) for i in range(2)]
        cache.put(keys[0], object())
        cache.put(keys[1], object())
        replacement = object()
        cache.put(keys[0], replacement)      # replace, not grow
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.peek(keys[0]) is replacement

    def test_invalidate_counts(self):
        cache = ResultCache(capacity=4)
        key = result_cache_key("fp", "thrifty", "SkylakeX",
                               ThriftyOptions())
        assert not cache.invalidate(key)     # absent: not counted
        assert cache.invalidations == 0
        cache.put(key, object())
        assert cache.invalidate(key)
        assert cache.invalidations == 1
        assert key not in cache

    def test_invalidate_fingerprint_drops_all_entries(self):
        cache = ResultCache(capacity=8)
        for method in ("thrifty", "afforest"):
            cache.put(result_cache_key("fpA", method, "SkylakeX", None),
                      object())
        cache.put(result_cache_key("fpB", "thrifty", "SkylakeX", None),
                  object())
        assert cache.invalidate_fingerprint("fpA") == 2
        assert cache.invalidations == 2
        assert len(cache) == 1


class TestMutationStaleness:
    """Regression: an in-place mutation must never serve a stale
    fingerprint from the id memo (the pre-fix bug)."""

    def _thaw(self, graph):
        for arr in (graph.indptr, graph.indices):
            arr.flags.writeable = True

    def test_registered_arrays_are_frozen(self):
        g = rmat_graph(7, 6, seed=31)
        GraphRegistry().register(g)
        with pytest.raises(ValueError):
            g.indices[0] = g.indices[0]

    def test_inplace_mutation_is_detected_not_memoized(self):
        g = rmat_graph(7, 6, seed=32)
        reg = GraphRegistry()
        entry = reg.register(g, name="g")
        fp0 = entry.fingerprint
        assert reg.fingerprint_of(g) == fp0   # clean memo hit
        # Emulate a client writing through a pre-registration view.
        self._thaw(g)
        g.indices[:2] = g.indices[:2][::-1].copy()
        fp1 = reg.fingerprint_of(g)
        assert fp1 != fp0                     # stale memo NOT served
        assert reg.stale_detections == 1
        assert reg.drain_stale() == [fp0]
        assert reg.drain_stale() == []        # drained once
        with pytest.raises(KeyError):
            reg.get(fp0)                      # quarantined
        with pytest.raises(KeyError):
            reg.get("g")                      # alias dropped too

    def test_service_sweeps_quarantined_results(self):
        g = rmat_graph(7, 6, seed=33)
        svc = CCService()
        resp = svc.submit(CCRequest(graph=g, method="afforest"))
        assert len(svc.cache) == 1
        self._thaw(g)
        g.indices[:2] = g.indices[:2][::-1].copy()
        resp2 = svc.submit(CCRequest(graph=g, method="afforest"))
        assert resp2.fingerprint != resp.fingerprint
        assert not resp2.cache_hit            # old result not served
        assert svc.metrics.invalidations == 1
        # Only the new fingerprint's entry remains cached.
        assert all(k[0] == resp2.fingerprint
                   for k in svc.cache._store)

    def test_copy_memo_hit_verifies_token(self):
        reg = GraphRegistry()
        g = rmat_graph(7, 6, seed=34)
        fp0 = reg.fingerprint_of(g)           # unregistered: copy memo
        assert reg.fingerprint_of(g) == fp0
        assert reg.fingerprint_computations == 1
        g.indices[:2] = g.indices[:2][::-1].copy()
        assert reg.fingerprint_of(g) != fp0
        assert reg.fingerprint_computations == 2


class TestDeltaMetrics:
    def test_delta_hit_is_neither_hit_nor_miss(self):
        from repro.service import ServiceMetrics
        m = ServiceMetrics()
        m.record_request("afforest", 1.0, cache_hit=False)
        m.record_request("afforest", 0.1, cache_hit=False,
                         delta_hit=True)
        m.record_request("afforest", 0.0, cache_hit=True)
        assert m.cache_misses == 1
        assert m.delta_hits == 1
        assert m.cache_hits == 1
        assert m.hit_rate == pytest.approx(1 / 3)
        assert m.effective_hit_rate == pytest.approx(2 / 3)
        snap = m.snapshot()
        assert snap["delta_hits"] == 1
        assert snap["invalidations"] == 0

    def test_record_invalidations_accumulates(self):
        from repro.service import ServiceMetrics
        m = ServiceMetrics()
        m.record_invalidations(3)
        m.record_invalidations()
        assert m.invalidations == 4
        assert m.snapshot()["invalidations"] == 4

"""Tests for MatrixMarket and KONECT format support."""

import io

import numpy as np
import pytest

from repro.graph import from_pairs, load
from repro.graph.io import (
    _load_konect,
    _load_matrix_market,
    save_matrix_market,
)


MM_GENERAL = """%%MatrixMarket matrix coordinate pattern general
% a comment
4 4 3
1 2
2 3
4 1
"""

MM_SYMMETRIC = """%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2.5
2 1 1.0
3 2 7.0
"""


class TestMatrixMarket:
    def test_general_parse(self):
        e = _load_matrix_market(io.StringIO(MM_GENERAL))
        assert e.num_vertices == 4
        assert e.num_edges == 3
        assert e.src.tolist() == [0, 1, 3]   # 0-indexed
        assert e.dst.tolist() == [1, 2, 0]

    def test_symmetric_expands(self):
        e = _load_matrix_market(io.StringIO(MM_SYMMETRIC))
        # diagonal entry stays single; off-diagonals mirrored
        assert e.num_edges == 5
        assert e.is_symmetric()

    def test_weights_ignored(self):
        e = _load_matrix_market(io.StringIO(MM_SYMMETRIC))
        assert e.src.dtype == np.int64

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            _load_matrix_market(io.StringIO("1 1 0\n"))

    def test_unsupported_type_rejected(self):
        bad = "%%MatrixMarket matrix array real general\n1 1\n"
        with pytest.raises(ValueError, match="unsupported"):
            _load_matrix_market(io.StringIO(bad))

    def test_roundtrip(self, tmp_path):
        e = from_pairs([(0, 1), (2, 3), (1, 3)])
        path = tmp_path / "g.mtx"
        save_matrix_market(e, path, comment="test graph")
        e2 = _load_matrix_market(path)
        assert sorted(zip(e2.src, e2.dst)) == sorted(zip(e.src, e.dst))

    def test_load_graph_dispatch(self, tmp_path):
        e = from_pairs([(0, 1), (1, 2)])
        path = tmp_path / "g.mtx"
        save_matrix_market(e, path)
        g = load(path)
        assert g.num_vertices == 3
        assert g.has_edge(0, 1)


class TestKonect:
    KONECT = "% sym unweighted\n% 3 4\n1 2\n2 3\n3 4 1 1234567\n"

    def test_parse(self):
        e = _load_konect(io.StringIO(self.KONECT))
        assert e.num_vertices == 4
        assert e.num_edges == 3
        assert e.src.tolist() == [0, 1, 2]

    def test_empty(self):
        e = _load_konect(io.StringIO("% nothing\n"))
        assert e.num_edges == 0

    def test_zero_based_rejected(self):
        with pytest.raises(ValueError, match="1-based"):
            _load_konect(io.StringIO("0 1\n"))

    def test_load_graph_dispatch(self, tmp_path):
        path = tmp_path / "out.testgraph"
        path.write_text(self.KONECT)
        g = load(path)
        assert g.num_vertices == 4
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

"""Tests for K-Level Asynchronous label propagation."""

import numpy as np
import pytest

from repro.core import KLAOptions, kla_cc
from repro.graph.generators import path_graph
from repro.validate import validate_against_reference


class TestKLA:
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_correct_on_zoo(self, k, zoo_graph):
        r = kla_cc(zoo_graph, KLAOptions(k=k))
        validate_against_reference(zoo_graph, r)

    def test_k1_is_synchronous(self):
        """k=1 supersteps equal the synchronous iteration count."""
        g = path_graph(30)
        r = kla_cc(g, KLAOptions(k=1, zero_planting=False))
        # Path 0..29 with identity labels: 29 propagation rounds + the
        # final no-change round.
        assert r.num_iterations == 30

    def test_supersteps_shrink_with_k(self, small_skewed):
        steps = [kla_cc(small_skewed, KLAOptions(k=k)).num_iterations
                 for k in (1, 4, 16)]
        assert steps[0] >= steps[1] >= steps[2]
        assert steps[0] > steps[2]

    def test_k_bounds_inner_hops(self):
        g = path_graph(64)
        r1 = kla_cc(g, KLAOptions(k=1, zero_planting=False))
        r8 = kla_cc(g, KLAOptions(k=8, zero_planting=False))
        # k=8 needs ~1/8 of the barriers.
        assert r8.num_iterations <= r1.num_iterations // 4

    def test_edge_work_bounded(self, small_skewed):
        """Asynchrony must not blow up total edge work."""
        e1 = kla_cc(small_skewed,
                    KLAOptions(k=1)).counters().edges_processed
        e16 = kla_cc(small_skewed,
                     KLAOptions(k=16)).counters().edges_processed
        assert e16 <= 1.5 * e1

    def test_zero_convergence_cuts_edges(self, small_skewed):
        with_zc = kla_cc(small_skewed, KLAOptions(k=4))
        without = kla_cc(small_skewed,
                         KLAOptions(k=4, zero_convergence=False))
        assert with_zc.counters().edges_processed < \
            without.counters().edges_processed

    def test_empty_graph(self):
        from repro.graph import CSRGraph
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        assert kla_cc(g).labels.size == 0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            KLAOptions(k=0)

    def test_algorithm_name_carries_k(self, triangle):
        assert kla_cc(triangle,
                      KLAOptions(k=3)).algorithm == "kla-lp[k=3]"

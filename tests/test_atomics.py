"""Tests for atomic-min emulation."""

import numpy as np
import pytest

from repro.parallel import atomic_min, batch_atomic_min, \
    batch_atomic_min_count


class TestScalarAtomicMin:
    def test_lowers_and_reports(self):
        a = np.array([5, 5, 5])
        assert atomic_min(a, 1, 3)
        assert a[1] == 3

    def test_no_change_when_larger(self):
        a = np.array([2])
        assert not atomic_min(a, 0, 7)
        assert a[0] == 2

    def test_equal_is_no_change(self):
        a = np.array([4])
        assert not atomic_min(a, 0, 4)


class TestBatchAtomicMin:
    def test_matches_sequential_replay(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a1 = rng.integers(0, 50, size=30).astype(np.int64)
            a2 = a1.copy()
            idx = rng.integers(0, 30, size=100)
            val = rng.integers(0, 50, size=100).astype(np.int64)
            changed = batch_atomic_min(a1, idx, val)
            seq_changed = set()
            for i, v in zip(idx, val):
                if v < a2[i]:
                    a2[i] = v
                    seq_changed.add(int(i))
            assert np.array_equal(a1, a2)
            assert set(changed.tolist()) == seq_changed

    def test_duplicate_targets_resolve_to_min(self):
        a = np.array([10], dtype=np.int64)
        changed = batch_atomic_min(a, np.array([0, 0, 0]),
                                   np.array([7, 3, 5]))
        assert a[0] == 3
        assert changed.tolist() == [0]

    def test_empty_batch(self):
        a = np.array([1])
        changed = batch_atomic_min(a, np.empty(0, np.int64),
                                   np.empty(0, np.int64))
        assert changed.size == 0

    def test_shape_mismatch(self):
        a = np.array([1])
        with pytest.raises(ValueError, match="equal shapes"):
            batch_atomic_min(a, np.array([0]), np.array([1, 2]))

    def test_count_variant(self):
        a = np.array([9, 9, 9], dtype=np.int64)
        changed, count = batch_atomic_min_count(
            a, np.array([0, 1, 1]), np.array([1, 2, 3]))
        assert count == 2
        assert set(changed.tolist()) == {0, 1}

    def test_count_includes_winning_duplicates(self):
        # Cell 0 ends at 3; attempts carrying 3 are the changed write
        # plus one duplicate that raced the same winning value.
        a = np.array([9], dtype=np.int64)
        changed, count = batch_atomic_min_count(
            a, np.array([0, 0, 0]), np.array([3, 5, 3]))
        assert changed.tolist() == [0]
        assert count == 2

    def test_count_mixed_cells_and_duplicates(self):
        a = np.array([10, 10], dtype=np.int64)
        changed, count = batch_atomic_min_count(
            a, np.array([0, 0, 1, 1, 1]), np.array([4, 4, 7, 9, 7]))
        assert set(changed.tolist()) == {0, 1}
        assert count == 4   # two winning attempts per cell

    def test_count_ignores_unchanged_cells(self):
        # An attempt equal to an already-minimal cell is a no-op, not
        # a winning duplicate: the cell never changed.
        a = np.array([1, 5], dtype=np.int64)
        changed, count = batch_atomic_min_count(
            a, np.array([0, 1]), np.array([1, 2]))
        assert changed.tolist() == [1]
        assert count == 1

    def test_count_empty(self):
        a = np.array([2], dtype=np.int64)
        changed, count = batch_atomic_min_count(
            a, np.empty(0, np.int64), np.empty(0, np.int64))
        assert changed.size == 0 and count == 0

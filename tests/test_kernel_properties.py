"""Property tests: vectorized pull kernels vs naive per-vertex loops.

The engine trusts :func:`segment_min` / :func:`pull_block` /
:func:`zero_cut_scan_lengths` to be exact batch equivalents of the
paper's sequential C loops; these tests check them against direct
per-vertex Python references over randomized graphs, labels with many
zeros (Zero Convergence's steady state), empty rows, single-vertex
blocks and block size one.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.backends import available_backends, get_backend
from repro.graph import build_graph, from_pairs

# Every registered backend must pass the identical sweep: the numpy
# implementations are the ground truth the properties encode, and any
# compiled backend must be bit-identical to them.
pytestmark = pytest.mark.parametrize("backend", available_backends())


@st.composite
def graph_labels_block(draw, max_vertices=20, max_edges=50):
    """A small graph, a zero-heavy labels array, and a block [lo, hi)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m))
    g = build_graph(from_pairs(pairs, n), drop_zero_degree=False)
    labels = np.array(
        draw(st.lists(st.integers(0, 4), min_size=n, max_size=n)),
        dtype=np.int64)
    lo = draw(st.integers(0, n - 1))
    hi = draw(st.integers(lo, n))
    return g, labels, lo, hi


def naive_pull(g, labels, lo, hi):
    new = labels[lo:hi].copy()
    for i, v in enumerate(range(lo, hi)):
        for u in g.neighbors(v):
            new[i] = min(new[i], labels[u])
    return new


def naive_scan_lengths(g, labels, lo, hi):
    out = []
    for v in range(lo, hi):
        if labels[v] == 0:
            out.append(0)
            continue
        scanned = 0
        for u in g.neighbors(v):
            scanned += 1
            if labels[u] == 0:
                break
        out.append(scanned)
    return np.array(out, dtype=np.int64)


@settings(max_examples=150, deadline=None)
@given(graph_labels_block())
def test_pull_block_matches_naive(backend, case):
    g, labels, lo, hi = case
    new, changed = get_backend(backend).pull_block(g, labels, lo, hi)
    ref = naive_pull(g, labels, lo, hi)
    assert np.array_equal(new, ref)
    assert np.array_equal(changed, ref < labels[lo:hi])


@settings(max_examples=150, deadline=None)
@given(graph_labels_block())
def test_zero_cut_scan_matches_naive(backend, case):
    g, labels, lo, hi = case
    kb = get_backend(backend)
    assert np.array_equal(kb.zero_cut_scan_lengths(g, labels, lo, hi),
                          naive_scan_lengths(g, labels, lo, hi))


@settings(max_examples=150, deadline=None)
@given(graph_labels_block())
def test_single_vertex_blocks_agree_with_full_block(backend, case):
    """block_size=1: per-vertex kernel calls compose to the full-block
    result (pull reads a snapshot, so composition is exact)."""
    g, labels, lo, hi = case
    kb = get_backend(backend)
    full_new, _ = kb.pull_block(g, labels, lo, hi)
    full_scan = kb.zero_cut_scan_lengths(g, labels, lo, hi)
    for v in range(lo, hi):
        one_new, _ = kb.pull_block(g, labels, v, v + 1)
        assert one_new[0] == full_new[v - lo]
        one_scan = kb.zero_cut_scan_lengths(g, labels, v, v + 1)
        assert one_scan[0] == full_scan[v - lo]


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 9), min_size=0, max_size=40),
       st.lists(st.integers(0, 40), min_size=2, max_size=10),
       st.integers(50, 60))
def test_segment_min_matches_naive(backend, values, cuts, fill_value):
    """Contiguous CSR-style segments, including empty ones.

    CSR rows tile their slice: the final segment always ends at the
    last value (pull_block slices ``indices[s0:s1]`` exactly), so the
    cut list is closed with ``values.size``.
    """
    values = np.array(values, dtype=np.int64)
    cuts = np.array(sorted(min(c, values.size) for c in cuts)
                    + [values.size], dtype=np.int64)
    starts, ends = cuts[:-1], cuts[1:]
    fill = np.full(starts.size, fill_value, dtype=np.int64)
    out = get_backend(backend).segment_min(values, starts, ends, fill)
    for i, (s, e) in enumerate(zip(starts, ends)):
        seg = values[s:e]
        expect = min(int(seg.min()), fill_value) if seg.size \
            else fill_value
        assert out[i] == expect


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(-5, 5), min_size=0, max_size=40),
       st.lists(st.integers(0, 40), min_size=2, max_size=10))
def test_blockwise_sums_matches_naive(backend, values, cuts):
    values = np.array(values, dtype=np.int64)
    cuts = np.array(sorted(min(c, values.size) for c in cuts),
                    dtype=np.int64)
    starts, ends = cuts[:-1], cuts[1:]
    out = get_backend(backend).blockwise_sums(values, starts, ends)
    for i, (s, e) in enumerate(zip(starts, ends)):
        assert out[i] == int(values[s:e].sum())


def test_all_zero_labels_scan_nothing(backend):
    g = build_graph(from_pairs([(0, 1), (1, 2), (2, 3)], 4),
                    drop_zero_degree=False)
    labels = np.zeros(4, dtype=np.int64)
    kb = get_backend(backend)
    assert kb.zero_cut_scan_lengths(g, labels, 0, 4).tolist() == [0] * 4
    new, changed = kb.pull_block(g, labels, 0, 4)
    assert not changed.any()


def test_empty_rows_scan_zero_edges(backend):
    # Vertices 2 and 3 are isolated: scans touch no edges and the pull
    # keeps their labels.
    g = build_graph(from_pairs([(0, 1)], 4), drop_zero_degree=False)
    labels = np.array([3, 2, 5, 7], dtype=np.int64)
    kb = get_backend(backend)
    assert kb.zero_cut_scan_lengths(g, labels, 2, 4).tolist() == [0, 0]
    new, changed = kb.pull_block(g, labels, 2, 4)
    assert new.tolist() == [5, 7] and not changed.any()

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "Pkc"])
        assert args.method == "thrifty"
        assert args.machine == "SkylakeX"

    def test_bad_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "Pkc", "--method", "x"])

    def test_bad_method_error_lists_auto(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "Pkc", "--method", "x"])
        assert "auto" in capsys.readouterr().err

    def test_auto_method_accepted(self):
        args = build_parser().parse_args(["run", "Pkc",
                                          "--method", "auto"])
        assert args.method == "auto"

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("GBRd", "Pkc", "ClWb9"):
            assert name in out

    def test_run_on_surrogate(self, capsys):
        assert main(["run", "Pkc", "--method", "afforest",
                     "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "components" in out
        assert "simulated time" in out

    def test_run_on_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n3 4\n")
        assert main(["run", str(path)]) == 0
        assert "components         : 2" in capsys.readouterr().out

    def test_generate_txt(self, tmp_path, capsys):
        out_path = tmp_path / "pkc.txt"
        assert main(["generate", "Pkc", str(out_path),
                     "--scale", "0.1"]) == 0
        assert out_path.exists()

    def test_generate_npz_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "pkc.npz"
        assert main(["generate", "Pkc", str(out_path),
                     "--scale", "0.1"]) == 0
        capsys.readouterr()
        assert main(["run", str(out_path)]) == 0
        assert "components" in capsys.readouterr().out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "vertices_pct" in out

    def test_run_auto_routes(self, capsys):
        assert main(["run", "Pkc", "--method", "auto",
                     "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "algorithm          : thrifty" in out

    def test_run_with_typed_opt(self, capsys):
        assert main(["run", "Pkc", "--method", "thrifty",
                     "--scale", "0.1", "--opt", "threshold=0.05"]) == 0
        assert "components" in capsys.readouterr().out

    def test_run_distributed(self, capsys):
        assert main(["run", "Pkc", "--method", "distributed",
                     "--scale", "0.1", "--opt", "num_ranks=4",
                     "--opt", "partition=degree_balanced"]) == 0
        out = capsys.readouterr().out
        assert "algorithm          : distributed-lp" in out
        assert "ranks              : 4" in out
        assert "supersteps" in out and "modeled bytes" in out
        assert "distributed time" in out

    def test_unknown_opt_field_exits(self):
        with pytest.raises(SystemExit, match="valid options"):
            main(["run", "Pkc", "--method", "thrifty",
                  "--scale", "0.1", "--opt", "bogus=1"])

    def test_auto_with_opt_exits(self):
        with pytest.raises(SystemExit, match="auto"):
            main(["run", "Pkc", "--method", "auto",
                  "--scale", "0.1", "--opt", "threshold=0.05"])


class TestServeCommand:
    def test_serve_repeats_hit_cache(self, capsys):
        assert main(["serve", "Pkc", "--scale", "0.1",
                     "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "hit_rate=0.50" in out
        assert "hit" in out and "miss" in out

    def test_serve_unknown_dataset_exits(self):
        with pytest.raises(SystemExit, match="unknown dataset"):
            main(["serve", "NotADataset"])

    def test_serve_edge_budget_routes_distributed(self, capsys):
        assert main(["serve", "Pkc", "--scale", "0.05",
                     "--edge-budget", "1", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "distributed" in out


class TestTrialsCommand:
    def test_trials_on_surrogate(self, capsys):
        from repro.cli import main
        assert main(["trials", "Pkc", "--method", "jt",
                     "--trials", "2", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "2 verified trials" in out
        assert "simulated ms" in out


class TestTraceFlag:
    def test_run_with_trace(self, capsys):
        from repro.cli import main
        assert main(["run", "Pkc", "--scale", "0.15", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "initial-push" in out
        assert "converged %" in out

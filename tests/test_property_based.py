"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import ALGORITHMS, ThriftyOptions, connected_components
from repro.graph import build_graph, from_pairs
from repro.options import options_for
from repro.graph.coo import dedup, symmetrize
from repro.graph.properties import component_labels_reference
from repro.parallel import batch_atomic_min, edge_balanced_partitions
from repro.validate import canonicalize, same_partition


@st.composite
def edge_lists(draw, max_vertices=24, max_edges=60):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m))
    return pairs, n


@st.composite
def graphs(draw):
    pairs, n = draw(edge_lists())
    return build_graph(from_pairs(pairs, n), drop_zero_degree=False)


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_all_algorithms_agree_with_scipy(g):
    """Fundamental: every algorithm partitions exactly like the oracle."""
    ref = component_labels_reference(g)
    for method in ALGORITHMS:
        if method in ("thrifty", "dolp", "unified"):
            result = connected_components(
                g, method, options=options_for(method, num_threads=2))
        else:
            result = connected_components(g, method)
        assert same_partition(result.labels, ref), method


@settings(max_examples=60, deadline=None)
@given(graphs(), st.floats(0.005, 0.9), st.integers(1, 8),
       st.integers(1, 16))
def test_thrifty_parameter_space(g, threshold, threads, block_size):
    """Thrifty is correct for any threshold/threads/block size."""
    ref = component_labels_reference(g)
    result = connected_components(
        g, "thrifty",
        options=ThriftyOptions(threshold=threshold, num_threads=threads,
                               block_size=block_size))
    assert same_partition(result.labels, ref)


@settings(max_examples=50, deadline=None)
@given(edge_lists())
def test_symmetrize_is_involution_after_dedup(pairs_n):
    pairs, n = pairs_n
    e = from_pairs(pairs, n)
    s1 = symmetrize(e)
    s2 = symmetrize(s1)
    assert s1.num_edges == s2.num_edges
    assert s1.is_symmetric()


@settings(max_examples=50, deadline=None)
@given(edge_lists())
def test_dedup_idempotent(pairs_n):
    pairs, n = pairs_n
    e = dedup(from_pairs(pairs, n))
    assert dedup(e).num_edges == e.num_edges


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 50), min_size=1, max_size=80))
def test_canonicalize_idempotent_and_partition_preserving(labels):
    arr = np.array(labels)
    canon = canonicalize(arr)
    assert np.array_equal(canonicalize(canon), canon)
    # Same partition as the input.
    assert same_partition(arr, canon)


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 40), st.data())
def test_batch_atomic_min_equals_sequential(n, data):
    array = np.array(
        data.draw(st.lists(st.integers(0, 100), min_size=n, max_size=n)),
        dtype=np.int64)
    k = data.draw(st.integers(0, 60))
    idx = np.array(data.draw(st.lists(st.integers(0, n - 1),
                                      min_size=k, max_size=k)),
                   dtype=np.int64)
    val = np.array(data.draw(st.lists(st.integers(0, 100),
                                      min_size=k, max_size=k)),
                   dtype=np.int64)
    a = array.copy()
    changed = batch_atomic_min(a, idx, val)
    b = array.copy()
    seq = set()
    for i, v in zip(idx, val):
        if v < b[i]:
            b[i] = v
            seq.add(int(i))
    assert np.array_equal(a, b)
    assert set(changed.tolist()) == seq


@settings(max_examples=40, deadline=None)
@given(graphs(), st.integers(1, 8), st.integers(1, 8))
def test_partition_bounds_invariants(g, threads, ppt):
    p = edge_balanced_partitions(g, threads, partitions_per_thread=ppt)
    assert p.bounds[0] == 0
    assert p.bounds[-1] == g.num_vertices
    assert np.all(np.diff(p.bounds) >= 0)
    assert int(p.edge_counts(g).sum()) == g.num_edges


@settings(max_examples=30, deadline=None)
@given(graphs())
def test_iteration_traces_account_all_edge_work(g):
    """Trace totals equal the sum of per-iteration deltas."""
    result = connected_components(
        g, "thrifty", options=ThriftyOptions(num_threads=2))
    total = result.counters()
    summed = sum(r.counters.edges_processed
                 for r in result.trace.iterations)
    assert total.edges_processed == summed

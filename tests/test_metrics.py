"""LatencyHistogram: bucketing, quantiles, merging."""

import pytest

from repro.instrument import LatencyHistogram


class TestLatencyHistogram:
    def test_empty_summary(self):
        h = LatencyHistogram()
        s = h.summary()
        assert s["count"] == 0
        assert s["mean_ms"] == 0.0 and s["p99_ms"] == 0.0

    def test_observe_updates_scalars(self):
        h = LatencyHistogram()
        for ms in (0.5, 2.0, 8.0):
            h.observe(ms)
        assert h.count == 3
        assert h.mean_ms == pytest.approx(3.5)
        assert h.min_ms == 0.5 and h.max_ms == 8.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().observe(-1.0)

    def test_quantiles_bucket_granular(self):
        h = LatencyHistogram()
        for _ in range(99):
            h.observe(0.01)
        h.observe(100.0)
        # p50 sits in the 0.01ms bucket; its upper bound is within 2x.
        assert h.quantile(0.5) <= 0.02
        assert h.quantile(1.0) == 100.0

    def test_quantile_domain(self):
        h = LatencyHistogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_zero_latency_lands_in_first_bucket(self):
        h = LatencyHistogram()
        h.observe(0.0)
        assert h.count == 1
        assert h.quantile(1.0) == 0.0

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.observe(1.0)
        b.observe(4.0)
        b.observe(16.0)
        a.merge(b)
        assert a.count == 3
        assert a.total_ms == pytest.approx(21.0)
        assert a.max_ms == 16.0

    def test_nonzero_buckets_ascending(self):
        h = LatencyHistogram()
        for ms in (0.002, 0.002, 30.0):
            h.observe(ms)
        buckets = h.nonzero_buckets()
        assert sum(c for _, c in buckets) == 3
        bounds = [b for b, _ in buckets]
        assert bounds == sorted(bounds)

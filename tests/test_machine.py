"""Tests for MachineSpec."""

import pytest

from repro.parallel import EPYC, MACHINES, SKYLAKEX, MachineSpec


class TestPaperMachines:
    def test_table3_skylakex(self):
        assert SKYLAKEX.cores == 32
        assert SKYLAKEX.numa_nodes == 2
        assert SKYLAKEX.frequency_ghz == pytest.approx(2.10)

    def test_table3_epyc(self):
        assert EPYC.cores == 128
        assert EPYC.numa_nodes == 8
        assert EPYC.memory_gb == 2048

    def test_registry(self):
        assert set(MACHINES) == {"SkylakeX", "Epyc"}

    def test_total_l3(self):
        # 2 sockets x 22 MB per 16-core group.
        assert SKYLAKEX.total_l3_mb == pytest.approx(44.0)
        # 128 cores / 4 cores per CCX x 16 MB.
        assert EPYC.total_l3_mb == pytest.approx(512.0)


class TestTopology:
    def test_numa_node_of(self):
        assert SKYLAKEX.numa_node_of(0) == 0
        assert SKYLAKEX.numa_node_of(16) == 1
        assert EPYC.numa_node_of(127) == 7

    def test_numa_node_bounds(self):
        with pytest.raises(ValueError):
            SKYLAKEX.numa_node_of(32)

    def test_cores_per_node(self):
        assert SKYLAKEX.cores_per_numa_node == 16
        assert EPYC.cores_per_numa_node == 16


class TestEffectiveParallelism:
    def test_capped_by_cores(self):
        assert SKYLAKEX.effective_parallelism(10**9) \
            <= SKYLAKEX.cores

    def test_capped_by_work(self):
        p = SKYLAKEX.effective_parallelism(3, grain=1)
        assert p <= 3

    def test_at_least_one(self):
        assert SKYLAKEX.effective_parallelism(0) == 1.0
        assert SKYLAKEX.effective_parallelism(1, grain=100) >= 1.0

    def test_grain_respected(self):
        small = SKYLAKEX.effective_parallelism(4096, grain=4096)
        big = SKYLAKEX.effective_parallelism(4096 * 32, grain=4096)
        assert big > small


class TestValidation:
    def test_cores_divide_numa(self):
        with pytest.raises(ValueError, match="divide"):
            MachineSpec("bad", cores=10, numa_nodes=3,
                        frequency_ghz=2.0, l1_kb_per_core=32,
                        l2_kb_per_core=512, l3_mb_per_group=8,
                        cores_per_l3_group=4, memory_gb=64)

    def test_efficiency_bounds(self):
        with pytest.raises(ValueError, match="efficiency"):
            MachineSpec("bad", cores=4, numa_nodes=1,
                        frequency_ghz=2.0, l1_kb_per_core=32,
                        l2_kb_per_core=512, l3_mb_per_group=8,
                        cores_per_l3_group=4, memory_gb=64,
                        parallel_efficiency=0.0)

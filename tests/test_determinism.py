"""Determinism guarantees: every run is bit-reproducible."""

import doctest

import numpy as np

import repro
from repro import connected_components
from repro.distributed import DistributedOptions, distributed_cc
from repro.options import options_for
from repro.graph import rmat_graph


class TestBitReproducibility:
    def test_thrifty_identical_twice(self, small_skewed):
        a = connected_components(small_skewed, "thrifty")
        b = connected_components(small_skewed, "thrifty")
        assert np.array_equal(a.labels, b.labels)
        assert a.num_iterations == b.num_iterations
        assert [r.counters.edges_processed
                for r in a.trace.iterations] == \
               [r.counters.edges_processed for r in b.trace.iterations]

    def test_seeded_algorithms_reproducible(self, small_skewed):
        for method in ("jt", "afforest"):
            opts = options_for(method, seed=7)
            a = connected_components(small_skewed, method, options=opts)
            b = connected_components(small_skewed, method, options=opts)
            assert np.array_equal(a.labels, b.labels)
            assert a.counters().as_dict() == b.counters().as_dict()

    def test_distributed_comm_stats_reproducible(self, small_skewed):
        for algorithm in ("lp", "fastsv"):
            opts = DistributedOptions(num_ranks=4, algorithm=algorithm)
            a = distributed_cc(small_skewed, opts)
            b = distributed_cc(small_skewed, opts)
            assert (a.extras["comm"].as_dict()
                    == b.extras["comm"].as_dict())
            assert np.array_equal(a.labels, b.labels)

    def test_generators_reproducible(self):
        a = rmat_graph(9, 8, seed=42)
        b = rmat_graph(9, 8, seed=42)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)

    def test_dataset_surrogates_stable(self):
        # load() memoizes dataset names, so force two distinct builds.
        from repro.graph.datasets import DATASETS
        a = DATASETS["Pkc"].build(0.2)
        b = DATASETS["Pkc"].build(0.2)
        assert np.array_equal(a.indices, b.indices)


class TestDocExamples:
    def test_package_doctest(self):
        """The usage example in the package docstring must run."""
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 1

"""Tests for the simulated-time cost model."""

import pytest

from repro.instrument import (
    CostModel,
    Direction,
    IterationRecord,
    OpCounters,
    RunTrace,
    simulate_run_time,
)
from repro.parallel import EPYC, SKYLAKEX


def record(edges, vertices=100):
    c = OpCounters()
    c.record_pull_scan(edges, vertices)
    c.iterations = 1
    return IterationRecord(index=0, direction=Direction.PULL, density=1.0,
                           active_vertices=vertices, active_edges=edges,
                           changed_vertices=0, converged_fraction=0.0,
                           counters=c)


class TestIterationTime:
    def test_positive_even_for_empty_iteration(self):
        cm = CostModel(SKYLAKEX, 1000)
        assert cm.iteration_ms(OpCounters()) > 0.0   # barrier floor

    def test_monotone_in_work(self):
        cm = CostModel(SKYLAKEX, 10**6)
        small = cm.iteration_ms(record(10_000).counters)
        big = cm.iteration_ms(record(10_000_000).counters)
        # 1000x the work; parallelism absorbs some, but well over 50x.
        assert big > 50 * small

    def test_parallel_speedup_for_big_work(self):
        """128 Epyc cores beat 32 SkylakeX cores on huge iterations."""
        rec = record(50_000_000, 1_000_000)
        sk = CostModel(SKYLAKEX, 10**6).iteration_ms(rec.counters)
        ep = CostModel(EPYC, 10**6).iteration_ms(rec.counters)
        assert ep < sk

    def test_tiny_work_gets_no_parallel_credit(self):
        """A 100-edge push cannot use 128 cores."""
        rec = record(100, 10)
        sk = CostModel(SKYLAKEX, 10**6).iteration_ms(rec.counters)
        ep = CostModel(EPYC, 10**6).iteration_ms(rec.counters)
        # Epyc is not meaningfully faster here (same serial work,
        # slightly slower clock, bigger barrier).
        assert ep >= sk * 0.8

    def test_dependent_accesses_cost_more(self):
        cm = CostModel(SKYLAKEX, 10**8)
        gather = OpCounters(random_accesses=10**6)
        chase = OpCounters(dependent_accesses=10**6)
        assert cm.iteration_cycles(chase) > 3 * cm.iteration_cycles(gather)


class TestRunTime:
    def make_trace(self):
        t = RunTrace("x")
        t.setup_counters.sequential_accesses = 1000
        t.add(record(5000))
        t.add(record(100))
        return t

    def test_total_is_setup_plus_iterations(self):
        t = self.make_trace()
        timed = simulate_run_time(t, SKYLAKEX, 10**5)
        assert timed.total_ms == pytest.approx(
            sum(timed.per_iteration_ms)
            + CostModel(SKYLAKEX, 10**5).iteration_ms(t.setup_counters))

    def test_per_iteration_count(self):
        timed = simulate_run_time(self.make_trace(), SKYLAKEX, 10**5)
        assert timed.num_iterations == 2
        assert timed.machine == "SkylakeX"

    def test_empty_trace(self):
        timed = simulate_run_time(RunTrace("x"), EPYC, 10)
        assert timed.per_iteration_ms == []
        assert timed.total_ms >= 0.0


class TestThreadCappedModel:
    def test_num_threads_validation(self):
        with pytest.raises(ValueError):
            CostModel(SKYLAKEX, 100, num_threads=0)
        with pytest.raises(ValueError):
            CostModel(SKYLAKEX, 100, num_threads=33)

    def test_fewer_threads_never_faster(self):
        rec = record(1_000_000, 10_000)
        times = [CostModel(SKYLAKEX, 10**6,
                           num_threads=t).iteration_ms(rec.counters)
                 for t in (1, 4, 16, 32)]
        for a, b in zip(times, times[1:]):
            assert b <= a * 1.001

    def test_default_uses_all_cores(self):
        rec = record(1_000_000, 10_000)
        default = CostModel(SKYLAKEX, 10**6).iteration_ms(rec.counters)
        full = CostModel(SKYLAKEX, 10**6,
                         num_threads=32).iteration_ms(rec.counters)
        assert default == pytest.approx(full)

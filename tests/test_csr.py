"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.graph import CSRGraph, build_graph, from_pairs


def cycle4() -> CSRGraph:
    return build_graph(from_pairs([(0, 1), (1, 2), (2, 3), (3, 0)]),
                       drop_zero_degree=False)


class TestConstruction:
    def test_from_edge_list_roundtrip(self):
        g = cycle4()
        el = g.to_edge_list()
        g2 = CSRGraph.from_edge_list(el)
        assert np.array_equal(g.indptr, g2.indptr)
        assert np.array_equal(g.indices, g2.indices)

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_indptr_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]))

    def test_indices_length_checked(self):
        with pytest.raises(ValueError, match="entries"):
            CSRGraph(np.array([0, 2]), np.array([0]))

    def test_neighbour_range_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_empty_indptr_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            CSRGraph(np.empty(0, np.int64), np.empty(0, np.int64))

    def test_indices_dtype_compact(self):
        g = cycle4()
        assert g.indices.dtype == np.int32

    def test_vertexless_graph(self):
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        assert g.num_vertices == 0
        assert g.num_edges == 0


class TestShape:
    def test_counts(self):
        g = cycle4()
        assert g.num_vertices == 4
        assert g.num_edges == 8
        assert g.num_undirected_edges == 4

    def test_degrees(self):
        g = cycle4()
        assert np.array_equal(g.degrees, [2, 2, 2, 2])
        assert g.degree(0) == 2

    def test_degrees_cached_and_readonly(self):
        g = cycle4()
        d1 = g.degrees
        assert g.degrees is d1
        with pytest.raises(ValueError):
            d1[0] = 99

    def test_neighbors_sorted(self):
        g = build_graph(from_pairs([(0, 3), (0, 1), (0, 2)]),
                        drop_zero_degree=False)
        assert np.array_equal(g.neighbors(0), [1, 2, 3])

    def test_neighbors_is_view(self):
        g = cycle4()
        assert g.neighbors(1).base is g.indices

    def test_has_edge(self):
        g = cycle4()
        assert g.has_edge(0, 1)
        assert g.has_edge(3, 0)
        assert not g.has_edge(0, 2)

    def test_edge_sources_matches_degrees(self):
        g = cycle4()
        src = g.edge_sources()
        assert np.array_equal(np.bincount(src), g.degrees)


class TestMaxDegree:
    def test_hub_found(self):
        g = build_graph(from_pairs([(0, 1), (0, 2), (0, 3), (1, 2)]),
                        drop_zero_degree=False)
        assert g.max_degree_vertex() == 0

    def test_tie_breaks_to_lowest_id(self):
        g = cycle4()   # all degree 2
        assert g.max_degree_vertex() == 0

    def test_empty_graph_raises(self):
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        with pytest.raises(ValueError, match="empty"):
            g.max_degree_vertex()


class TestRowNormalization:
    def test_unsorted_rows_normalized(self):
        # Constructor must restore the sorted-adjacency invariant.
        g = CSRGraph(np.array([0, 2, 4]), np.array([1, 0, 1, 0]))
        assert np.array_equal(g.neighbors(0), [0, 1])
        assert np.array_equal(g.neighbors(1), [0, 1])

    def test_dust_builder_rows_sorted(self):
        from repro.graph.generators import star_graph, \
            with_dust_components, with_tendrils
        g = with_tendrils(with_dust_components(star_graph(20), 6,
                                               seed=3),
                          4, min_depth=3, max_depth=6, seed=3)
        for v in range(g.num_vertices):
            nbrs = g.neighbors(v)
            assert np.all(np.diff(nbrs) >= 0), v

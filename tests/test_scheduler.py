"""Tests for the deterministic work-stealing scheduler."""

import numpy as np
import pytest

from repro.graph.generators import path_graph
from repro.parallel import (
    EPYC,
    SKYLAKEX,
    WorkStealingScheduler,
    edge_balanced_partitions,
)


def make_sched(num_threads=4, ppt=4, n=2000):
    g = path_graph(n)
    p = edge_balanced_partitions(g, num_threads,
                                 partitions_per_thread=ppt)
    return WorkStealingScheduler(p, SKYLAKEX), p


class TestSchedule:
    def test_every_partition_exactly_once(self):
        sched, p = make_sched()
        order = sched.partition_order()
        assert sorted(order.tolist()) == list(range(p.num_partitions))

    def test_deterministic(self):
        s1, _ = make_sched()
        s2, _ = make_sched()
        assert np.array_equal(s1.partition_order(), s2.partition_order())

    def test_no_steals_with_equal_work(self):
        sched, _ = make_sched()
        assert not any(s.stolen for s in sched.schedule())

    def test_own_partitions_ascending(self):
        sched, p = make_sched()
        steps = sched.schedule()
        for t in range(p.num_threads):
            own = [s.partition_id for s in steps
                   if s.thread_id == t and not s.stolen]
            assert own == sorted(own)

    def test_stealing_under_imbalance(self):
        sched, p = make_sched(num_threads=2, ppt=4)
        # Thread 0's partitions are 100x heavier.
        work = np.ones(p.num_partitions)
        work[:4] = 100.0
        steps = sched.schedule(work)
        stolen = [s for s in steps if s.stolen]
        assert stolen, "imbalanced work must trigger steals"
        # Steals take the victim's highest-numbered unclaimed partition.
        assert stolen[0].partition_id == 3

    def test_makespan_bounds(self):
        sched, p = make_sched(num_threads=4, ppt=2)
        work = np.arange(1.0, p.num_partitions + 1)
        serial = float(work.sum())
        span = sched.makespan(work)
        assert span <= serial
        assert span >= serial / p.num_threads

    def test_work_validation(self):
        sched, p = make_sched()
        with pytest.raises(ValueError, match="one entry"):
            sched.schedule(np.ones(3))
        with pytest.raises(ValueError, match="non-negative"):
            sched.schedule(np.full(p.num_partitions, -1.0))

    def test_too_many_threads_rejected(self):
        g = path_graph(100)
        p = edge_balanced_partitions(g, 64, partitions_per_thread=1)
        with pytest.raises(ValueError, match="exceed"):
            WorkStealingScheduler(p, SKYLAKEX)   # 64 > 32 cores

    def test_numa_local_victim_preferred(self):
        # Epyc: 8 NUMA nodes, 16 cores each. Thread 1 (node 0) should
        # steal from thread 0 (node 0) over thread 16 (node 1) when
        # both have equal leftover work.
        g = path_graph(20_000)
        p = edge_balanced_partitions(g, 32, partitions_per_thread=2)
        sched = WorkStealingScheduler(p, EPYC)
        work = np.ones(p.num_partitions)
        # Make thread 1 finish instantly, thread 0 and 16 slow.
        work[2:4] = 0.001          # thread 1's own partitions
        work[0:2] = 50.0           # thread 0
        work[32:34] = 50.0         # thread 16
        steps = sched.schedule(work)
        first_steal = next(s for s in steps
                           if s.stolen and s.thread_id == 1)
        victim_partition = first_steal.partition_id
        assert p.owner_of(victim_partition) // (32 // 8) == 0, \
            "thread 1 should steal within its NUMA node"

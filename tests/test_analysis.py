"""Tests for the wavefront analysis and reordering utilities."""

import numpy as np
import pytest

from repro.analysis import (
    bfs_relabel,
    degree_sort_relabel,
    hub_cluster_relabel,
    hub_distance_profile,
    random_relabel,
    relabel,
    wavefront_statistics,
)
from repro.graph import component_labels_reference
from repro.graph.generators import path_graph, rmat_graph, star_graph
from repro.validate import same_partition


class TestWavefrontStatistics:
    def test_path_repeated_wavefronts(self):
        """On a path labelled 0..n-1, vertex k updates k times: each
        smaller label sweeps past it — the Section III-A pathology."""
        g = path_graph(8)
        ws = wavefront_statistics(g)
        assert ws.max_updates == 7
        assert ws.update_histogram[7] == 1   # the far endpoint
        assert ws.overwrite_fraction > 0.5

    def test_star_no_overwrites(self):
        """A star converges in one round; nothing is overwritten."""
        ws = wavefront_statistics(star_graph(10))
        assert ws.max_updates == 1
        assert ws.overwrite_fraction == 0.0

    def test_zero_planting_shifts_source(self):
        # Build a graph whose hub is NOT vertex 0: star centred on 5.
        from repro.graph import build_graph, from_pairs
        pairs = [(5, i) for i in range(5)] + [(5, 6), (5, 7), (0, 1)]
        g = build_graph(from_pairs(pairs), drop_zero_degree=False)
        plain = wavefront_statistics(g)
        planted = wavefront_statistics(g, zero_planted=True)
        # Zero planted on the hub: fewer total updates than waves
        # flowing from the fringe vertex 0.
        assert planted.total_updates <= plain.total_updates

    def test_empty_graph(self):
        from repro.graph import CSRGraph
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        ws = wavefront_statistics(g)
        assert ws.total_updates == 0


class TestHubDistanceProfile:
    def test_star_hub(self):
        p = hub_distance_profile(star_graph(12))
        assert p.source == 0
        assert p.eccentricity == 1
        assert p.coverage_within(1) == 1.0

    def test_hub_closer_than_fringe(self):
        g = rmat_graph(9, 8, seed=2)
        hub = hub_distance_profile(g)
        # compare to the (typically peripheral) highest-id vertex
        fringe = hub_distance_profile(g, source=g.num_vertices - 1)
        assert hub.mean_distance <= fringe.mean_distance

    def test_unreachable_counted(self, two_triangles):
        p = hub_distance_profile(two_triangles, source=0)
        assert p.unreachable == 3

    def test_histogram_sums(self):
        g = rmat_graph(8, 8, seed=3)
        p = hub_distance_profile(g)
        assert int(p.histogram.sum()) + p.unreachable == g.num_vertices


class TestRelabel:
    def test_identity_perm(self, small_skewed):
        g2, _ = relabel(small_skewed,
                        np.arange(small_skewed.num_vertices))
        assert np.array_equal(g2.indptr, small_skewed.indptr)
        assert np.array_equal(g2.indices, small_skewed.indices)

    def test_invalid_perm_rejected(self, triangle):
        with pytest.raises(ValueError, match="permutation"):
            relabel(triangle, np.array([0, 0, 1]))
        with pytest.raises(ValueError, match="one entry"):
            relabel(triangle, np.array([0, 1]))

    @pytest.mark.parametrize("strategy", ["degree", "bfs", "random"])
    def test_structure_preserved(self, strategy, small_skewed):
        fn = {"degree": degree_sort_relabel,
              "bfs": bfs_relabel,
              "random": lambda g: random_relabel(g, 7)}[strategy]
        g2, perm = fn(small_skewed)
        assert g2.num_edges == small_skewed.num_edges
        ref = component_labels_reference(small_skewed)
        ref2 = component_labels_reference(g2)
        assert same_partition(ref2[perm], ref)

    def test_degree_sort_puts_hub_first(self, small_skewed):
        g2, perm = degree_sort_relabel(small_skewed)
        assert g2.max_degree_vertex() == 0
        assert np.all(np.diff(g2.degrees) <= 0)

    def test_bfs_relabel_hub_is_zero(self, small_skewed):
        g2, perm = bfs_relabel(small_skewed)
        assert perm[small_skewed.max_degree_vertex()] == 0

    def test_degree_preserved_under_perm(self, small_skewed):
        g2, perm = random_relabel(small_skewed, 3)
        assert np.array_equal(g2.degrees[perm], small_skewed.degrees)

    @staticmethod
    def _reference_relabel(graph, perm):
        """The pre-vectorization per-vertex scatter loop, kept as the
        semantic oracle for the lexsort implementation."""
        from repro.graph import CSRGraph
        n = graph.num_vertices
        new_deg = np.zeros(n, dtype=np.int64)
        new_deg[perm] = graph.degrees
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(new_deg, out=indptr[1:])
        indices = np.empty(graph.num_edges, dtype=np.int64)
        old_rows = np.argsort(perm)
        cursor = 0
        for new_id in range(n):
            old = old_rows[new_id]
            nbrs = np.sort(perm[graph.neighbors(int(old))])
            indices[cursor:cursor + nbrs.size] = nbrs
            cursor += nbrs.size
        return CSRGraph(indptr, indices)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("scale", [7, 9])
    def test_vectorized_matches_reference_loop(self, scale, seed):
        g = rmat_graph(scale, 8, seed=seed)
        perm = np.random.default_rng(seed).permutation(
            g.num_vertices).astype(np.int64)
        ref = self._reference_relabel(g, perm)
        new, _ = relabel(g, perm)
        assert np.array_equal(new.indptr, ref.indptr)
        assert np.array_equal(new.indices, ref.indices)

    def test_reference_match_with_isolated_vertices(self):
        from repro.graph import CSRGraph
        # Vertices 1 and 3 are isolated (degree 0).
        g = CSRGraph(np.array([0, 1, 1, 2, 2], dtype=np.int64),
                     np.array([2, 0], dtype=np.int64))
        perm = np.array([3, 0, 1, 2], dtype=np.int64)
        ref = self._reference_relabel(g, perm)
        new, _ = relabel(g, perm)
        assert np.array_equal(new.indptr, ref.indptr)
        assert np.array_equal(new.indices, ref.indices)

    def test_empty_graph(self):
        from repro.graph import CSRGraph
        g = CSRGraph(np.array([0], dtype=np.int64),
                     np.empty(0, dtype=np.int64))
        new, perm = relabel(g, np.empty(0, dtype=np.int64))
        assert new.num_vertices == 0
        assert new.num_edges == 0

    def test_out_of_range_perm_rejected(self, triangle):
        with pytest.raises(ValueError, match="permutation"):
            relabel(triangle, np.array([0, 1, 3]))
        with pytest.raises(ValueError, match="permutation"):
            relabel(triangle, np.array([-1, 0, 1]))

    def test_negative_ids_get_dedicated_message(self, triangle):
        """Negative ids (the inverted-argsort fill-value signature)
        are called out explicitly, naming the offending minimum."""
        with pytest.raises(ValueError, match="negative ids"):
            relabel(triangle, np.array([-1, 0, 1]))
        # Huge negatives must hit the same explicit check, never an
        # internal bincount/indexing error.
        with pytest.raises(ValueError, match="negative ids"):
            relabel(triangle, np.array([0, 1, -(10 ** 12)]))

    def test_empty_graph_rejects_wrong_length_perm(self):
        from repro.graph import CSRGraph
        g = CSRGraph(np.array([0], dtype=np.int64),
                     np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError, match="one entry"):
            relabel(g, np.array([0], dtype=np.int64))


class TestHubClusterRelabel:
    def test_hub_first_neighbours_clustered(self, small_skewed):
        # num_hubs=1: the sole hub's whole neighbourhood is fresh, so
        # it must land contiguously right after the hub.
        g2, perm = hub_cluster_relabel(small_skewed, num_hubs=1)
        hub = small_skewed.max_degree_vertex()
        assert perm[hub] == 0
        nbrs = np.unique(small_skewed.neighbors(hub))
        nbrs = nbrs[nbrs != hub]
        assert set(perm[nbrs]) == set(range(1, 1 + nbrs.size))

    def test_hubs_lead_in_degree_order(self, small_skewed):
        g = small_skewed
        g2, perm = hub_cluster_relabel(g, num_hubs=4)
        hubs = np.argsort(-g.degrees, kind="stable")[:4]
        new_ids = perm[hubs]
        # Hubs keep their relative (degree-descending) order up front,
        # each separated by its own freshly-placed cluster.
        assert np.all(np.diff(new_ids) > 0)
        assert new_ids[0] == 0

    def test_structure_preserved(self, small_skewed):
        g2, perm = hub_cluster_relabel(small_skewed)
        assert g2.num_edges == small_skewed.num_edges
        ref = component_labels_reference(small_skewed)
        assert same_partition(component_labels_reference(g2)[perm], ref)

    def test_num_hubs_clamped(self, triangle):
        # num_hubs beyond n must degrade gracefully to n.
        g2, perm = hub_cluster_relabel(triangle, num_hubs=100)
        assert sorted(perm.tolist()) == [0, 1, 2]

    def test_empty_graph(self):
        from repro.graph import CSRGraph
        g = CSRGraph(np.array([0], dtype=np.int64),
                     np.empty(0, dtype=np.int64))
        g2, perm = hub_cluster_relabel(g)
        assert g2.num_vertices == 0
        assert perm.size == 0

    def test_deterministic(self):
        g = rmat_graph(8, 8, seed=5)
        _, p1 = hub_cluster_relabel(g)
        _, p2 = hub_cluster_relabel(g)
        assert np.array_equal(p1, p2)

"""Tests for frontier data structures."""

import numpy as np
import pytest

from repro.graph.generators import star_graph
from repro.parallel import CountOnlyFrontier, Frontier


class TestFrontier:
    def test_initially_empty(self, triangle):
        f = Frontier(triangle.num_vertices)
        assert len(f) == 0
        assert f.num_active_edges == 0
        assert f.density(triangle) == 0.0

    def test_set_tracks_edges(self, triangle):
        f = Frontier(triangle.num_vertices)
        f.set(triangle, 0)
        assert len(f) == 1
        assert f.num_active_edges == 2
        assert 0 in f and 1 not in f

    def test_set_idempotent(self, triangle):
        f = Frontier(triangle.num_vertices)
        f.set(triangle, 0)
        f.set(triangle, 0)
        assert len(f) == 1

    def test_set_many_with_duplicates(self, triangle):
        f = Frontier(triangle.num_vertices)
        f.set_many(triangle, np.array([0, 1, 1, 0]))
        assert len(f) == 2
        assert f.num_active_edges == 4

    def test_full(self, triangle):
        f = Frontier.full(triangle)
        assert len(f) == 3
        assert f.num_active_edges == triangle.num_edges
        assert f.density(triangle) > 1.0

    def test_density_formula(self):
        g = star_graph(10)   # |E| = 20 directed
        f = Frontier.of_vertices(g, np.array([0]))
        # (|F.V| + |F.E|)/|E| = (1 + 10)/20
        assert f.density(g) == pytest.approx(11 / 20)

    def test_vertices_sorted(self, triangle):
        f = Frontier.of_vertices(triangle, np.array([2, 0]))
        assert np.array_equal(f.vertices(), [0, 2])

    def test_reset(self, triangle):
        f = Frontier.full(triangle)
        f.reset()
        assert len(f) == 0
        assert f.num_active_edges == 0

    def test_swap(self, triangle):
        a = Frontier.full(triangle)
        b = Frontier(triangle.num_vertices)
        a.swap(b)
        assert len(a) == 0
        assert len(b) == 3

    def test_bitmap_readonly(self, triangle):
        f = Frontier.full(triangle)
        with pytest.raises(ValueError):
            f.bitmap()[0] = False


class TestCountOnlyFrontier:
    def test_accumulates(self):
        c = CountOnlyFrontier()
        c.add(3, 10)
        c.add(2, 5)
        assert len(c) == 5
        assert c.num_active_edges == 15

    def test_density(self, triangle):
        c = CountOnlyFrontier()
        c.add(1, 2)
        assert c.density(triangle) == pytest.approx(3 / 6)

    def test_negative_rejected(self):
        c = CountOnlyFrontier()
        with pytest.raises(ValueError):
            c.add(-1, 0)

    def test_reset(self):
        c = CountOnlyFrontier()
        c.add(1, 1)
        c.reset()
        assert len(c) == 0


class TestAdaptiveFrontier:
    def make(self, n=1000, switch=0.02):
        from repro.parallel import AdaptiveFrontier
        return AdaptiveFrontier(n, switch_density=switch)

    def test_starts_sparse(self):
        f = self.make()
        assert f.mode == "worklist"
        assert len(f) == 0

    def test_membership_both_modes(self):
        f = self.make(100, switch=0.1)
        f.add(np.array([3, 7]))
        assert 3 in f and 5 not in f
        f.add(np.arange(50))          # force bitmap
        assert f.mode == "bitmap"
        assert 3 in f and 99 not in f

    def test_switches_to_bitmap_when_dense(self):
        f = self.make(100, switch=0.05)
        f.add(np.arange(10))
        assert f.mode == "bitmap"
        assert f.conversions == 1

    def test_hysteresis_switch_back(self):
        f = self.make(100, switch=0.1)
        f.add(np.arange(20))
        assert f.mode == "bitmap"
        f.remove(np.arange(8, 20))    # 12/100 > 5%: stays bitmap
        assert f.mode == "bitmap"
        f.remove(np.arange(4, 8))     # 4/100 <= 5%: back to worklist
        assert f.mode == "worklist"
        assert f.conversions == 2
        assert f.vertices().tolist() == [0, 1, 2, 3]

    def test_vertices_sorted_in_both_modes(self):
        f = self.make(50, switch=0.5)
        f.add(np.array([9, 2, 5]))
        assert f.vertices().tolist() == [2, 5, 9]
        f.add(np.arange(30))
        assert f.mode == "bitmap"
        assert np.all(np.diff(f.vertices()) > 0)

    def test_duplicates_ignored(self):
        f = self.make(100, switch=0.5)
        f.add(np.array([1, 1, 1]))
        assert len(f) == 1

    def test_out_of_range_rejected(self):
        f = self.make(10)
        with pytest.raises(ValueError):
            f.add(np.array([10]))

    def test_remove_rejects_out_of_range_worklist_mode(self):
        # A negative id would silently index the bitmap from the end
        # (and poison the sorted worklist after a switch); remove must
        # range-check exactly like add.
        f = self.make(10, switch=0.5)
        f.add(np.array([2, 5]))
        assert f.mode == "worklist"
        with pytest.raises(ValueError):
            f.remove(np.array([-1]))
        with pytest.raises(ValueError):
            f.remove(np.array([10]))
        assert f.vertices().tolist() == [2, 5]   # untouched on error

    def test_remove_rejects_out_of_range_bitmap_mode(self):
        f = self.make(100, switch=0.05)
        f.add(np.arange(20))
        assert f.mode == "bitmap"
        with pytest.raises(ValueError):
            f.remove(np.array([-1]))
        with pytest.raises(ValueError):
            f.remove(np.array([100]))
        assert len(f) == 20                      # untouched on error

    def test_remove_accepts_empty(self):
        f = self.make(10)
        f.remove(np.empty(0, dtype=np.int64))
        assert len(f) == 0


class TestAdaptiveFrontierGraphAware:
    """The graph-aware surface the LP engine uses: edge tracking,
    density, and the full() constructor."""

    def make(self, n, switch=0.02):
        from repro.parallel import AdaptiveFrontier
        return AdaptiveFrontier(n, switch_density=switch)

    def test_set_many_tracks_edges(self, triangle):
        f = self.make(triangle.num_vertices, switch=1.0)
        f.set_many(triangle, np.array([0, 1, 1, 0]))
        assert len(f) == 2
        assert f.num_active_edges == 4
        assert f.density(triangle) == pytest.approx(6 / 6)

    def test_set_many_no_double_count(self, triangle):
        f = self.make(triangle.num_vertices, switch=1.0)
        f.set_many(triangle, np.array([0]))
        f.set_many(triangle, np.array([0, 2]))
        assert len(f) == 2
        assert f.num_active_edges == 4

    def test_set_many_tracks_edges_across_switch(self):
        g = star_graph(10)
        f = self.make(g.num_vertices, switch=0.15)
        f.set_many(g, np.array([0]))             # hub: degree 10
        assert f.mode == "worklist"
        f.set_many(g, np.array([1, 2, 3]))       # leaves: degree 1
        assert f.mode == "bitmap"
        assert f.num_active_edges == 13
        f.set_many(g, np.array([3, 4]))          # 3 already active
        assert f.num_active_edges == 14

    def test_set_many_rejects_out_of_range(self, triangle):
        f = self.make(triangle.num_vertices)
        with pytest.raises(ValueError):
            f.set_many(triangle, np.array([3]))
        with pytest.raises(ValueError):
            f.set_many(triangle, np.array([-1]))

    def test_full_is_bitmap_with_no_conversion(self, triangle):
        from repro.parallel import AdaptiveFrontier
        f = AdaptiveFrontier.full(triangle)
        assert f.mode == "bitmap"
        assert f.conversions == 0                # construction, not a switch
        assert len(f) == triangle.num_vertices
        assert f.num_active_edges == triangle.num_edges
        assert f.density(triangle) > 1.0

    def test_density_formula(self):
        g = star_graph(10)                       # |E| = 20 directed
        f = self.make(g.num_vertices, switch=1.0)
        f.set_many(g, np.array([0]))
        assert f.density(g) == pytest.approx(11 / 20)

    def test_clear_resets_edges(self, triangle):
        from repro.parallel import AdaptiveFrontier
        f = AdaptiveFrontier.full(triangle)
        f.clear()
        assert f.num_active_edges == 0
        assert f.density(triangle) == 0.0

    def test_clear_resets_to_sparse(self):
        f = self.make(100, switch=0.01)
        f.add(np.arange(50))
        f.clear()
        assert f.mode == "worklist"
        assert len(f) == 0

    def test_switch_density_validation(self):
        from repro.parallel import AdaptiveFrontier
        with pytest.raises(ValueError):
            AdaptiveFrontier(10, switch_density=0.0)

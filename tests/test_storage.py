"""Tests for the on-disk blocked-CSR format and its access layer."""

import numpy as np
import pytest

from repro.graph import load
from repro.graph.generators import rmat_graph, star_graph
from repro.storage import (
    BLOCKED_MAGIC,
    DEFAULT_EDGES_PER_BLOCK,
    HEADER_SIZE,
    NVME_SSD,
    SATA_SSD,
    BlockCache,
    BlockedFormatError,
    BlockedGraph,
    DiskSpec,
    canonical_storage,
    is_blocked_file,
    read_header,
    simulate_io_time,
    validate_storage,
    write_blocked,
)


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(9, 8, seed=7)


class TestFormat:
    @pytest.mark.parametrize("dtype", ["int32", "int64"])
    @pytest.mark.parametrize("epb", [1, 7, 64, DEFAULT_EDGES_PER_BLOCK])
    def test_roundtrip_dtypes_and_block_sizes(self, graph, tmp_path,
                                              dtype, epb):
        path = tmp_path / "g.rbcsr"
        header = write_blocked(graph, path, edges_per_block=epb,
                               dtype=dtype)
        assert header.num_vertices == graph.num_vertices
        assert header.num_edges == graph.num_edges
        bg = BlockedGraph.open(path)
        try:
            assert np.array_equal(bg.indptr, graph.indptr)
            assert np.array_equal(np.asarray(bg.indices), graph.indices)
            assert bg.indices.dtype == np.dtype(dtype)
        finally:
            bg.close()

    def test_default_dtype_matches_graph(self, graph, tmp_path):
        path = tmp_path / "g.rbcsr"
        write_blocked(graph, path)
        bg = BlockedGraph.open(path)
        try:
            assert bg.indices.dtype == graph.indices.dtype
        finally:
            bg.close()

    def test_mmap_vs_buffered_bit_identical(self, graph, tmp_path):
        path = tmp_path / "g.rbcsr"
        write_blocked(graph, path, edges_per_block=97)
        mm = BlockedGraph.open(path, mode="mmap")
        bf = BlockedGraph.open(path, mode="buffered")
        try:
            assert np.array_equal(np.asarray(mm.indices),
                                  np.asarray(bf.indices))
            assert np.array_equal(mm.indices[10:200], bf.indices[10:200])
        finally:
            mm.close()
            bf.close()

    def test_empty_graph(self, tmp_path):
        from repro.graph import build_graph, from_pairs
        g = build_graph(from_pairs([], num_vertices=0))
        path = tmp_path / "empty.rbcsr"
        header = write_blocked(g, path)
        assert header.num_edges == 0
        assert header.num_blocks == 0
        bg = BlockedGraph.open(path)
        try:
            assert bg.num_vertices == 0
            assert np.asarray(bg.indices).size == 0
        finally:
            bg.close()

    def test_single_block(self, tmp_path):
        g = star_graph(4)
        path = tmp_path / "star.rbcsr"
        header = write_blocked(g, path,
                               edges_per_block=DEFAULT_EDGES_PER_BLOCK)
        assert header.num_blocks == 1
        bg = BlockedGraph.open(path)
        try:
            assert np.array_equal(np.asarray(bg.indices), g.indices)
            assert np.array_equal(bg.neighbors(0), g.neighbors(0))
        finally:
            bg.close()

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "bad.rbcsr"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * HEADER_SIZE)
        with pytest.raises(BlockedFormatError, match="bad magic"):
            read_header(path)
        assert not is_blocked_file(path)

    def test_truncated_header_raises(self, tmp_path):
        path = tmp_path / "trunc.rbcsr"
        path.write_bytes(BLOCKED_MAGIC)
        with pytest.raises(BlockedFormatError, match="truncated header"):
            read_header(path)

    def test_truncated_body_raises(self, graph, tmp_path):
        path = tmp_path / "trunc.rbcsr"
        write_blocked(graph, path)
        data = path.read_bytes()
        path.write_bytes(data[:-16])
        with pytest.raises(BlockedFormatError, match="file size"):
            read_header(path)

    def test_is_blocked_file(self, graph, tmp_path):
        path = tmp_path / "g.rbcsr"
        write_blocked(graph, path)
        assert is_blocked_file(path)
        assert not is_blocked_file(tmp_path / "missing.rbcsr")

    def test_bad_edges_per_block_rejected(self, graph, tmp_path):
        with pytest.raises(ValueError, match="edges_per_block"):
            write_blocked(graph, tmp_path / "g.rbcsr", edges_per_block=0)


class TestLazyIndices:
    @pytest.fixture(scope="class")
    def pair(self, tmp_path_factory):
        g = rmat_graph(8, 8, seed=3)
        path = tmp_path_factory.mktemp("lazy") / "g.rbcsr"
        write_blocked(g, path, edges_per_block=53)
        bg = BlockedGraph.open(path)
        yield g, bg
        bg.close()

    def test_contiguous_slice(self, pair):
        g, bg = pair
        assert np.array_equal(bg.indices[100:400], g.indices[100:400])

    def test_cross_block_slice(self, pair):
        g, bg = pair
        assert np.array_equal(bg.indices[40:120], g.indices[40:120])

    def test_stepped_and_reversed(self, pair):
        g, bg = pair
        assert np.array_equal(bg.indices[::7], g.indices[::7])
        assert np.array_equal(bg.indices[200:50:-3], g.indices[200:50:-3])

    def test_scalar_and_negative(self, pair):
        g, bg = pair
        assert bg.indices[0] == g.indices[0]
        assert bg.indices[-1] == g.indices[-1]
        with pytest.raises(IndexError):
            bg.indices[g.num_edges]

    def test_fancy_gather(self, pair):
        g, bg = pair
        rng = np.random.default_rng(0)
        pos = rng.integers(0, g.num_edges, 500)
        assert np.array_equal(bg.indices[pos], g.indices[pos])

    def test_bool_mask(self, pair):
        g, bg = pair
        mask = np.zeros(g.num_edges, dtype=bool)
        mask[::11] = True
        assert np.array_equal(bg.indices[mask], g.indices[mask])

    def test_astype(self, pair):
        g, bg = pair
        assert np.array_equal(bg.indices.astype(np.int64),
                              g.indices.astype(np.int64))

    def test_duck_surface(self, pair):
        g, bg = pair
        assert len(bg.indices) == g.num_edges
        assert bg.indices.shape == (g.num_edges,)
        assert bg.indices.nbytes == g.indices.nbytes
        assert np.array_equal(bg.degrees, g.degrees)
        assert bg.max_degree_vertex() == g.max_degree_vertex()
        v = g.max_degree_vertex()
        assert np.array_equal(bg.neighbors(v), g.neighbors(v))
        assert bg.has_edge(v, int(g.neighbors(v)[0]))

    def test_materialize(self, pair):
        g, bg = pair
        m = bg.materialize()
        assert np.array_equal(m.indptr, g.indptr)
        assert np.array_equal(m.indices, g.indices)


class TestBlockCache:
    def test_budget_enforced(self):
        cache = BlockCache(budget_bytes=100)
        block = np.zeros(5, dtype=np.int64)  # 40 bytes each
        for key in range(5):
            cache.fetch(key, lambda _k: block.copy())
        assert cache.resident_bytes <= 100
        assert cache.peak_resident_bytes <= 100
        assert cache.evictions >= 3

    def test_hits_and_rereads(self):
        cache = BlockCache(budget_bytes=40)
        block = np.zeros(5, dtype=np.int64)
        cache.fetch(0, lambda _k: block.copy())
        cache.fetch(0, lambda _k: block.copy())    # resident: hit
        assert cache.hits == 1 and cache.rereads == 0
        cache.fetch(1, lambda _k: block.copy())    # evicts 0
        cache.fetch(0, lambda _k: block.copy())    # seen before: reread
        assert cache.rereads == 1
        assert cache.fetches == 3

    def test_unbounded(self):
        cache = BlockCache(budget_bytes=None)
        for key in range(10):
            cache.fetch(key, lambda _k: np.zeros(100, dtype=np.int64))
        assert cache.evictions == 0
        assert cache.resident_bytes == 10 * 800


class TestIoModel:
    def test_transfer_ms_alpha_beta(self):
        disk = DiskSpec(name="toy", latency_us=1000.0, bandwidth_mbps=1.0)
        # 1 fetch: 1ms latency + 1e6 bytes at 1 MB/s = 1000ms
        assert disk.transfer_ms(1_000_000) == pytest.approx(1001.0)
        assert disk.transfer_ms(0, num_fetches=3) == pytest.approx(3.0)

    def test_faster_disk_cheaper(self):
        rec = {"bytes_read": 1 << 24, "blocks_read": 64,
               "setup_bytes": 0, "setup_blocks": 0}
        assert (simulate_io_time(rec, NVME_SSD)
                < simulate_io_time(rec, SATA_SSD))

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            DiskSpec(name="bad", latency_us=-1.0, bandwidth_mbps=100.0)


class TestStorageModes:
    def test_canonical_folds_resident(self):
        assert canonical_storage(None) is None
        assert canonical_storage("resident") is None
        assert canonical_storage("out_of_core") == "out_of_core"

    def test_unknown_mode_lists_choices(self):
        with pytest.raises(ValueError, match="out_of_core"):
            validate_storage("floppy")
        with pytest.raises(TypeError):
            validate_storage(7)


class TestRegistryIntegration:
    def test_fingerprint_matches_resident(self, graph, tmp_path):
        from repro.service import graph_fingerprint

        path = tmp_path / "g.rbcsr"
        write_blocked(graph, path, edges_per_block=64)
        bg = BlockedGraph.open(path)
        try:
            assert graph_fingerprint(bg) == graph_fingerprint(graph)
        finally:
            bg.close()

    def test_register_path_shares_cached_results(self, tmp_path):
        from repro.service import CCService

        g = load("Pkc", 0.2)
        path = tmp_path / "pkc.rbcsr"
        write_blocked(g, path, edges_per_block=256)
        service = CCService()
        entry = service.register_path(path, name="pkc-disk")
        assert entry.fingerprint == service.register(g).fingerprint

    def test_blocked_entry_rejects_mutation(self, graph, tmp_path):
        from repro.service import GraphRegistry

        path = tmp_path / "g.rbcsr"
        write_blocked(graph, path)
        registry = GraphRegistry()
        registry.register_path(path, name="g")
        with pytest.raises(ValueError, match="immutable"):
            registry.mutate("g", insert=([0], [1]))

"""Tests for the power-law MLE and the shortcutting-LP baseline."""

import numpy as np
import pytest

from repro import connected_components
from repro.baselines import lp_shortcut_cc
from repro.graph import load
from repro.graph.generators import chung_lu_graph, path_graph, \
    road_network_graph
from repro.graph.properties import estimate_power_law_exponent
from repro.validate import validate_against_reference


class TestPowerLawExponent:
    def test_recovers_generated_exponent(self):
        # Chung-Lu with gamma=2.3 should estimate near 2.3.
        g = chung_lu_graph(30_000, 12.0, exponent=2.3, seed=5)
        gamma = estimate_power_law_exponent(g, k_min=6)
        assert 1.8 < gamma < 2.9

    def test_road_network_no_power_law(self):
        g = road_network_graph(60, 60, seed=6)
        # k_min above the degree bulk (roads: 2-4): no tail remains,
        # so the MLE blows up.
        gamma = estimate_power_law_exponent(g, k_min=4)
        assert gamma > 4.0

    def test_degenerate_graph(self):
        g = path_graph(3)
        assert estimate_power_law_exponent(g, k_min=10) == float("inf")

    @pytest.mark.parametrize("name", ["Twtr", "SK"])
    def test_surrogates_in_realistic_range(self, name):
        g = load(name, 0.4)
        gamma = estimate_power_law_exponent(g, k_min=4)
        assert 1.5 < gamma < 3.5, name


class TestLPShortcut:
    def test_on_zoo(self, zoo_graph):
        validate_against_reference(zoo_graph, lp_shortcut_cc(zoo_graph))

    def test_shortcutting_collapses_paths(self):
        """Pointer jumping turns O(n) LP rounds into O(log n)."""
        g = path_graph(512)
        plain = lp_shortcut_cc(g, shortcut_depth=0).num_iterations
        jumped = lp_shortcut_cc(g, shortcut_depth=4).num_iterations
        assert plain == 512
        assert jumped <= 8

    def test_depth_validation(self, triangle):
        with pytest.raises(ValueError):
            lp_shortcut_cc(triangle, shortcut_depth=-1)

    def test_registered_in_api(self, small_skewed):
        r = connected_components(small_skewed, "lp-shortcut")
        validate_against_reference(small_skewed, r)

    def test_labels_are_minima(self, two_triangles):
        r = lp_shortcut_cc(two_triangles)
        assert r.canonical_labels().tolist() == [0, 0, 0, 3, 3, 3]

    def test_empty(self):
        from repro.graph import CSRGraph
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        assert lp_shortcut_cc(g).labels.size == 0

"""Tests for label initialization (identity and Zero Planting)."""

import numpy as np
import pytest

from repro.core.labels import (
    identity_labels,
    thread_local_max_degree,
    zero_planted_labels,
)
from repro.graph.generators import rmat_graph, star_graph
from repro.instrument import OpCounters
from repro.parallel import edge_balanced_partitions


class TestIdentityLabels:
    def test_values(self):
        assert np.array_equal(identity_labels(4), [0, 1, 2, 3])

    def test_distinct(self):
        labels = identity_labels(100)
        assert np.unique(labels).size == 100


class TestZeroPlanting:
    def test_hub_gets_zero(self):
        g = star_graph(8)
        labels, hub = zero_planted_labels(g)
        assert hub == 0
        assert labels[0] == 0
        assert np.array_equal(labels[1:], np.arange(2, 10))

    def test_labels_distinct(self):
        g = rmat_graph(7, 8, seed=1)
        labels, _ = zero_planted_labels(g)
        assert np.unique(labels).size == g.num_vertices

    def test_zero_is_unique_minimum(self):
        g = rmat_graph(7, 8, seed=2)
        labels, hub = zero_planted_labels(g)
        assert labels.min() == 0
        assert int(np.argmin(labels)) == hub

    def test_thread_local_reduction_matches_argmax(self):
        for seed in (3, 4, 5):
            g = rmat_graph(8, 8, seed=seed)
            for threads in (1, 2, 8):
                p = edge_balanced_partitions(g, threads)
                assert thread_local_max_degree(g, p) == \
                    g.max_degree_vertex()

    def test_partitioned_variant_same_hub(self):
        g = rmat_graph(7, 8, seed=6)
        p = edge_balanced_partitions(g, 4)
        l1, h1 = zero_planted_labels(g)
        l2, h2 = zero_planted_labels(g, p)
        assert h1 == h2
        assert np.array_equal(l1, l2)

    def test_counters_charged(self):
        g = star_graph(10)
        c = OpCounters()
        zero_planted_labels(g, counters=c)
        assert c.label_writes == g.num_vertices
        assert c.sequential_accesses > 0

    def test_empty_graph_raises(self):
        from repro.graph import CSRGraph
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        with pytest.raises(ValueError):
            zero_planted_labels(g)

"""Auto-router vs measured Table IV winners, all 17 surrogates.

The acceptance bar for ``method="auto"``: on every dataset surrogate
the planner must pick the family (LP vs union-find) that actually
measures fastest under the cost model.  This runs the full sweep at a
reduced scale so it stays inside the tier-1 budget; the benchmark
suite repeats it at benchmark scale
(``benchmarks/test_ext_service_throughput.py``).
"""

import pytest

from repro.experiments.routing import auto_routing_table
from repro.graph.datasets import ALL_DATASET_NAMES

SCALE = 0.2


@pytest.fixture(scope="module")
def routing_rows():
    return auto_routing_table(scale=SCALE)


def test_sweep_covers_all_surrogates(routing_rows):
    assert [r["dataset"] for r in routing_rows] == list(ALL_DATASET_NAMES)


@pytest.mark.parametrize("idx", range(len(ALL_DATASET_NAMES)),
                         ids=list(ALL_DATASET_NAMES))
def test_router_matches_measured_winner(routing_rows, idx):
    row = routing_rows[idx]
    assert row["agree"], (
        f"{row['dataset']}: planner routed {row['routed']} "
        f"(lp={row['pred_lp_ms']:.2f}ms uf={row['pred_uf_ms']:.2f}ms) "
        f"but measured winner is {row['measured_winner']} "
        f"(lp={row['measured_lp_ms']:.2f}ms "
        f"uf={row['measured_uf_ms']:.2f}ms)")


def test_roads_route_uf_and_skewed_route_lp(routing_rows):
    by_name = {r["dataset"]: r for r in routing_rows}
    for road in ("GBRd", "USRd"):
        assert by_name[road]["routed"] == "afforest"
    assert by_name["Twtr"]["routed"] == "thrifty"

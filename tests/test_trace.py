"""Tests for run traces."""

from repro.instrument import Direction, IterationRecord, OpCounters, RunTrace


def rec(i, direction=Direction.PULL, edges=10, converged=0.5):
    c = OpCounters(edges_processed=edges, iterations=1)
    return IterationRecord(index=i, direction=direction, density=0.5,
                           active_vertices=5, active_edges=20,
                           changed_vertices=3,
                           converged_fraction=converged, counters=c)


class TestRunTrace:
    def test_totals_include_setup(self):
        t = RunTrace("x")
        t.setup_counters.label_writes = 7
        t.add(rec(0))
        t.add(rec(1))
        total = t.total_counters()
        assert total.label_writes == 7
        assert total.edges_processed == 20
        assert total.iterations == 2

    def test_total_edges(self):
        t = RunTrace("x")
        t.add(rec(0, edges=3))
        t.add(rec(1, edges=4))
        assert t.total_edges_processed() == 7

    def test_convergence_curve(self):
        t = RunTrace("x")
        t.add(rec(0, converged=0.2))
        t.add(rec(1, converged=0.9))
        assert t.convergence_curve() == [0.2, 0.9]

    def test_directions_and_pull_records(self):
        t = RunTrace("x")
        t.add(rec(0, Direction.INITIAL_PUSH))
        t.add(rec(1, Direction.PULL))
        t.add(rec(2, Direction.PULL_FRONTIER))
        t.add(rec(3, Direction.PUSH))
        assert t.directions() == [Direction.INITIAL_PUSH, Direction.PULL,
                                  Direction.PULL_FRONTIER, Direction.PUSH]
        assert len(t.pull_records()) == 2

    def test_iteration_record_edge_property(self):
        r = rec(0, edges=42)
        assert r.edges_processed == 42

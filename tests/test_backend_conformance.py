"""Backend conformance: every registered backend vs the numpy oracle.

The backend seam (``repro.core.backends``) promises that a kernel
backend changes *wall-clock only*: labels, changed masks, scan
lengths, counters and traces must be bit-identical to the canonical
``"numpy"`` backend.  This suite is what a new backend must pass to be
registrable in good standing:

* kernel-by-kernel equality on randomized skewed inputs (the kernels
  the property sweeps don't already parametrize over backends);
* engine-level equality — full ``CCResult`` including per-iteration
  counters — across the graph zoo, plus determinism (same seed, same
  backend, twice → identical everything);
* the registry/validation API contract, including the one sanctioned
  extension point and the backend-private import deprecation;
* serving-layer canonicalization: option spellings of the default
  backend collapse to one cache key, and feedback/metrics attribute
  per backend so learned costs never mix.
"""

import importlib
import sys

import numpy as np
import pytest

from repro.core import LPOptions, label_propagation_cc
from repro.core.backends import (
    DEFAULT_BACKEND,
    KernelBackend,
    available_backends,
    canonical_backend,
    get_backend,
    register_backend,
    validate_backend,
)
from repro.core.backends import _REGISTRY
from repro.graph.generators import rmat_graph, with_dust_components
from repro.options import ThriftyOptions, UnionFindOptions, options_for
from repro.service import CCRequest, CCService
from repro.service.feedback import backend_feedback_key

BACKENDS = available_backends()
NUMPY = get_backend("numpy")


def _case(seed):
    """A skewed graph and a zero-heavy labels array."""
    rng = np.random.default_rng(seed)
    g = with_dust_components(rmat_graph(7, 8, seed=seed), 5, seed=seed)
    n = g.num_vertices
    labels = rng.integers(1, n + 1, size=n).astype(np.int64)
    labels[rng.random(n) < 0.3] = 0
    return g, labels


# -- registry / validation contract ----------------------------------


class TestRegistry:
    def test_default_backend_is_numpy(self):
        assert get_backend() is NUMPY
        assert get_backend(None) is NUMPY
        assert NUMPY.name == DEFAULT_BACKEND == "numpy"

    def test_every_backend_satisfies_protocol(self):
        for name in BACKENDS:
            assert isinstance(get_backend(name), KernelBackend), name

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="available backends"):
            get_backend("no-such-backend")
        with pytest.raises(ValueError, match="available backends"):
            validate_backend("no-such-backend")

    def test_validate_rejects_non_strings(self):
        with pytest.raises(ValueError, match="string or None"):
            validate_backend(3)

    def test_register_rejects_bad_names(self):
        with pytest.raises(ValueError, match="non-empty string"):
            register_backend("", NUMPY)

    def test_canonical_backend_folds_default(self):
        assert canonical_backend(None) is None
        assert canonical_backend(DEFAULT_BACKEND) is None
        for name in BACKENDS:
            if name != DEFAULT_BACKEND:
                assert canonical_backend(name) == name

    def test_private_import_warns(self):
        """A direct import of a backend-private module deprecates.

        Re-imports are served from ``sys.modules`` (and never warn),
        so the module is popped first; the registry keeps the backend
        *object* it constructed, so behaviour is unaffected.
        """
        saved = sys.modules.pop("repro.core.backends._numpy")
        try:
            with pytest.warns(DeprecationWarning,
                              match="backend-private"):
                importlib.import_module("repro.core.backends._numpy")
        finally:
            sys.modules["repro.core.backends._numpy"] = saved


# -- kernel-by-kernel equality vs the numpy oracle -------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestKernelConformance:
    """The kernels the backend-parametrized property sweeps skip."""

    def test_pull_zero_cut_and_scan(self, backend, seed):
        g, labels = _case(seed)
        kb = get_backend(backend)
        n = g.num_vertices
        for lo, hi in [(0, n), (0, n // 2), (n // 3, n), (2, 2)]:
            got = kb.pull_block_zero_cut(g, labels, lo, hi)
            ref = NUMPY.pull_block_zero_cut(g, labels, lo, hi)
            assert np.array_equal(got[0], ref[0])
            assert np.array_equal(got[1], ref[1])
            assert got[2] == ref[2]
            skip = labels[lo:hi] % 3 == 0
            got = kb.pull_block_zero_cut(g, labels, lo, hi, skip)
            ref = NUMPY.pull_block_zero_cut(g, labels, lo, hi, skip)
            assert np.array_equal(got[0], ref[0])
            assert np.array_equal(got[1], ref[1])
            assert got[2] == ref[2]
            assert np.array_equal(
                kb.zero_cut_scan_lengths(g, labels, lo, hi, skip),
                NUMPY.zero_cut_scan_lengths(g, labels, lo, hi, skip))

    def test_push_side_kernels(self, backend, seed):
        g, labels = _case(seed)
        kb = get_backend(backend)
        rng = np.random.default_rng(seed)
        rows = np.unique(rng.integers(0, g.num_vertices, size=20))
        t_got, c_got = kb.concat_adjacency(g, rows)
        t_ref, c_ref = NUMPY.concat_adjacency(g, rows)
        assert np.array_equal(t_got, t_ref)
        assert np.array_equal(c_got, c_ref)
        write = labels.copy()
        got = kb.fused_push_window(g, labels, write, rows)
        ref = NUMPY.fused_push_window(g, labels, write, rows)
        for a, b in zip(got, ref):
            assert np.array_equal(a, b)
        bounds = np.array([0, rows.size], dtype=np.int64)
        assert np.array_equal(
            kb.push_scan_lengths(g, rows, bounds[:-1], bounds[1:]),
            NUMPY.push_scan_lengths(g, rows, bounds[:-1], bounds[1:]))
        cuts = np.array([0, rows.size // 2, rows.size], dtype=np.int64)
        assert np.array_equal(kb.chunked_cuts(cuts, 3),
                              NUMPY.chunked_cuts(cuts, 3))

    def test_block_kernels(self, backend, seed):
        g, labels = _case(seed)
        kb = get_backend(backend)
        n = g.num_vertices
        bounds = np.array([0, n // 3, 2 * n // 3, n], dtype=np.int64)
        groups = NUMPY.intra_block_groups(g, bounds)
        assert np.array_equal(kb.intra_block_groups(g, bounds), groups)
        assert np.array_equal(kb.block_async_min(labels, groups),
                              NUMPY.block_async_min(labels, groups))

    def test_atomic_batches(self, backend, seed):
        g, labels = _case(seed)
        kb = get_backend(backend)
        rng = np.random.default_rng(seed + 100)
        idx = rng.integers(0, labels.size, size=64)
        vals = rng.integers(0, labels.size, size=64).astype(labels.dtype)

        a_got, a_ref = labels.copy(), labels.copy()
        changed_got = kb.batch_atomic_min(a_got, idx, vals)
        changed_ref = NUMPY.batch_atomic_min(a_ref, idx, vals)
        assert np.array_equal(a_got, a_ref)
        assert np.array_equal(changed_got, changed_ref)

        a_got, a_ref = labels.copy(), labels.copy()
        c_got = kb.batch_atomic_min_count(a_got, idx, vals)
        c_ref = NUMPY.batch_atomic_min_count(a_ref, idx, vals)
        assert np.array_equal(a_got, a_ref)
        assert np.array_equal(c_got[0], c_ref[0])
        assert c_got[1] == c_ref[1]

        a_got, a_ref = labels.copy(), labels.copy()
        n_got = kb.scatter_min_count(a_got, idx, vals)
        n_ref = NUMPY.scatter_min_count(a_ref, idx, vals)
        assert np.array_equal(a_got, a_ref)
        assert n_got == n_ref
        assert kb.scatter_min_count(a_got, idx[:0], vals[:0]) == 0


# -- engine-level equality and determinism ---------------------------


def _result_equal(a, b):
    assert np.array_equal(a.labels, b.labels)
    assert a.num_iterations == b.num_iterations
    for x, y in zip(a.trace.iterations, b.trace.iterations):
        assert x.direction == y.direction, x.index
        assert x.counters.as_dict() == y.counters.as_dict(), x.index
    assert a.trace.total_counters().as_dict() == \
        b.trace.total_counters().as_dict()


@pytest.mark.parametrize("backend", BACKENDS)
class TestEngineConformance:
    def test_zoo_sweep_matches_numpy(self, backend, zoo_graph):
        ref = label_propagation_cc(zoo_graph, LPOptions())
        got = label_propagation_cc(zoo_graph,
                                   LPOptions(backend=backend))
        _result_equal(got, ref)

    @pytest.mark.parametrize("method,kwargs", [
        ("thrifty", {}),
        ("sv", {}),
        ("jt", {"seed": 3}),
        ("afforest", {"seed": 3}),
        ("kla", {"k": 2}),
        ("distributed", {"num_ranks": 4}),
    ])
    def test_front_door_methods_match_numpy(self, backend, method,
                                            kwargs, small_skewed):
        from repro.api import connected_components
        ref = connected_components(
            small_skewed, method, options=options_for(method, **kwargs))
        got = connected_components(
            small_skewed, method,
            options=options_for(method, backend=backend, **kwargs))
        assert np.array_equal(got.labels, ref.labels)
        assert got.trace.total_counters().as_dict() == \
            ref.trace.total_counters().as_dict()

    def test_determinism_same_backend_twice(self, backend,
                                            small_skewed):
        opts = LPOptions(backend=backend)
        _result_equal(label_propagation_cc(small_skewed, opts),
                      label_propagation_cc(small_skewed, opts))


# -- serving-layer canonicalization and attribution ------------------


class _ProxyBackend:
    """A distinct registry entry that delegates every kernel to numpy.

    Stands in for a real alternative backend in environments where the
    optional compiled one is absent: bit-identical by construction, so
    only the *accounting* paths can differ.
    """

    name = "proxy"

    def __getattr__(self, attr):
        return getattr(NUMPY, attr)


@pytest.fixture
def proxy_backend():
    register_backend("proxy", _ProxyBackend())
    yield "proxy"
    _REGISTRY.pop("proxy", None)


class TestServingLayerKeys:
    def test_default_backend_spellings_share_cache_key(self):
        assert ThriftyOptions(backend="numpy") == ThriftyOptions()
        assert UnionFindOptions(backend="numpy") == UnionFindOptions()
        assert ThriftyOptions(backend="numpy").backend is None

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="available backends"):
            options_for("thrifty", backend="nope")
        with pytest.raises(ValueError, match="available backends"):
            UnionFindOptions(backend="nope")

    def test_backend_feedback_key(self):
        assert backend_feedback_key("thrifty", None) == "thrifty"
        assert backend_feedback_key("thrifty", "numpy") == "thrifty"
        assert backend_feedback_key("thrifty", "numba") == \
            "thrifty@numba"

    def test_non_default_backend_attributed_separately(
            self, proxy_backend, small_skewed):
        svc = CCService()
        # Probe the entry up front: explicit-method traffic feeds the
        # posterior only for probed graphs (see ``_base_predicted``).
        entry = svc.register(small_skewed)
        entry.probes
        default = svc.submit(CCRequest(graph=small_skewed,
                                       method="thrifty"))
        proxied = svc.submit(CCRequest(
            graph=small_skewed, method="thrifty",
            options=ThriftyOptions(backend=proxy_backend)))
        assert np.array_equal(proxied.result.labels,
                              default.result.labels)
        per_method = svc.metrics.per_method
        assert per_method.get("thrifty") == 1
        assert per_method.get("thrifty@proxy") == 1
        # The feedback posterior learned under the split keys too.
        fb = svc.registry.feedback
        fp = svc.registry.register(small_skewed).fingerprint
        machine = svc.machine.name
        assert fb.observations(fp, "thrifty", machine=machine) == 1
        assert fb.observations(fp, "thrifty@proxy",
                               machine=machine) == 1

    def test_backend_split_results_cached_separately(
            self, proxy_backend, small_skewed):
        svc = CCService()
        r1 = svc.submit(CCRequest(graph=small_skewed, method="thrifty"))
        r2 = svc.submit(CCRequest(
            graph=small_skewed, method="thrifty",
            options=ThriftyOptions(backend=proxy_backend)))
        assert not r1.cache_hit and not r2.cache_hit
        # Same options modulo default-backend spelling: a hit.
        r3 = svc.submit(CCRequest(
            graph=small_skewed, method="thrifty",
            options=ThriftyOptions(backend="numpy")))
        assert r3.cache_hit

"""Property sweep: the fused push is a pure wall-clock strategy.

``fuse_push=True`` (windowed speculative fused chunk evaluation) must
be *bit-identical* to the per-chunk reference loop kept behind
``fuse_push=False`` — in final labels, per-iteration counter deltas,
direction sequence, simulated makespans, and the worklist drain order
— across graph families (skewed RMAT, road grid, uniform
Erdős–Rényi) and every optimization-switch ablation.  This is the
push analogue of ``TestPullFusionIdentity``; it is what licenses the
engine to default the fused strategy on.
"""

import numpy as np
import pytest

from repro.core import LPOptions, label_propagation_cc
from repro.core.backends import available_backends
from repro.core.engine import _Engine
from repro.graph.generators import (
    erdos_renyi_graph,
    rmat_graph,
    road_network_graph,
    with_dust_components,
)
from repro.parallel import Frontier

GRAPHS = {
    "rmat": lambda: with_dust_components(rmat_graph(9, 8, seed=11), 12,
                                         seed=11),
    "road": lambda: road_network_graph(20, 16, seed=13),
    "uniform": lambda: erdos_renyi_graph(350, 6.0, seed=14),
}

# The four paper switches, each toggled off alone, plus the settings
# that stress the push path's chunking and scheduling edge cases.
OPTION_GRID = [
    {},
    {"unified_labels": False},
    {"zero_convergence": False},
    {"zero_planting": False},
    {"initial_push": False},
    {"count_only_pulls": False},
    {"threshold": 1.0},             # push-heavy schedule
    {"block_size": 1},
    {"block_size": 7},
    {"race_rate": 0.3},             # duplicate-enqueue injection
    {"num_threads": 4, "partitions_per_thread": 2},
]


@pytest.fixture(scope="module", params=sorted(GRAPHS))
def graph(request):
    return GRAPHS[request.param]()


def _run(graph, fuse, overrides, backend=None):
    return label_propagation_cc(
        graph, LPOptions(fuse_push=fuse, track_convergence=False,
                         backend=backend, **overrides))


# The fusion identity must hold on every registered backend — a
# compiled kernel that broke the speculative window's exactness would
# surface here as a counter or drain-order divergence.
@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize(
    "overrides", OPTION_GRID,
    ids=["-".join(f"{k}={v}" for k, v in o.items()) or "default"
         for o in OPTION_GRID])
def test_fused_push_bit_identical(graph, overrides, backend):
    fused, ref = (_run(graph, f, overrides, backend)
                  for f in (True, False))
    assert np.array_equal(fused.labels, ref.labels)
    assert fused.num_iterations == ref.num_iterations
    for a, b in zip(fused.trace.iterations, ref.trace.iterations):
        assert a.direction == b.direction, a.index
        assert a.counters.as_dict() == b.counters.as_dict(), a.index
        assert a.makespan == b.makespan, a.index
        assert (a.density, a.active_vertices, a.active_edges,
                a.changed_vertices) == \
            (b.density, b.active_vertices, b.active_edges,
             b.changed_vertices), a.index
        assert (a.frontier_mode, a.frontier_conversions) == \
            (b.frontier_mode, b.frontier_conversions), a.index


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("overrides",
                         [{}, {"block_size": 3}, {"race_rate": 0.4},
                          {"num_threads": 4, "partitions_per_thread": 2}],
                         ids=["default", "bs3", "race", "t4"])
def test_fused_push_drain_order_lockstep(graph, overrides, backend):
    """Drive two engines push-by-push from an all-active frontier and
    require identical worklist drain order every round (the strongest
    scheduler-visible observable: it fixes batch contents, batch
    thread placement, and steal interleaving)."""
    def engine(fuse):
        opts = LPOptions(zero_planting=False, track_convergence=False,
                         fuse_push=fuse, backend=backend, **overrides)
        return _Engine(graph, opts, "")

    fused_eng, ref_eng = engine(True), engine(False)
    f_front = Frontier.of_vertices(
        graph, np.arange(graph.num_vertices, dtype=np.int64))
    r_front = Frontier.of_vertices(
        graph, np.arange(graph.num_vertices, dtype=np.int64))
    rounds = 0
    while len(f_front) or len(r_front):
        f_front = fused_eng.push(f_front)
        r_front = ref_eng.push(r_front)
        assert np.array_equal(fused_eng.last_drain_order,
                              ref_eng.last_drain_order), rounds
        assert np.array_equal(fused_eng.labels, ref_eng.labels), rounds
        assert fused_eng.counters.as_dict() == \
            ref_eng.counters.as_dict(), rounds
        assert np.array_equal(fused_eng._last_work,
                              ref_eng._last_work), rounds
        for t in range(fused_eng.opts.num_threads):
            fb = fused_eng.last_worklists.thread_batches(t)
            rb = ref_eng.last_worklists.thread_batches(t)
            assert len(fb) == len(rb), (rounds, t)
            assert all(np.array_equal(x, y)
                       for x, y in zip(fb, rb)), (rounds, t)
        fused_eng._last_work = ref_eng._last_work = None
        rounds += 1
        assert rounds < 200   # convergence guard
    assert rounds > 1         # the sweep actually exercised pushes

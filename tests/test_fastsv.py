"""Tests for the FastSV baseline."""

import numpy as np
import pytest

from repro.baselines import fastsv_cc, shiloach_vishkin_cc
from repro.validate import validate_against_reference


class TestFastSV:
    def test_on_zoo(self, zoo_graph):
        validate_against_reference(zoo_graph, fastsv_cc(zoo_graph))

    def test_empty(self):
        from repro.graph import CSRGraph
        g = CSRGraph(np.array([0]), np.empty(0, np.int64))
        assert fastsv_cc(g).labels.size == 0

    def test_processes_all_edges_each_round(self, small_skewed):
        r = fastsv_cc(small_skewed)
        assert r.counters().edges_processed == \
            r.num_iterations * small_skewed.num_edges

    def test_no_more_rounds_than_sv(self, small_skewed):
        """FastSV's aggressive hooking converges at least as fast."""
        fast = fastsv_cc(small_skewed).num_iterations
        sv = shiloach_vishkin_cc(small_skewed).num_iterations
        assert fast <= sv + 1

    def test_labels_are_minima(self, two_triangles):
        r = fastsv_cc(two_triangles)
        assert r.canonical_labels().tolist() == [0, 0, 0, 3, 3, 3]

    def test_trace_converges(self, small_skewed):
        trace = fastsv_cc(small_skewed).trace
        assert trace.iterations[-1].changed_vertices == 0
        assert trace.iterations[-1].converged_fraction == pytest.approx(1.0)

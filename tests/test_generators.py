"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import (
    component_labels_reference,
    component_sizes,
    degree_stats,
    estimate_diameter,
    is_skewed,
)
from repro.graph.generators import (
    barabasi_albert_graph,
    chung_lu_edges,
    chung_lu_graph,
    cycle_graph,
    disjoint_union,
    erdos_renyi_graph,
    grid_edges,
    path_graph,
    power_law_weights,
    rmat_edges,
    rmat_graph,
    road_network_graph,
    star_graph,
    with_dust_components,
    with_tendrils,
)
from repro.validate import check_labels_consistent


class TestRmat:
    def test_deterministic(self):
        a = rmat_edges(8, 500, seed=3)
        b = rmat_edges(8, 500, seed=3)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)

    def test_seed_changes_output(self):
        a = rmat_edges(8, 500, seed=3)
        b = rmat_edges(8, 500, seed=4)
        assert not np.array_equal(a.src, b.src)

    def test_vertex_range(self):
        e = rmat_edges(6, 300, seed=1)
        assert e.num_vertices == 64
        assert e.src.max() < 64

    def test_skewed_output(self):
        assert is_skewed(rmat_graph(10, 16, seed=2))

    def test_uniform_parameters_not_skewed(self):
        g = rmat_graph(10, 8, a=0.25, b=0.25, c=0.25, seed=2)
        assert not is_skewed(g)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError, match="non-negative"):
            rmat_edges(4, 10, a=0.9, b=0.9, c=0.9)

    def test_negative_scale(self):
        with pytest.raises(ValueError, match="scale"):
            rmat_edges(-1, 10)

    def test_scale_zero(self):
        e = rmat_edges(0, 5, seed=0)
        assert e.num_vertices == 1
        assert np.all(e.src == 0)


class TestChungLu:
    def test_weights_power_law(self):
        w = power_law_weights(20000, 2.1, seed=0)
        assert w.min() >= 1.0
        # Heavy tail: max should dwarf the median.
        assert w.max() > 20 * np.median(w)

    def test_weights_capped(self):
        w = power_law_weights(5000, 2.0, max_weight=10.0, seed=0)
        assert w.max() <= 10.0

    def test_bad_exponent(self):
        with pytest.raises(ValueError, match="exponent"):
            power_law_weights(10, 1.0)

    def test_edges_respect_weights(self):
        # A vertex with overwhelming weight should catch most endpoints.
        w = np.ones(100)
        w[7] = 1e6
        e = chung_lu_edges(w, 2000, seed=1)
        share = np.mean(np.concatenate([e.src, e.dst]) == 7)
        assert share > 0.9

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            chung_lu_edges(np.array([1.0, -1.0]), 10)

    def test_graph_is_skewed(self, small_social):
        assert is_skewed(small_social)

    def test_average_degree_approx(self):
        g = chung_lu_graph(2000, 12.0, seed=3)
        # Dedup and zero-degree removal shift it, but not wildly.
        assert 6.0 < float(g.degrees.mean()) < 14.0


class TestBarabasiAlbert:
    def test_connected(self):
        g = barabasi_albert_graph(400, 4, seed=1)
        assert len(component_sizes(g)) == 1

    def test_edge_count(self):
        n, m = 200, 5
        g = barabasi_albert_graph(n, m, seed=2)
        expected = m * (m + 1) // 2 + (n - m - 1) * m
        assert g.num_undirected_edges == expected

    def test_skewed(self):
        assert is_skewed(barabasi_albert_graph(2000, 8, seed=3))

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="attach"):
            barabasi_albert_graph(10, 0)
        with pytest.raises(ValueError, match="exceed"):
            barabasi_albert_graph(4, 8)


class TestErdosRenyi:
    def test_degree_concentrated(self):
        g = erdos_renyi_graph(2000, 10.0, seed=4)
        s = degree_stats(g)
        assert s.max < 5 * s.mean


class TestRoad:
    def test_grid_edges_count(self):
        e = grid_edges(3, 4)
        # horizontal: 3*3, vertical: 2*4
        assert e.num_edges == 17

    def test_grid_validation(self):
        with pytest.raises(ValueError, match="1x1"):
            grid_edges(0, 5)

    def test_degree_range(self, small_road):
        assert small_road.degrees.max() <= 6  # lattice + few shortcuts

    def test_high_diameter(self):
        g = road_network_graph(40, 40, seed=5)
        assert estimate_diameter(g) > 30

    def test_not_skewed(self, small_road):
        assert not is_skewed(small_road)

    def test_path_and_cycle(self):
        assert path_graph(5).num_undirected_edges == 4
        assert cycle_graph(5).num_undirected_edges == 5
        with pytest.raises(ValueError):
            path_graph(0)
        with pytest.raises(ValueError):
            cycle_graph(2)


class TestStitched:
    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert g.degree(3) == 1
        with pytest.raises(ValueError):
            star_graph(0)

    def test_disjoint_union_components_add(self):
        g = disjoint_union([star_graph(4), cycle_graph(5)])
        assert len(component_sizes(g)) == 2
        assert g.num_vertices == 10

    def test_disjoint_union_empty_list(self):
        with pytest.raises(ValueError):
            disjoint_union([])

    def test_dust_adds_components(self):
        base = star_graph(5)
        g = with_dust_components(base, 7, seed=1)
        assert len(component_sizes(g)) == 8

    def test_dust_zero_noop(self):
        base = star_graph(5)
        assert with_dust_components(base, 0) is base

    def test_dust_preserves_base(self):
        base = cycle_graph(6)
        g = with_dust_components(base, 3, seed=2)
        for v in range(6):
            assert np.array_equal(g.neighbors(v), base.neighbors(v))


class TestTendrils:
    def test_stay_connected_to_base(self):
        base = star_graph(10)
        g = with_tendrils(base, 5, min_depth=3, max_depth=6, seed=3)
        assert len(component_sizes(g)) == 1

    def test_increase_diameter(self):
        base = star_graph(30)
        g = with_tendrils(base, 4, min_depth=15, max_depth=15, seed=4,
                          permute_fraction=0.0)
        assert estimate_diameter(g) >= 16

    def test_symmetric_output(self):
        base = cycle_graph(8)
        g = with_tendrils(base, 3, min_depth=2, max_depth=5, seed=5)
        assert g.to_edge_list().is_symmetric()
        check_labels_consistent(g, component_labels_reference(g))

    def test_permute_fraction_bounds(self):
        with pytest.raises(ValueError, match="permute_fraction"):
            with_tendrils(star_graph(3), 1, permute_fraction=1.5)

    def test_zero_noop(self):
        base = star_graph(3)
        assert with_tendrils(base, 0) is base

    def test_depth_validation(self):
        with pytest.raises(ValueError, match="depth"):
            with_tendrils(star_graph(3), 1, min_depth=5, max_depth=2)

    def test_vertex_budget(self):
        base = cycle_graph(10)
        g = with_tendrils(base, 6, min_depth=4, max_depth=4, seed=6)
        assert g.num_vertices == 10 + 24

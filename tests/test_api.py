"""Tests for the public front door."""

import numpy as np
import pytest

from repro import (
    ALGORITHMS,
    EPYC,
    ThriftyOptions,
    connected_components,
    num_components,
)
from repro.options import JTOptions
from repro.validate import same_partition, validate_against_reference


class TestDispatch:
    def test_all_methods_registered(self):
        assert set(ALGORITHMS) == {"thrifty", "dolp", "unified", "sv",
                                   "fastsv", "jt", "afforest", "bfs",
                                   "kla", "connectit", "lp-shortcut",
                                   "distributed"}

    @pytest.mark.parametrize("method", sorted(ALGORITHMS))
    def test_every_method_correct(self, method, small_skewed):
        result = connected_components(small_skewed, method)
        validate_against_reference(small_skewed, result)

    def test_methods_agree_pairwise(self, small_skewed):
        results = {m: connected_components(small_skewed, m)
                   for m in ALGORITHMS}
        base = results["thrifty"]
        for m, r in results.items():
            assert same_partition(base, r), m

    def test_unknown_method(self, triangle):
        with pytest.raises(ValueError, match="unknown method"):
            connected_components(triangle, "magic")

    def test_machine_forwarded_to_lp(self, small_skewed):
        r = connected_components(small_skewed, "thrifty", machine=EPYC)
        validate_against_reference(small_skewed, r)

    @pytest.mark.parametrize("method", sorted(ALGORITHMS))
    def test_machine_accepted_uniformly(self, method, triangle):
        # Every dispatch target takes machine=, LP engines and
        # machine-independent baselines alike.
        r = connected_components(triangle, method, machine=EPYC)
        assert r.num_components == 1

    def test_typed_options_forwarded(self, small_skewed):
        r = connected_components(small_skewed, "thrifty",
                                 options=ThriftyOptions(threshold=0.2))
        validate_against_reference(small_skewed, r)

    def test_legacy_kwargs_bit_identical_with_warning(self, small_skewed):
        typed = connected_components(small_skewed, "thrifty",
                                     options=ThriftyOptions(threshold=0.2))
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = connected_components(small_skewed, "thrifty",
                                          threshold=0.2)
        assert np.array_equal(typed.labels, legacy.labels)
        assert typed.counters().as_dict() == legacy.counters().as_dict()

    def test_options_and_kwargs_conflict(self, triangle):
        with pytest.raises(ValueError, match="not both"):
            connected_components(triangle, "thrifty",
                                 options=ThriftyOptions(), threshold=0.2)

    def test_wrong_options_type(self, triangle):
        with pytest.raises(TypeError, match="ThriftyOptions"):
            connected_components(triangle, "thrifty",
                                 options=JTOptions())

    def test_dataset_name_recorded(self, triangle):
        r = connected_components(triangle, "thrifty", dataset="tri")
        assert r.trace.dataset == "tri"

    def test_num_components(self, two_triangles):
        assert num_components(two_triangles) == 2

    def test_num_components_forwards_everything(self, small_skewed):
        # num_components takes the full front-door signature.
        n = num_components(small_skewed, "jt", machine=EPYC,
                           dataset="sk", options=JTOptions(seed=3))
        assert n == num_components(small_skewed, "thrifty")


class TestAutoRouting:
    def test_auto_runs_and_is_correct(self, small_skewed):
        r = connected_components(small_skewed, "auto")
        validate_against_reference(small_skewed, r)

    def test_auto_rejects_options(self, small_skewed):
        with pytest.raises(ValueError, match="auto"):
            connected_components(small_skewed, "auto",
                                 options=ThriftyOptions())
        with pytest.raises(ValueError, match="auto"):
            connected_components(small_skewed, "auto", threshold=0.1)

    def test_unknown_method_error_lists_auto(self, triangle):
        with pytest.raises(ValueError, match="auto"):
            connected_components(triangle, "magic")


class TestCCResult:
    def test_canonical_labels_minimum_member(self, two_triangles):
        r = connected_components(two_triangles, "thrifty")
        canon = r.canonical_labels()
        assert canon.tolist() == [0, 0, 0, 3, 3, 3]

    def test_component_sizes_sorted(self, small_skewed):
        r = connected_components(small_skewed, "thrifty")
        sizes = r.component_sizes()
        assert list(sizes) == sorted(sizes, reverse=True)
        assert int(sizes.sum()) == small_skewed.num_vertices

    def test_counters_accessor(self, triangle):
        r = connected_components(triangle, "dolp")
        assert r.counters().edges_processed > 0

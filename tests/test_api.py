"""Tests for the public front door."""

import pytest

from repro import (
    ALGORITHMS,
    EPYC,
    connected_components,
    num_components,
)
from repro.validate import same_partition, validate_against_reference


class TestDispatch:
    def test_all_methods_registered(self):
        assert set(ALGORITHMS) == {"thrifty", "dolp", "unified", "sv",
                                   "fastsv", "jt", "afforest", "bfs",
                                   "kla", "connectit", "lp-shortcut"}

    @pytest.mark.parametrize("method", sorted(ALGORITHMS))
    def test_every_method_correct(self, method, small_skewed):
        result = connected_components(small_skewed, method)
        validate_against_reference(small_skewed, result)

    def test_methods_agree_pairwise(self, small_skewed):
        results = {m: connected_components(small_skewed, m)
                   for m in ALGORITHMS}
        base = results["thrifty"]
        for m, r in results.items():
            assert same_partition(base, r), m

    def test_unknown_method(self, triangle):
        with pytest.raises(ValueError, match="unknown method"):
            connected_components(triangle, "magic")

    def test_machine_forwarded_to_lp(self, small_skewed):
        r = connected_components(small_skewed, "thrifty", machine=EPYC)
        validate_against_reference(small_skewed, r)

    def test_machine_ignored_for_baselines(self, triangle):
        # Baselines are machine-independent; must not choke on it.
        r = connected_components(triangle, "sv", machine=EPYC)
        assert r.num_components == 1

    def test_kwargs_forwarded(self, small_skewed):
        r = connected_components(small_skewed, "thrifty", threshold=0.2)
        validate_against_reference(small_skewed, r)

    def test_dataset_name_recorded(self, triangle):
        r = connected_components(triangle, "thrifty", dataset="tri")
        assert r.trace.dataset == "tri"

    def test_num_components(self, two_triangles):
        assert num_components(two_triangles) == 2


class TestCCResult:
    def test_canonical_labels_minimum_member(self, two_triangles):
        r = connected_components(two_triangles, "thrifty")
        canon = r.canonical_labels()
        assert canon.tolist() == [0, 0, 0, 3, 3, 3]

    def test_component_sizes_sorted(self, small_skewed):
        r = connected_components(small_skewed, "thrifty")
        sizes = r.component_sizes()
        assert list(sizes) == sorted(sizes, reverse=True)
        assert int(sizes.sum()) == small_skewed.num_vertices

    def test_counters_accessor(self, triangle):
        r = connected_components(triangle, "dolp")
        assert r.counters().edges_processed > 0

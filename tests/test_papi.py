"""Tests for the hardware-counter proxy model."""

import pytest

from repro.instrument import OpCounters, model_hardware_counters, \
    random_miss_rate
from repro.parallel import EPYC, SKYLAKEX


def work(edges=1000, vertices=100):
    c = OpCounters()
    c.record_pull_scan(edges, vertices)
    return c


class TestMissRate:
    def test_fits_in_cache(self):
        # 1000 vertices * 4B = 4 KB << 44 MB L3.
        assert random_miss_rate(SKYLAKEX, 4_000) == 0.0

    def test_exceeds_cache(self):
        r = random_miss_rate(SKYLAKEX, 10 * 44 * 1024 * 1024)
        assert 0.85 < r < 0.95

    def test_monotone_in_working_set(self):
        rates = [random_miss_rate(SKYLAKEX, ws)
                 for ws in (10**6, 10**8, 10**10)]
        assert rates == sorted(rates)

    def test_zero_working_set(self):
        assert random_miss_rate(SKYLAKEX, 0) == 0.0


class TestProxyModel:
    def test_memory_accesses_passthrough(self):
        c = work()
        hw = model_hardware_counters(c, SKYLAKEX, 10**6)
        assert hw.memory_accesses == c.memory_accesses

    def test_more_work_more_events(self):
        small = model_hardware_counters(work(100, 10), SKYLAKEX, 10**7)
        big = model_hardware_counters(work(10_000, 1000), SKYLAKEX, 10**7)
        for k in ("llc_misses", "branch_mispredictions", "instructions"):
            assert big.as_dict()[k] > small.as_dict()[k]

    def test_small_graph_no_random_misses(self):
        hw = model_hardware_counters(work(), SKYLAKEX, 100)
        # Only the sequential 1/16-per-line misses remain.
        c = work()
        assert hw.llc_misses == int(c.sequential_accesses * 4 / 64)

    def test_bigger_cache_fewer_misses(self):
        c = work(100_000, 1000)
        n = 50_000_000   # 200 MB labels: misses on both machines
        sk = model_hardware_counters(c, SKYLAKEX, n)
        ep = model_hardware_counters(c, EPYC, n)
        assert ep.llc_misses < sk.llc_misses   # Epyc has 512 MB L3

    def test_instructions_scale_with_edges(self):
        a = model_hardware_counters(work(1000, 0), SKYLAKEX, 10**6)
        b = model_hardware_counters(work(2000, 0), SKYLAKEX, 10**6)
        assert b.instructions == pytest.approx(2 * a.instructions, rel=0.01)

    def test_as_dict_keys(self):
        hw = model_hardware_counters(work(), SKYLAKEX, 10**6)
        assert set(hw.as_dict()) == {
            "memory_accesses", "llc_misses",
            "branch_mispredictions", "instructions"}

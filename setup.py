"""Setuptools shim: enables `setup.py develop` on offline machines
where the `wheel` package (needed for PEP 660 editable installs) is
unavailable. All metadata lives in pyproject.toml."""
from setuptools import setup

setup()

"""Extension experiment E4 — the KLA synchrony spectrum.

Paper Section VII proposes KLA-style unordered scheduling for better
CPU utilization.  This experiment sweeps the asynchrony depth k on a
high-iteration surrogate (Wbbs): supersteps (barriers) shrink ~1/k,
total edge work stays nearly flat, and simulated time improves until
the barrier cost stops dominating.

Shape asserted: supersteps strictly decrease from k=1 to k=16; edge
work grows < 10%; simulated time at k=16 beats k=1.
"""

from conftest import SCALE, run_once

from repro.core import KLAOptions, kla_cc
from repro.experiments import format_table
from repro.graph import load
from repro.instrument import simulate_run_time
from repro.parallel import SKYLAKEX
from repro.validate import same_partition

DATASET = "Wbbs"
KS = (1, 2, 4, 8, 16)


def _generate():
    graph = load(DATASET, min(SCALE, 0.5))
    rows = []
    ref = None
    for k in KS:
        r = kla_cc(graph, KLAOptions(k=k), dataset=DATASET)
        if ref is None:
            ref = r.labels
        assert same_partition(ref, r.labels)
        t = simulate_run_time(r.trace, SKYLAKEX, graph.num_vertices)
        rows.append({"k": k, "supersteps": r.num_iterations,
                     "edges": r.counters().edges_processed,
                     "ms": t.total_ms})
    return rows


def test_ext_kla_sweep(benchmark):
    rows = run_once(benchmark, _generate)
    print()
    print(format_table(
        ["k", "supersteps (barriers)", "edges processed", "sim ms"],
        [[r["k"], r["supersteps"], r["edges"], f'{r["ms"]:.2f}']
         for r in rows],
        title=f"Extension E4: KLA asynchrony sweep on {DATASET}"))

    by = {r["k"]: r for r in rows}
    assert by[16]["supersteps"] < by[4]["supersteps"] \
        < by[1]["supersteps"]
    assert by[16]["edges"] <= 1.1 * by[1]["edges"]
    assert by[16]["ms"] < by[1]["ms"]

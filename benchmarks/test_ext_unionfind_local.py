"""Extension experiment — worklist-local union-find substrate speedup.

Every tree-hooking baseline (SV, JT, Afforest, the ConnectIt design
space) funnels through the union-find substrate in
``repro.baselines.disjoint_set``.  The historical implementation
(``local=False``, kept as the bit-comparable reference) resolves
endpoint roots with ``pointer_jump_roots`` over **all n vertices** in
every union round, even when the batch touches a handful of
endpoints.  The worklist-local substrate (``local=True``) resolves
only the touched set, with per-batch memoized compression.

The engine processes all of its work at partition-bounded chunk grain
(DESIGN.md Section 5; ``test_ext_push_fusion`` times that path), so
this experiment drives the substrate the same way: the union batches
Afforest and SV feed it, cut into engine-grain edge chunks.  That is
precisely the regime the all-vertex reference cannot afford — O(n)
pointer jumping per chunk-round — and the regime its accounting bug
mischarges.  Full uncut baseline runs are edge-gather-bound in both
modes (the substrate is a minor fraction of their wall-clock); the
sweep therefore times the substrate calls themselves, exactly as the
push-fusion experiment isolates the push path.

Two legs, both on a skewed scale-18 RMAT graph at full scale:

* **Afforest leg** — the phase-1 k-out neighbour rounds followed by
  the phase-3 finish of everything outside the sampled giant, each
  stream cut into chunks and unioned to quiescence per chunk.
* **SV leg** — the SV-family hook/shortcut pattern: one min-hooking
  pass over every undirected edge in chunk-grain union batches, with
  the SV shortcut (``shortcut_parents``) interleaved every window of
  chunks and a final full shortcut.

Asserted shape: both legs produce identical link counts and identical
flattened labels in local and reference mode (and the labels match a
BFS ground truth), and the combined sweep is at least 3x faster at
full scale.  The sweep's before/after numbers, plus untimed full-run
context figures, are written to ``BENCH_baselines.json`` at the repo
root so CI keeps a perf-trajectory artifact.
"""

import time

import numpy as np

from conftest import BENCH_PATH, SCALE, STRICT, run_once, write_baseline

from repro.baselines import (
    afforest_cc,
    bfs_cc,
    shiloach_vishkin_cc,
)
from repro.baselines.disjoint_set import (
    flatten_parents,
    shortcut_parents,
    union_edge_batch,
)
from repro.experiments import format_table
from repro.graph.generators import rmat_graph
from repro.validate import same_partition

# The reference's O(n)-per-round cost is the measured effect, so the
# smoke scale stays moderately large to keep it visible.
RMAT_SCALE = 18 if SCALE >= 0.75 else 16
EDGE_FACTOR = 8
#: Edge-grain of one substrate batch: the engine's 64-vertex blocks
#: hold ~64 x mean-degree edges on these graphs, i.e. a few thousand.
CHUNK_EDGES = 4096
#: SV interleaves a shortcut pass after each window of hook chunks.
SHORTCUT_WINDOW = 64
NEIGHBOR_ROUNDS = 2


def _afforest_leg(graph, local):
    """Afforest's union workload at chunk grain.

    Returns ``(substrate_seconds, links, flat_labels)``; only the
    substrate calls are timed — stream construction is identical in
    both modes.
    """
    n = graph.num_vertices
    indptr = graph.indptr
    indices = graph.indices.astype(np.int64)
    degrees = graph.degrees
    parent = np.arange(n, dtype=np.int64)
    links = 0
    elapsed = 0.0

    # Phase 1: k-out neighbour rounds.
    for r in range(NEIGHBOR_ROUNDS):
        has = np.flatnonzero(degrees > r)
        if has.size == 0:
            break
        nbr = indices[indptr[has] + r]
        for lo in range(0, has.size, CHUNK_EDGES):
            eu = has[lo:lo + CHUNK_EDGES]
            ev = nbr[lo:lo + CHUNK_EDGES]
            t0 = time.perf_counter()
            linked, _ = union_edge_batch(parent, eu, ev, local=local)
            elapsed += time.perf_counter() - t0
            links += linked

    # Phase 2/3: find the giant, stream the remaining adjacency of
    # everything outside it (shared work, untimed: both modes see the
    # same parent partition, so the same stream).
    roots = flatten_parents(parent.copy())
    giant = np.bincount(roots).argmax()
    outside = np.flatnonzero(roots != giant)
    rows = outside[degrees[outside] > NEIGHBOR_ROUNDS]
    if rows.size:
        counts = (degrees[rows] - NEIGHBOR_ROUNDS).astype(np.int64)
        offsets = np.zeros(rows.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        total = int(counts.sum())
        idx = np.arange(total, dtype=np.int64)
        seg = np.searchsorted(offsets, idx, side="right") - 1
        pos = indptr[rows][seg] + NEIGHBOR_ROUNDS + (idx - offsets[seg])
        dust_src = np.repeat(rows, counts)
        dust_dst = indices[pos]
        for lo in range(0, dust_src.size, CHUNK_EDGES):
            eu = dust_src[lo:lo + CHUNK_EDGES]
            ev = dust_dst[lo:lo + CHUNK_EDGES]
            t0 = time.perf_counter()
            linked, _ = union_edge_batch(parent, eu, ev, local=local)
            elapsed += time.perf_counter() - t0
            links += linked

    return elapsed, links, flatten_parents(parent)


def _sv_leg(graph, local):
    """The SV hook/shortcut pattern at chunk grain.

    Min-hooking over every undirected edge in chunk batches (the
    link-to-smaller-id convention SV's hook races resolve to), with
    the SV shortcut interleaved per window.  Returns
    ``(substrate_seconds, links, flat_labels)``.
    """
    n = graph.num_vertices
    src = graph.edge_sources()
    dst = graph.indices.astype(np.int64)
    once = src < dst
    eu_all, ev_all = src[once], dst[once]
    comp = np.arange(n, dtype=np.int64)
    links = 0
    elapsed = 0.0

    for i, lo in enumerate(range(0, eu_all.size, CHUNK_EDGES)):
        eu = eu_all[lo:lo + CHUNK_EDGES]
        ev = ev_all[lo:lo + CHUNK_EDGES]
        t0 = time.perf_counter()
        linked, _ = union_edge_batch(comp, eu, ev, local=local)
        if (i + 1) % SHORTCUT_WINDOW == 0:
            shortcut_parents(comp, local=local)
        elapsed += time.perf_counter() - t0
        links += linked

    t0 = time.perf_counter()
    shortcut_parents(comp, local=local)
    elapsed += time.perf_counter() - t0
    return elapsed, links, comp


def _best_of(leg, graph, local, repeats=2):
    out = leg(graph, local)
    for _ in range(repeats - 1):
        again = leg(graph, local)
        if again[0] < out[0]:
            out = again
    return out


def _time_full_run(fn, graph, local, repeats=2):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(graph, local=local)
        best = min(best, time.perf_counter() - t0)
    return best


def _generate():
    graph = rmat_graph(RMAT_SCALE, EDGE_FACTOR, seed=7)
    truth = bfs_cc(graph).labels

    sweep = {}
    for name, leg in (("afforest", _afforest_leg), ("sv", _sv_leg)):
        t_local, links_local, labels_local = _best_of(leg, graph, True)
        t_ref, links_ref, labels_ref = _best_of(leg, graph, False)
        # The local substrate is a pure wall-clock/accounting change:
        # links and final labels must be bit-identical, and correct.
        assert links_local == links_ref
        assert np.array_equal(labels_local, labels_ref)
        assert same_partition(labels_local, truth)
        sweep[name] = {
            "local_seconds": t_local,
            "reference_seconds": t_ref,
            "speedup": t_ref / t_local,
        }

    combined = (
        (sweep["afforest"]["reference_seconds"]
         + sweep["sv"]["reference_seconds"])
        / (sweep["afforest"]["local_seconds"]
           + sweep["sv"]["local_seconds"]))

    # Context: full uncut baseline runs (edge-gather-bound either way;
    # the trajectory artifact records that the local default does not
    # regress them).
    full_runs = {}
    for name, fn in (("afforest", afforest_cc), ("sv", shiloach_vishkin_cc)):
        t_local = _time_full_run(fn, graph, True)
        t_ref = _time_full_run(fn, graph, False)
        full_runs[name] = {
            "local_seconds": t_local,
            "reference_seconds": t_ref,
            "speedup": t_ref / t_local,
        }

    report = {
        "rmat_scale": RMAT_SCALE,
        "edge_factor": EDGE_FACTOR,
        "chunk_edges": CHUNK_EDGES,
        "bench_scale": SCALE,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "sweep": sweep,
        "combined_speedup": combined,
        "full_runs": full_runs,
    }
    write_baseline("unionfind_local_sweep", report)
    return report


def test_unionfind_local_speedup(benchmark):
    report = run_once(benchmark, _generate)
    rows = [[leg,
             f"{report['sweep'][leg]['reference_seconds'] * 1e3:.1f}",
             f"{report['sweep'][leg]['local_seconds'] * 1e3:.1f}",
             f"{report['sweep'][leg]['speedup']:.2f}x"]
            for leg in ("afforest", "sv")]
    print()
    print(format_table(
        ["leg", "reference_ms", "local_ms", "speedup"], rows,
        title="Worklist-local union-find (chunk-grain substrate sweep)"))
    print(f"combined speedup: {report['combined_speedup']:.2f}x "
          f"(written to {BENCH_PATH.name})")
    assert BENCH_PATH.exists()
    if STRICT:
        assert report["vertices"] >= 100_000
        assert report["combined_speedup"] >= 3.0
        assert report["sweep"]["afforest"]["speedup"] >= 1.5
        assert report["sweep"]["sv"]["speedup"] >= 1.5
    else:
        assert report["combined_speedup"] >= 1.2

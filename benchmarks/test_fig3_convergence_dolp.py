"""Figure 3 — active% and converged% per DO-LP iteration.

Paper: convergence is slow in the first and final iterations, with a
middle burst where 30-60% of vertices converge in one iteration; many
active vertices remain while most vertices are already converged
("preaching to the converged").
"""

from conftest import REP_DATASET, SCALE, run_once

from repro.experiments import fig3_dolp_convergence, format_table


def test_fig3_dolp_convergence(benchmark):
    rows = run_once(
        benchmark,
        lambda: fig3_dolp_convergence(REP_DATASET, scale=SCALE))
    table = [[r["iteration"], r["direction"],
              f'{r["active_pct"]:.1f}', f'{r["converged_pct"]:.1f}']
             for r in rows]
    print()
    print(format_table(
        ["iter", "direction", "active %", "converged %"], table,
        title=f"Figure 3: DO-LP convergence on {REP_DATASET}"))

    converged = [r["converged_pct"] for r in rows]
    # Slow start: little converges in iteration 0.
    assert converged[0] < 30.0
    # A burst iteration converges >30% of vertices at once.
    jumps = [b - a for a, b in zip(converged, converged[1:])]
    assert max(jumps, default=0.0) > 30.0
    # Redundant-work window: some iteration has both high converged%
    # and a still-active frontier.
    redundant = [r for r in rows
                 if r["converged_pct"] > 60 and r["active_pct"] > 5]
    assert redundant, "expected iterations preaching to the converged"
    assert converged[-1] == 100.0

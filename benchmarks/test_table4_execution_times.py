"""Table IV — execution times of all six algorithms on both machines.

Paper shape asserted here:

* power-law graphs: Thrifty is the fastest algorithm on a large
  majority of datasets, and beats DO-LP/SV/BFS everywhere;
* road networks: at least one disjoint-set algorithm beats Thrifty
  (paper: SV, JT and Afforest all do);
* absolute milliseconds are modelled, not expected to match.
"""

from conftest import ALL_DATASETS, PL_DATASETS, ROAD_DATASETS, SCALE, \
    STRICT, run_once

from repro.experiments import format_table, table4_execution_times

METHODS = ("sv", "bfs", "dolp", "jt", "afforest", "thrifty")


def test_table4_execution_times(benchmark):
    rows = run_once(
        benchmark,
        lambda: table4_execution_times(machines=("SkylakeX", "Epyc"),
                                       datasets=ALL_DATASETS,
                                       methods=METHODS, scale=SCALE))
    for machine in ("SkylakeX", "Epyc"):
        table = [[r["dataset"],
                  *(f'{r[f"{machine}/{m}"]:.2f}' for m in METHODS)]
                 for r in rows]
        print()
        print(format_table(["dataset", *METHODS], table,
                           title=f"Table IV ({machine}): simulated ms"))

    by_name = {r["dataset"]: r for r in rows}
    for machine in ("SkylakeX", "Epyc"):
        wins = 0
        for name in PL_DATASETS:
            r = by_name[name]
            t = r[f"{machine}/thrifty"]
            # Thrifty always beats the LP baseline and the weak
            # baselines on skewed graphs.
            assert t < r[f"{machine}/dolp"], (machine, name)
            if STRICT:
                # With the worklist-local find accounting, SV stays
                # competitive on a couple of low-diameter webs at
                # reduced scale; the everywhere-claim is full-scale
                # (like the road crossover below).
                assert t < r[f"{machine}/sv"], (machine, name)
            if all(t <= r[f"{machine}/{m}"] for m in METHODS[:-1]):
                wins += 1
        floor = 0.6 if STRICT else 0.4
        assert wins >= len(PL_DATASETS) * floor, \
            f"Thrifty should win most power-law datasets on {machine}"
        if STRICT:
            # Road networks need full-scale diameter for the paper's
            # crossover to appear.
            for name in ROAD_DATASETS:
                r = by_name[name]
                best_ds = min(r[f"{machine}/{m}"]
                              for m in ("sv", "jt", "afforest"))
                assert best_ds < r[f"{machine}/thrifty"], \
                    f"disjoint-set should win roads ({machine}, {name})"

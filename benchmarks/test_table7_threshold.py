"""Table VII — effect of the push/pull threshold (1% vs 5%).

Paper (Twitter-MPI): at 1% the algorithm runs pull iterations while the
frontier is dense, then one Pull-Frontier, then pushes; at 5% it
switches to push a pull earlier.  Shape asserted: both thresholds give
the same components; the 5% schedule has no more pull iterations than
the 1% schedule; every schedule shows the pull -> pull-frontier ->
push pattern.
"""

from conftest import SCALE, run_once

from repro.experiments import format_table, table7_threshold

DATASET = "TwtrMpi"


def test_table7_threshold(benchmark):
    out = run_once(benchmark,
                   lambda: table7_threshold(DATASET,
                                            thresholds=(0.01, 0.05),
                                            scale=SCALE))
    print()
    pulls = {}
    for threshold, rows in out.items():
        table = [[r["iteration"], r["traversal"],
                  f'{r["density_pct"]:.2f}', f'{r["time_ms"]:.3f}']
                 for r in rows[:12]]
        print(format_table(
            ["iter", "traversal", "density %", "time ms"], table,
            title=f"Table VII ({DATASET}): threshold = "
                  f"{100 * threshold:g}%"))
        kinds = [r["traversal"] for r in rows]
        assert kinds[0] == "initial-push"
        assert kinds[1] == "pull"
        pulls[threshold] = sum(1 for k in kinds
                               if k in ("pull", "pull-frontier"))
    assert pulls[0.05] <= pulls[0.01], \
        "higher threshold switches to push no later"

"""Table VI — first-iteration cost: DO-LP pull vs Initial Push + pull.

Paper: Thrifty's iteration 0 (Initial Push) plus its first
zero-convergence pull together beat DO-LP's first full pull by
1.9x-14.2x (mean 5.3x).  Shape asserted: speedup > 1 on a large
majority of datasets and the Initial Push itself is far cheaper than
DO-LP's first pull.
"""

import statistics

from conftest import PL_DATASETS, SCALE, STRICT, run_once

from repro.experiments import format_table, table6_initial_push


def test_table6_initial_push(benchmark):
    rows = run_once(benchmark,
                    lambda: table6_initial_push(PL_DATASETS,
                                                scale=SCALE))
    table = [[r["dataset"], f'{r["dolp_iter0_ms"]:.3f}',
              f'{r["thrifty_push_ms"]:.3f}',
              f'{r["thrifty_pull_ms"]:.3f}',
              f'{r["speedup"]:.1f}x'] for r in rows]
    print()
    print(format_table(
        ["dataset", "DO-LP iter0", "Thrifty push", "Thrifty pull",
         "speedup"], table,
        title="Table VI: first-iteration time (simulated ms)"))
    mean = statistics.mean(r["speedup"] for r in rows)
    print(f"mean speedup: {mean:.1f}x (paper: 5.3x, range 1.9-14.2x)")

    # The smallest surrogates (Pkc-sized) are barrier-dominated after
    # the ~2^10x compression, so a few speedups land just below 1.
    faster = sum(1 for r in rows if r["speedup"] > 1.0)
    if STRICT:
        assert faster >= len(rows) - 4
        assert mean > 1.3
    else:
        assert faster >= len(rows) * 0.5
    for r in rows:
        # The push itself is much cheaper than a full pull.
        assert r["thrifty_push_ms"] < r["dolp_iter0_ms"], r

"""Extension experiment E3 — the ConnectIt design space vs Thrifty.

The paper's Related Work wanted to evaluate ConnectIt (sampling x
finish CC framework) but its repository did not compile.  This
experiment runs the reimplemented design space — 4 sampling strategies
x 3 finish strategies — against Thrifty on a representative skewed
surrogate, reporting simulated time and edges processed.

Shape asserted: every point computes the same components; k-out
sampling slashes the skip-giant finish's edge work (the Afforest
mechanism); Thrifty beats every disjoint-set-finish point and the
design-space median.  (The thrifty-pull finish is itself a
Thrifty-family hybrid and is allowed to be competitive.)
"""

from conftest import SCALE, run_once

from repro.connectit import connectit_cc, connectit_design_space
from repro.core import thrifty_cc
from repro.experiments import format_table
from repro.graph import load
from repro.instrument import simulate_run_time
from repro.parallel import SKYLAKEX
from repro.validate import same_partition

DATASET = "TwtrMpi"


def _generate():
    graph = load(DATASET, min(SCALE, 0.5))
    rows = []
    thrifty = thrifty_cc(graph, dataset=DATASET)
    thrifty_ms = simulate_run_time(thrifty.trace, SKYLAKEX,
                                   graph.num_vertices).total_ms
    rows.append({"config": "thrifty", "ms": thrifty_ms,
                 "edges": thrifty.counters().edges_processed})
    for sampling, finish in connectit_design_space():
        r = connectit_cc(graph, sampling=sampling, finish=finish,
                         dataset=DATASET)
        assert same_partition(r.labels, thrifty.labels)
        ms = simulate_run_time(r.trace, SKYLAKEX,
                               graph.num_vertices).total_ms
        rows.append({"config": f"{sampling}+{finish}", "ms": ms,
                     "edges": r.counters().edges_processed})
    return rows


def test_ext_connectit_design_space(benchmark):
    rows = run_once(benchmark, _generate)
    rows_sorted = sorted(rows, key=lambda r: r["ms"])
    print()
    print(format_table(
        ["config", "sim ms", "edges processed"],
        [[r["config"], f'{r["ms"]:.3f}', r["edges"]]
         for r in rows_sorted],
        title=f"Extension E3: ConnectIt design space on {DATASET}"))

    import statistics
    by_ms = {r["config"]: r["ms"] for r in rows}
    by_edges = {r["config"]: r["edges"] for r in rows}
    # The Afforest mechanism: k-out sampling removes almost all of the
    # skip-giant finish's edge traffic.
    assert by_edges["kout+skip-giant"] < \
        0.3 * by_edges["none+skip-giant"]
    # Thrifty beats every disjoint-set finish in the space.
    ds_points = [v for k, v in by_ms.items()
                 if k.endswith(("skip-giant", "all-edges"))]
    assert by_ms["thrifty"] < min(ds_points)
    # ... and the median of the whole space.
    others = [v for k, v in by_ms.items() if k != "thrifty"]
    assert by_ms["thrifty"] < statistics.median(others)

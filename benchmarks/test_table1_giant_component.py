"""Table I — % of vertices in the max-degree vertex's component.

Paper: 94.5%-100% on all 15 power-law datasets; this is the structural
premise behind Zero Planting + Zero Convergence.
"""

from conftest import PL_DATASETS, SCALE, run_once

from repro.experiments import format_table, table1_giant_component

# Paper values for side-by-side printing.
PAPER = {"Pkc": 100, "WWiki": 99.8, "LJLnks": 99.7, "LJGrp": 100,
         "Twtr10": 100, "Twtr": 99.8, "Wbbs": 97.9, "TwtrMpi": 100,
         "Frndstr": 100, "SK": 100, "WbCc": 98.9, "UKDls": 99.3,
         "UU": 99.3, "UKDmn": 99.2, "ClWb9": 94.5}


def test_table1_giant_component(benchmark):
    rows = run_once(benchmark,
                    lambda: table1_giant_component(PL_DATASETS,
                                                   scale=SCALE))
    table = [[r["dataset"], f'{r["vertices_pct"]:.1f}',
              PAPER[r["dataset"]]] for r in rows]
    print()
    print(format_table(["dataset", "measured %", "paper %"], table,
                       title="Table I: giant-component share of the "
                             "max-degree vertex"))
    for r in rows:
        # The premise: an overwhelming majority shares the hub's
        # component (paper min: 94.5%).
        assert r["vertices_pct"] > 90.0, r

"""Extension experiment E2 — vertex-ordering sensitivity of Thrifty.

Not a paper artifact.  The reproduction surfaced a property implicit
in the Unified Labels Array: an in-order label sweep floods
id-ascending paths within an iteration, so the vertex numbering
controls how far labels travel per round.  This experiment quantifies
it: the same graph is relabelled with BFS order (hub first, strong
id/structure correlation), degree order, and a random permutation, and
Thrifty runs on each.

Shape asserted: all orderings give identical components; the random
ordering needs at least as many iterations as the BFS ordering (it
destroys sweep locality).
"""

from conftest import SCALE, run_once

from repro.analysis import bfs_relabel, degree_sort_relabel, \
    random_relabel
from repro.core import thrifty_cc
from repro.experiments import format_table
from repro.graph import load
from repro.instrument import simulate_run_time
from repro.parallel import SKYLAKEX
from repro.validate import same_partition

DATASET = "Wbbs"


def _generate():
    base = load(DATASET, min(SCALE, 0.5))
    variants = {
        "original": (base, None),
        "bfs-order": bfs_relabel(base),
        "degree-order": degree_sort_relabel(base),
        "random-order": random_relabel(base, seed=9),
    }
    rows = []
    ref = None
    for name, entry in variants.items():
        graph = entry[0]
        perm = entry[1]
        result = thrifty_cc(graph, dataset=f"{DATASET}/{name}")
        timing = simulate_run_time(result.trace, SKYLAKEX,
                                   graph.num_vertices)
        labels = result.labels
        if perm is not None:
            labels = labels[perm]     # map back to original ids
        if ref is None:
            ref = labels
        assert same_partition(ref, labels), name
        rows.append({"ordering": name,
                     "iterations": result.num_iterations,
                     "edges": result.counters().edges_processed,
                     "ms": timing.total_ms})
    return rows


def test_ext_ordering_sensitivity(benchmark):
    rows = run_once(benchmark, _generate)
    print()
    print(format_table(
        ["ordering", "iterations", "edges processed", "sim ms"],
        [[r["ordering"], r["iterations"], r["edges"],
          f'{r["ms"]:.2f}'] for r in rows],
        title=f"Extension E2: Thrifty vs vertex ordering ({DATASET})"))

    by = {r["ordering"]: r for r in rows}
    assert by["random-order"]["iterations"] >= \
        by["bfs-order"]["iterations"], \
        "random ids destroy in-iteration sweep propagation"

"""Extension experiment — serving-layer throughput & router fidelity.

Two artifacts from the serving layer (``repro.service``):

* **Repeated-workload throughput** — a trace that revisits each graph
  ``REPEATS`` times is pushed through ``CCService`` with
  ``method="auto"`` and compared against uncached dispatch (the same
  route-then-run work, but re-probing the graph and re-running the
  algorithm on every request, which is what a dispatch layer without
  a registry and result cache must do).  The registry hashes each
  graph once, probes it once, and the LRU result cache serves every
  repeat with zero algorithm work, so wall-clock throughput on the
  trace improves by at least the assert floor (3x at full scale).

* **Router fidelity** — the structure-aware planner behind
  ``method="auto"`` is swept across all 17 dataset surrogates at the
  benchmark scale and must pick the family (label propagation vs
  union-find) that actually measures fastest under the cost model,
  i.e. reproduce the Table IV winner on every row.

Both reports are merged into ``BENCH_baselines.json`` under the
``service_throughput`` key so CI keeps the perf trajectory alongside
the union-find substrate sweep.
"""

import time

import numpy as np

from conftest import BENCH_PATH, SCALE, STRICT, run_once, write_baseline

from repro.api import connected_components
from repro.experiments import format_table
from repro.experiments.routing import auto_routing_table
from repro.graph import load
from repro.graph.datasets import ALL_DATASET_NAMES
from repro.service import CCRequest, CCService, plan_for_graph

#: The trace revisits a working set of graphs this many times.
REPEATS = 5
#: Working set: both road surrogates plus moderate power-law ones, so
#: the trace exercises both router families.
TRACE_DATASETS = ("GBRd", "USRd", "Pkc", "WWiki", "Twtr10", "LJGrp")


def _uncached_dispatch(graphs, trace):
    """Route + run every request from scratch (no registry, no cache)."""
    t0 = time.perf_counter()
    for name in trace:
        graph = graphs[name]
        plan = plan_for_graph(graph)
        connected_components(graph, plan.method, dataset=name)
    return time.perf_counter() - t0


def _served_dispatch(graphs, trace):
    """Push the same trace through one ``CCService`` instance."""
    svc = CCService()
    for name, graph in graphs.items():
        svc.register(graph, name=name)
    t0 = time.perf_counter()
    svc.submit_batch([CCRequest(key=name) for name in trace])
    return time.perf_counter() - t0, svc


def _generate():
    graphs = {name: load(name, SCALE) for name in TRACE_DATASETS}
    trace = [name for _ in range(REPEATS) for name in TRACE_DATASETS]

    uncached_s = _uncached_dispatch(graphs, trace)
    served_s, svc = _served_dispatch(graphs, trace)
    snap = svc.metrics.snapshot()

    # Served results must agree with direct dispatch per graph.
    for name, graph in graphs.items():
        direct = connected_components(graph, "bfs")
        via = svc.connected_components(graph)
        assert np.array_equal(
            np.unique(direct.labels, return_inverse=True)[1],
            np.unique(via.result.labels, return_inverse=True)[1]), name

    routing = auto_routing_table(scale=SCALE)

    report = {
        "bench_scale": SCALE,
        "repeats": REPEATS,
        "trace_datasets": list(TRACE_DATASETS),
        "requests": len(trace),
        "uncached_seconds": uncached_s,
        "served_seconds": served_s,
        "throughput_speedup": uncached_s / served_s,
        "hit_rate": snap["cache_hits"] / snap["requests"],
        "latency_ms": snap["latency"],
        "routing": {
            "agreement": sum(r["agree"] for r in routing),
            "datasets": len(routing),
            "rows": [{k: row[k] for k in
                      ("dataset", "routed", "measured_winner", "agree",
                       "pred_lp_ms", "pred_uf_ms",
                       "measured_lp_ms", "measured_uf_ms")}
                     for row in routing],
        },
    }
    write_baseline("service_throughput", report)
    return report


def test_service_throughput_and_router(benchmark):
    report = run_once(benchmark, _generate)

    print()
    print(format_table(
        ["metric", "value"],
        [["requests", str(report["requests"])],
         ["uncached_ms", f"{report['uncached_seconds'] * 1e3:.1f}"],
         ["served_ms", f"{report['served_seconds'] * 1e3:.1f}"],
         ["speedup", f"{report['throughput_speedup']:.2f}x"],
         ["hit_rate", f"{report['hit_rate']:.2f}"]],
        title="Serving layer — repeated-workload trace"))
    rows = [[r["dataset"], r["routed"], r["measured_winner"],
             "yes" if r["agree"] else "NO"]
            for r in report["routing"]["rows"]]
    print(format_table(
        ["dataset", "routed", "measured_winner", "agree"], rows,
        title="Auto-router vs measured winners"))
    print(f"(written to {BENCH_PATH.name})")

    assert BENCH_PATH.exists()
    # The planner must reproduce the measured winner on every surrogate.
    routing = report["routing"]
    assert routing["datasets"] == len(ALL_DATASET_NAMES)
    assert routing["agreement"] == routing["datasets"], [
        r["dataset"] for r in routing["rows"] if not r["agree"]]
    # Repeats are served from cache: hit rate is exactly (R-1)/R.
    assert report["hit_rate"] == (REPEATS - 1) / REPEATS
    if STRICT:
        assert report["throughput_speedup"] >= 3.0
    else:
        assert report["throughput_speedup"] >= 2.0

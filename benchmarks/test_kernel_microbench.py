"""Microbenchmarks of the vectorized kernels (library performance).

Unlike the paper-artifact benchmarks these measure the *actual* Python
wall-clock of the hot kernels — the numbers a downstream user of the
library cares about.  No shape assertions beyond sanity: the value is
the pytest-benchmark tracking across changes.
"""

import numpy as np
import pytest

from repro.core.kernels import (
    concat_adjacency,
    pull_block,
    zero_cut_scan_lengths,
)
from repro.graph.generators import rmat_graph
from repro.parallel import batch_atomic_min


@pytest.fixture(scope="module")
def bench_graph():
    return rmat_graph(15, 16, seed=1)


@pytest.fixture(scope="module")
def bench_labels(bench_graph):
    rng = np.random.default_rng(2)
    labels = rng.integers(0, bench_graph.num_vertices,
                          size=bench_graph.num_vertices
                          ).astype(np.int64)
    labels[labels % 17 == 0] = 0     # some zeros for the zero-cut path
    return labels


def test_perf_pull_block(benchmark, bench_graph, bench_labels):
    n = bench_graph.num_vertices
    result = benchmark(pull_block, bench_graph, bench_labels, 0, n)
    assert result[0].size == n


def test_perf_zero_cut(benchmark, bench_graph, bench_labels):
    n = bench_graph.num_vertices
    scanned = benchmark(zero_cut_scan_lengths, bench_graph,
                        bench_labels, 0, n)
    assert scanned.size == n
    assert scanned.sum() <= bench_graph.num_edges


def test_perf_concat_adjacency(benchmark, bench_graph):
    rng = np.random.default_rng(3)
    rows = np.sort(rng.choice(bench_graph.num_vertices, size=5000,
                              replace=False)).astype(np.int64)
    targets, counts = benchmark(concat_adjacency, bench_graph, rows)
    assert int(counts.sum()) == targets.size


def test_perf_batch_atomic_min(benchmark, bench_graph):
    rng = np.random.default_rng(4)
    n = bench_graph.num_vertices
    idx = rng.integers(0, n, size=200_000)
    val = rng.integers(0, n, size=200_000).astype(np.int64)

    def run():
        arr = np.full(n, n, dtype=np.int64)
        return batch_atomic_min(arr, idx, val)

    changed = benchmark(run)
    assert changed.size > 0


def test_perf_thrifty_end_to_end(benchmark, bench_graph):
    from repro.core import thrifty_cc

    result = benchmark.pedantic(
        lambda: thrifty_cc(bench_graph, track_convergence=False),
        rounds=3, iterations=1)
    assert result.num_components >= 1

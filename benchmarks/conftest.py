"""Shared benchmark configuration.

Every benchmark regenerates one paper artifact (DESIGN.md Section 4):
it prints the table/series the paper reports (run pytest with ``-s`` to
see them), asserts the *shape* claims, and times one full regeneration
via pytest-benchmark.

``REPRO_BENCH_SCALE`` (default 1.0) scales the surrogate datasets for
quicker smoke runs, e.g. ``REPRO_BENCH_SCALE=0.2 pytest benchmarks/``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import clear_cache

#: Dataset scale for all benchmarks.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Strict shape assertions hold for (near-)full-scale surrogates; a
#: reduced smoke scale only checks the headline directions.
STRICT = SCALE >= 0.75

#: Power-law datasets used by per-dataset artifacts.  All 15 at full
#: scale; trimmed automatically if someone runs at very small scale.
PL_DATASETS = ("Pkc", "WWiki", "LJLnks", "LJGrp", "Twtr10", "Twtr",
               "Wbbs", "TwtrMpi", "Frndstr", "SK", "WbCc", "UKDls",
               "UU", "UKDmn", "ClWb9")
ROAD_DATASETS = ("GBRd", "USRd")
ALL_DATASETS = ROAD_DATASETS + PL_DATASETS

#: Representative subset for the single-dataset figures.
REP_DATASET = "Twtr"


def run_once(benchmark, fn):
    """Time one full artifact regeneration (results are memoized, so
    multiple rounds would only measure the cache)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session", autouse=True)
def _shared_cache():
    """One memoized run cache across the whole benchmark session."""
    yield
    clear_cache()

"""Shared benchmark configuration.

Every benchmark regenerates one paper artifact (DESIGN.md Section 4):
it prints the table/series the paper reports (run pytest with ``-s`` to
see them), asserts the *shape* claims, and times one full regeneration
via pytest-benchmark.

``REPRO_BENCH_SCALE`` (default 1.0) scales the surrogate datasets for
quicker smoke runs, e.g. ``REPRO_BENCH_SCALE=0.2 pytest benchmarks/``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import clear_cache

#: Perf-trajectory artifact at the repo root, shared by every
#: extension benchmark (one top-level key per artifact).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_baselines.json"

#: Dataset scale for all benchmarks.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Strict shape assertions hold for (near-)full-scale surrogates; a
#: reduced smoke scale only checks the headline directions.
STRICT = SCALE >= 0.75

#: Power-law datasets used by per-dataset artifacts.  All 15 at full
#: scale; trimmed automatically if someone runs at very small scale.
PL_DATASETS = ("Pkc", "WWiki", "LJLnks", "LJGrp", "Twtr10", "Twtr",
               "Wbbs", "TwtrMpi", "Frndstr", "SK", "WbCc", "UKDls",
               "UU", "UKDmn", "ClWb9")
ROAD_DATASETS = ("GBRd", "USRd")
ALL_DATASETS = ROAD_DATASETS + PL_DATASETS

#: Representative subset for the single-dataset figures.
REP_DATASET = "Twtr"


def write_baseline(artifact, report):
    """Merge ``report`` into ``BENCH_baselines.json`` under ``artifact``.

    Each benchmark owns one top-level key, so regenerating one artifact
    never clobbers the others.  A legacy single-report file (flat dict
    with an ``"artifact"`` key) is re-keyed on first contact.
    """
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            data = {}
        if "artifact" in data:          # legacy flat layout
            data = {data["artifact"]: data}
    data[artifact] = report
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def run_once(benchmark, fn):
    """Time one full artifact regeneration (results are memoized, so
    multiple rounds would only measure the cache)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session", autouse=True)
def _shared_cache():
    """One memoized run cache across the whole benchmark session."""
    yield
    clear_cache()

"""Extension experiment E9 — out-of-core blocked-graph tier.

The claim (ISSUE 10): Thrifty runs over an on-disk blocked-CSR file
through a block cache a quarter the size of the edge array and still
produces the bit-identical result, with converged-block skipping
cutting block fetches by at least 2x over the reference streaming
strategy that gathers every block every pull.  The planner treats the
same budget as a fit cliff: above it, ``auto`` routes to the streamed
LP path.

Shape asserted: bit-identical labels vs the resident run, peak
resident block bytes within the budget (from the cache's own
accounting), fetch ratio >= 2, and the planner storage flip at the
budget boundary.
"""

import numpy as np
from conftest import SCALE, run_once, write_baseline

from repro.core import thrifty_cc
from repro.experiments import format_table
from repro.graph.generators import rmat_graph
from repro.parallel.machine import MACHINES
from repro.service import edge_array_bytes, plan
from repro.service.registry import probe_graph
from repro.storage import BlockedGraph, write_blocked

RMAT_SCALE = 13 if SCALE >= 0.75 else 11
EDGES_PER_BLOCK = 1024
BUDGET_FRACTION = 0.2


def _streamed(graph, path, budget, **overrides):
    bg = BlockedGraph.open(path, resident_bytes=budget)
    try:
        result = thrifty_cc(bg, **overrides)
    finally:
        bg.close()
    return result


def _generate(tmpdir):
    graph = rmat_graph(RMAT_SCALE, 16, seed=42)
    budget = int(BUDGET_FRACTION * graph.indices.nbytes)
    path = tmpdir / "rmat.rbcsr"
    write_blocked(graph, path, edges_per_block=EDGES_PER_BLOCK)

    resident = thrifty_cc(graph)
    fused = _streamed(graph, path, budget)
    unfused = _streamed(graph, path, budget, fuse_pull_blocks=False)

    assert np.array_equal(fused.labels, resident.labels), \
        "streamed run must be bit-identical to the resident run"
    assert np.array_equal(unfused.labels, resident.labels)

    def fetches(r):
        return (r.extras["io"]["blocks_read"]
                + r.extras["io"]["blocks_reread"])

    probes = probe_graph(graph)
    spec = MACHINES["SkylakeX"]
    above = plan(probes, spec, resident_byte_budget=budget)
    below = plan(probes, spec,
                 resident_byte_budget=2 * edge_array_bytes(probes))

    return {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "edge_array_bytes": graph.indices.nbytes,
        "budget_bytes": budget,
        "fused_fetches": fetches(fused),
        "unfused_fetches": fetches(unfused),
        "fetch_ratio": fetches(unfused) / fetches(fused),
        "peak_resident_bytes": fused.extras["io"]["peak_resident_bytes"],
        "modeled_io_ms": fused.extras["io"]["modeled_ms"],
        "route_above_budget": f"{above.method}/{above.storage}",
        "route_below_budget": f"{below.method}/{below.storage}",
        "above_storage": above.storage,
        "below_storage": below.storage,
    }


def test_ext_out_of_core(benchmark, tmp_path):
    report = run_once(benchmark, lambda: _generate(tmp_path))
    print()
    print(format_table(
        ["metric", "value"],
        [[k, v] for k, v in report.items()],
        title=f"Extension E9: out-of-core tier (RMAT-{RMAT_SCALE}, "
              f"budget {int(100 * BUDGET_FRACTION)}% of edges)"))
    write_baseline("out_of_core", report)

    assert report["budget_bytes"] < 0.25 * report["edge_array_bytes"]
    assert report["peak_resident_bytes"] <= report["budget_bytes"]
    assert report["fetch_ratio"] >= 2.0, \
        "converged-block skipping must cut fetches at least 2x"
    assert report["above_storage"] == "out_of_core"
    assert report["below_storage"] == "resident"

"""Extension experiment — incremental CC serving under a mutating graph.

A Zipf query trace over a working set of skewed + road surrogates is
interleaved with batched edge insertions (one 64-edge batch every 10
requests, applied to the dataset the next request targets).  Two
services consume the identical trace and the identical mutation
stream:

* **delta** — ``ServiceOptions()`` default: a post-mutation request is
  served by decoding the predecessor's cached labels into a union-find
  forest and unioning just the inserted batch (touched-set work,
  priced by the same CostModel as full runs);
* **recompute** — ``ServiceOptions(delta_serving=False)``: every
  mutation invalidates and the next request pays a from-scratch run.

Both sides finish with bit-identical labels on every dataset — the
speedup (assert floor 5x at full scale) is pure redundant-work
elimination, not approximation.  The report (makespans, trace
requests/s, delta-hit counts, per-side hit rates) is merged into
``BENCH_baselines.json`` under the ``incremental`` key.
"""

import time

import numpy as np

from conftest import BENCH_PATH, SCALE, STRICT, run_once, write_baseline

from repro.experiments import format_table
from repro.graph import load
from repro.service import CCRequest, CCService, ServiceOptions

#: Query-trace length; long enough that the Zipf tail re-touches every
#: dataset between mutations.
NUM_REQUESTS = 4000
#: One insertion batch lands every this-many requests.
MUTATION_EVERY = 10
#: Undirected edges per insertion batch.
MUTATION_BATCH = 64
#: Zipf popularity skew over the working set.
ZIPF_S = 1.1
#: Working set: three skewed graphs plus one road network, so both
#: router families see mutations.
TRACE_DATASETS = ("Pkc", "WWiki", "LJLnks", "GBRd")
#: Explicit delta-eligible method (identity labels: no hub caveat).
METHOD = "afforest"


def _build_trace(rng):
    ranks = np.arange(1, len(TRACE_DATASETS) + 1, dtype=np.float64)
    popularity = ranks ** -ZIPF_S
    popularity /= popularity.sum()
    return rng.choice(len(TRACE_DATASETS), size=NUM_REQUESTS,
                      p=popularity)


def _mutation_schedule(trace, sizes, rng):
    """(request index -> (dataset, src, dst)): shared by both sides.

    Each batch targets the dataset of the request that follows it, so
    every mutation is immediately observed by a query.
    """
    schedule = {}
    for i in range(MUTATION_EVERY, NUM_REQUESTS, MUTATION_EVERY):
        name = TRACE_DATASETS[trace[i]]
        n = sizes[name]
        schedule[i] = (name, rng.integers(0, n, MUTATION_BATCH),
                       rng.integers(0, n, MUTATION_BATCH))
    return schedule


def _run_side(graphs, trace, schedule, *, delta_serving):
    svc = CCService(service_options=ServiceOptions(
        delta_serving=delta_serving))
    for name, graph in graphs.items():
        svc.register(graph, name=name)
    t0 = time.perf_counter()
    for i in range(NUM_REQUESTS):
        mutation = schedule.get(i)
        if mutation is not None:
            name, src, dst = mutation
            svc.mutate(name, insert=(src, dst))
        svc.submit(CCRequest(key=TRACE_DATASETS[trace[i]],
                             method=METHOD))
    wall = time.perf_counter() - t0
    return svc, svc.clock_ms, wall


def _generate():
    graphs = {name: load(name, SCALE) for name in TRACE_DATASETS}
    sizes = {name: g.num_vertices for name, g in graphs.items()}
    rng = np.random.default_rng(17)
    trace = _build_trace(rng)
    schedule = _mutation_schedule(trace, sizes, rng)

    base_svc, base_makespan, base_wall = _run_side(
        graphs, trace, schedule, delta_serving=False)
    delta_svc, delta_makespan, delta_wall = _run_side(
        graphs, trace, schedule, delta_serving=True)

    # Identical final labels on every dataset: the delta path is an
    # optimization, not an approximation.
    for name in TRACE_DATASETS:
        d = delta_svc.submit(CCRequest(key=name, method=METHOD))
        b = base_svc.submit(CCRequest(key=name, method=METHOD))
        assert d.fingerprint == b.fingerprint, name
        assert np.array_equal(d.result.labels, b.result.labels), name

    delta_snap = delta_svc.metrics.snapshot()
    base_snap = base_svc.metrics.snapshot()
    assert delta_snap["delta_hits"] > 0
    assert base_snap["delta_hits"] == 0
    # Mutations land identically on both sides; only the serving
    # strategy differs, so request mixes agree.
    assert delta_snap["requests"] == base_snap["requests"]

    report = {
        "bench_scale": SCALE,
        "requests": NUM_REQUESTS,
        "zipf_s": ZIPF_S,
        "method": METHOD,
        "datasets": list(TRACE_DATASETS),
        "mutation_every": MUTATION_EVERY,
        "mutation_batch": MUTATION_BATCH,
        "mutations": len(_mutation_schedule(trace, sizes,
                                            np.random.default_rng(17))),
        "recompute": {
            "makespan_ms": base_makespan,
            "rps": NUM_REQUESTS / (base_makespan * 1e-3),
            "hit_rate": base_snap["hit_rate"],
            "cache_misses": base_snap["cache_misses"],
            "invalidations": base_snap["invalidations"],
            "wall_seconds": base_wall,
        },
        "delta": {
            "makespan_ms": delta_makespan,
            "rps": NUM_REQUESTS / (delta_makespan * 1e-3),
            "hit_rate": delta_snap["hit_rate"],
            "effective_hit_rate": delta_snap["effective_hit_rate"],
            "delta_hits": delta_snap["delta_hits"],
            "cache_misses": delta_snap["cache_misses"],
            "invalidations": delta_snap["invalidations"],
            "wall_seconds": delta_wall,
        },
        "speedup": base_makespan / delta_makespan,
    }
    write_baseline("incremental", report)
    return report


def test_incremental_serving_throughput(benchmark):
    report = run_once(benchmark, _generate)

    base, delta = report["recompute"], report["delta"]
    print()
    print(format_table(
        ["metric", "recompute", "delta serving"],
        [["makespan_ms", f"{base['makespan_ms']:.3f}",
          f"{delta['makespan_ms']:.3f}"],
         ["requests/s", f"{base['rps']:.3e}", f"{delta['rps']:.3e}"],
         ["cache misses", str(base["cache_misses"]),
          str(delta["cache_misses"])],
         ["delta hits", "0", str(delta["delta_hits"])],
         ["hit rate", f"{base['hit_rate']:.4f}",
          f"{delta['effective_hit_rate']:.4f} (eff.)"]],
        title=f"Incremental serving — {report['requests']} Zipf "
              f"requests, {report['mutations']} x "
              f"{report['mutation_batch']}-edge batches "
              f"(speedup {report['speedup']:.2f}x)"))
    print(f"(written to {BENCH_PATH.name})")

    assert BENCH_PATH.exists()
    # Most mutations must actually be delta-served, not recomputed.
    assert delta["delta_hits"] >= report["mutations"] * 0.8
    if STRICT:
        assert report["speedup"] >= 5.0
    else:
        assert report["speedup"] >= 2.5

"""Extension experiment E1 — distributed CC communication volume.

Not a paper artifact: it executes the paper's Section VII future-work
direction (Thrifty in a distributed setting) on the simulated BSP
fabric.  Two comparisons on a scale-18 RMAT surrogate:

* bandwidth fabric A/B — sender-side min-combining + batched
  envelopes (``combining=True``) against the naive per-update wire
  regime, both with change-tracked (dedup) sends, across both
  partition strategies.  Labels must be bit-identical; the combining
  regime must ship at least 2x fewer wire messages.
* algorithm race — distributed Thrifty-style LP vs distributed FastSV
  on the identical fabric/partition, comparing messages, updates and
  modeled bytes.

The per-configuration records merge into ``BENCH_baselines.json``
under the ``ext_distributed_comm`` key.
"""

import numpy as np
from conftest import SCALE, run_once, write_baseline

from repro.distributed import DistributedOptions, distributed_cc
from repro.experiments import format_table
from repro.graph.generators import rmat_graph

RMAT_SCALE = 18 if SCALE >= 0.75 else 15
RANKS = 8
PARTITIONS = ("block", "degree_balanced")


def _row(tag, opts, r):
    c = r.extras["comm"]
    return {"config": tag, "partition": opts.partition,
            "algorithm": opts.algorithm,
            "supersteps": c.supersteps, "messages": c.messages,
            "updates": c.updates,
            "modeled_mb": c.modeled_bytes / 1e6,
            "edge_cut": r.extras["edge_cut"]}


def _generate():
    graph = rmat_graph(RMAT_SCALE, 8, seed=18)
    rows = []
    labels = {}
    for partition in PARTITIONS:
        for tag, opts in (
                ("naive-wire", DistributedOptions(
                    num_ranks=RANKS, partition=partition,
                    combining=False)),
                ("combining", DistributedOptions(
                    num_ranks=RANKS, partition=partition,
                    combining=True)),
                ("fastsv", DistributedOptions(
                    num_ranks=RANKS, partition=partition,
                    algorithm="fastsv", combining=True))):
            r = distributed_cc(graph, opts)
            labels[(tag, partition)] = r.labels
            rows.append(_row(tag, opts, r))
    # Bit-identical labels between the wire regimes, per partition.
    for partition in PARTITIONS:
        assert np.array_equal(labels[("naive-wire", partition)],
                              labels[("combining", partition)])
    return rows


def test_ext_distributed_communication(benchmark):
    rows = run_once(benchmark, _generate)
    print()
    print(format_table(
        ["config", "partition", "supersteps", "messages", "updates",
         "modeled MB", "edge cut"],
        [[r["config"], r["partition"], r["supersteps"], r["messages"],
          r["updates"], f'{r["modeled_mb"]:.2f}', r["edge_cut"]]
         for r in rows],
        title=f"Extension E1: distributed CC traffic "
              f"(RMAT-{RMAT_SCALE}, {RANKS} ranks)"))

    by = {(r["config"], r["partition"]): r for r in rows}
    for partition in PARTITIONS:
        naive = by[("naive-wire", partition)]
        comb = by[("combining", partition)]
        # The acceptance bar: combining + batching at least halves
        # the wire message count (in practice it is orders of
        # magnitude), and never costs extra supersteps.
        assert comb["messages"] * 2 <= naive["messages"], partition
        assert comb["modeled_mb"] <= naive["modeled_mb"], partition
        assert comb["supersteps"] <= naive["supersteps"], partition
        # The LP tier ships fewer payload updates than FastSV's
        # hooking storm at equal correctness.
        fastsv = by[("fastsv", partition)]
        assert comb["updates"] <= fastsv["updates"], partition

    write_baseline("ext_distributed_comm", {
        "artifact": "ext_distributed_comm",
        "rmat_scale": RMAT_SCALE,
        "ranks": RANKS,
        "rows": rows,
    })

"""Extension experiment E1 — distributed LP communication volume.

Not a paper artifact: it executes the paper's Section VII future-work
direction (Thrifty in a distributed setting) on the simulated BSP
fabric.  Reported: supersteps, messages and bytes for naive broadcast
LP vs the Thrifty-style configuration (Zero Planting + Zero
Convergence + change-tracked sends) across rank counts.

Shape asserted: the Thrifty-style configuration sends well under half
of the naive traffic at every rank count, with no extra supersteps.
"""

from conftest import SCALE, run_once

from repro.distributed import DistributedLPOptions, distributed_cc
from repro.experiments import format_table
from repro.graph import load_dataset
from repro.validate import same_partition

DATASET = "LJGrp"
RANKS = (4, 16, 64)


def _generate():
    graph = load_dataset(DATASET, min(SCALE, 0.5))
    rows = []
    ref = None
    for ranks in RANKS:
        for label, opts in (
                ("naive", DistributedLPOptions(
                    num_ranks=ranks, zero_planting=False,
                    zero_convergence=False, dedup_sends=False)),
                ("thrifty-style", DistributedLPOptions(
                    num_ranks=ranks))):
            r = distributed_cc(graph, opts)
            if ref is None:
                ref = r.labels
            assert same_partition(ref, r.labels)
            rows.append({"config": label, "ranks": ranks,
                         "supersteps": r.supersteps,
                         "messages": r.comm.messages,
                         "mbytes": r.comm.bytes / 1e6})
    return rows


def test_ext_distributed_communication(benchmark):
    rows = run_once(benchmark, _generate)
    print()
    print(format_table(
        ["config", "ranks", "supersteps", "messages", "MB"],
        [[r["config"], r["ranks"], r["supersteps"], r["messages"],
          f'{r["mbytes"]:.2f}'] for r in rows],
        title=f"Extension E1: distributed LP traffic on {DATASET}"))

    by = {(r["config"], r["ranks"]): r for r in rows}
    for ranks in RANKS:
        naive = by[("naive", ranks)]
        thrifty = by[("thrifty-style", ranks)]
        assert thrifty["messages"] < 0.5 * naive["messages"], ranks
        assert thrifty["supersteps"] <= naive["supersteps"], ranks

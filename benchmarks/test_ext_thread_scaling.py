"""Extension experiment E6 — thread scaling of Thrifty vs SV.

The paper's distributed-scalability argument rests on LP's SpMV
structure; on shared memory the analogous question is thread scaling.
This experiment runs Thrifty at 1..32 threads on the SkylakeX model
(the partitioning/schedule genuinely changes with the thread count)
and prices each run with a thread-capped cost model, alongside SV as
the all-edges reference.

Shape asserted: Thrifty's simulated time improves monotonically (small
tolerance) from 1 to 8 threads and its best multi-threaded run is at
least 2x faster than single-threaded (the experiment caps the dataset
at scale 0.5 for runtime; at full scale the 32-thread speedup is
~3.5x); components identical at every width.
"""

from conftest import SCALE, STRICT, run_once

from repro.baselines import shiloach_vishkin_cc
from repro.core import thrifty_cc
from repro.experiments import format_table
from repro.graph import load
from repro.instrument import simulate_run_time
from repro.parallel import SKYLAKEX
from repro.validate import same_partition

DATASET = "Frndstr"
THREADS = (1, 2, 4, 8, 16, 32)


def _generate():
    graph = load(DATASET, min(SCALE, 0.5))
    sv = shiloach_vishkin_cc(graph, dataset=DATASET)
    rows = []
    ref = None
    for t in THREADS:
        r = thrifty_cc(graph, num_threads=t, dataset=DATASET)
        if ref is None:
            ref = r.labels
        assert same_partition(ref, r.labels)
        ms = simulate_run_time(r.trace, SKYLAKEX, graph.num_vertices,
                               num_threads=t).total_ms
        sv_ms = simulate_run_time(sv.trace, SKYLAKEX,
                                  graph.num_vertices,
                                  num_threads=t).total_ms
        rows.append({"threads": t, "thrifty_ms": ms, "sv_ms": sv_ms,
                     "iterations": r.num_iterations})
    return rows


def test_ext_thread_scaling(benchmark):
    rows = run_once(benchmark, _generate)
    print()
    print(format_table(
        ["threads", "thrifty ms", "sv ms", "thrifty iterations"],
        [[r["threads"], f'{r["thrifty_ms"]:.3f}', f'{r["sv_ms"]:.3f}',
          r["iterations"]] for r in rows],
        title=f"Extension E6: thread scaling on {DATASET} (SkylakeX)"))

    by = {r["threads"]: r["thrifty_ms"] for r in rows}
    for a, b in zip(THREADS, THREADS[1:]):
        if b <= 8:
            assert by[b] <= by[a] * 1.05, (a, b)
    # Smaller graphs are barrier/serial dominated and scale less.
    best = min(by.values())
    assert best < by[1] / (2.0 if STRICT else 1.4)
    # Thrifty beats SV at every width.
    for r in rows:
        assert r["thrifty_ms"] < r["sv_ms"], r["threads"]

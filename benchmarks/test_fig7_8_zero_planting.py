"""Figures 7 and 8 — converged% per iteration, DO-LP vs Thrifty.

Paper: DO-LP converges only 34.8% of vertices in its first four pull
iterations; Thrifty converges 88.3% after its first pull (Zero
Planting floods the giant component from the hub).  Shape asserted:
Thrifty's converged fraction after iteration 1 (the first pull) far
exceeds DO-LP's at the same point, and reaches >60%.

The two paper figures differ only by machine; both schedules are
exercised here.
"""

from conftest import REP_DATASET, SCALE, run_once

from repro.experiments import fig7_8_convergence_comparison


def _generate():
    return {machine: fig7_8_convergence_comparison(
                REP_DATASET, machine, scale=SCALE)
            for machine in ("SkylakeX", "Epyc")}


def test_fig7_8_convergence(benchmark):
    out = run_once(benchmark, _generate)
    print()
    for machine, curves in out.items():
        print(f"--- {machine} ({REP_DATASET}) ---")
        for algo, series in curves.items():
            pts = " ".join(f"{x:5.1f}" for x in series[:10])
            print(f"  {algo:>8} converged%: {pts}"
                  + (" ..." if len(series) > 10 else ""))
        thrifty_first_pull = curves["thrifty"][1]
        dolp_same_point = curves["dolp"][1]
        assert thrifty_first_pull > 60.0, machine
        assert thrifty_first_pull > dolp_same_point + 10.0, machine
        assert curves["thrifty"][-1] == 100.0
        assert curves["dolp"][-1] == 100.0
    print("paper: DO-LP 34.8% after 4 pulls; Thrifty 88.3% after "
          "first pull")

"""Figure 1 — geo-mean speedup of Thrifty over each prior algorithm.

Paper (15 power-law graphs, both machines): Thrifty is faster than
Afforest 1.4x, JT 7.3x, BFS-CC 14.7x, SV 51.2x, and DO-LP 25.2x.
Shape asserted here: Thrifty wins against every baseline on the
power-law suite, and the ordering Afforest < JT/DO-LP < SV holds.
"""

from conftest import PL_DATASETS, SCALE, STRICT, run_once

from repro.experiments import fig1_speedup_summary, format_table
from repro.graph.datasets import DATASETS, LARGE_DATASET_NAMES


def _generate():
    return {machine: fig1_speedup_summary(machine, PL_DATASETS,
                                          scale=SCALE)
            for machine in ("SkylakeX", "Epyc")}


def test_fig1_speedup_summary(benchmark):
    out = run_once(benchmark, _generate)
    rows = [[m, *(f"{v:.1f}x" for v in s.values())]
            for m, s in out.items()]
    print()
    print(format_table(
        ["machine", *next(iter(out.values())).keys()], rows,
        title="Figure 1: Thrifty geo-mean speedup (power-law datasets)"))
    print("paper:       sv=51.2x bfs=14.7x dolp=25.2x jt=7.3x "
          "afforest=1.4x (pooled)")

    for machine, speedups in out.items():
        # Thrifty wins against every baseline on power-law graphs.
        for method, ratio in speedups.items():
            assert ratio > 1.0, (machine, method, ratio)
        # SV is the weakest baseline; Afforest the strongest.
        if STRICT:
            assert speedups["sv"] > speedups["afforest"]
            assert speedups["jt"] > speedups["afforest"]

    # Paper Section I: speedups grow with graph size — the largest
    # (paper: >1B-edge) datasets show bigger DO-LP ratios than the
    # full suite's geo-mean.
    large = tuple(d for d in LARGE_DATASET_NAMES
                  if DATASETS[d].power_law)
    large_out = fig1_speedup_summary("SkylakeX", large, scale=SCALE)
    print(f"large-dataset speedups (SkylakeX): "
          + " ".join(f"{k}={v:.1f}x" for k, v in large_out.items()))
    if STRICT:
        assert large_out["dolp"] >= out["SkylakeX"]["dolp"]

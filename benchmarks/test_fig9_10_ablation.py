"""Figures 9 and 10 — where Thrifty's improvement comes from.

Paper: ~65% of the improvement over DO-LP comes from the Unified
Labels Array alone; the remaining ~35% from Zero Convergence + Zero
Planting + Initial Push (measured via the DO-LP+unified variant).
Shape asserted: the unified variant sits strictly between DO-LP and
Thrifty on most datasets, and both parts of the split are material
(each > 10% of the total improvement on average).
"""

import statistics

from conftest import PL_DATASETS, SCALE, run_once

from repro.experiments import fig9_10_ablation, format_table


def test_fig9_10_ablation(benchmark):
    rows = run_once(benchmark,
                    lambda: fig9_10_ablation(PL_DATASETS, scale=SCALE))
    table = [[r["dataset"], f'{r["dolp_ms"]:.2f}',
              f'{r["unified_ms"]:.2f}', f'{r["thrifty_ms"]:.2f}',
              f'{r["unified_share_pct"]:.0f}'] for r in rows]
    print()
    print(format_table(
        ["dataset", "DO-LP", "+unified", "Thrifty", "unified share %"],
        table,
        title="Figures 9/10: ablation (simulated ms, SkylakeX)"))

    between = sum(1 for r in rows
                  if r["thrifty_ms"] <= r["unified_ms"] <= r["dolp_ms"])
    assert between >= len(rows) * 0.6, \
        "unified variant should sit between DO-LP and Thrifty"
    shares = [r["unified_share_pct"] for r in rows
              if r["dolp_ms"] > r["thrifty_ms"]]
    mean_share = statistics.mean(shares)
    print(f"mean unified share: {mean_share:.0f}% (paper: ~65%)")
    assert 10.0 < mean_share < 95.0, \
        "both optimization groups should contribute materially"

"""Extension experiment — async serving executor under heavy-tailed load.

A Zipf-over-datasets trace of 100k timestamped requests (multi-tenant,
``method="auto"``) is pushed through the event-loop scheduler and
compared against the synchronous serve loop (the pre-async executor:
one request at a time, makespan = sum of charged compute).  The async
executor overlaps independent computes across simulated workers and
coalesces identical in-flight requests, so sustained requests/s on the
simulated clock improves by the assert floor (3x at full scale) *at
identical cache-hit rate and identical total algorithm work* — the
speedup comes from scheduling, not from skipping or degrading work.

A second, deliberately overloaded scenario (burst arrivals, 2 workers,
bounded queue) exercises admission control: over-capacity requests are
rejected with a reason instead of growing the queue without bound,
and everything admitted still completes.

The report (sustained rps, latency/queue-delay percentiles from
``LatencyHistogram``, rejection counts) is merged into
``BENCH_baselines.json`` under the ``service_async`` key.
"""

import time

import numpy as np

from conftest import BENCH_PATH, SCALE, STRICT, run_once, write_baseline

from repro.experiments import format_table
from repro.graph import load
from repro.service import CCRequest, CCService, ServiceOptions

#: Trace length — large enough that scheduling overhead per request
#: matters and the Zipf tail still covers every dataset.
NUM_REQUESTS = 100_000
#: Zipf popularity skew over the dataset working set.
ZIPF_S = 1.1
#: Simulated workers for the async scenario.
CONCURRENCY = 6
#: Arrival window as a fraction of the sync makespan: requests pour in
#: 10x faster than the serial loop can serve them.
WINDOW_FRACTION = 0.1
#: Working set, ordered heaviest-first so Zipf popularity mirrors a
#: hot set of large graphs (both router families represented).
TRACE_DATASETS = ("USRd", "Wbbs", "GBRd", "WbCc", "Twtr10", "LJLnks",
                  "Frndstr", "SK", "TwtrMpi", "LJGrp", "WWiki", "Pkc")
#: Tenant mix: one dominant tenant plus a long tail.
TENANTS = ("alpha", "beta", "gamma", "delta")
TENANT_WEIGHTS = (0.55, 0.25, 0.15, 0.05)


def _build_trace(rng):
    """Zipf-distributed (dataset, tenant) pairs for the whole trace."""
    ranks = np.arange(1, len(TRACE_DATASETS) + 1, dtype=np.float64)
    popularity = ranks ** -ZIPF_S
    popularity /= popularity.sum()
    datasets = rng.choice(len(TRACE_DATASETS), size=NUM_REQUESTS,
                          p=popularity)
    tenants = rng.choice(len(TENANTS), size=NUM_REQUESTS,
                         p=TENANT_WEIGHTS)
    return datasets, tenants


def _fresh_service(graphs, **service_kwargs):
    opts = ServiceOptions(**service_kwargs) if service_kwargs else None
    svc = CCService(service_options=opts)
    for name, graph in graphs.items():
        svc.register(graph, name=name)
    return svc


def _requests(datasets, tenants, arrivals=None):
    return [CCRequest(key=TRACE_DATASETS[d], tenant=TENANTS[t],
                      arrival_ms=None if arrivals is None
                      else float(arrivals[i]))
            for i, (d, t) in enumerate(zip(datasets, tenants))]


def _generate():
    graphs = {name: load(name, SCALE) for name in TRACE_DATASETS}
    rng = np.random.default_rng(11)
    datasets, tenants = _build_trace(rng)

    # -- synchronous baseline: the pre-async serve loop ---------------
    sync_svc = _fresh_service(graphs)
    t0 = time.perf_counter()
    for req in _requests(datasets, tenants):
        sync_svc.submit(req)
    sync_wall = time.perf_counter() - t0
    sync_makespan = sync_svc.clock_ms
    sync_snap = sync_svc.metrics.snapshot()

    # -- async: same trace, timestamped burst, 6 workers --------------
    window_ms = WINDOW_FRACTION * sync_makespan
    arrivals = np.sort(rng.uniform(0.0, window_ms, size=NUM_REQUESTS))
    async_svc = _fresh_service(graphs, concurrency=CONCURRENCY,
                               max_queue_ms=1e9)   # admission on, roomy
    t0 = time.perf_counter()
    responses = async_svc.run_trace(_requests(datasets, tenants,
                                              arrivals))
    async_wall = time.perf_counter() - t0
    async_makespan = async_svc.clock_ms
    async_snap = async_svc.metrics.snapshot()

    assert all(r.status == "ok" for r in responses)
    # Identical work: every dataset computed exactly once on each side,
    # the same labels cached, the same hit rate served.
    assert async_snap["cache_misses"] == sync_snap["cache_misses"] \
        == len(TRACE_DATASETS)
    assert async_snap["algorithm_work"] == sync_snap["algorithm_work"]
    assert async_snap["effective_hit_rate"] == sync_snap["hit_rate"]
    for name in TRACE_DATASETS:
        a = async_svc.submit(CCRequest(key=name))
        s = sync_svc.submit(CCRequest(key=name))
        assert np.array_equal(a.result.labels, s.result.labels), name

    # -- overload: burst into 2 workers behind a bounded queue --------
    over_n = NUM_REQUESTS // 5
    over_window = 0.01 * sync_makespan
    over_arrivals = np.sort(rng.uniform(0.0, over_window, size=over_n))
    over_svc = _fresh_service(graphs, concurrency=2, max_queue_depth=2)
    over_out = over_svc.run_trace(_requests(
        datasets[:over_n], tenants[:over_n], over_arrivals))
    over_snap = over_svc.metrics.snapshot()
    assert over_snap["rejected"] > 0
    assert all(r.result is not None
               for r in over_out if r.status == "ok")

    report = {
        "bench_scale": SCALE,
        "requests": NUM_REQUESTS,
        "zipf_s": ZIPF_S,
        "datasets": list(TRACE_DATASETS),
        "tenants": dict(zip(TENANTS, TENANT_WEIGHTS)),
        "concurrency": CONCURRENCY,
        "window_ms": window_ms,
        "sync": {
            "makespan_ms": sync_makespan,
            "rps": NUM_REQUESTS / (sync_makespan * 1e-3),
            "hit_rate": sync_snap["hit_rate"],
            "latency": sync_snap["latency"],
            "wall_seconds": sync_wall,
        },
        "async": {
            "makespan_ms": async_makespan,
            "rps": NUM_REQUESTS / (async_makespan * 1e-3),
            "effective_hit_rate": async_snap["effective_hit_rate"],
            "coalesced": async_snap["coalesced"],
            "latency": async_snap["latency"],
            "queue_delay": async_snap["queue_delay"],
            "per_tenant": async_snap["per_tenant"],
            "wall_seconds": async_wall,
        },
        "speedup": sync_makespan / async_makespan,
        "overload": {
            "requests": over_n,
            "window_ms": over_window,
            "served": over_snap["requests"] - over_snap["rejected"],
            "rejected": over_snap["rejected"],
            "rejected_by_reason": over_snap["rejected_by_reason"],
            "coalesced": over_snap["coalesced"],
        },
    }
    write_baseline("service_async", report)
    return report


def test_service_async_throughput(benchmark):
    report = run_once(benchmark, _generate)

    sync, async_ = report["sync"], report["async"]
    print()
    print(format_table(
        ["metric", "sync loop", "async executor"],
        [["makespan_ms", f"{sync['makespan_ms']:.3f}",
          f"{async_['makespan_ms']:.3f}"],
         ["requests/s", f"{sync['rps']:.3e}", f"{async_['rps']:.3e}"],
         ["hit rate", f"{sync['hit_rate']:.4f}",
          f"{async_['effective_hit_rate']:.4f} (eff.)"],
         ["p50_ms", f"{sync['latency']['p50_ms']:.4f}",
          f"{async_['latency']['p50_ms']:.4f}"],
         ["p99_ms", f"{sync['latency']['p99_ms']:.4f}",
          f"{async_['latency']['p99_ms']:.4f}"],
         ["queue p99_ms", "-",
          f"{async_['queue_delay']['p99_ms']:.4f}"]],
        title=f"Async serving — {report['requests']} Zipf requests, "
              f"{report['concurrency']} workers "
              f"(speedup {report['speedup']:.2f}x)"))
    over = report["overload"]
    print(format_table(
        ["metric", "value"],
        [["requests", str(over["requests"])],
         ["served", str(over["served"])],
         ["rejected", str(over["rejected"])],
         ["by reason", str(over["rejected_by_reason"])],
         ["coalesced", str(over["coalesced"])]],
        title="Overload — 2 workers, queue depth 2, 100x burst"))
    print(f"(written to {BENCH_PATH.name})")

    assert BENCH_PATH.exists()
    # Zero rejections in the roomy scenario, some under overload.
    assert report["overload"]["rejected"] > 0
    assert report["async"]["coalesced"] > 0
    assert report["async"]["queue_delay"]["count"] > 0
    if STRICT:
        assert report["speedup"] >= 3.0
    else:
        assert report["speedup"] >= 2.0

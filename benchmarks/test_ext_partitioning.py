"""Extension experiment E7 — partitioning x scheduling balance.

Paper Section V-A uses edge-balanced partitions AND work stealing.
This experiment separates the two defences against skew: the sweep
makespan (time the slowest thread finishes a whole-graph pass) is
measured for {edge, vertex}-balanced partitions under {static,
work-stealing} assignment.

Shape asserted: on the skewed graph, vertex-balanced + static is far
worse than everything else (the hub thread owns most of the edges);
either defence alone — edge balancing or stealing — recovers a
makespan near |E|/threads; on the uniform road network all four
configurations are close.
"""

from conftest import SCALE, run_once

from repro.experiments import format_table
from repro.graph import load
from repro.parallel import (
    SKYLAKEX,
    WorkStealingScheduler,
    edge_balanced_partitions,
    vertex_balanced_partitions,
)

THREADS = 32


def _static_makespan(part, work):
    """Slowest thread's total work under static ownership."""
    return max(
        float(work[list(part.owned_by(t))].sum())
        for t in range(part.num_threads))


def _makespans(name):
    graph = load(name, min(SCALE, 0.5))
    out = {}
    for label, fn in (("edge", edge_balanced_partitions),
                      ("vertex", vertex_balanced_partitions)):
        part = fn(graph, THREADS)
        work = part.edge_counts(graph).astype(float)
        sched = WorkStealingScheduler(part, SKYLAKEX)
        out[f"{label}+static"] = _static_makespan(part, work)
        out[f"{label}+stealing"] = sched.makespan(work)
    out["ideal"] = float(graph.num_edges) / THREADS
    return out


def _generate():
    return {name: _makespans(name) for name in ("TwtrMpi", "USRd")}


def test_ext_partition_balance(benchmark):
    out = run_once(benchmark, _generate)
    cols = ["edge+static", "edge+stealing", "vertex+static",
            "vertex+stealing", "ideal"]
    rows = [[name, *(f"{m[c]:.0f}" for c in cols)]
            for name, m in out.items()]
    print()
    print(format_table(["dataset", *cols], rows,
                       title="Extension E7: sweep makespan "
                             "(edge units, 32 threads)"))

    skewed = out["TwtrMpi"]
    road = out["USRd"]
    # Skew punishes the naive configuration hard...
    assert skewed["vertex+static"] > 1.5 * skewed["ideal"]
    # ...and either defence recovers a near-ideal makespan.
    for cfg in ("edge+static", "edge+stealing", "vertex+stealing"):
        assert skewed[cfg] < skewed["vertex+static"], cfg
        assert skewed[cfg] < 1.5 * skewed["ideal"], cfg
    # Roads are uniform: everything within 25% of ideal.
    for cfg in cols[:-1]:
        assert road[cfg] < 1.25 * road["ideal"], cfg

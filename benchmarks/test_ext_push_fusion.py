"""Extension experiment — fused push-chunk speedup.

The push iteration has two bit-identical strategies (DESIGN.md
Section 5): the reference evaluates every partition-bounded chunk in
its own Python iteration; the fused strategy reconstructs a whole
window of chunks' exact sequential semantics from one fused
evaluation — per-(target, chunk) group minima plus a segmented
running minimum — and commits every chunk up to the first read-side
hazard.  This experiment measures the wall-clock effect where the
per-chunk interpreter overhead is the whole iteration: a push-only
label-propagation sweep (every round a push, from an all-active
frontier down to an empty one) on a skewed RMAT graph of >= 100k
vertices.  A full Thrifty run spends its time in (already fused)
pulls, so the push path is timed on its own, exactly as the pull
fusion experiment isolates the pull path.

Asserted shape: labels, operation counters, per-round drain orders
and per-partition work vectors are bit-identical between the
strategies, and the fused sweep is at least 3x faster end to end at
full scale.
"""

import time

import numpy as np

from conftest import SCALE, STRICT, run_once

from repro.core.engine import LPOptions, _Engine
from repro.experiments import format_table
from repro.graph.generators import rmat_graph
from repro.parallel import Frontier

RMAT_SCALE = 18 if SCALE >= 0.75 else 15
EDGE_FACTOR = 8
OPTIONS = dict(threshold=1.0, block_size=8, zero_planting=False,
               track_convergence=False)


def _push_sweep(graph, fuse):
    """Push-only LP: drive ``_Engine.push`` from a full frontier until
    no labels change.  Returns the engine, per-round observables and
    the best-of-2 wall-clock."""
    best = float("inf")
    for _ in range(2):
        eng = _Engine(graph, LPOptions(fuse_push=fuse, **OPTIONS), "")
        frontier = Frontier.of_vertices(
            graph, np.arange(graph.num_vertices, dtype=np.int64))
        drains, works = [], []
        t0 = time.perf_counter()
        while len(frontier):
            frontier = eng.push(frontier)
            drains.append(eng.last_drain_order)
            works.append(eng._last_work)
        best = min(best, time.perf_counter() - t0)
    return eng, drains, works, best


def _generate():
    graph = rmat_graph(RMAT_SCALE, EDGE_FACTOR, seed=7)
    fused, f_drains, f_works, t_fused = _push_sweep(graph, True)
    ref, r_drains, r_works, t_ref = _push_sweep(graph, False)

    # Fusion is a pure wall-clock optimization: everything observable
    # must be bit-identical to the per-chunk reference.
    assert np.array_equal(fused.labels, ref.labels)
    assert fused.counters.as_dict() == ref.counters.as_dict()
    assert len(f_drains) == len(r_drains)
    for fd, rd in zip(f_drains, r_drains):
        assert np.array_equal(fd, rd)
    for fw, rw in zip(f_works, r_works):
        assert np.array_equal(fw, rw)

    return {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "push_rounds": len(f_drains),
        "fused_seconds": t_fused,
        "reference_seconds": t_ref,
        "speedup": t_ref / t_fused,
    }


def test_push_fusion_speedup(benchmark):
    row = run_once(benchmark, _generate)
    print()
    print(format_table(list(row.keys()), [list(row.values())],
                       title="Push fusion (fused vs per-chunk reference)"))
    if STRICT:
        assert row["vertices"] >= 100_000
        assert row["speedup"] >= 3.0
    else:
        assert row["speedup"] >= 1.2

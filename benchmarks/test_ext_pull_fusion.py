"""Extension experiment — converged-block-aware pull fusion speedup.

The unified-labels pull has two bit-identical strategies (DESIGN.md
Section 5): the reference visits every block in its own Python
iteration; the fused strategy skips all-zero (converged) blocks in
O(1) bulk accounting and evaluates runs of consecutive live blocks
with windowed speculative kernel calls.  This experiment measures the
wall-clock effect where the interpreter overhead the fusion removes is
largest: pull-only label propagation (tiny direction threshold) with
fine-grained blocks on a skewed RMAT graph of >= 100k vertices.

Asserted shape: labels, per-iteration counter deltas and makespans are
bit-identical between the strategies, and the fused engine is at least
3x faster end to end at full scale.
"""

import time

import numpy as np

from conftest import SCALE, STRICT, run_once

from repro.core.engine import LPOptions, label_propagation_cc
from repro.experiments import format_table
from repro.graph.generators import rmat_graph

#: Pull-only Thrifty with fine blocks: every iteration is a dense pull
#: over all partitions, so the per-block Python loop dominates the
#: reference strategy once zero labels flood the graph.
RMAT_SCALE = 18 if SCALE >= 0.75 else 15
EDGE_FACTOR = 8
OPTIONS = dict(threshold=1e-9, block_size=8, track_convergence=False)


def _time_run(graph, fuse):
    best, result = float("inf"), None
    for _ in range(2):
        opts = LPOptions(fuse_pull_blocks=fuse, **OPTIONS)
        t0 = time.perf_counter()
        result = label_propagation_cc(graph, opts)
        best = min(best, time.perf_counter() - t0)
    return result, best


def _generate():
    graph = rmat_graph(RMAT_SCALE, EDGE_FACTOR, seed=7)
    fused, t_fused = _time_run(graph, True)
    ref, t_ref = _time_run(graph, False)

    # Fusion is a pure wall-clock optimization: everything observable
    # must be bit-identical to the per-block reference.
    assert np.array_equal(fused.labels, ref.labels)
    assert fused.num_iterations == ref.num_iterations
    for a, b in zip(fused.trace.iterations, ref.trace.iterations):
        assert a.direction == b.direction
        assert a.counters.as_dict() == b.counters.as_dict()
        assert a.makespan == b.makespan

    return {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "iterations": fused.num_iterations,
        "fused_seconds": t_fused,
        "reference_seconds": t_ref,
        "speedup": t_ref / t_fused,
    }


def test_pull_fusion_speedup(benchmark):
    row = run_once(benchmark, _generate)
    print()
    print(format_table(list(row.keys()), [list(row.values())],
                       title="Pull fusion (fused vs per-block reference)"))
    if STRICT:
        assert row["vertices"] >= 100_000
        assert row["speedup"] >= 3.0
    else:
        assert row["speedup"] >= 1.2

"""Extension experiment — compiled kernel backend speedup.

The backend seam (``repro.core.backends``) promises two things at
once: a compiled backend is *bit-identical* to the canonical numpy
backend on every observable (labels, masks, counters), and the seam
itself costs nothing — the facade's per-call registry dispatch must
disappear into measurement noise on the numpy path.

This experiment measures both on the kernel-microbench workload
(RMAT scale 15, edge factor 16, zero-heavy labels):

* with the optional numba backend registered, each hot kernel and a
  Thrifty end-to-end run are raced against numpy — the honest target
  is a >= 5x best-kernel wall-clock win at full scale, asserted only
  when the compiled backend is actually present;
* always, the facade (``repro.core.kernels``) is raced against direct
  calls on the resolved backend object — the dispatch overhead ratio
  must stay within noise.

The report merges into ``BENCH_baselines.json`` under
``"backend_speedup"`` so the trajectory of both numbers is tracked.
"""

import time

import numpy as np

from conftest import SCALE, STRICT, run_once, write_baseline

from repro.core import thrifty_cc
from repro.core.backends import available_backends, get_backend
from repro.core.kernels import pull_block, zero_cut_scan_lengths
from repro.experiments import format_table
from repro.graph.generators import rmat_graph
from repro.options import ThriftyOptions, to_call_kwargs

RMAT_SCALE = 15 if SCALE >= 0.75 else 12
EDGE_FACTOR = 16
#: Facade dispatch is one dict lookup + method bind per kernel call;
#: anything beyond 1.35x on a ~ms-scale kernel call would mean the
#: seam itself is doing real work.
DISPATCH_NOISE_RATIO = 1.35


def _workload():
    graph = rmat_graph(RMAT_SCALE, EDGE_FACTOR, seed=1)
    rng = np.random.default_rng(2)
    labels = rng.integers(0, graph.num_vertices,
                          size=graph.num_vertices).astype(np.int64)
    labels[labels % 17 == 0] = 0
    return graph, labels


def _best_of(fn, repeats=5):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _kernel_times(kb, graph, labels):
    n = graph.num_vertices
    rng = np.random.default_rng(3)
    idx = rng.integers(0, n, size=200_000)
    val = rng.integers(0, n, size=200_000).astype(np.int64)
    pull, t_pull = _best_of(lambda: kb.pull_block(graph, labels, 0, n))
    scan, t_scan = _best_of(
        lambda: kb.zero_cut_scan_lengths(graph, labels, 0, n))

    def atomic():
        arr = np.full(n, n, dtype=np.int64)
        return kb.batch_atomic_min(arr, idx, val)

    changed, t_atomic = _best_of(atomic)
    return {"pull_block": (pull, t_pull),
            "zero_cut": (scan, t_scan),
            "batch_atomic_min": (changed, t_atomic)}


def _generate():
    graph, labels = _workload()
    backends = available_backends()
    numpy_kb = get_backend("numpy")
    report = {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "backends": backends,
    }

    # -- dispatch overhead: facade vs direct backend calls (always) --
    n = graph.num_vertices
    _, t_direct = _best_of(lambda: numpy_kb.pull_block(graph, labels,
                                                       0, n))
    _, t_facade = _best_of(lambda: pull_block(graph, labels, 0, n))
    _, t_direct_scan = _best_of(
        lambda: numpy_kb.zero_cut_scan_lengths(graph, labels, 0, n))
    _, t_facade_scan = _best_of(
        lambda: zero_cut_scan_lengths(graph, labels, 0, n))
    dispatch_ratio = max(t_facade / t_direct,
                         t_facade_scan / t_direct_scan)
    report["dispatch_overhead_ratio"] = dispatch_ratio

    # -- compiled backend race (only when one is registered) ---------
    if "numba" in backends:
        numba_kb = get_backend("numba")
        base = _kernel_times(numpy_kb, graph, labels)
        # Warm the JIT before timing: compilation is a one-off cost,
        # not steady-state kernel wall-clock.
        _kernel_times(numba_kb, graph, labels)
        comp = _kernel_times(numba_kb, graph, labels)
        speedups = {}
        for name in base:
            ref_out, ref_t = base[name]
            got_out, got_t = comp[name]
            ref0 = ref_out[0] if isinstance(ref_out, tuple) else ref_out
            got0 = got_out[0] if isinstance(got_out, tuple) else got_out
            assert np.array_equal(np.asarray(got0), np.asarray(ref0)), \
                name
            speedups[name] = ref_t / got_t
        report["kernel_speedups"] = speedups
        report["best_kernel_speedup"] = max(speedups.values())

        np_opts = to_call_kwargs(ThriftyOptions(
            track_convergence=False))
        nb_opts = to_call_kwargs(ThriftyOptions(
            track_convergence=False, backend="numba"))
        thrifty_cc(graph, **nb_opts)    # JIT warm-up run
        ref_res, t_np = _best_of(lambda: thrifty_cc(graph, **np_opts),
                                 repeats=3)
        got_res, t_nb = _best_of(lambda: thrifty_cc(graph, **nb_opts),
                                 repeats=3)
        assert np.array_equal(got_res.labels, ref_res.labels)
        assert got_res.trace.total_counters().as_dict() == \
            ref_res.trace.total_counters().as_dict()
        report["thrifty_numpy_seconds"] = t_np
        report["thrifty_numba_seconds"] = t_nb
        report["thrifty_speedup"] = t_np / t_nb
    return report


def test_backend_speedup(benchmark):
    report = run_once(benchmark, _generate)
    rows = [["dispatch_overhead_ratio",
             round(report["dispatch_overhead_ratio"], 3)]]
    for name, s in report.get("kernel_speedups", {}).items():
        rows.append([f"speedup:{name}", round(s, 2)])
    if "thrifty_speedup" in report:
        rows.append(["speedup:thrifty_e2e",
                     round(report["thrifty_speedup"], 2)])
    print()
    print(format_table(["metric", "value"], rows,
                       title="Kernel backend seam (numpy vs compiled)"))
    write_baseline("backend_speedup", report)

    # The seam must be free on the default path, in every environment.
    assert report["dispatch_overhead_ratio"] <= DISPATCH_NOISE_RATIO
    if "numba" in report["backends"]:
        # The honest compiled-backend target: >= 5x on the best hot
        # kernel at full scale (the e2e win is smaller — engine logic
        # between kernel calls stays interpreted by design).
        if STRICT:
            assert report["best_kernel_speedup"] >= 5.0
            assert report["thrifty_speedup"] >= 1.0
        else:
            assert report["best_kernel_speedup"] >= 1.5

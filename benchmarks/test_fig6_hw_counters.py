"""Figure 6 — modelled hardware-event reduction, Thrifty vs DO-LP.

Paper: Thrifty cuts at least 80% of DO-LP's last-level cache misses,
memory accesses, branch mispredictions and instructions.  Shape
asserted: >= 70% reduction in every event on every power-law dataset
(the events are analytic proxies — see repro.instrument.papi).
"""

import statistics

from conftest import PL_DATASETS, SCALE, run_once

from repro.experiments import fig6_hw_counters, format_table

EVENTS = ("llc_misses", "memory_accesses", "branch_mispredictions",
          "instructions")


def test_fig6_hw_counters(benchmark):
    rows = run_once(benchmark,
                    lambda: fig6_hw_counters(PL_DATASETS, scale=SCALE))
    table = [[r["dataset"],
              *(f'{r[f"{e}_reduction_pct"]:.1f}' for e in EVENTS)]
             for r in rows]
    print()
    print(format_table(["dataset", *EVENTS], table,
                       title="Figure 6: event reduction % "
                             "(Thrifty vs DO-LP)"))

    for e in EVENTS:
        vals = [r[f"{e}_reduction_pct"] for r in rows]
        assert min(vals) > 50.0, (e, min(vals))
        assert statistics.mean(vals) > 75.0, e

"""Extension experiment E8 — distributed rank scaling (alpha-beta model).

E1 counts messages; this experiment prices them: compute is divided
across ranks (each rank a full SkylakeX node) and communication pays
the alpha-beta network cost, on commodity 25GbE and on HDR InfiniBand.

Shape asserted: the Thrifty-style configuration beats naive broadcast
LP at every rank count >= 2 on both networks, and keeps improving
from 2 to 32 ranks.
"""

from conftest import SCALE, run_once

from repro.distributed import (
    ETHERNET_25G,
    HDR_INFINIBAND,
    DistributedOptions,
    distributed_cc,
    simulate_distributed_time,
)
from repro.experiments import format_table
from repro.graph import load

DATASET = "Frndstr"
RANKS = (2, 4, 8, 16, 32)


def _generate():
    graph = load(DATASET, min(SCALE, 0.5))
    rows = []
    for ranks in RANKS:
        naive = distributed_cc(graph, DistributedOptions(
            num_ranks=ranks, zero_planting=False,
            zero_convergence=False, dedup_sends=False,
            combining=False))
        thrifty = distributed_cc(graph,
                                 DistributedOptions(num_ranks=ranks))
        row = {"ranks": ranks}
        for net in (ETHERNET_25G, HDR_INFINIBAND):
            row[f"naive@{net.name}"] = simulate_distributed_time(
                naive, graph.num_vertices, ranks, network=net)
            row[f"thrifty@{net.name}"] = simulate_distributed_time(
                thrifty, graph.num_vertices, ranks, network=net)
        rows.append(row)
    return rows


def test_ext_distributed_scaling(benchmark):
    rows = run_once(benchmark, _generate)
    cols = [k for k in rows[0] if k != "ranks"]
    print()
    print(format_table(
        ["ranks", *cols],
        [[r["ranks"], *(f"{r[c]:.2f}" for c in cols)] for r in rows],
        title=f"Extension E8: distributed scaling on {DATASET} "
              "(simulated ms/run)"))

    for r in rows:
        for net in ("25GbE", "HDR-IB"):
            assert r[f"thrifty@{net}"] < r[f"naive@{net}"], \
                (r["ranks"], net)
    by = {r["ranks"]: r for r in rows}
    # Thrifty-style keeps improving with ranks on both networks.
    assert by[32]["thrifty@25GbE"] < by[2]["thrifty@25GbE"]
    assert by[32]["thrifty@HDR-IB"] < by[2]["thrifty@HDR-IB"]

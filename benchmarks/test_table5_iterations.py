"""Table V — iteration counts: DO-LP vs Thrifty.

Paper: Thrifty needs fewer iterations on every power-law dataset
(ratios 0.11-0.94, mean 0.61; the Unified Labels Array effect).
Shape asserted: ratio < 1 on a large majority, mean ratio < 0.95.
"""

import statistics

from conftest import PL_DATASETS, SCALE, run_once

from repro.experiments import format_table, table5_iterations

PAPER_RATIO = {"Pkc": 0.50, "WWiki": 0.76, "LJLnks": 0.40, "LJGrp": 0.57,
               "Twtr10": 0.71, "Twtr": 0.73, "Wbbs": 0.11,
               "TwtrMpi": 0.73, "Frndstr": 0.50, "SK": 0.87,
               "WbCc": 0.94, "UKDls": 0.27, "UU": 0.70, "UKDmn": 0.54,
               "ClWb9": 0.89}


def test_table5_iterations(benchmark):
    rows = run_once(benchmark,
                    lambda: table5_iterations(PL_DATASETS, scale=SCALE))
    table = [[r["dataset"], r["dolp"], r["thrifty"],
              f'{r["ratio"]:.2f}', PAPER_RATIO[r["dataset"]]]
             for r in rows]
    print()
    print(format_table(
        ["dataset", "DO-LP", "Thrifty", "ratio", "paper ratio"], table,
        title="Table V: iterations to convergence"))

    ratios = [r["ratio"] for r in rows]
    mean = statistics.mean(ratios)
    print(f"mean ratio: {mean:.2f}  (paper: 0.61)")
    fewer = sum(1 for r in ratios if r < 1.0)
    assert fewer >= len(rows) - 2, \
        "Thrifty should need fewer iterations nearly everywhere"
    assert mean < 0.95

"""Extension experiment E5 — block-granularity sensitivity.

DESIGN.md Section 5 documents the simulation's fidelity knob: the
unified-labels pull commits in blocks of ``block_size`` vertices, with
in-iteration propagation flooding each block's internal components.
This experiment sweeps block_size on Thrifty to quantify how much the
modelling choice moves the reported iteration counts.

Shape asserted: iteration counts are monotone-ish (never increase by
more than a small tolerance as blocks grow), and the default (64) sits
within 25% of the finest granularity's iteration count — i.e. the
reported Table V numbers are not an artifact of the block size.
"""

from conftest import SCALE, run_once

from repro.core import thrifty_cc
from repro.experiments import format_table
from repro.graph import load
from repro.validate import same_partition

DATASET = "UKDls"
BLOCK_SIZES = (8, 16, 32, 64, 128, 256)


def _generate():
    graph = load(DATASET, min(SCALE, 0.5))
    rows = []
    ref = None
    for bs in BLOCK_SIZES:
        r = thrifty_cc(graph, block_size=bs, dataset=DATASET)
        if ref is None:
            ref = r.labels
        assert same_partition(ref, r.labels)
        rows.append({"block_size": bs,
                     "iterations": r.num_iterations,
                     "edges": r.counters().edges_processed})
    return rows


def test_ext_block_size_sensitivity(benchmark):
    rows = run_once(benchmark, _generate)
    print()
    print(format_table(
        ["block_size", "iterations", "edges processed"],
        [[r["block_size"], r["iterations"], r["edges"]] for r in rows],
        title=f"Extension E5: block-size sensitivity ({DATASET})"))

    iters = {r["block_size"]: r["iterations"] for r in rows}
    finest = iters[BLOCK_SIZES[0]]
    default = iters[64]
    assert abs(default - finest) <= max(3, 0.25 * finest), \
        "reported iteration counts must be robust to block size"
    # Bigger blocks flood more per iteration: counts never grow much.
    assert iters[BLOCK_SIZES[-1]] <= finest + 2

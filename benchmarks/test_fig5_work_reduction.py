"""Figure 5 — Thrifty vs DO-LP: speedup and edges processed.

Paper: DO-LP processes each edge 7.7x on average; Thrifty processes
1.4% of |E| on average (max 4.4%), a >= 97% reduction in traversed
edges on every dataset.  Shape asserted: Thrifty processes a small
fraction of what DO-LP does (>= 90% reduction) and is faster
everywhere.
"""

import statistics

from conftest import PL_DATASETS, SCALE, run_once

from repro.experiments import fig5_work_reduction, format_table


def test_fig5_work_reduction(benchmark):
    rows = run_once(benchmark,
                    lambda: fig5_work_reduction(PL_DATASETS,
                                                scale=SCALE))
    table = [[r["dataset"], f'{r["speedup"]:.1f}x',
              f'{r["thrifty_edges_pct"]:.2f}',
              f'{r["dolp_edges_x"]:.1f}',
              f'{r["work_reduction_pct"]:.1f}'] for r in rows]
    print()
    print(format_table(
        ["dataset", "speedup", "thrifty %|E|", "dolp x|E|",
         "reduction %"], table,
        title="Figure 5: Thrifty vs DO-LP work reduction"))
    mean_pct = statistics.mean(r["thrifty_edges_pct"] for r in rows)
    print(f"mean thrifty edges: {mean_pct:.1f}% of |E| (paper: 1.4%)")

    for r in rows:
        assert r["speedup"] > 1.0, r
        assert r["work_reduction_pct"] > 90.0, r
    dolp_mean = statistics.mean(r["dolp_edges_x"] for r in rows)
    assert dolp_mean > 2.0, "DO-LP re-processes each edge several times"

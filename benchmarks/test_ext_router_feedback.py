"""Extension experiment — feedback routing under adversarial probes.

Two serving stacks replay an identical repeat trace over deliberately
mis-probed graphs (the planner's input is poisoned after registration,
the sanctioned misprediction-injection mechanism the recovery tests
use):

* the two road networks get a diameter of 4, making LP's wavefront
  look short — the static planner routes them to Thrifty, the measured
  loser by a wide margin;
* one skewed graph (Pkc) gets its diameter inflated to just past the
  LP/UF crossover, pushing the static decision to Afforest even
  though Thrifty measures 3-7x faster.

The **static** service (``ServiceOptions(feedback=False)``) repeats
the wrong route forever.  The **feedback** service folds every run's
measured simulated-ms into the registry's ``RouterFeedback`` posterior
and re-decides per arrival, converging to the measured winner — the
trace's total simulated-ms must come in measurably below the static
service's (floor asserted below).

The two poisons exercise the two recovery paths.  The roads recover
by *correction alone*: the mispredicted method is the one that runs,
so its posterior inflates until the route flips.  Pkc cannot — the
wrongly-chosen Afforest predicts its own cost accurately, so no
observation ever indicts it.  Because the poison lands the decision
near-margin (inside ``explore_margin``), the seeded epsilon-greedy
stream occasionally runs the runner-up Thrifty, whose one measured
observation collapses the LP posterior and flips the route for good.

Caching is forced out of the picture (capacity-1 cache, alternating
datasets), so every request pays its routed algorithm: the comparison
is pure routing quality.  Cold-start bit-identity is asserted first:
with an empty feedback store the corrected planner returns the static
plan *object* for every one of the 17 surrogates, so the Table IV
17/17 router agreement is preserved exactly.

The report is merged into ``BENCH_baselines.json`` under the
``router_feedback`` key.
"""

import time
from dataclasses import replace

from conftest import (ALL_DATASETS, BENCH_PATH, SCALE, STRICT, run_once,
                      write_baseline)

from repro.experiments import format_table
from repro.graph import load
from repro.service import (LP_METHOD, UF_METHOD, CCRequest, CCService,
                           RouterFeedback, plan, probe_graph, replan)
from repro.options import ServiceOptions

#: The adversarial probe set and each graph's *measured* winner
#: (asserted against the converged feedback route).  Roads are
#: under-diametered (static -> thrifty, the measured loser); Pkc is
#: over-diametered to just past the crossover (static -> afforest,
#: the measured loser, recoverable only through exploration).
WINNER = {"GBRd": UF_METHOD, "USRd": UF_METHOD, "Pkc": LP_METHOD}
#: Requests per dataset; round-robin so the capacity-1 cache never
#: serves a repeat.
REPEATS = 12
#: Exploration policy of the feedback side (seeded, deterministic).
EXPLORE = dict(explore_rate=0.25, explore_margin=3.0, explore_seed=7)


def _poison(probes):
    """A probe set the static planner misroutes on.

    Roads get a flat diameter of 4 (LP looks cheap).  For Pkc, walk
    the diameter up until the plan first flips to the UF family: the
    decision lands just past the crossover, i.e. *near-margin*, so
    the feedback side's exploration stream is live there.
    """
    if probes.diameter > 100:          # the road networks
        return replace(probes, diameter=4)
    d = probes.diameter
    while plan(replace(probes, diameter=d)).family != "uf":
        d += max(1, probes.diameter)
    return replace(probes, diameter=d)


def _poisoned_service(graphs, **options):
    svc = CCService(cache_capacity=1,
                    service_options=ServiceOptions(**options))
    for name, graph in graphs.items():
        entry = svc.register(graph, name=name)
        entry._probes = _poison(entry.probes)
    return svc


def _run_trace(svc):
    t0 = time.perf_counter()
    start_clock = svc.clock_ms
    methods = {name: [] for name in WINNER}
    for _ in range(REPEATS):
        for name in WINNER:
            resp = svc.submit(CCRequest(key=name))
            assert not resp.cache_hit, "capacity-1 cache must not hit"
            methods[name].append(resp.method)
    wall = time.perf_counter() - t0
    return svc.clock_ms - start_clock, methods, wall


def _assert_cold_start_identity():
    """Empty feedback => the corrected planner IS the static planner,
    object-for-object, on all 17 surrogates (probes at a small fixed
    scale: the decision pipeline is what is under test, and identity
    must hold for every content)."""
    empty = RouterFeedback()
    agree = 0
    for name in ALL_DATASETS:
        probes = probe_graph(load(name, min(SCALE, 0.2)))
        base = plan(probes)
        assert replan(base, empty, f"fp-{name}") is base, name
        assert plan(probes, feedback=empty,
                    fingerprint=f"fp-{name}") == base, name
        agree += 1
    return agree


def _generate():
    cold_start_identical = _assert_cold_start_identity()

    graphs = {name: load(name, SCALE) for name in WINNER}
    static_svc = _poisoned_service(graphs, feedback=False)
    feedback_svc = _poisoned_service(graphs, feedback=True, **EXPLORE)

    static_ms, static_methods, static_wall = _run_trace(static_svc)
    feedback_ms, feedback_methods, feedback_wall = _run_trace(feedback_svc)

    # The static side must actually be mispredicting (otherwise the
    # poisoning failed and the comparison is vacuous): it routes the
    # measured loser on every request and never changes its mind.
    for name, winner in WINNER.items():
        assert set(static_methods[name]) == {static_methods[name][0]}
        assert static_methods[name][0] != winner, name
    fb_snap = feedback_svc.metrics.snapshot()
    assert fb_snap["route_flips"] > 0
    assert fb_snap["mispredictions"] > 0

    # Feedback converges.  The per-arrival method stream can still
    # contain late exploration runs of the loser, so the convergence
    # check is on the *posterior*: replanning with the accumulated
    # feedback must route the measured winner for every graph.
    converged_in = {}
    settled_methods = {}
    for name, winner in WINNER.items():
        seq = feedback_methods[name]
        assert winner in seq, (name, seq)
        converged_in[name] = seq.index(winner)
        entry = feedback_svc.registry.get(name)
        settled = replan(feedback_svc._plan_for(entry),
                         feedback_svc.registry.feedback,
                         entry.fingerprint)
        assert settled.method == winner, (name, settled.method)
        settled_methods[name] = settled.method

    report = {
        "bench_scale": SCALE,
        "repeats": REPEATS,
        "datasets": sorted(WINNER),
        "cold_start_identical": cold_start_identical,
        "explore": EXPLORE,
        "static": {
            "total_ms": static_ms,
            "methods": {n: static_methods[n][0] for n in WINNER},
            "wall_seconds": static_wall,
        },
        "feedback": {
            "total_ms": feedback_ms,
            "route_flips": fb_snap["route_flips"],
            "explorations": fb_snap["explorations"],
            "mispredictions": fb_snap["mispredictions"],
            "predictions": fb_snap["predictions"],
            "converged_in": converged_in,
            "settled_methods": settled_methods,
            "wall_seconds": feedback_wall,
        },
        "speedup": static_ms / feedback_ms,
    }
    write_baseline("router_feedback", report)
    return report


def test_router_feedback_beats_static_on_mispredictions(benchmark):
    report = run_once(benchmark, _generate)

    s, f = report["static"], report["feedback"]
    print()
    rows = [[n, s["methods"][n], f["settled_methods"][n],
             f["converged_in"][n]] for n in report["datasets"]]
    print(format_table(
        ["dataset", "static route", "settled route", "converged in"],
        rows,
        title=f"Feedback routing under poisoned probes — "
              f"{report['repeats']} repeats/dataset "
              f"(speedup {report['speedup']:.2f}x, "
              f"{f['route_flips']} flips, "
              f"{f['explorations']} explorations)"))
    print(f"static total  : {s['total_ms']:.3f} simulated ms")
    print(f"feedback total: {f['total_ms']:.3f} simulated ms")
    print(f"(written to {BENCH_PATH.name})")

    assert BENCH_PATH.exists()
    assert report["cold_start_identical"] == 17
    # Correction-driven recovery is fast (a couple of observations);
    # exploration-driven recovery (Pkc) just has to land in-trace.
    assert f["converged_in"]["GBRd"] <= 3
    assert f["converged_in"]["USRd"] <= 3
    assert f["converged_in"]["Pkc"] < report["repeats"]
    # The acceptance criterion: measurably lower total simulated-ms.
    if STRICT:
        assert report["speedup"] >= 1.5
    else:
        assert report["speedup"] >= 1.2

"""Hardware-counter proxies (the paper uses PAPI; Figure 6).

The paper reports, per algorithm, four hardware events: last-level
cache misses, memory accesses, branch mispredictions, and retired
instructions.  Without hardware counters (and with the kernels running
as NumPy batches rather than the C loops being modelled), we *derive*
these events analytically from the operation counts:

* memory accesses — counted directly (`OpCounters.memory_accesses`).
* LLC misses — sequential streams miss once per cache line
  (64 B / 4 B labels = 1/16 rate); random gathers miss with
  probability `max(0, 1 - L3_capacity / working_set)`, the standard
  uniform-reuse approximation.
* branch mispredictions — well-predicted loop branches mispredict at
  ~0.5%; data-dependent label-comparison branches at a rate set by how
  often the comparison outcome actually flips (estimated from the
  update/attempt ratio, floored at 5%).
* instructions — a fixed per-operation instruction budget modelled on
  the paper's C inner loops (gather + compare + branch ≈ 6
  instructions per edge, etc.).

These are *proxies*: only relative comparisons between algorithms run
on the same substrate are meaningful, which is all Figure 6 uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.machine import MachineSpec
from .counters import OpCounters

__all__ = ["HardwareProxy", "model_hardware_counters"]

CACHE_LINE_BYTES = 64
LABEL_BYTES = 4

# Per-operation instruction budgets (C inner-loop estimates).
_INSTR_PER_EDGE = 6.0          # gather, compare, branch, index arithmetic
_INSTR_PER_VERTEX = 8.0        # row bounds, loop setup, frontier check
_INSTR_PER_WRITE = 2.0
_INSTR_PER_CAS = 10.0          # CAS loop body

_BASE_MISPREDICT_RATE = 0.005  # well-predicted structured branches
_MIN_DATA_MISPREDICT = 0.05    # floor for data-dependent branches


@dataclass(frozen=True)
class HardwareProxy:
    """Modelled hardware-event totals for one run."""

    memory_accesses: int
    llc_misses: int
    branch_mispredictions: int
    instructions: int

    def as_dict(self) -> dict[str, int]:
        return {
            "memory_accesses": self.memory_accesses,
            "llc_misses": self.llc_misses,
            "branch_mispredictions": self.branch_mispredictions,
            "instructions": self.instructions,
        }


def random_miss_rate(machine: MachineSpec, working_set_bytes: int) -> float:
    """P(LLC miss) for a uniform random access into the working set."""
    l3_bytes = machine.total_l3_mb * 1024 * 1024
    if working_set_bytes <= 0:
        return 0.0
    return max(0.0, 1.0 - l3_bytes / working_set_bytes)


def model_hardware_counters(counters: OpCounters,
                            machine: MachineSpec,
                            num_vertices: int) -> HardwareProxy:
    """Derive the four Figure 6 events from operation counts.

    ``num_vertices`` sizes the labels array, the randomly-accessed
    working set of every algorithm here (union-find parent arrays have
    the same footprint).
    """
    working_set = num_vertices * LABEL_BYTES
    p_miss = random_miss_rate(machine, working_set)
    line_rate = LABEL_BYTES / CACHE_LINE_BYTES

    llc = ((counters.random_accesses + counters.dependent_accesses) * p_miss
           + counters.sequential_accesses * line_rate)

    # Data-dependent branch outcome rate: how often comparisons succeed.
    denom = max(counters.unpredictable_branches, 1)
    flip = (counters.label_writes + counters.cas_successes) / denom
    data_rate = min(0.5, max(_MIN_DATA_MISPREDICT, flip))
    predictable = max(counters.branches - counters.unpredictable_branches, 0)
    mispred = (predictable * _BASE_MISPREDICT_RATE
               + counters.unpredictable_branches * data_rate)

    instructions = (counters.edges_processed * _INSTR_PER_EDGE
                    + counters.vertex_reads * _INSTR_PER_VERTEX
                    + counters.label_writes * _INSTR_PER_WRITE
                    + counters.cas_attempts * _INSTR_PER_CAS
                    + counters.frontier_updates * _INSTR_PER_WRITE)

    return HardwareProxy(
        memory_accesses=int(counters.memory_accesses),
        llc_misses=int(llc),
        branch_mispredictions=int(mispred),
        instructions=int(instructions),
    )

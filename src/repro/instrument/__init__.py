"""Instrumentation: operation counters, traces, hardware proxies, time."""

from .counters import OpCounters
from .costmodel import CostModel, TimedRun, simulate_run_time
from .metrics import LatencyHistogram
from .papi import HardwareProxy, model_hardware_counters, random_miss_rate
from .trace import Direction, IterationRecord, RunTrace

__all__ = [
    "OpCounters",
    "LatencyHistogram",
    "Direction",
    "IterationRecord",
    "RunTrace",
    "HardwareProxy",
    "model_hardware_counters",
    "random_miss_rate",
    "CostModel",
    "TimedRun",
    "simulate_run_time",
]

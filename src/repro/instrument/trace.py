"""Per-iteration execution traces.

Every CC run produces a :class:`RunTrace`: one :class:`IterationRecord`
per round with the traversal direction, frontier density, convergence
state and the counter *delta* for that round.  The evaluation harness
derives Figures 3/7/8 (convergence curves), Table VI (first-iteration
times) and Table VII (per-iteration directions) directly from traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .counters import OpCounters

__all__ = ["Direction", "IterationRecord", "RunTrace"]


class Direction(str, Enum):
    """Traversal kind of one iteration."""

    PULL = "pull"
    PUSH = "push"
    PULL_FRONTIER = "pull-frontier"   # Thrifty's frontier-materializing pull
    INITIAL_PUSH = "initial-push"     # Thrifty iteration 0
    SYNC = "sync"                     # label-array synchronization pass


@dataclass
class IterationRecord:
    """One algorithm round."""

    index: int
    direction: Direction
    density: float                  # frontier density entering the round
    active_vertices: int            # |F.V| entering the round
    active_edges: int               # |F.E| entering the round
    changed_vertices: int           # labels modified this round
    converged_fraction: float       # vertices at final label after round
    counters: OpCounters = field(default_factory=OpCounters)
    # Simulated parallel finish time of the round's parallel-for:
    # the work-stealing scheduler's makespan over the per-partition
    # work (vertices scanned + edges processed) the round performed.
    # Unitless work units, not milliseconds; 0.0 for algorithms that
    # do not run on the partitioned schedule.
    makespan: float = 0.0
    # Representation of the frontier this round produced:
    # "worklist"/"bitmap" (AdaptiveFrontier) or "count-only"
    # (CountOnlyFrontier); "" when the round kept no frontier record.
    frontier_mode: str = ""
    # AdaptiveFrontier representation switches while building it.
    frontier_conversions: int = 0

    @property
    def edges_processed(self) -> int:
        return self.counters.edges_processed


@dataclass
class RunTrace:
    """Whole-run record: iterations plus run-level totals.

    ``setup_counters`` holds pre-iteration work (label initialization,
    Zero Planting's max-degree reduction, parent-array setup) so run
    totals include it without inflating the iteration count.
    """

    algorithm: str
    dataset: str = ""
    iterations: list[IterationRecord] = field(default_factory=list)
    setup_counters: OpCounters = field(default_factory=OpCounters)

    def add(self, record: IterationRecord) -> None:
        self.iterations.append(record)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    def total_counters(self) -> OpCounters:
        total = self.setup_counters.copy()
        for rec in self.iterations:
            total += rec.counters
        total.iterations = self.num_iterations
        return total

    def total_edges_processed(self) -> int:
        return sum(r.edges_processed for r in self.iterations)

    def convergence_curve(self) -> list[float]:
        """converged_fraction after each round (Figures 3/7/8 series)."""
        return [r.converged_fraction for r in self.iterations]

    def makespans(self) -> list[float]:
        """Per-iteration simulated parallel time (work units)."""
        return [r.makespan for r in self.iterations]

    def total_makespan(self) -> float:
        """Simulated parallel time of the whole run (work units)."""
        return float(sum(r.makespan for r in self.iterations))

    def directions(self) -> list[Direction]:
        return [r.direction for r in self.iterations]

    def pull_records(self) -> list[IterationRecord]:
        return [r for r in self.iterations
                if r.direction in (Direction.PULL, Direction.PULL_FRONTIER)]

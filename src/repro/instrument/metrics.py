"""Service-facing metrics primitives.

The serving layer (:mod:`repro.service`) reports per-method
simulated-latency distributions.  Latencies in this repo are modelled
milliseconds spanning ~six orders of magnitude (microsecond cache
hits to multi-second SV runs on road graphs), so the histogram uses
fixed log2-spaced buckets: cheap to update, mergeable, and quantiles
are read straight off the cumulative counts with bucket-granular
resolution — the same trade Prometheus-style histograms make.
"""

from __future__ import annotations

import math

__all__ = ["LatencyHistogram"]

# First bucket covers (0, 1e-3] ms; each subsequent bucket doubles the
# upper bound.  40 doublings reach ~5.5e8 ms — far beyond any simulated
# run — and an overflow bucket catches the rest.
_FIRST_UPPER_MS = 1e-3
_NUM_BUCKETS = 40


class LatencyHistogram:
    """Log2-bucketed histogram of simulated latencies in milliseconds."""

    __slots__ = ("counts", "count", "total_ms", "min_ms", "max_ms")

    def __init__(self) -> None:
        self.counts: list[int] = [0] * (_NUM_BUCKETS + 1)
        self.count = 0
        self.total_ms = 0.0
        self.min_ms = math.inf
        self.max_ms = 0.0

    @staticmethod
    def _bucket(ms: float) -> int:
        if ms <= _FIRST_UPPER_MS:
            return 0
        idx = int(math.ceil(math.log2(ms / _FIRST_UPPER_MS)))
        return min(idx, _NUM_BUCKETS)

    @staticmethod
    def _upper_bound(index: int) -> float:
        if index >= _NUM_BUCKETS:
            return math.inf
        return _FIRST_UPPER_MS * (2.0 ** index)

    def observe(self, ms: float) -> None:
        """Record one latency observation (milliseconds, >= 0)."""
        if ms < 0:
            raise ValueError(f"latency must be >= 0, got {ms}")
        self.counts[self._bucket(ms)] += 1
        self.count += 1
        self.total_ms += ms
        self.min_ms = min(self.min_ms, ms)
        self.max_ms = max(self.max_ms, ms)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s observations into this histogram."""
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total_ms += other.total_ms
        self.min_ms = min(self.min_ms, other.min_ms)
        self.max_ms = max(self.max_ms, other.max_ms)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile (0 < q <= 1).

        Bucket-granular: exact to within a factor of 2, which is all a
        log-scale latency distribution needs.  The top bucket reports
        the true observed maximum rather than infinity.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return min(self._upper_bound(i), self.max_ms)
        return self.max_ms

    def summary(self) -> dict[str, float]:
        """Scalar summary for reports: count, mean, p50/p90/p99, extremes."""
        if self.count == 0:
            return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
                    "p90_ms": 0.0, "p99_ms": 0.0,
                    "min_ms": 0.0, "max_ms": 0.0}
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.quantile(0.50),
            "p90_ms": self.quantile(0.90),
            "p99_ms": self.quantile(0.99),
            "min_ms": self.min_ms,
            "max_ms": self.max_ms,
        }

    def nonzero_buckets(self) -> list[tuple[float, int]]:
        """(upper_bound_ms, count) for every occupied bucket, ascending."""
        return [(self._upper_bound(i), c)
                for i, c in enumerate(self.counts) if c]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LatencyHistogram(count={self.count}, "
                f"mean={self.mean_ms:.3g}ms, max={self.max_ms:.3g}ms)")

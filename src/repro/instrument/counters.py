"""Operation counters — the ground truth behind every reported number.

Each CC implementation increments these counters as it runs; simulated
time (costmodel), hardware proxies (papi) and the work-reduction
figures (F5) are all pure functions of them.  Semantics:

* ``edges_processed`` — edge traversals: one per neighbour label
  examined in a pull scan (counting the early-exit cut Thrifty
  achieves) or per atomic-min attempt in a push.  This is the
  quantity behind the paper's "Thrifty processes 1.4% of the edges".
* ``label_reads`` / ``label_writes`` — accesses to the labels array.
* ``random_accesses`` / ``sequential_accesses`` — memory-pattern
  classification: gathers through ``indices`` are random, scans over
  ``indptr``/labels are sequential.  Drives the cache model.
* ``dependent_accesses`` — serially-dependent random accesses (union-
  find pointer chasing): each access needs the previous one's result,
  so the memory system cannot overlap them.  Priced higher than
  independent gathers by the cost model.
* ``cas_attempts`` / ``cas_successes`` — atomic-min traffic.
* ``branches`` / ``unpredictable_branches`` — total conditional
  branches vs data-dependent ones (label comparisons whose outcome is
  near-random); drives the branch-misprediction proxy.
* ``iterations`` — algorithm rounds (Thrifty counts Initial Push as an
  iteration, per Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["OpCounters"]


@dataclass
class OpCounters:
    """Additive operation counts for one run or one iteration."""

    edges_processed: int = 0
    vertex_reads: int = 0
    label_reads: int = 0
    label_writes: int = 0
    random_accesses: int = 0
    sequential_accesses: int = 0
    dependent_accesses: int = 0
    cas_attempts: int = 0
    cas_successes: int = 0
    frontier_updates: int = 0
    branches: int = 0
    unpredictable_branches: int = 0
    iterations: int = 0

    def copy(self) -> "OpCounters":
        return OpCounters(**self.as_dict())

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __add__(self, other: "OpCounters") -> "OpCounters":
        return OpCounters(**{
            k: v + getattr(other, k) for k, v in self.as_dict().items()})

    def __sub__(self, other: "OpCounters") -> "OpCounters":
        """Delta between two snapshots (self later than other)."""
        out = OpCounters(**{
            k: v - getattr(other, k) for k, v in self.as_dict().items()})
        if any(v < 0 for v in out.as_dict().values()):
            raise ValueError("counter delta went negative; "
                             "snapshots passed in wrong order?")
        return out

    def __iadd__(self, other: "OpCounters") -> "OpCounters":
        for k, v in other.as_dict().items():
            setattr(self, k, getattr(self, k) + v)
        return self

    # -- convenience recorders used by the kernels ------------------------

    def record_pull_scan(self, edges: int, vertices: int) -> None:
        """A pull scan over ``vertices`` rows touching ``edges`` slots.

        Each edge costs one random gather of a neighbour label and one
        data-dependent compare; each vertex costs a sequential indptr
        read and an own-label read.
        """
        self.edges_processed += edges
        self.vertex_reads += vertices
        self.label_reads += edges + vertices
        self.random_accesses += edges
        self.sequential_accesses += 2 * vertices
        self.branches += edges + vertices
        self.unpredictable_branches += edges

    def record_pull_skip(self, vertices: int, edges: int = 0) -> None:
        """Bulk accounting for converged blocks a pull skips in O(1).

        A fully-zero block contributes exactly what a per-block visit
        would have recorded — the per-vertex own-label checks, plus
        (with Zero Convergence off) its full edge scan.  Counters are
        additive, so one bulk call for all skipped blocks is
        bit-identical to the per-block calls it replaces.
        """
        self.record_pull_scan(edges, vertices)

    def record_push_scan(self, edges: int, vertices: int) -> None:
        """A push over ``vertices`` frontier rows, ``edges`` atomic-min
        attempts (random scatter reads + compare each)."""
        self.edges_processed += edges
        self.vertex_reads += vertices
        self.label_reads += edges + vertices
        self.random_accesses += edges
        self.sequential_accesses += 2 * vertices
        self.cas_attempts += edges
        self.branches += edges
        self.unpredictable_branches += edges

    def record_push_skip(self, edges: int, vertices: int) -> None:
        """Bulk accounting for push chunks whose atomic-mins all fail.

        A clean chunk still performs its full scan — the per-edge
        gathers, compares and CAS attempts — it just commits nothing,
        so its contribution is exactly a push scan with zero
        successes.  Counters are additive within an iteration, so one
        bulk call for a clean window is bit-identical to the
        per-chunk calls it replaces (the fused push uses this the way
        the fused pull uses :meth:`record_pull_skip`).
        """
        self.record_push_scan(edges, vertices)

    def record_label_commits(self, count: int, *, random: bool) -> None:
        """``count`` label writes, classified by access pattern."""
        self.label_writes += count
        if random:
            self.random_accesses += count
        else:
            self.sequential_accesses += count

    def record_cas_successes(self, count: int) -> None:
        self.cas_successes += count
        self.label_writes += count
        self.random_accesses += count

    def record_finds(self, count: int, avg_path_length: float) -> None:
        """``count`` union-find root lookups with the given mean hop
        count.  Each hop is a serially-dependent random parent read
        plus a compare."""
        hops = int(round(count * avg_path_length))
        self.dependent_accesses += hops
        self.label_reads += hops
        self.branches += hops

    def record_frontier_updates(self, count: int) -> None:
        self.frontier_updates += count
        self.sequential_accesses += count

    def record_sync_pass(self, vertices: int) -> None:
        """DO-LP's end-of-iteration labels-array synchronization
        (Algorithm 1 lines 21-22): a sequential copy of both arrays."""
        self.label_reads += vertices
        self.label_writes += vertices
        self.sequential_accesses += 2 * vertices

    @property
    def memory_accesses(self) -> int:
        return (self.random_accesses + self.sequential_accesses
                + self.dependent_accesses)

"""Simulated execution time (Table IV milliseconds).

Wall-clock time cannot be measured meaningfully here — the kernels run
as NumPy batches on one laptop core, while the paper runs C loops on
32/128 cores.  Instead, simulated time is a pure function of the
operation counters and a :class:`MachineSpec`:

    cycles(iter) = instructions / IPC
                 + random_accesses  * random_access_cycles / MLP
                 + sequential_accesses * streaming_cycles
    time(iter)   = cycles / (frequency * effective_parallelism(work))
    time(run)    = sum over iterations + per-iteration barrier cost

* ``random_access_cycles`` mixes LLC-hit and DRAM latency by the same
  working-set miss probability the PAPI proxy uses.
* ``MLP`` (memory-level parallelism) models out-of-order cores keeping
  ~8 cache misses in flight.
* ``effective_parallelism`` caps usable cores by available work and a
  machine-level efficiency factor, so tiny push iterations do not get
  credited with 128-way speedup — this is what makes road networks
  (many near-empty iterations) slow for LP, as in the paper.

Absolute milliseconds are therefore *modelled*; DESIGN.md documents
that only the relative shape of Table IV is expected to reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.machine import MachineSpec
from .counters import OpCounters
from .papi import LABEL_BYTES, model_hardware_counters, random_miss_rate
from .trace import RunTrace

__all__ = ["CostModel", "TimedRun", "simulate_run_time"]

_IPC = 2.0                    # instructions per cycle, superscalar core
_MLP = 8.0                    # concurrent outstanding misses (gathers)
_MLP_DEPENDENT = 1.0          # pointer chasing cannot overlap misses
# Dependent/CAS traffic (union-find finds and links) contends on hot
# parent cells and serializes through the memory system: adding cores
# beyond this cap does not speed it up.  Streaming/gather work scales
# with the machine's full effective parallelism instead.
_DEPENDENT_PARALLEL_CAP = 8.0
_STREAM_CYCLES = 0.5          # amortized cycles per prefetched stream elem
_BARRIER_US_PER_LOG2_CORE = 1.5   # futex barrier cost per log2(cores)
# Work granularity for parallelism capping: one partition's worth of
# edges must exist per core for the core to contribute.
_GRAIN_EDGES = 4096


@dataclass(frozen=True)
class TimedRun:
    """A run's simulated timing breakdown."""

    total_ms: float
    per_iteration_ms: list[float]
    machine: str

    @property
    def num_iterations(self) -> int:
        return len(self.per_iteration_ms)


class CostModel:
    """Maps counter deltas to simulated milliseconds on one machine.

    ``num_threads`` (default: all cores) caps usable parallelism below
    the machine's core count — for thread-scaling studies where the
    algorithm runs on a subset of the cores.
    """

    def __init__(self, machine: MachineSpec, num_vertices: int,
                 *, num_threads: int | None = None) -> None:
        self.machine = machine
        self.num_vertices = num_vertices
        if num_threads is None:
            num_threads = machine.cores
        if not (1 <= num_threads <= machine.cores):
            raise ValueError(
                f"num_threads must be in [1, {machine.cores}]")
        self.num_threads = num_threads
        working_set = num_vertices * LABEL_BYTES
        p_miss = random_miss_rate(machine, working_set)
        base = (p_miss * machine.dram_latency_cycles
                + (1.0 - p_miss) * machine.llc_hit_cycles)
        self._random_cycles = base / _MLP
        self._dependent_cycles = base / _MLP_DEPENDENT

    def _split_cycles(self, counters: OpCounters) -> tuple[float, float]:
        """(scalable_cycles, contended_cycles) of one round's work."""
        hw = model_hardware_counters(counters, self.machine,
                                     self.num_vertices)
        scalable = (hw.instructions / _IPC
                    + counters.random_accesses * self._random_cycles
                    + counters.sequential_accesses * _STREAM_CYCLES)
        contended = counters.dependent_accesses * self._dependent_cycles
        return scalable, contended

    def iteration_cycles(self, counters: OpCounters) -> float:
        """Serial cycle count of one round's work."""
        scalable, contended = self._split_cycles(counters)
        return scalable + contended

    def iteration_ms(self, counters: OpCounters) -> float:
        """Parallel milliseconds for one round, incl. barrier.

        Gather/stream cycles scale with the machine's effective
        parallelism; dependent (pointer-chasing/CAS) cycles are capped
        at ``_DEPENDENT_PARALLEL_CAP``-way scaling — memory-contended
        union-find traffic does not get faster with 128 cores.
        """
        scalable, contended = self._split_cycles(counters)
        par = min(
            self.machine.effective_parallelism(
                counters.edges_processed + counters.vertex_reads,
                grain=_GRAIN_EDGES),
            max(1.0, self.num_threads
                * self.machine.parallel_efficiency))
        dep_par = min(par, _DEPENDENT_PARALLEL_CAP)
        hz = self.machine.frequency_ghz * 1e9
        compute_ms = (scalable / (hz * par)
                      + contended / (hz * dep_par)) * 1e3
        import math
        barrier_ms = (_BARRIER_US_PER_LOG2_CORE
                      * math.log2(max(self.num_threads, 2)) / 1e3)
        return compute_ms + barrier_ms

    def run_ms(self, trace: RunTrace) -> TimedRun:
        """Time a full run: setup pass + every iteration."""
        per_iter = [self.iteration_ms(rec.counters)
                    for rec in trace.iterations]
        setup_ms = self.iteration_ms(trace.setup_counters)
        return TimedRun(total_ms=setup_ms + sum(per_iter),
                        per_iteration_ms=per_iter,
                        machine=self.machine.name)


def simulate_run_time(trace: RunTrace, machine: MachineSpec,
                      num_vertices: int,
                      *, num_threads: int | None = None) -> TimedRun:
    """Convenience wrapper: simulated run time of a traced run."""
    return CostModel(machine, num_vertices,
                     num_threads=num_threads).run_ms(trace)

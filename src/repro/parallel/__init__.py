"""Simulated parallel runtime: machines, partitions, scheduling, atomics.

This package is the substitution (DESIGN.md Section 2) for the paper's
pthreads/futex/libnuma runtime: deterministic, instrumentable, and
faithful to the visit orders and thread-local structures the paper's
algorithms rely on.
"""

from .atomics import atomic_min, batch_atomic_min, batch_atomic_min_count
from .frontier import AdaptiveFrontier, CountOnlyFrontier, Frontier
from .machine import EPYC, MACHINES, SKYLAKEX, MachineSpec
from .partition import (
    PARTITIONS_PER_THREAD,
    Partitioning,
    edge_balanced_partitions,
    vertex_balanced_partitions,
)
from .scheduler import ScheduleStep, WorkStealingScheduler, pick_steal_victim
from .worklist import LocalWorklists

__all__ = [
    "MachineSpec",
    "SKYLAKEX",
    "EPYC",
    "MACHINES",
    "Partitioning",
    "edge_balanced_partitions",
    "vertex_balanced_partitions",
    "PARTITIONS_PER_THREAD",
    "WorkStealingScheduler",
    "ScheduleStep",
    "pick_steal_victim",
    "Frontier",
    "CountOnlyFrontier",
    "AdaptiveFrontier",
    "atomic_min",
    "batch_atomic_min",
    "batch_atomic_min_count",
    "LocalWorklists",
]

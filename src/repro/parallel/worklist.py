"""Per-thread local worklists with a shared dedup byte array.

Paper Section IV-E: push iterations collect next-frontier vertices into
*thread-local worklists*; a *shared byte array* (written without
atomics) marks vertices already enqueued anywhere.  Races may enqueue a
vertex twice — harmless for correctness, and the paper accepts it.  In
the deterministic simulation there are no real races, so the dedup is
exact; a configurable ``race_rate`` can inject the duplicate-enqueue
behaviour for testing the algorithms' tolerance of it.

Threads drain their own worklist first, then steal whole worklists
from others (ascending own, descending victims — same policy as the
partition scheduler).
"""

from __future__ import annotations

import numpy as np

__all__ = ["LocalWorklists"]


class LocalWorklists:
    """The Section IV-E push-frontier data structure."""

    def __init__(self, num_vertices: int, num_threads: int,
                 *, race_rate: float = 0.0,
                 seed: int | None = 0) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if not (0.0 <= race_rate < 1.0):
            raise ValueError("race_rate must be in [0, 1)")
        self.num_threads = num_threads
        # The shared byte array: 1 = already enqueued somewhere.
        self._enqueued = np.zeros(num_vertices, dtype=np.uint8)
        self._lists: list[list[np.ndarray]] = [[] for _ in range(num_threads)]
        self._race_rate = race_rate
        self._rng = np.random.default_rng(seed)

    def push_batch(self, thread_id: int, vertices: np.ndarray) -> int:
        """Thread ``thread_id`` enqueues vertices not yet marked.

        Returns how many were actually enqueued.  With ``race_rate``
        > 0, a fraction of already-marked vertices is enqueued anyway,
        modelling the unsynchronized byte-array race the paper allows.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return 0
        vertices = np.unique(vertices)
        fresh_mask = self._enqueued[vertices] == 0
        take = vertices[fresh_mask]
        if self._race_rate > 0.0:
            dupes = vertices[~fresh_mask]
            if dupes.size:
                raced = dupes[self._rng.random(dupes.size) < self._race_rate]
                take = np.concatenate([take, raced])
        if take.size == 0:
            return 0
        self._enqueued[take] = 1
        self._lists[thread_id % self.num_threads].append(take)
        return int(take.size)

    def total_enqueued(self) -> int:
        return int(sum(arr.size for lst in self._lists for arr in lst))

    def thread_vertices(self, thread_id: int) -> np.ndarray:
        """All vertices currently queued on one thread."""
        lst = self._lists[thread_id]
        if not lst:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(lst)

    def drain_order(self) -> np.ndarray:
        """Vertices in the order the work-stealing drain visits them.

        Thread t drains its own list front-to-back; the simulated
        drain then interleaves remaining lists in steal order.  May
        contain duplicates if race injection is enabled — consumers
        must tolerate reprocessing, as the paper's algorithm does.
        """
        parts = [self.thread_vertices(t) for t in range(self.num_threads)]
        parts = [p for p in parts if p.size]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def clear(self) -> None:
        """Reset for the next iteration (byte array cleared lazily in
        the real system; eagerly here)."""
        self._enqueued[:] = 0
        self._lists = [[] for _ in range(self.num_threads)]

"""Per-thread local worklists with a shared dedup byte array.

Paper Section IV-E: push iterations collect next-frontier vertices into
*thread-local worklists*; a *shared byte array* (written without
atomics) marks vertices already enqueued anywhere.  Races may enqueue a
vertex twice — harmless for correctness, and the paper accepts it.  In
the deterministic simulation there are no real races, so the dedup is
exact; a configurable ``race_rate`` can inject the duplicate-enqueue
behaviour for testing the algorithms' tolerance of it.

Threads drain their own worklist first (batches front-to-back), then
steal whole batches from others (ascending own, descending victims —
same most-loaded-victim policy as the partition scheduler).
"""

from __future__ import annotations

import heapq

import numpy as np

from .scheduler import pick_steal_victim

__all__ = ["LocalWorklists"]


class LocalWorklists:
    """The Section IV-E push-frontier data structure."""

    def __init__(self, num_vertices: int, num_threads: int,
                 *, race_rate: float = 0.0,
                 seed: int | None = 0) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if not (0.0 <= race_rate < 1.0):
            raise ValueError("race_rate must be in [0, 1)")
        self.num_threads = num_threads
        # The shared byte array: 1 = already enqueued somewhere.
        self._enqueued = np.zeros(num_vertices, dtype=np.uint8)
        self._lists: list[list[np.ndarray]] = [[] for _ in range(num_threads)]
        self._race_rate = race_rate
        self._rng = np.random.default_rng(seed)

    def push_batch(self, thread_id: int, vertices: np.ndarray) -> int:
        """Thread ``thread_id`` enqueues vertices not yet marked.

        Returns how many were actually enqueued.  With ``race_rate``
        > 0, a fraction of already-marked vertices is enqueued anyway,
        modelling the unsynchronized byte-array race the paper allows.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return 0
        vertices = np.unique(vertices)
        fresh_mask = self._enqueued[vertices] == 0
        take = vertices[fresh_mask]
        if self._race_rate > 0.0:
            dupes = vertices[~fresh_mask]
            if dupes.size:
                raced = dupes[self._rng.random(dupes.size) < self._race_rate]
                take = np.concatenate([take, raced])
        if take.size == 0:
            return 0
        self._enqueued[take] = 1
        self._lists[thread_id % self.num_threads].append(take)
        return int(take.size)

    def total_enqueued(self) -> int:
        return int(sum(arr.size for lst in self._lists for arr in lst))

    def thread_vertices(self, thread_id: int) -> np.ndarray:
        """All vertices currently queued on one thread."""
        lst = self._lists[thread_id]
        if not lst:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(lst)

    def thread_batches(self, thread_id: int) -> list[np.ndarray]:
        """One thread's batches in enqueue order (copies).

        Each push chunk that enqueued anything contributed exactly one
        batch, so the batch structure is a simulation observable: tests
        use it to check chunk-to-thread attribution.
        """
        return [arr.copy() for arr in self._lists[thread_id]]

    def drain_order(self) -> np.ndarray:
        """Vertices in the order the work-stealing drain visits them.

        Deterministic replay of the Section IV-E drain: each thread
        consumes its own batches front-to-back; a thread that runs dry
        steals the most-loaded victim's *last* batch (the same victim
        policy as :func:`~repro.parallel.scheduler.pick_steal_victim`,
        minus the NUMA tier — worklists carry no topology), preserving
        the victim's own front-to-back locality.  Batch claims are
        serialized on an event clock (lowest-clock thread claims next,
        ties by thread id), exactly like the partition scheduler.  May
        contain duplicates if race injection is enabled — consumers
        must tolerate reprocessing, as the paper's algorithm does.
        """
        t = self.num_threads
        heads = [0] * t
        tails = [len(lst) for lst in self._lists]
        load = [float(sum(int(a.size) for a in lst))
                for lst in self._lists]
        total = sum(tails)
        if total == 0:
            return np.empty(0, dtype=np.int64)
        clocks: list[tuple[float, int]] = [(0.0, i) for i in range(t)]
        heapq.heapify(clocks)
        out: list[np.ndarray] = []
        while len(out) < total:
            now, thread = heapq.heappop(clocks)
            if heads[thread] < tails[thread]:
                batch = self._lists[thread][heads[thread]]
                heads[thread] += 1
                load[thread] -= float(batch.size)
            else:
                has_work = [heads[v] < tails[v] for v in range(t)]
                victim = pick_steal_victim(thread, has_work, load)
                if victim is None:
                    continue   # nothing left to steal; thread idles out
                tails[victim] -= 1
                batch = self._lists[victim][tails[victim]]
                load[victim] -= float(batch.size)
            out.append(batch)
            heapq.heappush(clocks, (now + float(batch.size), thread))
        return np.concatenate(out)

    def clear(self) -> None:
        """Reset for the next iteration (byte array cleared lazily in
        the real system; eagerly here)."""
        self._enqueued[:] = 0
        self._lists = [[] for _ in range(self.num_threads)]

"""Machine specifications for the simulated parallel runtime.

Table III of the paper: a 2-socket Intel Xeon Gold 6130 (SkylakeX,
32 cores, 2 NUMA nodes) and a 2-socket AMD Epyc 7702 (128 cores,
8 NUMA nodes).  A :class:`MachineSpec` carries everything the cost
model (``repro.instrument.costmodel``) and the scheduler need: core
count, NUMA layout, clock, cache sizes, and memory-system parameters.

The memory parameters are not from the paper; they are textbook
figures for these parts, and only *relative* behaviour matters for the
reproduction (see DESIGN.md Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "SKYLAKEX", "EPYC", "MACHINES"]


@dataclass(frozen=True)
class MachineSpec:
    """A shared-memory machine as seen by the simulator."""

    name: str
    cores: int
    numa_nodes: int
    frequency_ghz: float
    l1_kb_per_core: int
    l2_kb_per_core: int
    l3_mb_per_group: float
    cores_per_l3_group: int
    memory_gb: int
    # Cost-model parameters (cycles); see instrument/costmodel.py.
    dram_latency_cycles: float = 200.0
    llc_hit_cycles: float = 40.0
    l2_hit_cycles: float = 14.0
    l1_hit_cycles: float = 4.0
    # Fraction of peak scaling actually achieved by the graph kernels
    # (memory-bound workloads do not scale linearly with cores).
    parallel_efficiency: float = 0.55

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.numa_nodes < 1 or self.cores % self.numa_nodes:
            raise ValueError("cores must divide evenly across NUMA nodes")
        if not (0 < self.parallel_efficiency <= 1):
            raise ValueError("parallel_efficiency must be in (0, 1]")

    @property
    def cores_per_numa_node(self) -> int:
        return self.cores // self.numa_nodes

    @property
    def total_l3_mb(self) -> float:
        return self.l3_mb_per_group * (self.cores / self.cores_per_l3_group)

    def numa_node_of(self, thread_id: int) -> int:
        """NUMA node hosting a given thread (block assignment)."""
        if not (0 <= thread_id < self.cores):
            raise ValueError(f"thread {thread_id} out of range")
        return thread_id // self.cores_per_numa_node

    def effective_parallelism(self, work_items: int,
                              grain: int = 1) -> float:
        """Usable core count for a task with ``work_items`` units.

        Tiny frontiers cannot occupy every core: parallelism is capped
        by ceil(work/grain), then discounted by ``parallel_efficiency``.
        """
        if work_items <= 0:
            return 1.0
        max_par = min(self.cores, max(1, -(-work_items // max(grain, 1))))
        return max(1.0, max_par * self.parallel_efficiency)


SKYLAKEX = MachineSpec(
    name="SkylakeX",
    cores=32,
    numa_nodes=2,
    frequency_ghz=2.10,
    l1_kb_per_core=32,
    l2_kb_per_core=1024,
    l3_mb_per_group=22.0,
    cores_per_l3_group=16,
    memory_gb=768,
)

EPYC = MachineSpec(
    name="Epyc",
    cores=128,
    numa_nodes=8,
    frequency_ghz=2.0,
    l1_kb_per_core=32,
    l2_kb_per_core=512,
    l3_mb_per_group=16.0,
    cores_per_l3_group=4,
    memory_gb=2048,
    # More cores contending on the same memory system scale worse.
    parallel_efficiency=0.35,
)

MACHINES: dict[str, MachineSpec] = {
    "SkylakeX": SKYLAKEX,
    "Epyc": EPYC,
}

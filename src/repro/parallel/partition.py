"""Edge-balanced vertex partitioning (paper Section V-A).

The paper creates ``32 x #threads`` edge-balanced partitions; thread
``t`` initially owns partitions ``[32t, 32(t+1))``.  Partitions are
contiguous vertex ranges whose edge counts are as equal as possible —
computed here with a single ``searchsorted`` over ``indptr``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["Partitioning", "edge_balanced_partitions",
           "vertex_balanced_partitions", "PARTITIONS_PER_THREAD"]

# The paper's constant: 32 partitions per thread.
PARTITIONS_PER_THREAD = 32


@dataclass(frozen=True)
class Partitioning:
    """Contiguous vertex ranges with near-equal edge counts.

    ``bounds`` has ``num_partitions + 1`` entries; partition ``p``
    covers vertices ``[bounds[p], bounds[p+1])``.
    """

    bounds: np.ndarray
    num_threads: int

    def __post_init__(self) -> None:
        bounds = np.ascontiguousarray(self.bounds, dtype=np.int64)
        if bounds.ndim != 1 or bounds.size < 2:
            raise ValueError("bounds must have at least 2 entries")
        if np.any(np.diff(bounds) < 0) or bounds[0] != 0:
            raise ValueError("bounds must be non-decreasing from 0")
        if self.num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        object.__setattr__(self, "bounds", bounds)

    @property
    def num_partitions(self) -> int:
        return self.bounds.size - 1

    @property
    def num_vertices(self) -> int:
        return int(self.bounds[-1])

    def vertex_range(self, p: int) -> tuple[int, int]:
        return int(self.bounds[p]), int(self.bounds[p + 1])

    def partitions_per_thread(self) -> int:
        return self.num_partitions // self.num_threads

    def owned_by(self, thread_id: int) -> range:
        """Partition ids initially assigned to ``thread_id``."""
        k = self.partitions_per_thread()
        return range(thread_id * k, (thread_id + 1) * k)

    def owner_of(self, p: int) -> int:
        """Thread that initially owns partition ``p``."""
        return p // self.partitions_per_thread()

    def partition_of(self, v: int | np.ndarray) -> int | np.ndarray:
        """Partition whose vertex range contains ``v``.

        Accepts a single vertex id or an array of ids (the push path
        maps whole chunk sequences in one call).  With empty
        partitions several ranges share a boundary; the (unique)
        non-empty one containing each vertex is returned.
        """
        ids = np.asarray(v, dtype=np.int64)
        if ids.size and (int(ids.min()) < 0
                         or int(ids.max()) >= self.num_vertices):
            raise ValueError(f"vertex {v} out of range")
        p = np.searchsorted(self.bounds, ids, side="right") - 1
        p = np.minimum(p, self.num_partitions - 1)
        return p if ids.ndim else int(p)

    def edge_counts(self, graph: CSRGraph) -> np.ndarray:
        """Directed edges per partition."""
        return np.diff(graph.indptr[self.bounds])


def vertex_balanced_partitions(graph: CSRGraph,
                               num_threads: int,
                               partitions_per_thread: int =
                               PARTITIONS_PER_THREAD) -> Partitioning:
    """Equal *vertex* counts per partition — the naive alternative.

    On skewed graphs this concentrates the hubs' edges into a few
    partitions, producing the load imbalance that edge-balanced
    partitioning (the paper's choice) avoids; experiment E7 quantifies
    the difference via the scheduler's makespan.
    """
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    if partitions_per_thread < 1:
        raise ValueError("partitions_per_thread must be >= 1")
    p = num_threads * partitions_per_thread
    bounds = np.linspace(0, graph.num_vertices, p + 1).astype(np.int64)
    return Partitioning(bounds, num_threads)


def edge_balanced_partitions(graph: CSRGraph,
                             num_threads: int,
                             partitions_per_thread: int = PARTITIONS_PER_THREAD
                             ) -> Partitioning:
    """Split vertices into ``num_threads * partitions_per_thread``
    contiguous ranges with near-equal edge counts.

    Each partition boundary is the first vertex whose cumulative edge
    count reaches the ideal share — exactly what a prefix-sum-based
    edge partitioner produces.  A partition may be empty for extremely
    skewed graphs where one vertex holds more than a share of edges.
    """
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    if partitions_per_thread < 1:
        raise ValueError("partitions_per_thread must be >= 1")
    n = graph.num_vertices
    p = num_threads * partitions_per_thread
    targets = (graph.num_edges * np.arange(1, p, dtype=np.float64) / p)
    cut = np.searchsorted(graph.indptr[1:], targets, side="left") + 1
    bounds = np.empty(p + 1, dtype=np.int64)
    bounds[0] = 0
    bounds[1:-1] = np.minimum(cut, n)
    bounds[-1] = n
    np.maximum.accumulate(bounds, out=bounds)
    return Partitioning(bounds, num_threads)

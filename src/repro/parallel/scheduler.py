"""Deterministic work-stealing schedule simulator (paper Section V-A).

The paper's runtime: a thread processes its own partitions in
*ascending* order, then steals from threads on the same NUMA node, and
finally from other NUMA nodes, taking victims' partitions in
*descending* order (to preserve the victim's locality).

Real work stealing is timing-dependent; this simulator replaces wall
time with a deterministic event-driven clock: each thread accumulates
the work (e.g. edge count) of the partitions it claims, and the thread
with the lowest clock claims next (ties broken by thread id).  This
preserves the two properties the algorithms observe:

1. the *visit order* of partitions (each processed exactly once per
   parallel-for), and
2. which thread executes which partition (for thread-local data such
   as per-thread max-degree reductions and local worklists).

Kernels replay the resulting order sequentially, which is what makes
in-place (unified-array) label updates reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .machine import MachineSpec
from .partition import Partitioning

__all__ = ["ScheduleStep", "WorkStealingScheduler", "pick_steal_victim"]


def pick_steal_victim(thief: int, has_work: list[bool],
                      load: list[float],
                      node_of=None) -> int | None:
    """The runtime's victim-selection policy, shared by every stealer.

    Picks the most-loaded peer that still has unclaimed work,
    preferring peers on the thief's NUMA node; ties resolve to the
    lowest id.  ``node_of`` maps a thread id to its NUMA node; when
    omitted (structures without topology, e.g. the push worklists) the
    policy degrades to plain most-loaded-victim.
    """
    thief_node = node_of(thief) if node_of is not None else 0
    best: int | None = None
    best_key: tuple[int, float] = (-1, -1.0)
    for v in range(len(load)):
        if v == thief or not has_work[v]:
            continue
        node = node_of(v) if node_of is not None else 0
        key = (int(node == thief_node), load[v])
        if key > best_key:
            best_key = key
            best = v
    return best


@dataclass(frozen=True)
class ScheduleStep:
    """One simulated unit of work: a thread claiming a partition."""

    thread_id: int
    partition_id: int
    stolen: bool
    start_time: float


class WorkStealingScheduler:
    """Deterministic NUMA-aware work-stealing order.

    Parameters
    ----------
    partitioning:
        Edge-balanced partitioning to execute.
    machine:
        Supplies the NUMA topology used by the victim-selection policy.
    """

    def __init__(self, partitioning: Partitioning,
                 machine: MachineSpec) -> None:
        if partitioning.num_threads > machine.cores:
            raise ValueError(
                f"{partitioning.num_threads} threads exceed "
                f"{machine.cores} cores of {machine.name}")
        self.partitioning = partitioning
        self.machine = machine

    def schedule(self, work: np.ndarray | None = None) -> list[ScheduleStep]:
        """Produce the deterministic claim order.

        ``work[p]`` is the simulated duration of partition ``p``
        (defaults to 1 per partition).  Stealing occurs whenever load
        is imbalanced: a thread that drains its own queue takes the
        *last* unclaimed partition of the most-loaded victim,
        preferring victims on its own NUMA node.
        """
        part = self.partitioning
        t = part.num_threads
        if work is None:
            work = np.ones(part.num_partitions, dtype=np.float64)
        else:
            work = np.asarray(work, dtype=np.float64)
            if work.shape != (part.num_partitions,):
                raise ValueError("work must have one entry per partition")
            if np.any(work < 0):
                raise ValueError("work must be non-negative")
        owned = [list(part.owned_by(i)) for i in range(t)]
        heads = [0] * t                   # own work consumed from front
        tails = [len(q) for q in owned]   # steals consume from the back
        load = [float(work[q].sum()) for q in
                (np.array(o, dtype=np.int64) for o in owned)]
        clocks: list[tuple[float, int]] = [(0.0, i) for i in range(t)]
        heapq.heapify(clocks)
        steps: list[ScheduleStep] = []
        total = part.num_partitions
        while len(steps) < total:
            now, thread = heapq.heappop(clocks)
            if heads[thread] < tails[thread]:
                p = owned[thread][heads[thread]]
                heads[thread] += 1
                load[thread] -= float(work[p])
                stolen = False
            else:
                victim = self._pick_victim(thread, heads, tails, load, t)
                if victim is None:
                    # No work anywhere for this thread; it idles out.
                    continue
                tails[victim] -= 1
                p = owned[victim][tails[victim]]
                load[victim] -= float(work[p])
                stolen = True
            steps.append(ScheduleStep(thread, p, stolen, now))
            heapq.heappush(clocks, (now + float(work[p]), thread))
        return steps

    def _pick_victim(self, thief: int, heads: list[int], tails: list[int],
                     load: list[float], t: int) -> int | None:
        """Most-loaded victim with unclaimed work, same NUMA node first."""
        has_work = [heads[v] < tails[v] for v in range(t)]
        return pick_steal_victim(thief, has_work, load,
                                 self.machine.numa_node_of)

    def partition_order(self, work: np.ndarray | None = None) -> np.ndarray:
        """Partition ids in simulated execution order."""
        return np.array([s.partition_id for s in self.schedule(work)],
                        dtype=np.int64)

    def makespan(self, work: np.ndarray) -> float:
        """Simulated parallel finish time of one parallel-for."""
        steps = self.schedule(work)
        if not steps:
            return 0.0
        work = np.asarray(work, dtype=np.float64)
        return max(s.start_time + float(work[s.partition_id])
                   for s in steps)

"""Atomic-operation emulation for the simulated runtime.

The paper's push traversal uses ``atomic_min`` built on
``compare_and_swap`` (Algorithm 1, line 13): write ``value`` into
``array[i]`` iff it is smaller, and report whether the write happened.

A batch of concurrent atomic-min operations from many threads is
*linearizable*: the final cell value is the min over all attempts, and
an attempt "succeeds" (in the sense that its value ended up visible,
i.e. it lowered the cell below every earlier value) independent of
interleaving only for the overall minimum — but the *set of updated
cells* is interleaving-independent.  ``np.minimum.at`` is an unbuffered
scatter-min, which is exactly the linearized effect of a batch of
CAS-min loops.  :func:`batch_atomic_min` wraps it and reports which
cells changed, which is all the algorithms observe (they use the return
value only to enqueue the target into the next frontier).
"""

from __future__ import annotations

import numpy as np

from ..core.backends import get_backend

__all__ = ["atomic_min", "batch_atomic_min", "batch_atomic_min_count"]


def atomic_min(array: np.ndarray, index: int, value: int) -> bool:
    """Scalar CAS-min: set ``array[index] = min(array[index], value)``.

    Returns True iff the cell was modified — the signal DO-LP uses to
    add the target vertex to the next frontier.
    """
    if value < array[index]:
        array[index] = value
        return True
    return False


def batch_atomic_min(array: np.ndarray,
                     indices: np.ndarray,
                     values: np.ndarray) -> np.ndarray:
    """Linearized batch of concurrent atomic-min operations.

    Applies ``array[indices[k]] = min(array[indices[k]], values[k])``
    for all k as one unbuffered scatter, then returns the *unique*
    target indices whose cells actually changed.  This matches the set
    of vertices any real interleaving of CAS-min loops would enqueue
    (modulo duplicates, which the paper's shared byte array also only
    suppresses best-effort).

    A facade over the default kernel backend; callers holding a
    backend object (the engine, the union-find substrate) dispatch on
    it directly instead.
    """
    return get_backend().batch_atomic_min(array, indices, values)


def batch_atomic_min_count(array: np.ndarray,
                           indices: np.ndarray,
                           values: np.ndarray) -> tuple[np.ndarray, int]:
    """Like :func:`batch_atomic_min`, also counting successful CAS ops.

    The count approximates how many individual ``atomic_min`` calls
    would have returned True in a sequential replay: for each target
    cell, every distinct strictly-decreasing value in arrival order
    would have succeeded once.  We report the linearized lower bound
    (one success per changed cell) plus the number of duplicate
    attempts that carried the winning value, which the counters use
    for instruction accounting.
    """
    return get_backend().batch_atomic_min_count(array, indices, values)

"""Atomic-operation emulation for the simulated runtime.

The paper's push traversal uses ``atomic_min`` built on
``compare_and_swap`` (Algorithm 1, line 13): write ``value`` into
``array[i]`` iff it is smaller, and report whether the write happened.

A batch of concurrent atomic-min operations from many threads is
*linearizable*: the final cell value is the min over all attempts, and
an attempt "succeeds" (in the sense that its value ended up visible,
i.e. it lowered the cell below every earlier value) independent of
interleaving only for the overall minimum — but the *set of updated
cells* is interleaving-independent.  ``np.minimum.at`` is an unbuffered
scatter-min, which is exactly the linearized effect of a batch of
CAS-min loops.  :func:`batch_atomic_min` wraps it and reports which
cells changed, which is all the algorithms observe (they use the return
value only to enqueue the target into the next frontier).
"""

from __future__ import annotations

import numpy as np

__all__ = ["atomic_min", "batch_atomic_min", "batch_atomic_min_count"]


def atomic_min(array: np.ndarray, index: int, value: int) -> bool:
    """Scalar CAS-min: set ``array[index] = min(array[index], value)``.

    Returns True iff the cell was modified — the signal DO-LP uses to
    add the target vertex to the next frontier.
    """
    if value < array[index]:
        array[index] = value
        return True
    return False


def batch_atomic_min(array: np.ndarray,
                     indices: np.ndarray,
                     values: np.ndarray) -> np.ndarray:
    """Linearized batch of concurrent atomic-min operations.

    Applies ``array[indices[k]] = min(array[indices[k]], values[k])``
    for all k as one unbuffered scatter, then returns the *unique*
    target indices whose cells actually changed.  This matches the set
    of vertices any real interleaving of CAS-min loops would enqueue
    (modulo duplicates, which the paper's shared byte array also only
    suppresses best-effort).
    """
    indices = np.asarray(indices)
    values = np.asarray(values)
    if indices.shape != values.shape:
        raise ValueError("indices and values must have equal shapes")
    if indices.size == 0:
        return np.empty(0, dtype=np.int64)
    targets = np.unique(indices)
    before = array[targets].copy()
    np.minimum.at(array, indices, values)
    return targets[array[targets] < before].astype(np.int64)


def batch_atomic_min_count(array: np.ndarray,
                           indices: np.ndarray,
                           values: np.ndarray) -> tuple[np.ndarray, int]:
    """Like :func:`batch_atomic_min`, also counting successful CAS ops.

    The count approximates how many individual ``atomic_min`` calls
    would have returned True in a sequential replay: for each target
    cell, every distinct strictly-decreasing value in arrival order
    would have succeeded once.  We report the linearized lower bound
    (one success per changed cell) plus the number of duplicate
    attempts that carried the winning value, which the counters use
    for instruction accounting.
    """
    changed = batch_atomic_min(array, indices, values)
    if changed.size == 0:
        return changed, 0
    indices = np.asarray(indices)
    values = np.asarray(values)
    # An attempt "carried the winning value" when its value equals the
    # cell's final (minimum) value; restrict to cells that changed so
    # no-op attempts on already-minimal cells are not credited.
    pos = np.searchsorted(changed, indices)
    on_changed = changed[np.minimum(pos, changed.size - 1)] == indices
    winning = values == array[indices]
    return changed, int(np.count_nonzero(on_changed & winning))

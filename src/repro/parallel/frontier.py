"""Frontier data structures (paper Section II).

A frontier represents the active vertex set F.V and the induced active
edge set F.E.  The paper uses three operating modes, all provided here:

* **bitmap** — a boolean array, O(1) set/test, used by dense pull
  iterations that need membership tests;
* **worklist** — an explicit vertex list, used by sparse push
  iterations;
* **count-only** — Thrifty's accelerated pull mode (Section IV-E): no
  per-vertex record is kept, only |F.V| and |F.E| (enough to pick the
  next direction).  A Pull-Frontier iteration is used to materialize a
  real frontier before switching to push.

Density is ``(|F.V| + |F.E|) / |E|`` exactly as in Algorithm 1 line 7.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["Frontier", "CountOnlyFrontier", "AdaptiveFrontier"]


class Frontier:
    """Bitmap-backed frontier with O(active) worklist extraction."""

    def __init__(self, num_vertices: int) -> None:
        self._bitmap = np.zeros(num_vertices, dtype=bool)
        self._num_active = 0
        self._active_edges = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def full(cls, graph: CSRGraph) -> "Frontier":
        """All vertices active — DO-LP's initial frontier."""
        f = cls(graph.num_vertices)
        f._bitmap[:] = True
        f._num_active = graph.num_vertices
        f._active_edges = graph.num_edges
        return f

    @classmethod
    def of_vertices(cls, graph: CSRGraph,
                    vertices: np.ndarray) -> "Frontier":
        f = cls(graph.num_vertices)
        f.set_many(graph, np.asarray(vertices, dtype=np.int64))
        return f

    # -- mutation ---------------------------------------------------------

    def set(self, graph: CSRGraph, v: int) -> None:
        """Activate one vertex (idempotent)."""
        if not self._bitmap[v]:
            self._bitmap[v] = True
            self._num_active += 1
            self._active_edges += graph.degree(v)

    def set_many(self, graph: CSRGraph, vertices: np.ndarray) -> None:
        """Activate a batch of vertices; duplicates and already-active
        entries are ignored."""
        if vertices.size == 0:
            return
        vertices = np.unique(vertices)
        fresh = vertices[~self._bitmap[vertices]]
        if fresh.size == 0:
            return
        self._bitmap[fresh] = True
        self._num_active += int(fresh.size)
        self._active_edges += int(graph.degrees[fresh].sum())

    def reset(self) -> None:
        self._bitmap[:] = False
        self._num_active = 0
        self._active_edges = 0

    # -- queries ----------------------------------------------------------

    @property
    def num_active(self) -> int:
        return self._num_active

    @property
    def num_active_edges(self) -> int:
        return self._active_edges

    def __len__(self) -> int:
        return self._num_active

    def __contains__(self, v: int) -> bool:
        return bool(self._bitmap[v])

    def density(self, graph: CSRGraph) -> float:
        """(|F.V| + |F.E|) / |E| — Algorithm 1, line 7."""
        if graph.num_edges == 0:
            return 0.0
        return (self._num_active + self._active_edges) / graph.num_edges

    def vertices(self) -> np.ndarray:
        """Materialize the worklist (ascending vertex ids)."""
        return np.flatnonzero(self._bitmap).astype(np.int64)

    def bitmap(self) -> np.ndarray:
        """Read-only view of the underlying boolean array."""
        view = self._bitmap.view()
        view.flags.writeable = False
        return view

    def swap(self, other: "Frontier") -> None:
        """Exchange contents with another frontier (Algorithm 1 line 23)."""
        self._bitmap, other._bitmap = other._bitmap, self._bitmap
        self._num_active, other._num_active = \
            other._num_active, self._num_active
        self._active_edges, other._active_edges = \
            other._active_edges, self._active_edges


class AdaptiveFrontier:
    """Frontier with dynamic worklist/bitmap representation switching.

    Section II: "Frontiers may be implemented as worklists ... or as a
    bitmap ... Graph processing systems dynamically switch between
    these representations depending on the density of the frontier."

    Below ``switch_density`` (fraction of vertices active) the
    frontier keeps an explicit sorted worklist (cheap to iterate, no
    O(n) scans); above it, a bitmap (O(1) membership, no duplicate
    concerns).  The representation is visible via :attr:`mode` so the
    cost accounting can charge the right structure, and conversions
    happen at most once per batch of insertions.

    The graph-aware mutators (:meth:`set_many`, :meth:`full`) also
    maintain the induced active edge count, giving the frontier the
    same ``num_active`` / ``num_active_edges`` / ``density`` surface
    as :class:`Frontier` — this is what the LP engine uses.  The
    representation-level :meth:`add` / :meth:`remove` don't know the
    graph and leave the edge count untouched.
    """

    def __init__(self, num_vertices: int,
                 *, switch_density: float = 0.02) -> None:
        if not (0.0 < switch_density <= 1.0):
            raise ValueError("switch_density must be in (0, 1]")
        self._n = num_vertices
        self._switch = switch_density
        self._mode = "worklist"
        self._list: np.ndarray = np.empty(0, dtype=np.int64)
        self._bitmap: np.ndarray | None = None
        self._conversions = 0
        self._active_edges = 0

    @classmethod
    def full(cls, graph: CSRGraph, *,
             switch_density: float = 0.02) -> "AdaptiveFrontier":
        """All vertices active — starts directly in bitmap mode
        (construction, not a switch: ``conversions`` stays 0)."""
        f = cls(graph.num_vertices, switch_density=switch_density)
        f._bitmap = np.ones(graph.num_vertices, dtype=bool)
        f._mode = "bitmap"
        f._active_edges = graph.num_edges
        return f

    @property
    def mode(self) -> str:
        """Current representation: ``"worklist"`` or ``"bitmap"``."""
        return self._mode

    @property
    def conversions(self) -> int:
        """How many representation switches have happened."""
        return self._conversions

    def __len__(self) -> int:
        if self._mode == "worklist":
            return int(self._list.size)
        return int(np.count_nonzero(self._bitmap))

    def __contains__(self, v: int) -> bool:
        if self._mode == "worklist":
            i = int(np.searchsorted(self._list, v))
            return i < self._list.size and int(self._list[i]) == v
        return bool(self._bitmap[v])

    @property
    def num_active(self) -> int:
        return len(self)

    @property
    def num_active_edges(self) -> int:
        """Edges incident to active vertices, as maintained by the
        graph-aware mutators (``set_many`` / ``full``)."""
        return self._active_edges

    def density(self, graph: CSRGraph) -> float:
        """(|F.V| + |F.E|)/|E| — Algorithm 1, line 7."""
        if graph.num_edges == 0:
            return 0.0
        return (len(self) + self._active_edges) / graph.num_edges

    def set_many(self, graph: CSRGraph, vertices: np.ndarray) -> None:
        """Activate a batch, tracking the induced active edges.

        Duplicates and already-active entries are ignored (their edges
        are not double counted); the representation switches if the
        density crosses the threshold.  Same surface as
        :meth:`Frontier.set_many`.
        """
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        if vertices.size == 0:
            return
        if vertices[0] < 0 or vertices[-1] >= self._n:
            raise ValueError("vertex id out of range")
        if self._mode == "worklist":
            keep = ~np.isin(vertices, self._list, assume_unique=True)
            fresh = vertices[keep]
            self._list = np.union1d(self._list, fresh)
        else:
            fresh = vertices[~self._bitmap[vertices]]
            self._bitmap[fresh] = True
        self._active_edges += int(graph.degrees[fresh].sum())
        self._maybe_switch()

    def add(self, vertices: np.ndarray) -> None:
        """Insert a batch; switches representation if density crosses
        the threshold in either direction."""
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        if vertices.size and (vertices[0] < 0
                              or vertices[-1] >= self._n):
            raise ValueError("vertex id out of range")
        if self._mode == "worklist":
            self._list = np.union1d(self._list, vertices)
        else:
            self._bitmap[vertices] = True
        self._maybe_switch()

    def remove(self, vertices: np.ndarray) -> None:
        """Deactivate a batch; ids are range-checked exactly like
        :meth:`add` (a negative id would otherwise index the bitmap
        from the end and corrupt the worklist after a switch)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and (int(vertices.min()) < 0
                              or int(vertices.max()) >= self._n):
            raise ValueError("vertex id out of range")
        if self._mode == "worklist":
            self._list = np.setdiff1d(self._list, vertices,
                                      assume_unique=False)
        else:
            self._bitmap[vertices] = False
        self._maybe_switch()

    def vertices(self) -> np.ndarray:
        """Sorted active vertex ids (either representation)."""
        if self._mode == "worklist":
            return self._list.copy()
        return np.flatnonzero(self._bitmap).astype(np.int64)

    def clear(self) -> None:
        self._list = np.empty(0, dtype=np.int64)
        if self._bitmap is not None:
            self._bitmap[:] = False
        self._mode = "worklist"
        self._active_edges = 0

    def _maybe_switch(self) -> None:
        density = len(self) / max(self._n, 1)
        if self._mode == "worklist" and density > self._switch:
            bitmap = np.zeros(self._n, dtype=bool)
            bitmap[self._list] = True
            self._bitmap = bitmap
            self._list = np.empty(0, dtype=np.int64)
            self._mode = "bitmap"
            self._conversions += 1
        elif self._mode == "bitmap" and density <= self._switch / 2:
            # Hysteresis: convert back only at half the threshold so a
            # frontier hovering at the boundary does not thrash.
            self._list = np.flatnonzero(self._bitmap).astype(np.int64)
            self._bitmap[:] = False
            self._mode = "worklist"
            self._conversions += 1


class CountOnlyFrontier:
    """Thrifty's cheap pull-mode frontier: counts, no membership.

    Supports exactly the operations a non-final pull iteration needs —
    accumulate |F.V| and |F.E|, compute density — without the memory
    traffic of a bitmap or worklist (Section IV-E).
    """

    def __init__(self) -> None:
        self._num_active = 0
        self._active_edges = 0

    def add(self, count: int, edges: int) -> None:
        """Record ``count`` newly-active vertices carrying ``edges``."""
        if count < 0 or edges < 0:
            raise ValueError("counts must be non-negative")
        self._num_active += count
        self._active_edges += edges

    def reset(self) -> None:
        self._num_active = 0
        self._active_edges = 0

    @property
    def num_active(self) -> int:
        return self._num_active

    @property
    def num_active_edges(self) -> int:
        return self._active_edges

    def __len__(self) -> int:
        return self._num_active

    def density(self, graph: CSRGraph) -> float:
        if graph.num_edges == 0:
            return 0.0
        return (self._num_active + self._active_edges) / graph.num_edges

"""Incremental connected components over the touched set.

A converged CC labels array *is* a depth-<=1 union-find forest in
disguise: under the LP minimum convention every final label is the
minimum initial label of its component, and that minimum is carried by
a recoverable representative vertex.  Decoding labels into a parent
array, unioning just the inserted edges with the worklist-local
substrate from PR 3 (:func:`resolve_roots_local` under
:func:`union_edge_batch`), and folding the merge results back into the
labels reproduces — bit for bit — what a from-scratch run of the same
method on the successor graph would return, while touching only the
batch endpoints, their root chains, and (when anything merged) one
vectorized relabel pass.

Method eligibility (:data:`DELTA_METHODS`)
------------------------------------------

* **Identity-initialized methods** (``dolp``, ``unified``, ``sv``,
  ``fastsv``, ``afforest``, ``bfs``): final labels are per-component
  minimum vertex ids.  The representative of label ``L`` is vertex
  ``L`` itself; merges link to the smaller root id.
* **Zero-Planted methods** (``thrifty``): initial labels are
  ``v + 1`` with ``0`` planted on the hub (lowest-id max-degree
  vertex), so the representative of label ``L`` is vertex ``L - 1``
  — except label ``0``, whose representative is the hub.  Merges link
  by the *initial-assignment* priority.  Validity requires the
  successor graph's hub to equal the seed's: insertions change
  degrees, and a moved hub changes the fresh run's initial assignment.
  Callers check :func:`hub_stable` and fall back to recompute.
* **Excluded**: ``jt`` (randomized link priorities make labels
  order-dependent), ``kla``/``lp-shortcut``/``connectit`` (shortcut
  depth / strategy-dependent labels), ``distributed`` (rank-local
  label conventions).

Deletions are not delta-maintainable in a union-find frame (splits
need re-traversal); :func:`repro.graph.mutate.remove_edges` successors
are served by full recompute.

Accounting: every union charge goes through the shared
:func:`charge_union`/:func:`charge_finds` recipe with
``endpoint_reads=2`` (both endpoints gathered from the batch), and the
relabel pass is charged as one sequential scan — so delta costs price
under the same :class:`~repro.instrument.costmodel.CostModel` contract
as full runs.
"""

from __future__ import annotations

import numpy as np

from ..api import ALGORITHMS
from ..baselines.disjoint_set import (charge_finds, charge_union,
                                      resolve_roots_local,
                                      union_edge_batch)
from ..core.labels import LABEL_DTYPE
from ..graph.csr import CSRGraph
from ..graph.mutate import insert_edges, remove_edges
from ..instrument.counters import OpCounters
from ..parallel.machine import SKYLAKEX, MachineSpec
from .delta import DeltaResult, MergeDelta

__all__ = ["DELTA_METHODS", "PLANTED_METHODS", "DeltaIneligible",
           "decode_parent", "delta_update", "hub_stable",
           "IncrementalCC"]

#: Methods whose final labels the delta path reproduces bit-identically.
DELTA_METHODS = frozenset(
    {"thrifty", "dolp", "unified", "sv", "fastsv", "afforest", "bfs"})

#: The subset whose initial assignment depends on the hub vertex.
PLANTED_METHODS = frozenset({"thrifty"})


class DeltaIneligible(ValueError):
    """The labels cannot be delta-maintained for this method/graph."""


def hub_stable(graph: CSRGraph, hub: int) -> bool:
    """True if ``graph``'s Zero-Planting hub is still ``hub``.

    The cheap precondition for planted methods: a fresh run on
    ``graph`` plants at ``graph.max_degree_vertex()``; the delta path
    reproduces labels planted at the seed's hub.
    """
    return graph.num_vertices > 0 and graph.max_degree_vertex() == hub


def _seed_priority(n: int, method: str, hub: int | None) -> np.ndarray | None:
    """Per-vertex link priority = the method's initial label assignment.

    ``None`` for identity methods (link-to-smaller-id, the cheap path
    in :func:`link_roots`, is exactly min-initial-label for them).
    """
    if method not in PLANTED_METHODS:
        return None
    prio = np.arange(1, n + 1, dtype=LABEL_DTYPE)
    prio[hub] = 0
    return prio


def _label_of_roots(roots: np.ndarray, method: str,
                    hub: int | None) -> np.ndarray:
    """Final label carried by each representative (root) vertex."""
    if method not in PLANTED_METHODS:
        return roots.astype(LABEL_DTYPE)
    out = roots.astype(LABEL_DTYPE) + 1
    out[roots == hub] = 0
    return out


def decode_parent(labels: np.ndarray, method: str, *,
                  hub: int | None = None) -> np.ndarray:
    """Decode converged labels into a depth-<=1 parent forest.

    Raises :class:`DeltaIneligible` when the method is not
    delta-eligible or the labels are not a fixpoint of the method's
    convention (e.g. they came from a different graph or a planted run
    with a different hub).
    """
    if method not in DELTA_METHODS:
        raise DeltaIneligible(
            f"method {method!r} is not delta-maintainable; "
            f"eligible: {sorted(DELTA_METHODS)}")
    n = labels.size
    if method in PLANTED_METHODS:
        if hub is None:
            raise DeltaIneligible(
                f"planted method {method!r} needs the seed hub vertex")
        parent = labels.astype(np.int64) - 1
        parent[labels == 0] = hub
    else:
        parent = labels.astype(np.int64, copy=True)
    if n and (int(parent.min()) < 0 or int(parent.max()) >= n):
        raise DeltaIneligible(
            f"labels are not a valid {method!r} fixpoint "
            "(representative out of range)")
    if not np.array_equal(labels[parent], labels):
        raise DeltaIneligible(
            f"labels are not a converged {method!r} fixpoint "
            "(representative carries a different label)")
    return parent


def delta_update(labels: np.ndarray, src, dst, *, method: str = "afforest",
                 hub: int | None = None,
                 counters: OpCounters | None = None) -> DeltaResult:
    """Apply an insertion batch to converged labels; touched-set work.

    ``labels`` must be the converged output of ``method`` on the seed
    graph; ``src``/``dst`` the undirected edges inserted (the
    canonical batch from :func:`repro.graph.mutate.insert_edges`).
    Returns labels bit-identical to a fresh run of ``method`` on the
    successor graph (for planted methods, provided
    :func:`hub_stable` held — callers enforce it).

    When the batch merges nothing, the input labels object is returned
    unchanged (results are immutable by convention, so sharing is
    safe).
    """
    counters = counters if counters is not None else OpCounters()
    eu = np.asarray(src, dtype=np.int64).ravel()
    ev = np.asarray(dst, dtype=np.int64).ravel()
    n = labels.size
    empty = np.empty(0, dtype=LABEL_DTYPE)
    if eu.size == 0:
        return DeltaResult(labels, MergeDelta(empty, empty, 0, 0, 0, 0),
                           counters)
    parent = decode_parent(labels, method, hub=hub)
    priority = _seed_priority(n, method, hub)
    # Representatives whose components the batch touches: parent is
    # depth <= 1 here, so one gather resolves the pre-union roots.
    old_roots = np.unique(parent[np.concatenate((eu, ev))])
    charge_finds(counters, 2 * eu.size)
    links, hops = union_edge_batch(parent, eu, ev, priority=priority)
    charge_union(counters, int(eu.size), links, hops, endpoint_reads=2)
    if links == 0:
        return DeltaResult(labels,
                           MergeDelta(empty, empty, int(eu.size), 0,
                                      hops, 0), counters)
    final_roots, find_hops = resolve_roots_local(parent, old_roots)
    charge_finds(counters, find_hops)
    moved = final_roots != old_roots
    absorbed = _label_of_roots(old_roots[moved], method, hub)
    into = _label_of_roots(final_roots[moved], method, hub)
    # One vectorized relabel pass: labels live in [0, n] across all
    # eligible conventions, so an (n+1)-sized map covers the domain.
    remap = np.arange(n + 1, dtype=LABEL_DTYPE)
    remap[absorbed] = into
    new_labels = remap[labels]
    relabeled = int(np.count_nonzero(new_labels != labels))
    counters.sequential_accesses += 2 * n   # label gather + map read
    counters.label_reads += n
    counters.label_writes += relabeled
    counters.branches += n
    delta = MergeDelta(absorbed, into, int(eu.size), links, hops,
                       relabeled)
    return DeltaResult(new_labels, delta, counters)


class IncrementalCC:
    """Standalone dynamic CC tier: a graph plus live component labels.

    Maintains ``labels`` under batched edge insertions with
    :func:`delta_update`; deletions (and planted-hub moves) fall back
    to a full recompute of the underlying method.  The serving layer
    integrates the same functional core through the result cache
    instead (see :class:`repro.service.CCService`); this class is the
    direct-use front door for a single mutating graph.

    ``counters`` accumulates all incremental work (union charges plus
    relabel passes) across batches; ``recomputes`` counts the
    fallback full runs taken.
    """

    def __init__(self, graph: CSRGraph, *, method: str = "afforest",
                 machine: MachineSpec = SKYLAKEX,
                 dataset: str = "") -> None:
        if method not in DELTA_METHODS:
            raise DeltaIneligible(
                f"method {method!r} is not delta-maintainable; "
                f"eligible: {sorted(DELTA_METHODS)}")
        self.method = method
        self.machine = machine
        self.dataset = dataset
        self.graph = graph
        self.counters = OpCounters()
        self.recomputes = 0
        self.deltas_applied = 0
        self.labels = self._recompute()

    def _recompute(self) -> np.ndarray:
        self.recomputes += 1
        fn = ALGORITHMS[self.method]
        result = fn(self.graph, machine=self.machine,
                    dataset=self.dataset)
        self._hub = (self.graph.max_degree_vertex()
                     if self.method in PLANTED_METHODS
                     and self.graph.num_vertices else None)
        return result.labels

    def insert(self, src, dst) -> MergeDelta | None:
        """Insert an undirected edge batch; returns the merge delta.

        Returns ``None`` when the update forced a full recompute (a
        planted method whose hub moved) — labels are correct either
        way.
        """
        new_graph, lo, hi = insert_edges(self.graph, src, dst)
        if new_graph is self.graph:
            e = np.empty(0, dtype=LABEL_DTYPE)
            return MergeDelta(e, e, 0, 0, 0, 0)
        self.graph = new_graph
        if (self.method in PLANTED_METHODS
                and not hub_stable(new_graph, self._hub)):
            self.labels = self._recompute()
            return None
        outcome = delta_update(self.labels, lo, hi, method=self.method,
                               hub=self._hub, counters=self.counters)
        self.labels = outcome.labels
        self.deltas_applied += 1
        return outcome.delta

    def remove(self, src, dst) -> None:
        """Remove an undirected edge batch; always recomputes."""
        new_graph = remove_edges(self.graph, src, dst)
        if new_graph is self.graph:
            return
        self.graph = new_graph
        self.labels = self._recompute()

    @property
    def num_components(self) -> int:
        return int(np.unique(self.labels).size)

"""Dynamic CC tier: batched edge mutations with delta maintenance.

Converged labels decode into a depth-<=1 union-find forest; inserted
edges union over the touched set (the PR 3 worklist-local substrate);
the merge results fold back into labels bit-identical to a
from-scratch rerun.  See :mod:`repro.incremental.engine` for the
eligibility and accounting contracts, and
:class:`repro.service.CCService.mutate` for the serving integration.
"""

from .delta import DeltaResult, MergeDelta
from .engine import (
    DELTA_METHODS,
    PLANTED_METHODS,
    DeltaIneligible,
    IncrementalCC,
    decode_parent,
    delta_update,
    hub_stable,
)

__all__ = [
    "DELTA_METHODS",
    "PLANTED_METHODS",
    "DeltaIneligible",
    "DeltaResult",
    "IncrementalCC",
    "MergeDelta",
    "decode_parent",
    "delta_update",
    "hub_stable",
]

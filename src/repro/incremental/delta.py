"""Component-merge deltas: what a batch of insertions did to the labels.

The incremental tier's observable output is not a labels array (that
is bit-identical to a from-scratch run, by contract) but the *merge
delta*: which components were absorbed into which.  Downstream
consumers — cache maintenance, change feeds, the serving metrics —
only need this summary, which is O(merges), not O(n).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..instrument.counters import OpCounters

__all__ = ["MergeDelta", "DeltaResult"]


@dataclass(frozen=True)
class MergeDelta:
    """Summary of one applied insertion batch.

    ``absorbed[i]`` is an old component label that no longer exists;
    ``into[i]`` is the label of the component that swallowed it (always
    the minimum label over the merged group, per the LP minimum
    convention — so ``into`` values are themselves surviving labels,
    never absorbed ones).  ``edges`` counts the canonical new
    undirected edges applied, ``links``/``hops`` the union-find work
    they cost (the same quantities :func:`charge_union` charges), and
    ``relabeled`` the vertices whose label actually changed.
    """

    absorbed: np.ndarray
    into: np.ndarray
    edges: int
    links: int
    hops: int
    relabeled: int

    @property
    def num_merges(self) -> int:
        """Distinct components that disappeared."""
        return int(self.absorbed.size)

    def as_dict(self) -> dict:
        """JSON-friendly summary (for CCResult.extras / reports)."""
        return {
            "num_merges": self.num_merges,
            "edges": self.edges,
            "links": self.links,
            "hops": self.hops,
            "relabeled": self.relabeled,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MergeDelta(merges={self.num_merges}, "
                f"edges={self.edges}, relabeled={self.relabeled})")


@dataclass
class DeltaResult:
    """Labels after a delta update, plus the delta and its charged cost.

    ``labels`` is bit-identical to what a from-scratch run of the
    seeding method on the successor graph would return.  ``counters``
    follows the shared union accounting recipe
    (:func:`repro.baselines.disjoint_set.charge_union`), so delta cost
    is apples-to-apples with full runs under the cost model.
    """

    labels: np.ndarray
    delta: MergeDelta
    counters: OpCounters = field(default_factory=OpCounters)

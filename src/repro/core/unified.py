"""DO-LP + Unified Labels Array — the Figures 9/10 ablation variant.

Identical to DO-LP except labels update in place, which (a) removes the
per-iteration synchronization pass and (b) lets labels travel multiple
hops per iteration.  The paper attributes ~65% of Thrifty's improvement
to this single change.
"""

from __future__ import annotations

from dataclasses import replace

from ..graph.csr import CSRGraph
from ..parallel.machine import SKYLAKEX, MachineSpec
from .dolp import DOLP_OPTIONS
from .engine import label_propagation_cc
from .result import CCResult

__all__ = ["UNIFIED_OPTIONS", "unified_dolp_cc"]

#: DO-LP with only the Unified Labels Array optimization enabled.
UNIFIED_OPTIONS = replace(DOLP_OPTIONS, unified_labels=True,
                          algorithm_name="dolp+unified")


def unified_dolp_cc(graph: CSRGraph,
                    *,
                    machine: MachineSpec = SKYLAKEX,
                    num_threads: int | None = None,
                    dataset: str = "",
                    **overrides) -> CCResult:
    """Run the unified-labels DO-LP variant."""
    opts = replace(UNIFIED_OPTIONS, machine=machine,
                   num_threads=num_threads or machine.cores, **overrides)
    return label_propagation_cc(graph, opts, dataset=dataset)

"""The direction-optimizing label-propagation engine.

One engine executes Algorithm 1, Algorithm 2, and every ablation in
between: the four Thrifty optimizations are independent switches in
:class:`LPOptions`.

    DO-LP     = LPOptions(unified_labels=False, zero_convergence=False,
                          zero_planting=False, initial_push=False,
                          threshold=0.05)
    Unified   = DO-LP + unified_labels=True      (Figures 9/10 variant)
    Thrifty   = all four switches on, threshold=0.01

Execution model (DESIGN.md Section 5): the simulated work-stealing
schedule fixes a deterministic partition visit order; with unified
labels the pull commits updates in-place per sub-block of
``block_size`` vertices, so labels propagate multiple hops within one
iteration exactly as the paper's in-place C loops do (at block rather
than single-vertex granularity).  Without unified labels the pull is
double-buffered and block order is irrelevant.

The unified pull has two bit-identical execution strategies:

* ``fuse_pull_blocks=True`` (default) — converged-block-aware: blocks
  whose labels are all zero are skipped in O(1) (Zero Convergence
  lifted to block granularity; a zero block can never change again)
  and runs of consecutive still-active blocks are evaluated with
  speculatively fused kernel calls (:meth:`_Engine._pull_run`).
* ``fuse_pull_blocks=False`` — the reference strategy: one Python
  iteration per block in schedule order.

The push mirrors that structure.  The active worklist is split at
partition boundaries first and only then into ``block_size`` chunks,
so a chunk always lies in exactly one partition and runs on that
partition's owning thread.  Two bit-identical strategies again:

* ``fuse_push=True`` (default) — each thread's chunk sequence is
  evaluated in windows: one fused ``concat_adjacency`` evaluation
  reconstructs the exact sequential per-chunk atomic-min semantics
  of the whole window (per-(target, chunk) group minima + a
  segmented running minimum), and windows whose pushes all fail are
  accounted in bulk without per-chunk Python iterations
  (:meth:`_Engine._push_run`).
* ``fuse_push=False`` — the reference strategy: one Python iteration
  per chunk in worklist order.

Labels, operation counters, iteration traces, worklist drain orders
and per-iteration makespans are identical between the strategies;
only wall-clock time differs.

Detailed frontiers are :class:`AdaptiveFrontier` instances: sparse
frontiers keep an explicit worklist, so a sparse push iterates its
active set directly instead of scanning an n-bit bitmap; dense ones
switch to a bitmap.  The representation and switch count of the
frontier each iteration produces are recorded on its
:class:`IterationRecord` (``frontier_mode``/``frontier_conversions``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters
from ..instrument.trace import Direction, IterationRecord, RunTrace
from ..parallel.frontier import AdaptiveFrontier, CountOnlyFrontier
from ..parallel.machine import SKYLAKEX, MachineSpec
from ..parallel.partition import (
    PARTITIONS_PER_THREAD,
    edge_balanced_partitions,
)
from ..parallel.scheduler import WorkStealingScheduler
from ..parallel.worklist import LocalWorklists
from ..storage.modes import canonical_storage
from .backends import canonical_backend, get_backend
from .labels import identity_labels, zero_planted_labels
from .result import CCResult

__all__ = ["LPOptions", "label_propagation_cc"]


@dataclass(frozen=True)
class LPOptions:
    """Configuration of the label-propagation engine.

    The four booleans are the paper's four optimizations; defaults
    correspond to full Thrifty.  ``fuse_pull_blocks`` selects the
    converged-block-aware pull strategy and ``fuse_push`` the
    windowed fused push strategy (results are bit-identical either
    way; False replays the reference one-Python-iteration-per-
    block/chunk visit, kept for model validation and benchmarking).
    ``frontier_switch_density`` is the worklist→bitmap threshold of
    the engine's adaptive frontiers.  ``backend`` selects the kernel
    backend the run dispatches its hot kernels through (``None`` =
    the canonical ``"numpy"`` backend); every registered backend is
    bit-identical, so it changes wall-clock only.

    ``storage`` selects where the edge array lives (``None`` =
    ``"resident"``; ``"out_of_core"`` spools the graph to a blocked
    on-disk file and streams it through a block cache bounded by
    ``resident_bytes`` — see :mod:`repro.storage`).  Like ``backend``
    it changes only the physical access schedule, never the results:
    labels, counters and traces stay bit-identical, with the fetch
    accounting reported in ``CCResult.extras["io"]``.
    """

    unified_labels: bool = True
    zero_convergence: bool = True
    zero_planting: bool = True
    initial_push: bool = True
    # Thrifty's Section IV-E frontier policy: dense pulls only count
    # active vertices/edges; a Pull-Frontier iteration materializes the
    # frontier just before switching to push.  DO-LP (False) collects a
    # detailed frontier in every pull.
    count_only_pulls: bool = True
    threshold: float = 0.01
    num_threads: int = 32
    machine: MachineSpec = SKYLAKEX
    partitions_per_thread: int = PARTITIONS_PER_THREAD
    block_size: int = 64
    track_convergence: bool = True
    race_rate: float = 0.0
    max_iterations: int = 1_000_000
    fuse_pull_blocks: bool = True
    fuse_push: bool = True
    frontier_switch_density: float = 0.02
    algorithm_name: str = "thrifty"
    backend: str | None = None
    storage: str | None = None
    resident_bytes: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "backend",
                           canonical_backend(self.backend))
        object.__setattr__(self, "storage",
                           canonical_storage(self.storage))
        if self.resident_bytes is not None and self.resident_bytes < 1:
            raise ValueError("resident_bytes must be >= 1")
        if not (0.0 < self.threshold <= 1.0):
            raise ValueError("threshold must be in (0, 1]")
        if self.num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if not (0.0 <= self.race_rate < 1.0):
            raise ValueError("race_rate must be in [0, 1)")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.partitions_per_thread < 1:
            raise ValueError("partitions_per_thread must be >= 1")
        if not (0.0 < self.frontier_switch_density <= 1.0):
            raise ValueError("frontier_switch_density must be in (0, 1]")

    def with_machine(self, machine: MachineSpec,
                     num_threads: int | None = None) -> "LPOptions":
        """Re-target the options at another machine (threads = cores)."""
        return replace(self, machine=machine,
                       num_threads=num_threads or machine.cores)


class _Engine:
    """Mutable run state; one instance per call."""

    def __init__(self, graph: CSRGraph, opts: LPOptions,
                 dataset: str) -> None:
        self.graph = graph
        self.opts = opts
        # The kernel backend every hot call below dispatches through;
        # resolved once per run from the typed option.
        self.kb = get_backend(opts.backend)
        self.n = graph.num_vertices
        self.counters = OpCounters()
        self.trace = RunTrace(algorithm=opts.algorithm_name,
                              dataset=dataset)
        self.snapshots: list[np.ndarray] = []
        self.partitioning = edge_balanced_partitions(
            graph, opts.num_threads, opts.partitions_per_thread)
        self.scheduler = WorkStealingScheduler(self.partitioning,
                                               opts.machine)
        self.partition_order = self.scheduler.partition_order(
            self.partitioning.edge_counts(graph).astype(np.float64))
        # Per-iteration work vector (vertices scanned + edges processed
        # per partition) filled by the traversal methods; record() turns
        # it into the iteration's simulated makespan.
        self._last_work: np.ndarray | None = None
        # Push introspection: the worklists and drain order of the most
        # recent push iteration (simulation observables for tests and
        # analyses; the engine itself only consumes the drained set).
        self.last_worklists: LocalWorklists | None = None
        self.last_drain_order: np.ndarray | None = None
        # Representation of the frontier the current iteration
        # produced, recorded on its IterationRecord by record().
        self._last_frontier_mode = ""
        self._last_frontier_conversions = 0
        # Labels.
        if self.n == 0:
            self.labels = identity_labels(0)
            self.hub = -1
        elif opts.zero_planting:
            self.labels, self.hub = zero_planted_labels(
                graph, self.partitioning, self.counters)
        else:
            self.labels = identity_labels(self.n)
            self.hub = graph.max_degree_vertex()
            self.counters.sequential_accesses += self.n
            self.counters.label_writes += self.n
        self.old_labels = None if opts.unified_labels else self.labels.copy()
        # Unified labels: precompute each block's internal components
        # for block-asynchronous in-iteration propagation (DESIGN.md
        # Section 5 / kernels.intra_block_groups), plus the block and
        # partition->block metadata every pull reuses.  Cached once:
        # the bounds, groups and schedule are iteration-invariant.
        if opts.unified_labels:
            bounds = [0]
            for p in range(self.partitioning.num_partitions):
                lo_p, hi_p = self.partitioning.vertex_range(p)
                for lo in range(lo_p, hi_p, opts.block_size):
                    bounds.append(min(lo + opts.block_size, hi_p))
            if bounds[-1] != self.n:
                bounds.append(self.n)
            self.block_bounds = np.array(sorted(set(bounds)),
                                         dtype=np.int64)
            # Block-provider seam: a streaming graph (out-of-core
            # BlockedGraph) computes its groups with one sequential
            # setup scan instead of a resident edge array; the result
            # is bit-identical (both reach the same canonical
            # min-vertex fixpoint per block).
            groups_provider = getattr(graph, "intra_block_groups", None)
            if groups_provider is not None:
                self.groups = groups_provider(self.block_bounds[1:])
            else:
                self.groups = self.kb.intra_block_groups(
                    graph, self.block_bounds[1:])
            self.block_starts = self.block_bounds[:-1]
            self.block_ends = self.block_bounds[1:]
            self.block_edge_counts = (
                graph.indptr[self.block_ends]
                - graph.indptr[self.block_starts]).astype(np.int64)
            pb = self.partitioning.bounds
            # Blocks never span partitions, so partition p owns the
            # contiguous block index range [part_block_lo[p],
            # part_block_hi[p]) — empty for empty partitions.
            self.part_block_lo = np.searchsorted(self.block_starts,
                                                 pb[:-1], side="left")
            self.part_block_hi = np.searchsorted(self.block_starts,
                                                 pb[1:], side="left")
        else:
            self.block_bounds = None
            self.groups = None

    # -- label access shims ----------------------------------------------

    def _read_array(self) -> np.ndarray:
        """Array a traversal reads: current (unified) or previous."""
        return self.labels if self.opts.unified_labels else self.old_labels

    def _end_iteration_sync(self) -> None:
        """DO-LP's labels synchronization (Algorithm 1 lines 21-22)."""
        if not self.opts.unified_labels:
            self.old_labels[:] = self.labels
            self.counters.record_sync_pass(self.n)

    # -- frontier plumbing -------------------------------------------------

    def _new_frontier(self) -> AdaptiveFrontier:
        return AdaptiveFrontier(
            self.n, switch_density=self.opts.frontier_switch_density)

    def _note_frontier(self, frontier: AdaptiveFrontier | None) -> None:
        """Remember the produced frontier's representation for record()."""
        if frontier is None:
            self._last_frontier_mode = "count-only"
            self._last_frontier_conversions = 0
        else:
            self._last_frontier_mode = frontier.mode
            self._last_frontier_conversions = frontier.conversions

    # -- traversals --------------------------------------------------------

    def initial_push(self) -> AdaptiveFrontier:
        """Thrifty iteration 0: push the hub's label one hop."""
        g = self.graph
        targets = g.neighbors(self.hub).astype(np.int64)
        values = np.full(targets.size, self._read_array()[self.hub],
                         dtype=self.labels.dtype)
        changed = self.kb.batch_atomic_min(self.labels, targets, values)
        self.counters.record_push_scan(int(targets.size), 1)
        self.counters.record_cas_successes(int(changed.size))
        frontier = self._new_frontier()
        frontier.set_many(g, changed)
        self.counters.record_frontier_updates(int(changed.size))
        work = np.zeros(self.partitioning.num_partitions,
                        dtype=np.float64)
        work[self.partitioning.partition_of(self.hub)] = \
            1 + int(targets.size)
        self._last_work = work
        self._end_iteration_sync()
        self._note_frontier(frontier)
        return frontier

    def pull(self, collect_frontier: bool
             ) -> tuple[AdaptiveFrontier | None, CountOnlyFrontier]:
        """One pull iteration over all vertices in schedule order.

        Returns ``(detailed_frontier_or_None, counts)``.  With unified
        labels the commit is in-place per block; otherwise double-
        buffered (block order then has no effect on the result).
        """
        opts = self.opts
        read = self._read_array()
        counts = CountOnlyFrontier()
        detailed = self._new_frontier() if collect_frontier else None
        zero = opts.zero_convergence
        work = np.zeros(self.partitioning.num_partitions,
                        dtype=np.float64)
        # Without unified labels the pull is double-buffered, so block
        # order cannot affect the result: one whole-graph block is both
        # faster and bit-identical.
        if not opts.unified_labels:
            self._pull_whole_graph(read, counts, detailed, zero, work)
        elif opts.fuse_pull_blocks:
            self._pull_blocks_fused(read, counts, detailed, zero, work)
        else:
            self._pull_blocks_sequential(read, counts, detailed, zero,
                                         work)
        self._last_work = work
        self._end_iteration_sync()
        self._note_frontier(detailed)
        return detailed, counts

    def _commit_rows(self, lo: int, new: np.ndarray, changed: np.ndarray,
                     counts: CountOnlyFrontier,
                     detailed: AdaptiveFrontier | None) -> None:
        """Commit one block's improved labels at offset ``lo``."""
        n_changed = int(changed.sum())
        if not n_changed:
            return
        g = self.graph
        rows = lo + np.flatnonzero(changed)
        self.labels[rows] = new[changed]
        self.counters.record_label_commits(n_changed, random=False)
        counts.add(n_changed, int(g.degrees[rows].sum()))
        if detailed is not None:
            detailed.set_many(g, rows)
            self.counters.record_frontier_updates(n_changed)

    def _pull_whole_graph(self, read: np.ndarray,
                          counts: CountOnlyFrontier,
                          detailed: AdaptiveFrontier | None,
                          zero: bool, work: np.ndarray) -> None:
        """Double-buffered pull: one whole-graph vectorized block."""
        g = self.graph
        n = self.n
        pb = self.partitioning.bounds
        if zero:
            skip = read == 0
            scanned = self.kb.zero_cut_scan_lengths(g, read, 0, n, skip)
            edges = int(scanned.sum())
            work += self.kb.blockwise_sums(scanned, pb[:-1], pb[1:])
        else:
            edges = int(g.indptr[n] - g.indptr[0])
            work += np.diff(g.indptr[pb])
        work += np.diff(pb)   # one own-label check per vertex
        new, changed = self.kb.pull_block(g, read, 0, n)
        self.counters.record_pull_scan(edges, n)
        self._commit_rows(0, new, changed, counts, detailed)

    def _pull_blocks_sequential(self, read: np.ndarray,
                                counts: CountOnlyFrontier,
                                detailed: AdaptiveFrontier | None,
                                zero: bool, work: np.ndarray) -> None:
        """Reference unified pull: one Python iteration per block in
        schedule order (the model the fused strategy must match)."""
        g = self.graph
        opts = self.opts
        for p in self.partition_order:
            p = int(p)
            lo_p, hi_p = self.partitioning.vertex_range(p)
            for lo in range(lo_p, hi_p, opts.block_size):
                hi = min(lo + opts.block_size, hi_p)
                if zero:
                    skip = read[lo:hi] == 0
                    scanned = self.kb.zero_cut_scan_lengths(g, read,
                                                            lo, hi, skip)
                    edges = int(scanned.sum())
                else:
                    edges = int(g.indptr[hi] - g.indptr[lo])
                new, _ = self.kb.pull_block(g, read, lo, hi)
                # Block-async: a thread's sequential sweep floods
                # each internal component within the iteration.
                new = self.kb.block_async_min(new, self.groups[lo:hi] - lo)
                changed = new < read[lo:hi]
                self.counters.record_pull_scan(edges, hi - lo)
                work[p] += edges + (hi - lo)
                self._commit_rows(lo, new, changed, counts, detailed)

    def _pull_blocks_fused(self, read: np.ndarray,
                           counts: CountOnlyFrontier,
                           detailed: AdaptiveFrontier | None,
                           zero: bool, work: np.ndarray) -> None:
        """Converged-block-aware unified pull (DESIGN.md Section 5).

        An all-zero block can never change again — labels only
        decrease and zero is the global minimum — and a visit would
        record a fixed per-vertex counter delta, so such blocks are
        skipped without entering Python and accounted in one bulk
        call.  Partitions with no live block cost zero Python
        iterations.  Runs of consecutive live blocks go through
        :meth:`_pull_run`; everything observable (labels, counters,
        traces) is bit-identical to the sequential strategy.
        """
        part = self.partitioning
        bs_, be_ = self.block_starts, self.block_ends
        nonzero = read != 0
        blk_live = self.kb.blockwise_sums(nonzero, bs_, be_) > 0
        # Bulk-account every converged block: per-vertex own-label
        # checks, plus the full edge scan when Zero Convergence is off
        # (with it on, a zero row's scan length is exactly 0).
        nv_skip = int((be_ - bs_)[~blk_live].sum())
        if zero:
            if nv_skip:
                self.counters.record_pull_skip(nv_skip)
        else:
            skip_edges = np.where(blk_live, 0, self.block_edge_counts)
            e_skip = int(skip_edges.sum())
            if nv_skip or e_skip:
                self.counters.record_pull_skip(nv_skip, e_skip)
            work += self.kb.blockwise_sums(skip_edges, self.part_block_lo,
                                           self.part_block_hi)
        work += np.diff(part.bounds)   # one own-label check per vertex
        live_parts = self.kb.blockwise_sums(nonzero, part.bounds[:-1],
                                            part.bounds[1:]) > 0
        for p in self.partition_order[live_parts[self.partition_order]]:
            p = int(p)
            b0, b1 = int(self.part_block_lo[p]), int(self.part_block_hi[p])
            live = np.flatnonzero(blk_live[b0:b1]) + b0
            breaks = np.flatnonzero(np.diff(live) > 1) + 1
            run_edges = 0
            start = 0
            for stop in [*breaks.tolist(), live.size]:
                run_edges += self._pull_run(int(live[start]),
                                            int(live[stop - 1]) + 1,
                                            read, counts, detailed, zero)
                start = stop
            work[p] += run_edges

    def _pull_run(self, bi0: int, bi1: int, read: np.ndarray,
                  counts: CountOnlyFrontier, detailed: AdaptiveFrontier | None,
                  zero: bool) -> int:
        """Fused pull over the consecutive live blocks with indices
        ``[bi0, bi1)``; returns the edges scanned.

        Speculation keeps the in-place sequential semantics exact: a
        fused Jacobi + block-async evaluation of a window of blocks
        from the current labels is valid up to and including the
        *first* block that improves (every earlier block commits
        nothing, so a sequential visit would have read the same
        snapshot).  That block is committed and the evaluation resumes
        after it.  The window doubles after every clean evaluation and
        resets to one block after a commit, so densely-changing runs
        cost per-block work while a fully-converged run — the common
        case once zero labels have flooded the graph — costs one pass
        over its edges in O(log blocks) fused evaluations.
        """
        g = self.graph
        bs_, be_ = self.block_starts, self.block_ends
        edges_total = 0
        bi = bi0
        window = 1
        while bi < bi1:
            wend = min(bi + window, bi1)
            lo, whi = int(bs_[bi]), int(be_[wend - 1])
            new, _ = self.kb.pull_block(g, read, lo, whi)
            new = self.kb.block_async_min(new, self.groups[lo:whi] - lo)
            changed = new < read[lo:whi]
            if not changed.any():
                fb = -1
                cut = whi
            elif window == 1:
                fb, flo, cut = bi, lo, whi
            else:
                first = lo + int(np.argmax(changed))
                fb = int(np.searchsorted(bs_, first, side="right")) - 1
                flo, cut = int(bs_[fb]), int(be_[fb])
            if zero:
                scanned = self.kb.zero_cut_scan_lengths(g, read, lo, cut,
                                                        read[lo:cut] == 0)
                edges = int(scanned.sum())
            else:
                edges = int(g.indptr[cut] - g.indptr[lo])
            self.counters.record_pull_scan(edges, cut - lo)
            edges_total += edges
            if fb >= 0:
                self._commit_rows(flo, new[flo - lo:cut - lo],
                                  changed[flo - lo:cut - lo],
                                  counts, detailed)
                bi = fb + 1
                window = 1
            else:
                bi = wend
                window *= 2
        return edges_total

    def push(self, frontier) -> AdaptiveFrontier:
        """One push iteration from a detailed frontier.

        Frontier vertices are drained through the per-thread local
        worklists in chunks: the active worklist is split at
        *partition boundaries* first, then into ``block_size`` pieces
        within each partition, so every chunk lies in exactly one
        partition and runs on the thread that owns it under the
        scheduler's edge-balanced initial assignment
        (:meth:`Partitioning.owner_of`).  With unified labels each
        chunk reads the labels as updated by earlier chunks.

        ``fuse_push`` selects between the per-chunk reference loop
        and the windowed speculative fused strategy; labels,
        counters, worklists, drain order and the per-partition work
        vector are bit-identical either way.
        """
        g = self.graph
        opts = self.opts
        part = self.partitioning
        active = frontier.vertices()
        self.counters.sequential_accesses += int(active.size)
        worklists = LocalWorklists(self.n, opts.num_threads,
                                   race_rate=opts.race_rate)
        work = np.zeros(part.num_partitions, dtype=np.float64)
        read = self._read_array()
        if active.size:
            # Offsets into `active` where a new partition begins;
            # chunks never straddle them (partitions are contiguous
            # vertex ranges and `active` is sorted).
            seg = np.unique(np.searchsorted(active, part.bounds))
            cuts = self.kb.chunked_cuts(seg, opts.block_size)
            chunk_part = part.partition_of(active[cuts[:-1]])
            if opts.fuse_push:
                self._push_chunks_fused(active, cuts, chunk_part, read,
                                        worklists, work)
            else:
                self._push_chunks_sequential(active, cuts, chunk_part,
                                             read, worklists, work)
        self._last_work = work
        self._end_iteration_sync()
        self.last_worklists = worklists
        self.last_drain_order = worklists.drain_order()
        new_frontier = self._new_frontier()
        new_frontier.set_many(g, self.last_drain_order)
        self._note_frontier(new_frontier)
        return new_frontier

    def _push_chunks_sequential(self, active: np.ndarray,
                                cuts: np.ndarray, chunk_part: np.ndarray,
                                read: np.ndarray,
                                worklists: LocalWorklists,
                                work: np.ndarray) -> None:
        """Reference push: one Python iteration per chunk in worklist
        order (the model the fused strategy must match)."""
        g = self.graph
        part = self.partitioning
        for i in range(chunk_part.size):
            chunk = active[cuts[i]:cuts[i + 1]]
            p = int(chunk_part[i])
            targets, deg = self.kb.concat_adjacency(g, chunk)
            work[p] += int(chunk.size) + int(targets.size)
            if targets.size == 0:
                self.counters.record_push_scan(0, int(chunk.size))
                continue
            values = np.repeat(read[chunk], deg)
            changed = self.kb.batch_atomic_min(
                self.labels, targets.astype(np.int64), values)
            self.counters.record_push_scan(int(targets.size),
                                           int(chunk.size))
            self.counters.record_cas_successes(int(changed.size))
            if changed.size:
                owner = part.owner_of(p)   # chunk's simulated thread
                enq = worklists.push_batch(int(owner), changed)
                self.counters.record_frontier_updates(enq)

    def _push_chunks_fused(self, active: np.ndarray, cuts: np.ndarray,
                           chunk_part: np.ndarray, read: np.ndarray,
                           worklists: LocalWorklists,
                           work: np.ndarray) -> None:
        """Fused push (DESIGN.md Section 5): chunks grouped per owning
        thread, each thread's sequence evaluated by :meth:`_push_run`
        with windowed speculative fused kernel calls."""
        part = self.partitioning
        owners = chunk_part // part.partitions_per_thread()
        vert_counts = np.diff(cuts)
        edge_counts = self.kb.push_scan_lengths(self.graph, active,
                                                cuts[:-1], cuts[1:])
        chunk_work = (vert_counts + edge_counts).astype(np.float64)
        run_ends = np.flatnonzero(np.diff(owners)) + 1
        bounds = [0, *run_ends.tolist(), int(owners.size)]
        for r0, r1 in zip(bounds[:-1], bounds[1:]):
            self._push_run(r0, r1, active, cuts, chunk_part, chunk_work,
                           vert_counts, edge_counts, read, worklists,
                           work)

    def _push_run(self, ci0: int, ci1: int, active: np.ndarray,
                  cuts: np.ndarray, chunk_part: np.ndarray,
                  chunk_work: np.ndarray, vert_counts: np.ndarray,
                  edge_counts: np.ndarray, read: np.ndarray,
                  worklists: LocalWorklists, work: np.ndarray) -> None:
        """Windowed speculative fused push over one thread's chunk
        sequence ``[ci0, ci1)``.

        One fused evaluation reconstructs the *exact* sequential
        semantics of a whole window of chunks.  For every (target,
        chunk) pair the group minimum of the pushed values is taken
        (``batch_atomic_min`` compares each chunk's values against
        the label *before* the chunk, so only group minima matter); a
        segmented running minimum over each target's groups in chunk
        order then marks precisely the chunks whose group minimum
        strictly improves on the target's running label — the same
        changed-target sets, in the same chunk order, that per-chunk
        ``batch_atomic_min`` calls would return.  Labels commit in
        one scatter-min, and each changed set is enqueued as its own
        worklist batch in chunk order, keeping batch structure, rng
        draws and counters bit-identical to the reference.

        The one remaining hazard is the read side: when the read
        array is the live labels array (unified labels), a chunk
        whose *row* an earlier window chunk lowered would push
        different values than the evaluation assumed.  The window
        commits only up to the first such chunk and re-evaluates
        after it.  Labels only decrease, so no other hazard exists —
        a snapshot-non-improving edge can never turn improving
        through a target write.  The window doubles when consumed
        whole and resets after a stall, so converged sequences and
        densely-updating frontiers (wavefronts) alike cost O(log
        chunks) fused evaluations instead of per-chunk Python.
        """
        g = self.graph
        part = self.partitioning
        live_rows = read is self.labels
        owner = int(part.owner_of(int(chunk_part[ci0])))
        # Labels live in [0, n): n is a safe "+infinity" and n + 1 a
        # safe per-segment offset for the running-minimum trick below.
        inf_label = np.int64(self.n)
        big = np.int64(self.n + 1)
        ci = ci0
        window = 1
        while ci < ci1:
            wend = min(ci + window, ci1)
            rows = active[cuts[ci]:cuts[wend]]
            targets, values, _, improving = self.kb.fused_push_window(
                g, read, self.labels, rows)
            if not improving.any():
                # Clean window: nothing commits; bulk-account it.
                self._account_clean_chunks(ci, wend, chunk_part,
                                           chunk_work, vert_counts,
                                           edge_counts, work)
                ci = wend
                window *= 2
                continue
            nw = wend - ci
            edge_chunk = np.repeat(np.arange(nw), edge_counts[ci:wend])
            # Group improving edges by (target, chunk) and reduce each
            # group to its minimum pushed value.  Non-improving edges
            # can never change a cell (labels only decrease), so they
            # are dropped up front.
            it = targets[improving].astype(np.int64)
            ic = edge_chunk[improving]
            iv = values[improving]
            order = np.lexsort((ic, it))
            st, sc, sv = it[order], ic[order], iv[order]
            grp = np.empty(st.size, dtype=bool)
            grp[0] = True
            grp[1:] = (st[1:] != st[:-1]) | (sc[1:] != sc[:-1])
            gs = np.flatnonzero(grp)
            m = np.minimum.reduceat(sv, gs)
            gt, gc = st[gs], sc[gs]
            # Segmented exclusive running minimum per target: shift
            # each target's groups into a disjoint value band so one
            # global accumulate cannot leak across targets.
            tnew = np.empty(gs.size, dtype=bool)
            tnew[0] = True
            tnew[1:] = gt[1:] != gt[:-1]
            seg = np.cumsum(tnew) - 1
            run = np.minimum.accumulate(m - seg * big) + seg * big
            excl = np.empty_like(run)
            excl[1:] = run[:-1]
            excl[tnew] = inf_label
            # A group changes its target iff its minimum beats the
            # label the target had entering the chunk: the snapshot
            # label before the target's first group, the running
            # window minimum after it.
            changed_grp = m < np.minimum(self.labels[gt], excl)
            # Read-side hazard: first chunk one of whose rows an
            # earlier chunk changed.  Chunk 0 has no earlier chunks,
            # so s >= 1: progress is guaranteed.
            s = nw
            if live_rows:
                cgt, cgc = gt[changed_grp], gc[changed_grp]
                pool = np.unique(np.concatenate([cgt, rows]))
                first_changed = np.full(pool.size, nw, dtype=np.int64)
                np.minimum.at(first_changed,
                              np.searchsorted(pool, cgt), cgc)
                row_chunk = np.repeat(np.arange(nw),
                                      vert_counts[ci:wend])
                stale_r = first_changed[
                    np.searchsorted(pool, rows)] < row_chunk
                if stale_r.any():
                    s = int(row_chunk[stale_r].min())
            commit_edge = improving & (edge_chunk < s)
            np.minimum.at(self.labels,
                          targets[commit_edge].astype(np.int64),
                          values[commit_edge])
            sel = changed_grp & (gc < s)
            total_changed = int(np.count_nonzero(sel))
            if total_changed:
                bt, bc = gt[sel], gc[sel]
                order2 = np.lexsort((bt, bc))
                bt, bc = bt[order2], bc[order2]
                jlist = np.unique(bc)
                lo = np.searchsorted(bc, jlist)
                hi = np.searchsorted(bc, jlist, side="right")
                for b0, b1 in zip(lo.tolist(), hi.tolist()):
                    # bt[b0:b1] is this chunk's changed-target set,
                    # already sorted and unique — exactly what
                    # batch_atomic_min would have returned.
                    enq = worklists.push_batch(owner, bt[b0:b1])
                    self.counters.record_frontier_updates(enq)
            self.counters.record_push_scan(
                int(edge_counts[ci:ci + s].sum()),
                int(vert_counts[ci:ci + s].sum()))
            self.counters.record_cas_successes(total_changed)
            np.add.at(work, chunk_part[ci:ci + s], chunk_work[ci:ci + s])
            ci += s
            window = window * 2 if s == nw else 1

    def _account_clean_chunks(self, ci: int, cj: int,
                              chunk_part: np.ndarray,
                              chunk_work: np.ndarray,
                              vert_counts: np.ndarray,
                              edge_counts: np.ndarray,
                              work: np.ndarray) -> None:
        """Bulk accounting for chunks ``[ci, cj)`` whose pushes all
        fail: counters are additive, so one ``record_push_skip`` and
        one scatter-add onto the work vector are bit-identical to the
        per-chunk visits they replace."""
        self.counters.record_push_skip(int(edge_counts[ci:cj].sum()),
                                       int(vert_counts[ci:cj].sum()))
        np.add.at(work, chunk_part[ci:cj], chunk_work[ci:cj])

    # -- bookkeeping -------------------------------------------------------

    def record(self, direction: Direction, density: float,
               active_v: int, active_e: int, changed: int,
               before: OpCounters) -> None:
        delta = self.counters - before
        delta.iterations = 1
        makespan = 0.0
        if self._last_work is not None:
            makespan = self.scheduler.makespan(self._last_work)
            self._last_work = None
        self.trace.add(IterationRecord(
            index=self.trace.num_iterations,
            direction=direction,
            density=density,
            active_vertices=active_v,
            active_edges=active_e,
            changed_vertices=changed,
            converged_fraction=0.0,   # filled post-hoc
            counters=delta,
            makespan=makespan,
            frontier_mode=self._last_frontier_mode,
            frontier_conversions=self._last_frontier_conversions,
        ))
        self._last_frontier_mode = ""
        self._last_frontier_conversions = 0
        if self.opts.track_convergence:
            self.snapshots.append(self.labels.astype(np.int64, copy=True))

    def finalize(self) -> CCResult:
        if self.opts.track_convergence and self.snapshots:
            final = self.labels
            for rec, snap in zip(self.trace.iterations, self.snapshots):
                rec.converged_fraction = float(
                    np.count_nonzero(snap == final) / max(self.n, 1))
        return CCResult(labels=self.labels.copy(), trace=self.trace)


def label_propagation_cc(graph: CSRGraph,
                         opts: LPOptions | None = None,
                         *, dataset: str = "") -> CCResult:
    """Run the configured LP algorithm to convergence.

    The returned :class:`CCResult` carries the full per-iteration
    trace; all evaluation artifacts are derived from it.

    Storage dispatch: a graph that is already block-streamed (an
    out-of-core :class:`repro.storage.BlockedGraph`) runs natively
    through its block cache; a resident graph with
    ``opts.storage == "out_of_core"`` is first spooled to a temporary
    blocked file so the whole run — including this simulated case —
    pays honest fetch accounting.  Either way the run is bit-identical
    to the resident engine and ``extras["io"]`` reports the block
    fetches, bytes and modeled disk milliseconds.
    """
    opts = opts or LPOptions()
    if opts.storage == "out_of_core" and not hasattr(graph, "io_snapshot"):
        import shutil
        import tempfile
        # Local import: repro.storage is a leaf dependency the resident
        # path never needs at call time.
        from ..storage import (DEFAULT_EDGES_PER_BLOCK, BlockedGraph,
                               write_blocked)
        tmpdir = tempfile.mkdtemp(prefix="repro-out-of-core-")
        try:
            path = f"{tmpdir}/graph.rbcsr"
            # Size blocks off the budget so at least ~8 fit resident;
            # a single block larger than the whole budget would defeat
            # the cache bound.
            edges_per_block = DEFAULT_EDGES_PER_BLOCK
            if opts.resident_bytes is not None:
                itemsize = graph.indices.dtype.itemsize
                edges_per_block = max(
                    1, min(edges_per_block,
                           opts.resident_bytes // (8 * itemsize)))
            write_blocked(graph, path, edges_per_block=edges_per_block)
            blocked = BlockedGraph.open(
                path, resident_bytes=opts.resident_bytes)
            try:
                return _streamed_run(blocked, opts, dataset)
            finally:
                blocked.close()
        finally:
            shutil.rmtree(tmpdir, ignore_errors=True)
    if hasattr(graph, "io_snapshot"):
        return _streamed_run(graph, opts, dataset)
    return _label_propagation_run(graph, opts, dataset)


def _streamed_run(graph, opts: LPOptions, dataset: str) -> CCResult:
    """Run on a blocked graph, attaching the IO delta to the result."""
    snapshot = graph.io_snapshot()
    result = _label_propagation_run(graph, opts, dataset)
    result.extras["io"] = graph.io_record(since=snapshot)
    return result


def _label_propagation_run(graph: CSRGraph, opts: LPOptions,
                           dataset: str) -> CCResult:
    eng = _Engine(graph, opts, dataset)
    eng.trace.setup_counters = eng.counters.copy()
    n = eng.n
    if n == 0:
        return eng.finalize()
    g = graph

    # --- iteration 0 -----------------------------------------------------
    detailed: AdaptiveFrontier | None
    counts: CountOnlyFrontier | None
    if opts.initial_push:
        before = eng.counters.copy()
        hub_deg = g.degree(eng.hub)
        density = ((1 + hub_deg) / g.num_edges) if g.num_edges else 0.0
        detailed = eng.initial_push()
        eng.record(Direction.INITIAL_PUSH, density, 1, hub_deg,
                   detailed.num_active, before)
        # Iteration 1 is always a full pull (Table VI): it is what
        # seeds label comparison for every vertex outside the hub's
        # component — without it a sparse post-push frontier could
        # drain before other components ever propagate.
        before = eng.counters.copy()
        density = detailed.density(g)
        active_v, active_e = detailed.num_active, detailed.num_active_edges
        collect = not opts.count_only_pulls
        new_detailed, new_counts = eng.pull(collect_frontier=collect)
        eng.record(Direction.PULL, density, active_v, active_e,
                   new_counts.num_active, before)
        if collect:
            detailed, counts = new_detailed, None
        else:
            detailed, counts = None, new_counts
    else:
        # DO-LP bootstrap: everything active.
        detailed = AdaptiveFrontier.full(
            g, switch_density=opts.frontier_switch_density)
        counts = None

    # --- main loop ---------------------------------------------------------
    while eng.trace.num_iterations < opts.max_iterations:
        if detailed is not None:
            density = detailed.density(g)
            active_v = detailed.num_active
            active_e = detailed.num_active_edges
        else:
            density = counts.density(g)
            active_v = counts.num_active
            active_e = counts.num_active_edges
        if active_v == 0:
            break
        before = eng.counters.copy()
        if density < opts.threshold:
            if detailed is None:
                # Pull-Frontier: materialize the frontier first.
                new_detailed, new_counts = eng.pull(collect_frontier=True)
                eng.record(Direction.PULL_FRONTIER, density, active_v,
                           active_e, new_detailed.num_active, before)
                detailed, counts = new_detailed, None
            else:
                new_frontier = eng.push(detailed)
                eng.record(Direction.PUSH, density, active_v, active_e,
                           new_frontier.num_active, before)
                detailed, counts = new_frontier, None
        else:
            collect = not opts.count_only_pulls
            new_detailed, new_counts = eng.pull(collect_frontier=collect)
            eng.record(Direction.PULL, density, active_v, active_e,
                       new_counts.num_active, before)
            if collect:
                detailed, counts = new_detailed, None
            else:
                detailed, counts = None, new_counts
    else:
        raise RuntimeError(
            f"{opts.algorithm_name} exceeded max_iterations="
            f"{opts.max_iterations}; graph or options are pathological")

    return eng.finalize()

"""The direction-optimizing label-propagation engine.

One engine executes Algorithm 1, Algorithm 2, and every ablation in
between: the four Thrifty optimizations are independent switches in
:class:`LPOptions`.

    DO-LP     = LPOptions(unified_labels=False, zero_convergence=False,
                          zero_planting=False, initial_push=False,
                          threshold=0.05)
    Unified   = DO-LP + unified_labels=True      (Figures 9/10 variant)
    Thrifty   = all four switches on, threshold=0.01

Execution model (DESIGN.md Section 5): the simulated work-stealing
schedule fixes a deterministic partition visit order; with unified
labels the pull commits updates in-place per sub-block of
``block_size`` vertices, so labels propagate multiple hops within one
iteration exactly as the paper's in-place C loops do (at block rather
than single-vertex granularity).  Without unified labels the pull is
double-buffered and block order is irrelevant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters
from ..instrument.trace import Direction, IterationRecord, RunTrace
from ..parallel.atomics import batch_atomic_min
from ..parallel.frontier import CountOnlyFrontier, Frontier
from ..parallel.machine import SKYLAKEX, MachineSpec
from ..parallel.partition import (
    PARTITIONS_PER_THREAD,
    edge_balanced_partitions,
)
from ..parallel.scheduler import WorkStealingScheduler
from ..parallel.worklist import LocalWorklists
from .kernels import (
    block_async_min,
    concat_adjacency,
    intra_block_groups,
    pull_block,
    zero_cut_scan_lengths,
)
from .labels import identity_labels, zero_planted_labels
from .result import CCResult

__all__ = ["LPOptions", "label_propagation_cc"]


@dataclass(frozen=True)
class LPOptions:
    """Configuration of the label-propagation engine.

    The four booleans are the paper's four optimizations; defaults
    correspond to full Thrifty.
    """

    unified_labels: bool = True
    zero_convergence: bool = True
    zero_planting: bool = True
    initial_push: bool = True
    # Thrifty's Section IV-E frontier policy: dense pulls only count
    # active vertices/edges; a Pull-Frontier iteration materializes the
    # frontier just before switching to push.  DO-LP (False) collects a
    # detailed frontier in every pull.
    count_only_pulls: bool = True
    threshold: float = 0.01
    num_threads: int = 32
    machine: MachineSpec = SKYLAKEX
    partitions_per_thread: int = PARTITIONS_PER_THREAD
    block_size: int = 64
    track_convergence: bool = True
    race_rate: float = 0.0
    max_iterations: int = 1_000_000
    algorithm_name: str = "thrifty"

    def __post_init__(self) -> None:
        if not (0.0 < self.threshold <= 1.0):
            raise ValueError("threshold must be in (0, 1]")
        if self.num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")

    def with_machine(self, machine: MachineSpec,
                     num_threads: int | None = None) -> "LPOptions":
        """Re-target the options at another machine (threads = cores)."""
        return replace(self, machine=machine,
                       num_threads=num_threads or machine.cores)


class _Engine:
    """Mutable run state; one instance per call."""

    def __init__(self, graph: CSRGraph, opts: LPOptions,
                 dataset: str) -> None:
        self.graph = graph
        self.opts = opts
        self.n = graph.num_vertices
        self.counters = OpCounters()
        self.trace = RunTrace(algorithm=opts.algorithm_name,
                              dataset=dataset)
        self.snapshots: list[np.ndarray] = []
        self.partitioning = edge_balanced_partitions(
            graph, opts.num_threads, opts.partitions_per_thread)
        scheduler = WorkStealingScheduler(self.partitioning, opts.machine)
        self.partition_order = scheduler.partition_order(
            self.partitioning.edge_counts(graph).astype(np.float64))
        # Labels.
        if self.n == 0:
            self.labels = identity_labels(0)
            self.hub = -1
        elif opts.zero_planting:
            self.labels, self.hub = zero_planted_labels(
                graph, self.partitioning, self.counters)
        else:
            self.labels = identity_labels(self.n)
            self.hub = graph.max_degree_vertex()
            self.counters.sequential_accesses += self.n
            self.counters.label_writes += self.n
        self.old_labels = None if opts.unified_labels else self.labels.copy()
        # Unified labels: precompute each block's internal components
        # for block-asynchronous in-iteration propagation (DESIGN.md
        # Section 5 / kernels.intra_block_groups).
        if opts.unified_labels:
            bounds = [0]
            for p in range(self.partitioning.num_partitions):
                lo_p, hi_p = self.partitioning.vertex_range(p)
                for lo in range(lo_p, hi_p, opts.block_size):
                    bounds.append(min(lo + opts.block_size, hi_p))
            if bounds[-1] != self.n:
                bounds.append(self.n)
            self.block_bounds = np.array(sorted(set(bounds)),
                                         dtype=np.int64)
            self.groups = intra_block_groups(graph, self.block_bounds[1:])
        else:
            self.block_bounds = None
            self.groups = None

    # -- label access shims ----------------------------------------------

    def _read_array(self) -> np.ndarray:
        """Array a traversal reads: current (unified) or previous."""
        return self.labels if self.opts.unified_labels else self.old_labels

    def _end_iteration_sync(self) -> None:
        """DO-LP's labels synchronization (Algorithm 1 lines 21-22)."""
        if not self.opts.unified_labels:
            self.old_labels[:] = self.labels
            self.counters.record_sync_pass(self.n)

    # -- traversals --------------------------------------------------------

    def initial_push(self) -> Frontier:
        """Thrifty iteration 0: push the hub's label one hop."""
        g = self.graph
        targets = g.neighbors(self.hub).astype(np.int64)
        values = np.full(targets.size, self._read_array()[self.hub],
                         dtype=self.labels.dtype)
        changed = batch_atomic_min(self.labels, targets, values)
        self.counters.record_push_scan(int(targets.size), 1)
        self.counters.record_cas_successes(int(changed.size))
        frontier = Frontier(self.n)
        frontier.set_many(g, changed)
        self.counters.record_frontier_updates(int(changed.size))
        self._end_iteration_sync()
        return frontier

    def pull(self, collect_frontier: bool
             ) -> tuple[Frontier | None, CountOnlyFrontier]:
        """One pull iteration over all vertices in schedule order.

        Returns ``(detailed_frontier_or_None, counts)``.  With unified
        labels the commit is in-place per block; otherwise double-
        buffered (block order then has no effect on the result).
        """
        g = self.graph
        opts = self.opts
        read = self._read_array()
        counts = CountOnlyFrontier()
        detailed = Frontier(self.n) if collect_frontier else None
        zero = opts.zero_convergence
        # Without unified labels the pull is double-buffered, so block
        # order cannot affect the result: one whole-graph block is both
        # faster and bit-identical.
        if opts.unified_labels:
            blocks = ((lo, min(lo + opts.block_size, hi_p))
                      for p in self.partition_order
                      for lo_p, hi_p in (self.partitioning.vertex_range(int(p)),)
                      for lo in range(lo_p, hi_p, opts.block_size))
        else:
            blocks = iter([(0, self.n)])
        for lo, hi in blocks:
                if zero:
                    skip = read[lo:hi] == 0
                    scanned = zero_cut_scan_lengths(g, read, lo, hi, skip)
                    edges = int(scanned.sum())
                else:
                    edges = int(g.indptr[hi] - g.indptr[lo])
                new, changed = pull_block(g, read, lo, hi)
                if opts.unified_labels and hi > lo:
                    # Block-async: a thread's sequential sweep floods
                    # each internal component within the iteration.
                    new = block_async_min(new, self.groups[lo:hi] - lo)
                    changed = new < read[lo:hi]
                self.counters.record_pull_scan(edges, hi - lo)
                n_changed = int(changed.sum())
                if n_changed:
                    rows = lo + np.flatnonzero(changed)
                    self.labels[rows] = new[changed]
                    self.counters.record_label_commits(n_changed,
                                                       random=False)
                    counts.add(n_changed, int(g.degrees[rows].sum()))
                    if detailed is not None:
                        detailed.set_many(g, rows)
                        self.counters.record_frontier_updates(n_changed)
        self._end_iteration_sync()
        return detailed, counts

    def push(self, frontier: Frontier) -> Frontier:
        """One push iteration from a detailed frontier.

        Frontier vertices are drained through the per-thread local
        worklists in chunks of ``block_size``; with unified labels each
        chunk reads the labels as updated by earlier chunks.
        """
        g = self.graph
        opts = self.opts
        active = frontier.vertices()
        self.counters.sequential_accesses += int(active.size)
        worklists = LocalWorklists(self.n, opts.num_threads,
                                   race_rate=opts.race_rate)
        for lo in range(0, active.size, opts.block_size):
            chunk = active[lo:lo + opts.block_size]
            read = self._read_array()
            targets, deg = concat_adjacency(g, chunk)
            if targets.size == 0:
                self.counters.record_push_scan(0, int(chunk.size))
                continue
            values = np.repeat(read[chunk], deg)
            changed = batch_atomic_min(self.labels, targets.astype(np.int64),
                                       values)
            self.counters.record_push_scan(int(targets.size),
                                           int(chunk.size))
            self.counters.record_cas_successes(int(changed.size))
            if changed.size:
                owner = chunk[0] % opts.num_threads  # chunk's sim thread
                enq = worklists.push_batch(int(owner), changed)
                self.counters.record_frontier_updates(enq)
        self._end_iteration_sync()
        new_frontier = Frontier(self.n)
        new_frontier.set_many(g, worklists.drain_order())
        return new_frontier

    # -- bookkeeping -------------------------------------------------------

    def record(self, direction: Direction, density: float,
               active_v: int, active_e: int, changed: int,
               before: OpCounters) -> None:
        delta = self.counters - before
        delta.iterations = 1
        self.trace.add(IterationRecord(
            index=self.trace.num_iterations,
            direction=direction,
            density=density,
            active_vertices=active_v,
            active_edges=active_e,
            changed_vertices=changed,
            converged_fraction=0.0,   # filled post-hoc
            counters=delta,
        ))
        if self.opts.track_convergence:
            self.snapshots.append(self.labels.astype(np.int64, copy=True))

    def finalize(self) -> CCResult:
        if self.opts.track_convergence and self.snapshots:
            final = self.labels
            for rec, snap in zip(self.trace.iterations, self.snapshots):
                rec.converged_fraction = float(
                    np.count_nonzero(snap == final) / max(self.n, 1))
        return CCResult(labels=self.labels.copy(), trace=self.trace)


def label_propagation_cc(graph: CSRGraph,
                         opts: LPOptions | None = None,
                         *, dataset: str = "") -> CCResult:
    """Run the configured LP algorithm to convergence.

    The returned :class:`CCResult` carries the full per-iteration
    trace; all evaluation artifacts are derived from it.
    """
    opts = opts or LPOptions()
    eng = _Engine(graph, opts, dataset)
    eng.trace.setup_counters = eng.counters.copy()
    n = eng.n
    if n == 0:
        return eng.finalize()
    g = graph

    # --- iteration 0 -----------------------------------------------------
    detailed: Frontier | None
    counts: CountOnlyFrontier | None
    if opts.initial_push:
        before = eng.counters.copy()
        hub_deg = g.degree(eng.hub)
        density = ((1 + hub_deg) / g.num_edges) if g.num_edges else 0.0
        detailed = eng.initial_push()
        eng.record(Direction.INITIAL_PUSH, density, 1, hub_deg,
                   detailed.num_active, before)
        # Iteration 1 is always a full pull (Table VI): it is what
        # seeds label comparison for every vertex outside the hub's
        # component — without it a sparse post-push frontier could
        # drain before other components ever propagate.
        before = eng.counters.copy()
        density = detailed.density(g)
        active_v, active_e = detailed.num_active, detailed.num_active_edges
        collect = not opts.count_only_pulls
        new_detailed, new_counts = eng.pull(collect_frontier=collect)
        eng.record(Direction.PULL, density, active_v, active_e,
                   new_counts.num_active, before)
        if collect:
            detailed, counts = new_detailed, None
        else:
            detailed, counts = None, new_counts
    else:
        # DO-LP bootstrap: everything active.
        detailed = Frontier.full(g)
        counts = None

    # --- main loop ---------------------------------------------------------
    while eng.trace.num_iterations < opts.max_iterations:
        if detailed is not None:
            density = detailed.density(g)
            active_v = detailed.num_active
            active_e = detailed.num_active_edges
        else:
            density = counts.density(g)
            active_v = counts.num_active
            active_e = counts.num_active_edges
        if active_v == 0:
            break
        before = eng.counters.copy()
        if density < opts.threshold:
            if detailed is None:
                # Pull-Frontier: materialize the frontier first.
                new_detailed, new_counts = eng.pull(collect_frontier=True)
                eng.record(Direction.PULL_FRONTIER, density, active_v,
                           active_e, new_detailed.num_active, before)
                detailed, counts = new_detailed, None
            else:
                new_frontier = eng.push(detailed)
                eng.record(Direction.PUSH, density, active_v, active_e,
                           new_frontier.num_active, before)
                detailed, counts = new_frontier, None
        else:
            collect = not opts.count_only_pulls
            new_detailed, new_counts = eng.pull(collect_frontier=collect)
            eng.record(Direction.PULL, density, active_v, active_e,
                       new_counts.num_active, before)
            if collect:
                detailed, counts = new_detailed, None
            else:
                detailed, counts = None, new_counts
    else:
        raise RuntimeError(
            f"{opts.algorithm_name} exceeded max_iterations="
            f"{opts.max_iterations}; graph or options are pathological")

    return eng.finalize()

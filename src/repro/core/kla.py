"""K-Level Asynchronous (KLA) label propagation.

Paper Section VII: "We plan to apply Thrifty to a distributed
processing model like KLA [66].  Moreover, the unordered scheduling of
the vertices based on the KLA model can be used in a shared memory
system to provide better CPU utilization."

KLA (Harshvardhan et al.) parameterizes the synchrony spectrum: within
one *superstep*, updates may propagate up to ``k`` hops before the
global synchronization; ``k = 1`` is classic bulk-synchronous label
propagation, ``k -> inf`` is fully asynchronous execution.  Larger k
trades redundant work (labels recomputed inside the superstep) for
fewer barriers.

This module implements KLA-LP with Thrifty's Zero Planting and Zero
Convergence optionally applied, and charges costs accordingly: every
inner hop pays its edge scans, but the barrier is paid once per
superstep.  Extension experiment E4 sweeps ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters
from ..instrument.trace import Direction, IterationRecord, RunTrace
from .backends import canonical_backend, get_backend
from .result import CCResult

__all__ = ["KLAOptions", "kla_cc"]


@dataclass(frozen=True)
class KLAOptions:
    """Configuration of KLA label propagation."""

    k: int = 4
    zero_planting: bool = True
    zero_convergence: bool = True
    max_supersteps: int = 1_000_000
    backend: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "backend",
                           canonical_backend(self.backend))
        if self.k < 1:
            raise ValueError("k must be >= 1")


def kla_cc(graph: CSRGraph, opts: KLAOptions | None = None,
           *, dataset: str = "") -> CCResult:
    """Run KLA label propagation to convergence.

    Each superstep performs up to ``k`` whole-graph pull rounds
    (stopping early once a round changes nothing); one
    :class:`IterationRecord` is emitted per *superstep*, so the
    iteration count in the result is the number of barriers — the
    quantity KLA is designed to reduce.
    """
    opts = opts or KLAOptions()
    kb = get_backend(opts.backend)
    n = graph.num_vertices
    trace = RunTrace(algorithm=f"kla-lp[k={opts.k}]", dataset=dataset)
    if n == 0:
        return CCResult(labels=np.empty(0, dtype=np.int64), trace=trace)

    if opts.zero_planting:
        labels = np.arange(1, n + 1, dtype=np.int64)
        labels[graph.max_degree_vertex()] = 0
    else:
        labels = np.arange(n, dtype=np.int64)
    trace.setup_counters.sequential_accesses += 2 * n
    trace.setup_counters.label_writes += n

    for step in range(opts.max_supersteps):
        counters = OpCounters()
        changed_total = 0
        for _hop in range(opts.k):
            if opts.zero_convergence:
                skip = labels == 0
                scanned = int(kb.zero_cut_scan_lengths(
                    graph, labels, 0, n, skip).sum())
            else:
                scanned = graph.num_edges
            new, changed = kb.pull_block(graph, labels, 0, n)
            counters.record_pull_scan(scanned, n)
            n_changed = int(changed.sum())
            if n_changed == 0:
                break
            labels[changed] = new[changed]
            counters.record_label_commits(n_changed, random=False)
            changed_total += n_changed
        counters.iterations = 1
        trace.add(IterationRecord(
            index=step, direction=Direction.PULL, density=1.0,
            active_vertices=n, active_edges=graph.num_edges,
            changed_vertices=changed_total,
            converged_fraction=float(np.count_nonzero(labels == 0) / n),
            counters=counters))
        if changed_total == 0:
            break
    else:
        raise RuntimeError("KLA-LP failed to converge")
    return CCResult(labels=labels.copy(), trace=trace)

"""Common result type returned by every CC implementation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..instrument.counters import OpCounters
from ..instrument.trace import RunTrace

__all__ = ["CCResult"]


@dataclass
class CCResult:
    """Labels plus the full execution record of one CC run.

    ``labels[v]`` is an arbitrary per-component identifier; two
    vertices are connected iff their labels are equal.  Use
    :meth:`canonical_labels` to compare results across algorithms.

    ``extras`` carries method-specific metrics beyond the trace — the
    same convention the serving layer's snapshots use: a flat dict of
    named records (e.g. the distributed tier's ``"comm"``
    :class:`~repro.distributed.comm.CommStats` plus its ``"edge_cut"``
    and partitioning facts).  Always present (possibly empty), so
    every result — and every cached result — has a uniform shape.
    """

    labels: np.ndarray
    trace: RunTrace
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def algorithm(self) -> str:
        return self.trace.algorithm

    @property
    def num_iterations(self) -> int:
        return self.trace.num_iterations

    @property
    def num_components(self) -> int:
        return int(np.unique(self.labels).size)

    def counters(self) -> OpCounters:
        return self.trace.total_counters()

    def canonical_labels(self) -> np.ndarray:
        """Relabel components as the minimum vertex id they contain.

        Algorithm-independent: any two correct CC results have equal
        canonical labels.
        """
        labels = self.labels
        n = labels.size
        if n == 0:
            return labels.astype(np.int64)
        order = np.argsort(labels, kind="stable")
        sorted_labels = labels[order]
        starts = np.empty(n, dtype=bool)
        starts[0] = True
        starts[1:] = sorted_labels[1:] != sorted_labels[:-1]
        group = np.cumsum(starts) - 1
        rep = np.minimum.reduceat(order, np.flatnonzero(starts))
        out = np.empty(n, dtype=np.int64)
        out[order] = rep[group]
        return out

    def component_sizes(self) -> np.ndarray:
        """Component sizes, descending."""
        _, counts = np.unique(self.labels, return_counts=True)
        return np.sort(counts)[::-1].astype(np.int64)

"""Common result type returned by every CC implementation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..instrument.counters import OpCounters
from ..instrument.trace import RunTrace

__all__ = ["CCResult", "RESERVED_EXTRAS", "validate_extras"]

#: The ``CCResult.extras`` schema — every reserved key, documented in
#: one place.  Producers may add method-specific keys freely, but a
#: reserved name must carry the shape described here: the serving
#: layer, the CLI and the benchmark harness all read these records by
#: name (``extras["io"]["modeled_ms"]`` joins the simulated time,
#: ``extras["comm"]`` drives the fabric charge, ...).
RESERVED_EXTRAS: dict[str, str] = {
    "comm": "distributed tier: CommStats (supersteps, messages, "
            "updates, modeled_bytes) of the run's fabric traffic",
    "edge_cut": "distributed tier: int, edges crossing rank partitions",
    "num_ranks": "distributed tier: int >= 1, ranks the run sharded over",
    "partition": "distributed tier: str, partitioning strategy name",
    "algorithm": "distributed tier: str, per-rank algorithm ('lp'/...)",
    "io": "out-of-core tier: dict of block-fetch accounting — at least "
          "blocks_read, blocks_reread, bytes_read, peak_resident_bytes, "
          "disk and modeled_ms (the alpha-beta disk charge)",
    "delta": "incremental tier: dict, DeltaStats of a delta-served run",
    "delta_base": "incremental tier: str, fingerprint of the seed result",
    "delta_chain": "incremental tier: int >= 1, lineage steps replayed",
}

#: Minimum fields of a valid ``extras["io"]`` record.
_IO_REQUIRED = ("blocks_read", "blocks_reread", "bytes_read",
                "peak_resident_bytes", "disk", "modeled_ms")


def validate_extras(extras: dict) -> dict:
    """Check an ``extras`` dict against :data:`RESERVED_EXTRAS`.

    Unknown keys pass through untouched (the dict is an open
    namespace); reserved keys are shape-checked so a malformed record
    fails at the producer, not in whatever downstream reader happens
    to index it first.  Returns ``extras`` for chaining; raises
    ``TypeError``/``ValueError`` on violations.
    """
    if not isinstance(extras, dict):
        raise TypeError(f"extras must be a dict, got "
                        f"{type(extras).__name__}")
    for key in extras:
        if not isinstance(key, str):
            raise TypeError(f"extras keys must be strings, got {key!r}")
    io = extras.get("io")
    if io is not None:
        if not isinstance(io, dict):
            raise ValueError("extras['io'] must be a dict record")
        missing = [k for k in _IO_REQUIRED if k not in io]
        if missing:
            raise ValueError(
                f"extras['io'] record is missing {missing}; required "
                f"fields: {list(_IO_REQUIRED)}")
    for key in ("edge_cut", "num_ranks", "delta_chain"):
        value = extras.get(key)
        if value is not None and (not isinstance(value, int)
                                  or isinstance(value, bool)):
            raise ValueError(f"extras[{key!r}] must be an int, "
                             f"got {value!r}")
    if "comm" in extras and not hasattr(extras["comm"], "modeled_bytes"):
        raise ValueError("extras['comm'] must be a CommStats-shaped "
                         "record (needs .modeled_bytes)")
    delta = extras.get("delta")
    if delta is not None and not isinstance(delta, dict):
        raise ValueError("extras['delta'] must be a dict record")
    return extras


@dataclass
class CCResult:
    """Labels plus the full execution record of one CC run.

    ``labels[v]`` is an arbitrary per-component identifier; two
    vertices are connected iff their labels are equal.  Use
    :meth:`canonical_labels` to compare results across algorithms.

    ``extras`` carries method-specific metrics beyond the trace — the
    same convention the serving layer's snapshots use: a flat dict of
    named records (e.g. the distributed tier's ``"comm"``
    :class:`~repro.distributed.comm.CommStats` plus its ``"edge_cut"``
    and partitioning facts, the out-of-core tier's ``"io"`` block
    accounting).  Always present (possibly empty), so every result —
    and every cached result — has a uniform shape.  Reserved key names
    and their shapes are documented in :data:`RESERVED_EXTRAS` and
    checked by :func:`validate_extras` on the serving path.
    """

    labels: np.ndarray
    trace: RunTrace
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def algorithm(self) -> str:
        return self.trace.algorithm

    @property
    def num_iterations(self) -> int:
        return self.trace.num_iterations

    @property
    def num_components(self) -> int:
        return int(np.unique(self.labels).size)

    def counters(self) -> OpCounters:
        return self.trace.total_counters()

    def canonical_labels(self) -> np.ndarray:
        """Relabel components as the minimum vertex id they contain.

        Algorithm-independent: any two correct CC results have equal
        canonical labels.
        """
        labels = self.labels
        n = labels.size
        if n == 0:
            return labels.astype(np.int64)
        order = np.argsort(labels, kind="stable")
        sorted_labels = labels[order]
        starts = np.empty(n, dtype=bool)
        starts[0] = True
        starts[1:] = sorted_labels[1:] != sorted_labels[:-1]
        group = np.cumsum(starts) - 1
        rep = np.minimum.reduceat(order, np.flatnonzero(starts))
        out = np.empty(n, dtype=np.int64)
        out[order] = rep[group]
        return out

    def component_sizes(self) -> np.ndarray:
        """Component sizes, descending."""
        _, counts = np.unique(self.labels, return_counts=True)
        return np.sort(counts)[::-1].astype(np.int64)

"""Label-array initialization (plain and Zero-Planted).

Label propagation is free to pick any initial assignment as long as
labels are distinct (Section II).  DO-LP uses ``labels[v] = v``;
Thrifty's Zero Planting uses ``labels[v] = v + 1`` with the reserved
``0`` planted on the maximum-degree vertex (Algorithm 2, lines 3-9).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters
from ..parallel.partition import Partitioning

__all__ = ["identity_labels", "zero_planted_labels",
           "thread_local_max_degree"]

LABEL_DTYPE = np.int64


def identity_labels(num_vertices: int) -> np.ndarray:
    """DO-LP initialization: label = vertex id."""
    return np.arange(num_vertices, dtype=LABEL_DTYPE)


def thread_local_max_degree(graph: CSRGraph,
                            partitioning: Partitioning) -> int:
    """Find the max-degree vertex via per-thread local maxima.

    Mirrors Algorithm 2 lines 5-9: each simulated thread scans its own
    partitions keeping (Max_Degrees[t], Max_Ids[t]); the global winner
    is reduced across threads.  Ties resolve to the lowest vertex id,
    matching a deterministic ascending scan.
    """
    degrees = graph.degrees
    best_deg = -1
    best_id = -1
    for t in range(partitioning.num_threads):
        lo = int(partitioning.bounds[t * partitioning.partitions_per_thread()])
        hi = int(partitioning.bounds[(t + 1)
                                     * partitioning.partitions_per_thread()])
        if hi <= lo:
            continue
        local = degrees[lo:hi]
        arg = int(np.argmax(local))
        deg = int(local[arg])
        if deg > best_deg:
            best_deg = deg
            best_id = lo + arg
    if best_id < 0:
        raise ValueError("empty graph has no max-degree vertex")
    return best_id


def zero_planted_labels(graph: CSRGraph,
                        partitioning: Partitioning | None = None,
                        counters: OpCounters | None = None
                        ) -> tuple[np.ndarray, int]:
    """Zero Planting: labels = v + 1, hub gets 0.

    Returns ``(labels, hub_vertex)``.  When a partitioning is given,
    the hub search replays the paper's thread-local reduction; the
    result is identical to a global argmax either way.
    """
    n = graph.num_vertices
    labels = np.arange(1, n + 1, dtype=LABEL_DTYPE)
    if partitioning is not None:
        hub = thread_local_max_degree(graph, partitioning)
    else:
        hub = graph.max_degree_vertex()
    labels[hub] = 0
    if counters is not None:
        # Initialization pass: one sequential degree read + label write
        # per vertex (Algorithm 2 lines 3-7).
        counters.sequential_accesses += 2 * n
        counters.label_writes += n
        counters.branches += n
    return labels, hub

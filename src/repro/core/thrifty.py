"""Thrifty Label Propagation (Algorithm 2) — the paper's contribution.

All four optimizations enabled: Unified Labels Array, Zero Convergence,
Zero Planting, Initial Push; count-only pulls with a Pull-Frontier
iteration before switching to push; 1% density threshold (Section IV-E).
"""

from __future__ import annotations

from dataclasses import replace

from ..graph.csr import CSRGraph
from ..parallel.machine import SKYLAKEX, MachineSpec
from .engine import LPOptions, label_propagation_cc
from .result import CCResult

__all__ = ["THRIFTY_OPTIONS", "thrifty_cc"]

#: Canonical Thrifty configuration.
THRIFTY_OPTIONS = LPOptions(algorithm_name="thrifty")


def thrifty_cc(graph: CSRGraph,
               *,
               machine: MachineSpec = SKYLAKEX,
               num_threads: int | None = None,
               dataset: str = "",
               **overrides) -> CCResult:
    """Run Thrifty connected components.

    ``overrides`` may adjust any :class:`LPOptions` field, including
    the optimization switches (for ablation studies) and ``threshold``
    (Table VII).
    """
    opts = replace(THRIFTY_OPTIONS, machine=machine,
                   num_threads=num_threads or machine.cores, **overrides)
    return label_propagation_cc(graph, opts, dataset=dataset)

"""The paper's contribution: DO-LP, Thrifty, and their shared engine."""

from .dolp import DOLP_OPTIONS, dolp_cc
from .kla import KLAOptions, kla_cc
from .engine import LPOptions, label_propagation_cc
from .labels import identity_labels, zero_planted_labels
from .reference import (
    reference_dolp,
    reference_label_propagation_iterations,
    reference_thrifty,
)
from .result import CCResult, RESERVED_EXTRAS, validate_extras
from .thrifty import THRIFTY_OPTIONS, thrifty_cc
from .unified import UNIFIED_OPTIONS, unified_dolp_cc

__all__ = [
    "CCResult",
    "RESERVED_EXTRAS",
    "validate_extras",
    "LPOptions",
    "label_propagation_cc",
    "DOLP_OPTIONS",
    "KLAOptions",
    "kla_cc",
    "dolp_cc",
    "UNIFIED_OPTIONS",
    "unified_dolp_cc",
    "THRIFTY_OPTIONS",
    "thrifty_cc",
    "identity_labels",
    "zero_planted_labels",
    "reference_dolp",
    "reference_thrifty",
    "reference_label_propagation_iterations",
]

"""Pluggable kernel backends for the hot traversal kernels.

Every tier of the reproduction — the fused engine kernels, the
distributed rank-local pull, the union-find batch atomics under the
serving layer — bottoms out in the same handful of hot kernels.  This
package abstracts them behind the :class:`KernelBackend` protocol so a
compiled implementation can be swapped in per run without touching any
call site:

* ``"numpy"`` — the canonical pure-numpy backend, always registered.
  Its outputs (labels, changed masks, scan lengths, counters, traces)
  are the reproduction's ground truth.
* ``"numba"`` — an optional JIT-compiled backend registered
  automatically when :mod:`numba` is importable (declared under
  ``pip install repro[numba]``).  It must be bit-identical to
  ``"numpy"`` under the kernel property sweeps and the engine-level
  conformance suite; only wall-clock may differ.

:func:`get_backend` / :func:`register_backend` /
:func:`available_backends` are the one sanctioned extension point.
Selection flows through the typed front door: every engine-bearing
options dataclass has a ``backend`` field validated at construction
(:func:`validate_backend`), so
``connected_components(..., options=ThriftyOptions(backend="numba"))``
and CLI ``--opt backend=numba`` reach the engine without any global
state, and the serving layer keys caches and learned costs per
backend.

The implementation modules (``_numpy``, ``_numba``) are
backend-private: importing them directly emits a
:class:`DeprecationWarning` (an error under pytest).  Use the
registry, or the :mod:`repro.core.kernels` facade for the default
backend.
"""

from __future__ import annotations

import importlib
import warnings
from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "KernelBackend",
    "get_backend",
    "register_backend",
    "available_backends",
    "validate_backend",
    "canonical_backend",
    "DEFAULT_BACKEND",
]

#: The backend ``None`` resolves to everywhere a ``backend`` option is
#: accepted — the canonical numpy implementation.
DEFAULT_BACKEND = "numpy"

_PRIVATE_DEPRECATION = (
    "importing backend-private module {name} directly is deprecated; "
    "use repro.core.backends.get_backend() or the repro.core.kernels "
    "facade instead")

# Incremented around sanctioned imports (the registry importing its
# own implementation modules); any other import warns.
_SANCTIONED_IMPORTS = 0


def _check_sanctioned_import(name: str) -> None:
    """Warn when a backend-private module is imported directly.

    Called at the top of ``_numpy``/``_numba``.  The registry wraps
    its own imports in :func:`_sanctioned`; a first import arriving
    any other way gets the deprecation (re-imports are served from
    ``sys.modules`` and never re-execute this).
    """
    if _SANCTIONED_IMPORTS == 0:
        warnings.warn(_PRIVATE_DEPRECATION.format(name=name),
                      DeprecationWarning, stacklevel=3)


def _sanctioned(module: str) -> Any:
    """Import a backend-private module without the deprecation."""
    global _SANCTIONED_IMPORTS
    _SANCTIONED_IMPORTS += 1
    try:
        return importlib.import_module(module, __name__)
    finally:
        _SANCTIONED_IMPORTS -= 1


@runtime_checkable
class KernelBackend(Protocol):
    """The hot-kernel surface every registered backend implements.

    Semantics are pinned by the canonical numpy backend and the
    docstrings in :mod:`repro.core.kernels`; implementations must be
    bit-identical on every output — the cost model and counters only
    ever see *what* was computed, never how fast.  ``name`` is the
    registry key the backend was written for.
    """

    name: str

    def blockwise_sums(self, values: np.ndarray, starts: np.ndarray,
                       ends: np.ndarray) -> np.ndarray: ...

    def segment_min(self, values: np.ndarray, starts: np.ndarray,
                    ends: np.ndarray, fill: np.ndarray) -> np.ndarray: ...

    def pull_block(self, graph: Any, labels: np.ndarray, lo: int,
                   hi: int) -> tuple[np.ndarray, np.ndarray]: ...

    def pull_block_zero_cut(self, graph: Any, labels: np.ndarray,
                            lo: int, hi: int,
                            skip: np.ndarray | None = None
                            ) -> tuple[np.ndarray, np.ndarray, int]: ...

    def zero_cut_scan_lengths(self, graph: Any, labels: np.ndarray,
                              lo: int, hi: int,
                              skip: np.ndarray | None = None
                              ) -> np.ndarray: ...

    def intra_block_groups(self, graph: Any, block_bounds: np.ndarray
                           ) -> np.ndarray: ...

    def block_async_min(self, jacobi: np.ndarray,
                        groups_local: np.ndarray) -> np.ndarray: ...

    def chunked_cuts(self, boundaries: np.ndarray,
                     block_size: int) -> np.ndarray: ...

    def push_scan_lengths(self, graph: Any, active: np.ndarray,
                          starts: np.ndarray, ends: np.ndarray
                          ) -> np.ndarray: ...

    def fused_push_window(self, graph: Any, read: np.ndarray,
                          write: np.ndarray, rows: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray,
                                     np.ndarray, np.ndarray]: ...

    def concat_adjacency(self, graph: Any, rows: np.ndarray
                         ) -> tuple[np.ndarray, np.ndarray]: ...

    def batch_atomic_min(self, array: np.ndarray, indices: np.ndarray,
                         values: np.ndarray) -> np.ndarray: ...

    def batch_atomic_min_count(self, array: np.ndarray,
                               indices: np.ndarray, values: np.ndarray
                               ) -> tuple[np.ndarray, int]: ...

    def scatter_min_count(self, array: np.ndarray, indices: np.ndarray,
                          values: np.ndarray) -> int: ...


_REGISTRY: dict[str, KernelBackend] = {}
_NUMBA_PROBED = False


def register_backend(name: str, backend: KernelBackend) -> None:
    """Register ``backend`` under ``name`` (replacing any previous).

    The sanctioned extension point: third-party backends register
    here and become selectable through every ``backend=`` option and
    CLI ``--opt backend=...``.  The backend must be bit-identical to
    ``"numpy"`` — run ``tests/test_backend_conformance.py`` against
    it.
    """
    if not isinstance(name, str) or not name:
        raise ValueError("backend name must be a non-empty string")
    _REGISTRY[name] = backend


def _probe_numba() -> None:
    """One-shot attempt to register the compiled backend.

    numba is an optional dependency; when it is absent (or its import
    fails for any environmental reason) the registry simply never
    lists ``"numba"`` and everything runs on the canonical numpy
    backend.
    """
    global _NUMBA_PROBED
    if _NUMBA_PROBED:
        return
    _NUMBA_PROBED = True
    try:
        importlib.import_module("numba")
    except Exception:
        return
    try:
        mod = _sanctioned("._numba")
        register_backend("numba", mod.NumbaBackend())
    except Exception as exc:  # pragma: no cover - env-specific
        warnings.warn(
            f"numba is importable but the numba backend failed to "
            f"load ({exc!r}); continuing with numpy only",
            RuntimeWarning, stacklevel=2)


def get_backend(name: str | None = None) -> KernelBackend:
    """Return the backend registered under ``name``.

    ``None`` resolves to :data:`DEFAULT_BACKEND` (``"numpy"``) — the
    spelling every ``backend=None`` options field uses.  Unknown
    names raise ``ValueError`` listing :func:`available_backends`.
    """
    if name is None:
        name = DEFAULT_BACKEND
    if name not in _REGISTRY:
        _probe_numba()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available backends: "
            f"{available_backends()}") from None


def available_backends() -> list[str]:
    """Names of all registered backends (sorted).

    Includes ``"numba"`` only when the optional dependency imported
    successfully.
    """
    _probe_numba()
    return sorted(_REGISTRY)


def validate_backend(name: str | None) -> None:
    """Shared construction-time validator for ``backend`` options.

    ``None`` (use the default) always validates; any other value must
    name a registered backend.  Every frozen options dataclass with a
    ``backend`` field calls this from ``__post_init__`` so an invalid
    spelling fails at construction, not mid-run.
    """
    if name is None:
        return
    if not isinstance(name, str):
        raise ValueError(
            f"backend must be a string or None, got "
            f"{type(name).__name__}")
    if name not in _REGISTRY:
        _probe_numba()
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown backend {name!r}; available backends: "
            f"{available_backends()}")


def canonical_backend(name: str | None) -> str | None:
    """Validate a ``backend`` option and fold it to canonical form.

    The default backend has two spellings — ``None`` and its explicit
    name — and the frozen options instance is a result-cache key
    component, so both must construct *equal* dataclasses.  Options
    ``__post_init__`` methods assign the returned value back onto the
    field: ``None`` for the default backend (either spelling), the
    validated name otherwise.
    """
    validate_backend(name)
    return None if name == DEFAULT_BACKEND else name


register_backend("numpy", _sanctioned("._numpy").NumpyBackend())

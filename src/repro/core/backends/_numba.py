"""Optional numba-compiled kernel backend (backend-private).

Import through :func:`repro.core.backends.get_backend("numba")`; the
registry only loads this module when :mod:`numba` imports cleanly, so
the rest of the repo never depends on it.

Each hot kernel is the *same sequential loop the paper's C code runs*,
JIT-compiled: where the numpy backend reconstructs the loop's effect
from batch primitives (``reduceat``, ``searchsorted``,
``minimum.at``), these kernels just run it.  Outputs are bit-identical
by construction — the loops are the specification the numpy kernels
were derived from — and the conformance suite
(``tests/test_backend_conformance.py``) plus the backend-parametrized
property sweeps enforce it.

Design rules keeping the two backends in lockstep:

* dtype-sensitive allocation happens in the Python wrappers with
  numpy (``labels.dtype``, ``graph.indices.dtype``), so output dtypes
  cannot drift from the canonical backend; the ``@njit`` functions
  only fill preallocated arrays or return scalars.
* every edge-case early return (empty block, edgeless slice) is the
  numpy wrapper's own, copied verbatim.
* compilation is lazy per dtype signature (no eager ``signature=``),
  so importing this module is cheap and first use pays the JIT cost
  once per process.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from ...graph.csr import CSRGraph
from . import _check_sanctioned_import
from ._numpy import NumpyBackend

_check_sanctioned_import(__name__)

_INT64_MAX = np.iinfo(np.int64).max


@njit(cache=True, nogil=True)
def _fill_blockwise_sums(values, starts, ends, out):
    cum = np.empty(values.size + 1, dtype=np.int64)
    cum[0] = 0
    for i in range(values.size):
        cum[i + 1] = cum[i] + values[i]
    for i in range(starts.size):
        out[i] = cum[ends[i]] - cum[starts[i]]


@njit(cache=True, nogil=True)
def _fill_segment_min(values, starts, ends, out):
    for i in range(starts.size):
        m = out[i]
        for j in range(starts[i], ends[i]):
            v = values[j]
            if v < m:
                m = v
        out[i] = m


@njit(cache=True, nogil=True)
def _fill_pull_block(indptr, indices, labels, lo, hi, new, changed):
    for i in range(hi - lo):
        row = lo + i
        m = labels[row]
        for p in range(indptr[row], indptr[row + 1]):
            v = labels[indices[p]]
            if v < m:
                m = v
        new[i] = m
        changed[i] = m < labels[row]


@njit(cache=True, nogil=True)
def _fill_pull_zero_cut(indptr, indices, labels, lo, hi, skip,
                        new, changed):
    # The sequential Zero-Convergence scan itself (Algorithm 2 line
    # 31): break at the first zero-labelled neighbour, counting it.
    total = np.int64(0)
    for i in range(hi - lo):
        row = lo + i
        own = labels[row]
        if skip[i]:
            new[i] = own
            changed[i] = False
            continue
        m = own
        for p in range(indptr[row], indptr[row + 1]):
            total += 1
            v = labels[indices[p]]
            if v < m:
                m = v
            if v == 0:
                break
        new[i] = m
        changed[i] = m < own
    return total


@njit(cache=True, nogil=True)
def _fill_zero_cut_lengths(indptr, indices, labels, lo, hi, skip, out):
    for i in range(hi - lo):
        row = lo + i
        if skip[i]:
            out[i] = 0
            continue
        cnt = np.int64(0)
        for p in range(indptr[row], indptr[row + 1]):
            cnt += 1
            if labels[indices[p]] == 0:
                break
        out[i] = cnt


@njit(cache=True, nogil=True)
def _fill_concat_adjacency(indptr, indices, rows, offsets, targets):
    for i in range(rows.size):
        row = rows[i]
        base = offsets[i]
        start = indptr[row]
        for k in range(indptr[row + 1] - start):
            targets[base + k] = indices[start + k]


@njit(cache=True, nogil=True)
def _fill_push_window(indptr, indices, read, write, rows, offsets,
                      targets, values, improving):
    for i in range(rows.size):
        row = rows[i]
        src = read[row]
        base = offsets[i]
        start = indptr[row]
        for k in range(indptr[row + 1] - start):
            t = indices[start + k]
            targets[base + k] = t
            values[base + k] = src
            improving[base + k] = src < write[t]


@njit(cache=True, nogil=True)
def _scatter_min(array, indices, values):
    for k in range(indices.size):
        i = indices[k]
        v = values[k]
        if v < array[i]:
            array[i] = v


@njit(cache=True, nogil=True)
def _scatter_min_count_slots(array, indices, values):
    before = np.empty(indices.size, dtype=array.dtype)
    for k in range(indices.size):
        before[k] = array[indices[k]]
    for k in range(indices.size):
        i = indices[k]
        v = values[k]
        if v < array[i]:
            array[i] = v
    count = 0
    for k in range(indices.size):
        if array[indices[k]] < before[k]:
            count += 1
    return count


@njit(cache=True, nogil=True)
def _fill_block_async_min(jacobi, groups_local, out):
    tmp = np.full(jacobi.size, _INT64_MAX, dtype=np.int64)
    for i in range(jacobi.size):
        g = groups_local[i]
        if jacobi[i] < tmp[g]:
            tmp[g] = jacobi[i]
    for i in range(jacobi.size):
        m = tmp[groups_local[i]]
        out[i] = m if m < jacobi[i] else jacobi[i]


def blockwise_sums(values: np.ndarray, starts: np.ndarray,
                   ends: np.ndarray) -> np.ndarray:
    out = np.empty(np.asarray(starts).size, dtype=np.int64)
    _fill_blockwise_sums(np.ascontiguousarray(values),
                         np.ascontiguousarray(starts),
                         np.ascontiguousarray(ends), out)
    return out


def segment_min(values: np.ndarray, starts: np.ndarray,
                ends: np.ndarray, fill: np.ndarray) -> np.ndarray:
    out = np.asarray(fill).copy()
    if out.size == 0:
        return out
    _fill_segment_min(np.ascontiguousarray(values),
                      np.ascontiguousarray(starts),
                      np.ascontiguousarray(ends), out)
    return out


def pull_block(graph: CSRGraph, labels: np.ndarray,
               lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
    if hi <= lo:
        empty = np.empty(0, dtype=labels.dtype)
        return empty, np.empty(0, dtype=bool)
    if int(graph.indptr[hi]) == int(graph.indptr[lo]):
        return labels[lo:hi].copy(), np.zeros(hi - lo, dtype=bool)
    new = np.empty(hi - lo, dtype=labels.dtype)
    changed = np.empty(hi - lo, dtype=bool)
    _fill_pull_block(graph.indptr, graph.indices, labels,
                     np.int64(lo), np.int64(hi), new, changed)
    return new, changed


def pull_block_zero_cut(graph: CSRGraph, labels: np.ndarray,
                        lo: int, hi: int,
                        skip: np.ndarray | None = None
                        ) -> tuple[np.ndarray, np.ndarray, int]:
    if hi <= lo:
        empty = np.empty(0, dtype=labels.dtype)
        return empty, np.empty(0, dtype=bool), 0
    if skip is None:
        skip = labels[lo:hi] == 0
    new = np.empty(hi - lo, dtype=labels.dtype)
    changed = np.empty(hi - lo, dtype=bool)
    total = _fill_pull_zero_cut(graph.indptr, graph.indices, labels,
                                np.int64(lo), np.int64(hi),
                                np.ascontiguousarray(skip),
                                new, changed)
    return new, changed, int(total)


def zero_cut_scan_lengths(graph: CSRGraph, labels: np.ndarray,
                          lo: int, hi: int,
                          skip: np.ndarray | None = None) -> np.ndarray:
    if hi <= lo:
        return np.empty(0, dtype=np.int64)
    if skip is None:
        skip = labels[lo:hi] == 0
    out = np.empty(hi - lo, dtype=np.int64)
    _fill_zero_cut_lengths(graph.indptr, graph.indices, labels,
                           np.int64(lo), np.int64(hi),
                           np.ascontiguousarray(skip), out)
    return out


def concat_adjacency(graph: CSRGraph, rows: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    counts = graph.degrees[rows].astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=graph.indices.dtype), counts
    offsets = np.zeros(rows.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    targets = np.empty(total, dtype=graph.indices.dtype)
    _fill_concat_adjacency(graph.indptr, graph.indices, rows, offsets,
                           targets)
    return targets, counts


def push_scan_lengths(graph: CSRGraph, active: np.ndarray,
                      starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    return blockwise_sums(graph.degrees[active], starts, ends)


def fused_push_window(graph: CSRGraph, read: np.ndarray,
                      write: np.ndarray, rows: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    counts = graph.degrees[rows].astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return (np.empty(0, dtype=graph.indices.dtype),
                np.empty(0, dtype=read.dtype), counts,
                np.empty(0, dtype=bool))
    offsets = np.zeros(rows.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    targets = np.empty(total, dtype=graph.indices.dtype)
    values = np.empty(total, dtype=read.dtype)
    improving = np.empty(total, dtype=bool)
    _fill_push_window(graph.indptr, graph.indices, read, write, rows,
                      offsets, targets, values, improving)
    return targets, values, counts, improving


def block_async_min(jacobi: np.ndarray, groups_local: np.ndarray
                    ) -> np.ndarray:
    out = np.empty(jacobi.size, dtype=jacobi.dtype)
    _fill_block_async_min(np.ascontiguousarray(jacobi),
                          np.ascontiguousarray(groups_local), out)
    return out


def batch_atomic_min(array: np.ndarray,
                     indices: np.ndarray,
                     values: np.ndarray) -> np.ndarray:
    indices = np.asarray(indices)
    values = np.asarray(values)
    if indices.shape != values.shape:
        raise ValueError("indices and values must have equal shapes")
    if indices.size == 0:
        return np.empty(0, dtype=np.int64)
    targets = np.unique(indices)
    before = array[targets].copy()
    _scatter_min(array, np.ascontiguousarray(indices),
                 np.ascontiguousarray(values))
    return targets[array[targets] < before].astype(np.int64)


def batch_atomic_min_count(array: np.ndarray,
                           indices: np.ndarray,
                           values: np.ndarray) -> tuple[np.ndarray, int]:
    changed = batch_atomic_min(array, indices, values)
    if changed.size == 0:
        return changed, 0
    indices = np.asarray(indices)
    values = np.asarray(values)
    pos = np.searchsorted(changed, indices)
    on_changed = changed[np.minimum(pos, changed.size - 1)] == indices
    winning = values == array[indices]
    return changed, int(np.count_nonzero(on_changed & winning))


def scatter_min_count(array: np.ndarray,
                      indices: np.ndarray,
                      values: np.ndarray) -> int:
    indices = np.asarray(indices)
    values = np.asarray(values)
    if indices.size == 0:
        return 0
    return int(_scatter_min_count_slots(array,
                                        np.ascontiguousarray(indices),
                                        np.ascontiguousarray(values)))


class NumbaBackend(NumpyBackend):
    """JIT-compiled backend: the paper's sequential loops, compiled.

    Inherits the structural helpers (``chunked_cuts``,
    ``intra_block_groups``) from the canonical backend — they run
    once per graph and are not worth compiling.
    """

    name = "numba"

    blockwise_sums = staticmethod(blockwise_sums)
    segment_min = staticmethod(segment_min)
    pull_block = staticmethod(pull_block)
    pull_block_zero_cut = staticmethod(pull_block_zero_cut)
    zero_cut_scan_lengths = staticmethod(zero_cut_scan_lengths)
    block_async_min = staticmethod(block_async_min)
    push_scan_lengths = staticmethod(push_scan_lengths)
    fused_push_window = staticmethod(fused_push_window)
    concat_adjacency = staticmethod(concat_adjacency)
    batch_atomic_min = staticmethod(batch_atomic_min)
    batch_atomic_min_count = staticmethod(batch_atomic_min_count)
    scatter_min_count = staticmethod(scatter_min_count)

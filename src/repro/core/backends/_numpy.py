"""Canonical numpy kernel implementations (backend-private).

This module is backend-private: import it through
:func:`repro.core.backends.get_backend` (or the
:mod:`repro.core.kernels` facade), not directly.  A direct import
emits a :class:`DeprecationWarning` — promoted to an error under
pytest — because the set of modules is an implementation detail of
the registry: compiled backends subclass :class:`NumpyBackend` and
must stay free to reorganize these files.

The kernels are the batch equivalents of the paper's C inner loops:

* :meth:`NumpyBackend.pull_block` — the pull traversal over a
  contiguous vertex block: per-row minimum over neighbour labels
  (``minimum.reduceat`` over the CSR slice).
* :meth:`NumpyBackend.zero_cut_scan_lengths` — exact count of edges a
  sequential scan with the Zero Convergence early-exit (Algorithm 2
  line 31) would touch: the position of each row's first
  zero-labelled neighbour, found with one ``flatnonzero`` +
  ``searchsorted``.
* :meth:`NumpyBackend.concat_adjacency` — gather the adjacency lists
  of an arbitrary vertex set (push traversals, BFS frontiers).
* :meth:`NumpyBackend.fused_push_window` — speculative fused
  evaluation of a window of push chunks: the concatenated adjacency,
  per-edge source values, and the mask of edges whose atomic-min
  would succeed on the current snapshot.
* :meth:`NumpyBackend.batch_atomic_min` /
  :meth:`NumpyBackend.scatter_min_count` — the linearized batch
  atomic-min scatter shared by the push engine and the union-find
  hooks (see :mod:`repro.parallel.atomics` for the linearizability
  argument).

The kernels *compute* with whole-block batches but *account* work in
the counters exactly as the modelled sequential/parallel C loops
would — counters, not NumPy op counts, are the reproduction's ground
truth (DESIGN.md Section 5).  Every other backend must be
bit-identical to this one: labels, changed masks, scan lengths,
counters and traces (the conformance suite in
``tests/test_backend_conformance.py`` enforces it).
"""

from __future__ import annotations

import numpy as np

from ...graph.csr import CSRGraph
from . import _check_sanctioned_import

_check_sanctioned_import(__name__)

_INT64_MAX = np.iinfo(np.int64).max


def blockwise_sums(values: np.ndarray, starts: np.ndarray,
                   ends: np.ndarray) -> np.ndarray:
    """Per-block sums ``values[starts[i]:ends[i]]`` via one prefix sum.

    Unlike ``np.add.reduceat`` this is well-defined for empty blocks
    (``starts[i] == ends[i]`` sums to 0), which the engine's block
    metadata produces for empty partitions.  Blocks may overlap or be
    listed in any order; only ``starts <= ends`` is required.
    """
    cum = np.concatenate(([0], np.cumsum(values, dtype=np.int64)))
    return cum[ends] - cum[starts]


def segment_min(values: np.ndarray, starts: np.ndarray,
                ends: np.ndarray, fill: np.ndarray) -> np.ndarray:
    """Per-segment minimum of ``values[starts[i]:ends[i]]``.

    Empty segments get ``fill[i]``.  Segments must be non-overlapping
    and ascending (CSR rows always are).
    """
    out = np.asarray(fill).copy()
    nonempty = ends > starts
    if not nonempty.any():
        return out
    s = starts[nonempty]
    mins = np.minimum.reduceat(values, s)
    # reduceat's segment i ends at the next start; CSR rows are
    # contiguous (ends[i] == starts[i+1] for adjacent rows), and any
    # gap rows were empty, so the tail beyond ends[i] belongs to later
    # segments only when rows are contiguous — which they are here.
    out[nonempty] = np.minimum(out[nonempty], mins)
    return out


def pull_block(graph: CSRGraph, labels: np.ndarray,
               lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
    """Candidate labels for rows ``[lo, hi)`` from the current array.

    Returns ``(new_labels_block, changed_mask)`` where
    ``new_labels_block[i] = min(labels[lo+i], min of neighbour labels)``.
    Does *not* write; callers decide commit policy (double-buffered for
    DO-LP, in-place for Thrifty).
    """
    if hi <= lo:
        empty = np.empty(0, dtype=labels.dtype)
        return empty, np.empty(0, dtype=bool)
    s0 = int(graph.indptr[lo])
    s1 = int(graph.indptr[hi])
    own = labels[lo:hi]
    if s1 == s0:
        return own.copy(), np.zeros(hi - lo, dtype=bool)
    nbr_labels = labels[graph.indices[s0:s1]]
    starts = (graph.indptr[lo:hi] - s0).astype(np.int64)
    ends = (graph.indptr[lo + 1:hi + 1] - s0).astype(np.int64)
    new = segment_min(nbr_labels, starts, ends, own)
    return new, new < own


def pull_block_zero_cut(graph: CSRGraph, labels: np.ndarray,
                        lo: int, hi: int,
                        skip: np.ndarray | None = None
                        ) -> tuple[np.ndarray, np.ndarray, int]:
    """Pull over rows ``[lo, hi)`` with Zero Convergence *executed*.

    Where :func:`pull_block` gathers every row's full adjacency,
    this kernel gathers only what a sequential Zero-Convergence scan
    (Algorithm 2 line 31) touches: skipped rows (own label already
    zero, or ``skip[i]``) contribute nothing, and every other row's
    scan stops at its first zero-labelled neighbour.  Labels are
    non-negative, so a prefix ending at a zero has the same minimum as
    the full row — the result is bit-identical to :func:`pull_block`
    while the gathered edge set matches the counted one exactly.

    Returns ``(new_labels_block, changed_mask, edges_scanned)`` with
    ``edges_scanned == zero_cut_scan_lengths(...).sum()``.  Does not
    write; callers decide commit policy.
    """
    if hi <= lo:
        empty = np.empty(0, dtype=labels.dtype)
        return empty, np.empty(0, dtype=bool), 0
    own = labels[lo:hi]
    if skip is None:
        skip = own == 0
    scanned = zero_cut_scan_lengths(graph, labels, lo, hi, skip)
    total = int(scanned.sum())
    new = own.copy()
    if total == 0:
        return new, np.zeros(hi - lo, dtype=bool), 0
    row_start = graph.indptr[lo:hi].astype(np.int64)
    starts = np.zeros(hi - lo, dtype=np.int64)
    np.cumsum(scanned[:-1], out=starts[1:])
    ends = starts + scanned
    idx = np.arange(total, dtype=np.int64)
    seg = np.searchsorted(starts, idx, side="right") - 1
    pos = row_start[seg] + (idx - starts[seg])
    nbr_labels = labels[graph.indices[pos]]
    new = segment_min(nbr_labels, starts, ends, own)
    return new, new < own, total


def zero_cut_scan_lengths(graph: CSRGraph, labels: np.ndarray,
                          lo: int, hi: int,
                          skip: np.ndarray | None = None) -> np.ndarray:
    """Edges a Zero-Convergence scan of rows ``[lo, hi)`` would touch.

    For each row: 0 if the row is skipped (own label already zero),
    otherwise the 1-based position of its first zero-labelled
    neighbour (the scan breaks there), or the full degree when no
    neighbour is zero.

    ``skip`` is the per-row skip mask (default: ``labels[lo:hi]==0``).
    """
    if hi <= lo:
        return np.empty(0, dtype=np.int64)
    s0 = int(graph.indptr[lo])
    s1 = int(graph.indptr[hi])
    row_start = (graph.indptr[lo:hi] - s0).astype(np.int64)
    row_end = (graph.indptr[lo + 1:hi + 1] - s0).astype(np.int64)
    full = row_end - row_start
    if s1 == s0:
        return np.zeros(hi - lo, dtype=np.int64)
    zero_pos = np.flatnonzero(labels[graph.indices[s0:s1]] == 0)
    if zero_pos.size:
        k = np.searchsorted(zero_pos, row_start, side="left")
        k_clip = np.minimum(k, zero_pos.size - 1)
        first = zero_pos[k_clip]
        has_zero = (k < zero_pos.size) & (first < row_end)
        scanned = np.where(has_zero, first - row_start + 1, full)
    else:
        scanned = full
    if skip is None:
        skip = labels[lo:hi] == 0
    return np.where(skip, 0, scanned)


def intra_block_groups(graph: CSRGraph, block_bounds: np.ndarray
                       ) -> np.ndarray:
    """Connected components of each block's internal subgraph.

    ``block_bounds`` partitions ``[0, n)`` into contiguous blocks;
    an edge is *internal* when both endpoints fall in the same block.
    Returns ``groups[v]`` = minimum vertex id of v's internal
    component (so ``groups[v] == v`` for singleton/boundary-only
    vertices).

    This is simulation machinery for the Unified Labels Array: a real
    thread sweeps its range vertex-by-vertex reading freshly-written
    labels, so a label entering a block propagates through the block's
    internal subgraph within the same iteration.  The engine models
    that as one group-min per block per pull ("block-asynchronous"
    execution); the groups are static, so they are computed once here
    by pointer-jumping CC over intra-block edges only.
    """
    n = graph.num_vertices
    parent = np.arange(n, dtype=np.int64)
    if n == 0 or graph.num_edges == 0:
        return parent
    src = graph.edge_sources()
    dst = graph.indices.astype(np.int64)
    block_of = np.searchsorted(block_bounds, np.arange(n), side="right")
    same = block_of[src] == block_of[dst]
    eu, ev = src[same], dst[same]
    while eu.size:
        # Resolve roots, keep only cross-component edges, link to min.
        while True:
            nxt = parent[parent]
            if np.array_equal(nxt, parent):
                break
            parent = nxt
        ru, rv = parent[eu], parent[ev]
        cross = ru != rv
        eu, ev, ru, rv = eu[cross], ev[cross], ru[cross], rv[cross]
        if eu.size == 0:
            break
        lo = np.minimum(ru, rv)
        hi = np.maximum(ru, rv)
        np.minimum.at(parent, hi, lo)
    while True:
        nxt = parent[parent]
        if np.array_equal(nxt, parent):
            return parent
        parent = nxt


def block_async_min(jacobi: np.ndarray, groups_local: np.ndarray
                    ) -> np.ndarray:
    """Propagate one Jacobi step to quiescence within a block.

    ``jacobi`` holds each row's one-step min (own + neighbour
    snapshot); ``groups_local`` the 0-based internal-component id of
    each row.  The block-asynchronous fixpoint is simply the group
    minimum of the Jacobi values — every label entering an internal
    component floods it.
    """
    tmp = np.full(jacobi.size, _INT64_MAX, dtype=np.int64)
    np.minimum.at(tmp, groups_local, jacobi)
    return np.minimum(jacobi, tmp[groups_local])


def chunked_cuts(boundaries: np.ndarray, block_size: int) -> np.ndarray:
    """Subdivide boundary-delimited segments into ``block_size`` chunks.

    ``boundaries`` is a strictly-increasing array of offsets; each
    segment ``[boundaries[i], boundaries[i+1])`` is cut into pieces of
    at most ``block_size`` starting at the segment's own start, so no
    chunk ever crosses a boundary.  Returns the ascending cut offsets,
    from ``boundaries[0]`` to ``boundaries[-1]`` inclusive: chunk ``i``
    is ``[cuts[i], cuts[i+1])``.
    """
    boundaries = np.asarray(boundaries, dtype=np.int64)
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    seg = np.diff(boundaries)
    if np.any(seg <= 0):
        raise ValueError("boundaries must be strictly increasing")
    nchunks = (seg + block_size - 1) // block_size
    total = int(nchunks.sum())
    base = np.repeat(boundaries[:-1], nchunks)
    first = np.repeat(np.cumsum(nchunks) - nchunks, nchunks)
    offs = (np.arange(total, dtype=np.int64) - first) * block_size
    return np.concatenate([base + offs, boundaries[-1:]])


def push_scan_lengths(graph: CSRGraph, active: np.ndarray,
                      starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Atomic-min attempts a push over each chunk
    ``active[starts[i]:ends[i]]`` performs — the sum of the chunk
    rows' degrees (a push scans every incident edge; there is no
    zero-cut on the push side, the early exit lives in the CAS)."""
    return blockwise_sums(graph.degrees[active], starts, ends)


def fused_push_window(graph: CSRGraph, read: np.ndarray,
                      write: np.ndarray, rows: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
    """Speculative fused evaluation of a window of push chunks.

    Concatenates the adjacency of ``rows`` (the window's chunks in
    worklist order), gathers each edge's source value from ``read``,
    and marks the edges whose atomic-min against ``write`` would
    succeed on the current snapshot.  Returns ``(targets, values,
    counts, improving)`` with ``counts[i] = degree(rows[i])``.

    The evaluation is exact up to and including the *first* chunk
    containing an improving edge: every earlier chunk commits nothing,
    so a sequential per-chunk replay would have read the same
    snapshot.  Callers commit that chunk's slice and re-evaluate from
    the chunk after it (see ``_Engine._push_run``).
    """
    targets, counts = concat_adjacency(graph, rows)
    if targets.size == 0:
        return (targets, np.empty(0, dtype=read.dtype), counts,
                np.empty(0, dtype=bool))
    values = np.repeat(read[rows], counts)
    improving = values < write[targets]
    return targets, values, counts, improving


def concat_adjacency(graph: CSRGraph, rows: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the adjacency lists of ``rows``.

    Returns ``(targets, counts)`` where ``targets`` is the
    concatenation of each row's neighbours (row-major order) and
    ``counts[i] = degree(rows[i])``.  Sources repeated per edge are
    ``np.repeat(rows, counts)``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    counts = graph.degrees[rows]
    total = int(counts.sum())
    if total == 0:
        return (np.empty(0, dtype=graph.indices.dtype),
                counts.astype(np.int64))
    offsets = np.zeros(rows.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    idx = np.arange(total, dtype=np.int64)
    seg = np.searchsorted(offsets, idx, side="right") - 1
    pos = graph.indptr[rows][seg] + (idx - offsets[seg])
    return graph.indices[pos], counts.astype(np.int64)


def batch_atomic_min(array: np.ndarray,
                     indices: np.ndarray,
                     values: np.ndarray) -> np.ndarray:
    """Linearized batch of concurrent atomic-min operations.

    Applies ``array[indices[k]] = min(array[indices[k]], values[k])``
    for all k as one unbuffered scatter, then returns the *unique*
    target indices whose cells actually changed (ascending).  This
    matches the set of vertices any real interleaving of CAS-min
    loops would enqueue (modulo duplicates, which the paper's shared
    byte array also only suppresses best-effort).
    """
    indices = np.asarray(indices)
    values = np.asarray(values)
    if indices.shape != values.shape:
        raise ValueError("indices and values must have equal shapes")
    if indices.size == 0:
        return np.empty(0, dtype=np.int64)
    targets = np.unique(indices)
    before = array[targets].copy()
    np.minimum.at(array, indices, values)
    return targets[array[targets] < before].astype(np.int64)


def batch_atomic_min_count(array: np.ndarray,
                           indices: np.ndarray,
                           values: np.ndarray) -> tuple[np.ndarray, int]:
    """Like :func:`batch_atomic_min`, also counting successful CAS ops.

    The count approximates how many individual ``atomic_min`` calls
    would have returned True in a sequential replay: for each target
    cell, every distinct strictly-decreasing value in arrival order
    would have succeeded once.  We report the linearized lower bound
    (one success per changed cell) plus the number of duplicate
    attempts that carried the winning value, which the counters use
    for instruction accounting.
    """
    changed = batch_atomic_min(array, indices, values)
    if changed.size == 0:
        return changed, 0
    indices = np.asarray(indices)
    values = np.asarray(values)
    # An attempt "carried the winning value" when its value equals the
    # cell's final (minimum) value; restrict to cells that changed so
    # no-op attempts on already-minimal cells are not credited.
    pos = np.searchsorted(changed, indices)
    on_changed = changed[np.minimum(pos, changed.size - 1)] == indices
    winning = values == array[indices]
    return changed, int(np.count_nonzero(on_changed & winning))


def scatter_min_count(array: np.ndarray,
                      indices: np.ndarray,
                      values: np.ndarray) -> int:
    """Scatter-min that counts *slots* whose cell decreased.

    Unlike :func:`batch_atomic_min` (which reports unique changed
    cells), this counts one success per input slot whose cell ended
    below that slot's pre-batch snapshot — the convention the
    union-find hooks use to charge one link per winning CAS attempt
    (``disjoint_set.link_roots``).  Duplicated indices therefore may
    count more than once, exactly as the per-slot replay would.
    """
    indices = np.asarray(indices)
    values = np.asarray(values)
    if indices.size == 0:
        return 0
    before = array[indices].copy()
    np.minimum.at(array, indices, values)
    return int(np.count_nonzero(array[indices] < before))


class NumpyBackend:
    """The canonical kernel backend: pure-numpy batch kernels.

    Every registered backend must be bit-identical to this one on all
    outputs (labels, masks, scan lengths, counts).  Compiled backends
    subclass it and override the hot kernels, inheriting the
    structural helpers (``chunked_cuts``, ``intra_block_groups``)
    that run once per graph and never dominate.
    """

    name = "numpy"

    blockwise_sums = staticmethod(blockwise_sums)
    segment_min = staticmethod(segment_min)
    pull_block = staticmethod(pull_block)
    pull_block_zero_cut = staticmethod(pull_block_zero_cut)
    zero_cut_scan_lengths = staticmethod(zero_cut_scan_lengths)
    intra_block_groups = staticmethod(intra_block_groups)
    block_async_min = staticmethod(block_async_min)
    chunked_cuts = staticmethod(chunked_cuts)
    push_scan_lengths = staticmethod(push_scan_lengths)
    fused_push_window = staticmethod(fused_push_window)
    concat_adjacency = staticmethod(concat_adjacency)
    batch_atomic_min = staticmethod(batch_atomic_min)
    batch_atomic_min_count = staticmethod(batch_atomic_min_count)
    scatter_min_count = staticmethod(scatter_min_count)

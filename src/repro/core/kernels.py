"""Vectorized traversal kernels shared by DO-LP and Thrifty (facade).

As of the backend redesign this module is a thin dispatching facade
over the *default* kernel backend (see :mod:`repro.core.backends`):
every function forwards to ``get_backend()`` — the canonical
``"numpy"`` backend unless a caller threads an explicit ``backend``
option through the engine, which then holds its own backend object
and never routes through here.  The facade keeps the historical
import surface stable for tests, notebooks and external callers;
implementations live in the backend-private modules and must be
bit-identical across backends.

The kernels are the batch equivalents of the paper's C inner loops:

* :func:`pull_block` — the pull traversal over a contiguous vertex
  block: per-row minimum over neighbour labels.
* :func:`zero_cut_scan_lengths` — exact count of edges a sequential
  scan with the Zero Convergence early-exit (Algorithm 2 line 31)
  would touch.
* :func:`concat_adjacency` — gather the adjacency lists of an
  arbitrary vertex set (push traversals, BFS frontiers).
* :func:`fused_push_window` — speculative fused evaluation of a
  window of push chunks.
* :func:`chunked_cuts` / :func:`push_scan_lengths` — chunk a
  boundary-segmented worklist into ``block_size`` pieces and count
  the atomic-min attempts each chunk performs.

The kernels *compute* with whole-block batches but *account* work in
the counters exactly as the modelled sequential/parallel C loops
would — counters, not NumPy op counts, are the reproduction's ground
truth (DESIGN.md Section 5).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .backends import get_backend

__all__ = [
    "pull_block",
    "pull_block_zero_cut",
    "zero_cut_scan_lengths",
    "concat_adjacency",
    "fused_push_window",
    "chunked_cuts",
    "push_scan_lengths",
    "segment_min",
    "intra_block_groups",
    "block_async_min",
    "blockwise_sums",
]


def blockwise_sums(values: np.ndarray, starts: np.ndarray,
                   ends: np.ndarray) -> np.ndarray:
    """Per-block sums ``values[starts[i]:ends[i]]`` via one prefix sum.

    Well-defined for empty blocks (``starts[i] == ends[i]`` sums to
    0); blocks may overlap or be listed in any order.
    """
    return get_backend().blockwise_sums(values, starts, ends)


def segment_min(values: np.ndarray, starts: np.ndarray,
                ends: np.ndarray, fill: np.ndarray) -> np.ndarray:
    """Per-segment minimum of ``values[starts[i]:ends[i]]``.

    Empty segments get ``fill[i]``.  Segments must be non-overlapping
    and ascending (CSR rows always are).
    """
    return get_backend().segment_min(values, starts, ends, fill)


def pull_block(graph: CSRGraph, labels: np.ndarray,
               lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
    """Candidate labels for rows ``[lo, hi)`` from the current array.

    Returns ``(new_labels_block, changed_mask)`` where
    ``new_labels_block[i] = min(labels[lo+i], min of neighbour labels)``.
    Does *not* write; callers decide commit policy (double-buffered for
    DO-LP, in-place for Thrifty).
    """
    return get_backend().pull_block(graph, labels, lo, hi)


def pull_block_zero_cut(graph: CSRGraph, labels: np.ndarray,
                        lo: int, hi: int,
                        skip: np.ndarray | None = None
                        ) -> tuple[np.ndarray, np.ndarray, int]:
    """Pull over rows ``[lo, hi)`` with Zero Convergence *executed*.

    Gathers only what a sequential Zero-Convergence scan (Algorithm 2
    line 31) touches: skipped rows (own label already zero, or
    ``skip[i]``) contribute nothing, every other row's scan stops at
    its first zero-labelled neighbour.  Bit-identical to
    :func:`pull_block` while the gathered edge set matches the counted
    one exactly.  Returns ``(new_labels_block, changed_mask,
    edges_scanned)`` with ``edges_scanned ==
    zero_cut_scan_lengths(...).sum()``.
    """
    return get_backend().pull_block_zero_cut(graph, labels, lo, hi, skip)


def zero_cut_scan_lengths(graph: CSRGraph, labels: np.ndarray,
                          lo: int, hi: int,
                          skip: np.ndarray | None = None) -> np.ndarray:
    """Edges a Zero-Convergence scan of rows ``[lo, hi)`` would touch.

    For each row: 0 if the row is skipped (own label already zero),
    otherwise the 1-based position of its first zero-labelled
    neighbour (the scan breaks there), or the full degree when no
    neighbour is zero.  ``skip`` is the per-row skip mask (default:
    ``labels[lo:hi]==0``).
    """
    return get_backend().zero_cut_scan_lengths(graph, labels, lo, hi,
                                               skip)


def intra_block_groups(graph: CSRGraph, block_bounds: np.ndarray
                       ) -> np.ndarray:
    """Connected components of each block's internal subgraph.

    ``block_bounds`` partitions ``[0, n)`` into contiguous blocks; an
    edge is *internal* when both endpoints fall in the same block.
    Returns ``groups[v]`` = minimum vertex id of v's internal
    component.  Simulation machinery for the Unified Labels Array —
    see the canonical backend's docstring for the full argument.
    """
    return get_backend().intra_block_groups(graph, block_bounds)


def block_async_min(jacobi: np.ndarray, groups_local: np.ndarray
                    ) -> np.ndarray:
    """Propagate one Jacobi step to quiescence within a block.

    The block-asynchronous fixpoint is the group minimum of the
    Jacobi values — every label entering an internal component floods
    it.
    """
    return get_backend().block_async_min(jacobi, groups_local)


def chunked_cuts(boundaries: np.ndarray, block_size: int) -> np.ndarray:
    """Subdivide boundary-delimited segments into ``block_size`` chunks.

    Each segment ``[boundaries[i], boundaries[i+1])`` is cut into
    pieces of at most ``block_size`` starting at the segment's own
    start, so no chunk ever crosses a boundary.  Returns the ascending
    cut offsets; chunk ``i`` is ``[cuts[i], cuts[i+1])``.
    """
    return get_backend().chunked_cuts(boundaries, block_size)


def push_scan_lengths(graph: CSRGraph, active: np.ndarray,
                      starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Atomic-min attempts a push over each chunk
    ``active[starts[i]:ends[i]]`` performs — the sum of the chunk
    rows' degrees (a push scans every incident edge; there is no
    zero-cut on the push side, the early exit lives in the CAS)."""
    return get_backend().push_scan_lengths(graph, active, starts, ends)


def fused_push_window(graph: CSRGraph, read: np.ndarray,
                      write: np.ndarray, rows: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
    """Speculative fused evaluation of a window of push chunks.

    Concatenates the adjacency of ``rows``, gathers each edge's source
    value from ``read``, and marks the edges whose atomic-min against
    ``write`` would succeed on the current snapshot.  Returns
    ``(targets, values, counts, improving)`` with ``counts[i] =
    degree(rows[i])``.  Exact up to and including the *first* chunk
    containing an improving edge (see ``_Engine._push_run``).
    """
    return get_backend().fused_push_window(graph, read, write, rows)


def concat_adjacency(graph: CSRGraph, rows: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the adjacency lists of ``rows``.

    Returns ``(targets, counts)`` where ``targets`` is the
    concatenation of each row's neighbours (row-major order) and
    ``counts[i] = degree(rows[i])``.  Sources repeated per edge are
    ``np.repeat(rows, counts)``.
    """
    return get_backend().concat_adjacency(graph, rows)

"""Straight-line reference implementations of Algorithms 1 and 2.

These transliterate the paper's pseudocode per-vertex, with no
vectorization and no scheduling model: a single simulated thread
processes vertices in ascending order.  They are intentionally slow
and exist as ground truth for the test suite:

* components must match the production implementations exactly;
* the unified-labels reference exhibits in-iteration propagation at
  single-vertex granularity, bounding the iteration counts the
  block-granular production kernel may produce.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "reference_dolp",
    "reference_thrifty",
    "reference_label_propagation_iterations",
]


def reference_dolp(graph: CSRGraph,
                   threshold: float = 0.05) -> tuple[np.ndarray, int]:
    """Algorithm 1, executed single-threaded per the pseudocode.

    Returns ``(labels, iterations)``.
    """
    n = graph.num_vertices
    old_lbs = np.arange(n, dtype=np.int64)
    new_lbs = old_lbs.copy()
    old_fr = set(range(n))
    iterations = 0
    while old_fr:
        iterations += 1
        new_fr: set[int] = set()
        active_edges = sum(graph.degree(v) for v in old_fr)
        density = ((len(old_fr) + active_edges) / graph.num_edges
                   if graph.num_edges else 0.0)
        if density < threshold:
            # Push traversal.
            for v in old_fr:
                for u in graph.neighbors(v):
                    u = int(u)
                    if old_lbs[v] < new_lbs[u]:
                        new_lbs[u] = old_lbs[v]
                        new_fr.add(u)
        else:
            # Pull traversal over all vertices, reading old labels.
            for v in range(n):
                new_label = old_lbs[v]
                for u in graph.neighbors(v):
                    if old_lbs[u] < new_label:
                        new_label = old_lbs[u]
                if new_label < old_lbs[v]:
                    new_lbs[v] = new_label
                    new_fr.add(v)
        old_lbs[:] = new_lbs
        old_fr = new_fr
    return old_lbs, iterations


def reference_thrifty(graph: CSRGraph,
                      threshold: float = 0.01) -> tuple[np.ndarray, int]:
    """Algorithm 2, executed single-threaded per the pseudocode.

    One labels array (Unified Labels), Zero Planting on the max-degree
    vertex, an Initial Push iteration, and Zero Convergence checks in
    the pull loop.  Returns ``(labels, iterations)`` counting the
    Initial Push as an iteration (Section V-C convention).
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64), 0
    labels = np.arange(1, n + 1, dtype=np.int64)
    hub = graph.max_degree_vertex()
    labels[hub] = 0

    iterations = 1  # the Initial Push
    frontier: set[int] = set()
    for u in graph.neighbors(hub):
        u = int(u)
        if labels[hub] < labels[u]:
            labels[u] = labels[hub]
            frontier.add(u)

    while frontier:
        iterations += 1
        new_fr: set[int] = set()
        active_edges = sum(graph.degree(v) for v in frontier)
        density = ((len(frontier) + active_edges) / graph.num_edges
                   if graph.num_edges else 0.0)
        if density < threshold:
            for v in sorted(frontier):
                for u in graph.neighbors(v):
                    u = int(u)
                    if labels[v] < labels[u]:
                        labels[u] = labels[v]
                        new_fr.add(u)
        else:
            for v in range(n):
                if labels[v] == 0:   # Zero Convergence: skip
                    continue
                new_label = labels[v]
                for u in graph.neighbors(v):
                    if labels[u] < new_label:
                        new_label = labels[u]
                    if new_label == 0:   # Zero Convergence: break
                        break
                if new_label < labels[v]:
                    labels[v] = new_label
                    new_fr.add(v)
        frontier = new_fr
    return labels, iterations


def reference_label_propagation_iterations(graph: CSRGraph) -> int:
    """Iterations of plain synchronous LP (no direction optimization).

    Used in tests as an upper bound: unified-array variants must not
    need more rounds than fully synchronous label propagation.
    """
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    iterations = 0
    while True:
        iterations += 1
        new = labels.copy()
        for v in range(n):
            for u in graph.neighbors(v):
                if labels[u] < new[v]:
                    new[v] = labels[u]
        if np.array_equal(new, labels):
            return iterations
        labels = new

"""Direction-Optimizing Label Propagation (Algorithm 1) — the baseline.

Two label arrays with an end-of-iteration synchronization pass, a
detailed frontier in every iteration, identity initial labels, and the
classic ~5% push/pull density threshold.
"""

from __future__ import annotations

from dataclasses import replace

from ..graph.csr import CSRGraph
from ..parallel.machine import SKYLAKEX, MachineSpec
from .engine import LPOptions, label_propagation_cc
from .result import CCResult

__all__ = ["DOLP_OPTIONS", "dolp_cc"]

#: Canonical DO-LP configuration (Section II-A; threshold per [35], [25]).
DOLP_OPTIONS = LPOptions(
    unified_labels=False,
    zero_convergence=False,
    zero_planting=False,
    initial_push=False,
    count_only_pulls=False,
    threshold=0.05,
    algorithm_name="dolp",
)


def dolp_cc(graph: CSRGraph,
            *,
            machine: MachineSpec = SKYLAKEX,
            num_threads: int | None = None,
            dataset: str = "",
            **overrides) -> CCResult:
    """Run DO-LP connected components.

    ``overrides`` may adjust any :class:`LPOptions` field except the
    four optimization switches (use :mod:`repro.core.engine` directly
    for custom ablations).
    """
    opts = replace(DOLP_OPTIONS, machine=machine,
                   num_threads=num_threads or machine.cores, **overrides)
    return label_propagation_cc(graph, opts, dataset=dataset)

"""Typed options for the public front door.

Each algorithm name in :data:`repro.api.ALGORITHMS` has one frozen
dataclass describing every tunable it accepts; the front door takes an
instance via ``connected_components(graph, method, options=...)``.
Because the classes are frozen and hold only scalars, an options value
is hashable and comparable — the service layer uses the resolved
instance directly as part of its result-cache key, so two requests
that spell the same configuration differently (legacy keywords,
defaulted fields, an explicitly constructed dataclass) canonicalize to
the same cache entry.

==============  ====================================================
``thrifty``     :class:`ThriftyOptions`
``dolp``        :class:`DOLPOptions`
``unified``     :class:`UnifiedOptions`
``sv``          :class:`UnionFindOptions`
``fastsv``      :class:`FastSVOptions`
``lp-shortcut`` :class:`LPShortcutOptions`
``jt``          :class:`JTOptions`
``afforest``    :class:`AfforestOptions`
``bfs``         :class:`BFSOptions`
``kla``         :class:`KLAOptions` (reused from :mod:`repro.core.kla`)
``connectit``   :class:`ConnectItOptions`
``distributed`` :class:`DistributedOptions`
==============  ====================================================

LP-family fields default to ``None`` meaning "keep the algorithm's
canonical value" (:data:`repro.core.thrifty.THRIFTY_OPTIONS` etc.), so
a default-constructed options object reproduces the historical
behaviour bit-for-bit.  The legacy ``**kwargs`` spelling still works
through :func:`resolve_options`, which maps the keywords onto the
dataclass and emits a :class:`DeprecationWarning`.

Every engine-bearing options class carries a ``backend`` field naming
the kernel backend the run dispatches its hot kernels through
(``None`` = the canonical ``"numpy"`` backend; see
:mod:`repro.core.backends`).  It is validated at construction by the
one shared validator — an unknown name raises ``ValueError`` listing
``available_backends()`` — and, because the resolved options instance
is the cache-key component, cached results and learned costs never
mix backends.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Any

from .core.backends import canonical_backend
from .core.kla import KLAOptions
from .storage.modes import canonical_storage

__all__ = [
    "ThriftyOptions",
    "DOLPOptions",
    "UnifiedOptions",
    "UnionFindOptions",
    "FastSVOptions",
    "LPShortcutOptions",
    "JTOptions",
    "AfforestOptions",
    "BFSOptions",
    "KLAOptions",
    "ConnectItOptions",
    "DistributedOptions",
    "ServiceOptions",
    "OPTION_TYPES",
    "options_for",
    "resolve_options",
    "to_call_kwargs",
]

_DEPRECATION_MESSAGE = (
    "passing algorithm options as **kwargs is deprecated; pass a typed "
    "options dataclass instead, e.g. options={cls}({kwargs})")


@dataclass(frozen=True)
class _LPEngineOptions:
    """Shared tunables of the label-propagation engine front doors.

    ``None`` means "use the algorithm's canonical value" — see
    :class:`repro.core.engine.LPOptions` for the semantics and
    validation of each field.  The four optimization switches are NOT
    exposed here; ablations go through :mod:`repro.core.engine`
    directly (they are different *algorithms*, not tunings).

    ``storage`` selects where the edge array lives during the run:
    ``None``/``"resident"`` (in RAM, the default — both spellings
    canonicalize to ``None`` so they share one cache key, mirroring
    ``backend``) or ``"out_of_core"`` (streamed from a blocked on-disk
    file through a cache bounded by ``resident_bytes``; see
    :mod:`repro.storage`).  Results are bit-identical either way.
    """

    threshold: float | None = None
    num_threads: int | None = None
    block_size: int | None = None
    partitions_per_thread: int | None = None
    frontier_switch_density: float | None = None
    fuse_pull_blocks: bool | None = None
    fuse_push: bool | None = None
    race_rate: float | None = None
    max_iterations: int | None = None
    track_convergence: bool | None = None
    backend: str | None = None
    storage: str | None = None
    resident_bytes: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "backend",
                           canonical_backend(self.backend))
        object.__setattr__(self, "storage",
                           canonical_storage(self.storage))
        if self.resident_bytes is not None and self.resident_bytes < 1:
            raise ValueError("resident_bytes must be >= 1")


@dataclass(frozen=True)
class ThriftyOptions(_LPEngineOptions):
    """Tunables for Thrifty (Algorithm 2)."""


@dataclass(frozen=True)
class DOLPOptions(_LPEngineOptions):
    """Tunables for DO-LP (Algorithm 1)."""


@dataclass(frozen=True)
class UnifiedOptions(_LPEngineOptions):
    """Tunables for the DO-LP + Unified Labels ablation variant."""


@dataclass(frozen=True)
class UnionFindOptions:
    """Tunables shared by the tree-hooking baselines (``sv``).

    ``local`` selects the worklist-local union-find substrate (the
    default); ``False`` replays the all-vertex reference with
    identical labels and link counts.  ``backend`` selects the kernel
    backend for the link/hook scatters (bit-identical results).
    """

    local: bool = True
    backend: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "backend",
                           canonical_backend(self.backend))


@dataclass(frozen=True)
class JTOptions(UnionFindOptions):
    """Tunables for Jayanti-Tarjan (adds the randomization seed)."""

    seed: int = 0


@dataclass(frozen=True)
class AfforestOptions(UnionFindOptions):
    """Tunables for Afforest (sampling phase parameters)."""

    neighbor_rounds: int = 2
    sample_size: int = 1024
    seed: int = 0


@dataclass(frozen=True)
class FastSVOptions:
    """FastSV has no tunables; the class exists for uniformity."""


@dataclass(frozen=True)
class BFSOptions:
    """BFS-CC has no tunables; the class exists for uniformity."""


@dataclass(frozen=True)
class LPShortcutOptions:
    """Tunables for LP with pointer-jump shortcutting."""

    shortcut_depth: int = 2


@dataclass(frozen=True)
class DistributedOptions:
    """Configuration of the sharded (distributed-memory) CC tier.

    ``algorithm`` picks the method run on the simulated fabric:
    ``"lp"`` (distributed Thrifty-style label propagation) or
    ``"fastsv"`` (the distributed union-find competitor).
    ``partition`` selects the vertex-to-rank split (``"block"`` equal
    vertices, ``"degree_balanced"`` equal edges).  ``combining``
    enables sender-side min-combining + batched envelopes in the
    fabric; ``False`` replays the naive per-pair wire accounting with
    bit-identical final labels.  The three LP switches mirror the
    paper's optimizations (ignored by ``fastsv``).
    """

    num_ranks: int = 8
    algorithm: str = "lp"
    partition: str = "block"
    combining: bool = True
    zero_planting: bool = True
    zero_convergence: bool = True
    # True: send a mirror's label only when it changed since the last
    # send (change-tracking, what Thrifty-style distributed LP does).
    # False: the naive SpMV/allgather pattern — every superstep, every
    # boundary vertex broadcasts its label to each neighbouring rank.
    dedup_sends: bool = True
    max_supersteps: int = 100_000
    # Kernel backend for the rank-local pulls (None = canonical numpy).
    backend: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "backend",
                           canonical_backend(self.backend))
        if self.num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if self.algorithm not in ("lp", "fastsv"):
            raise ValueError(
                f"unknown distributed algorithm {self.algorithm!r}; "
                "pick 'lp' or 'fastsv'")
        if self.partition not in ("block", "degree_balanced"):
            raise ValueError(
                f"unknown partition strategy {self.partition!r}; "
                "pick 'block' or 'degree_balanced'")
        if self.max_supersteps < 1:
            raise ValueError("max_supersteps must be >= 1")


@dataclass(frozen=True)
class ServiceOptions:
    """Scheduler configuration of the async serving executor.

    Not an algorithm options class (it never enters a result-cache
    key): it shapes *how* :class:`repro.service.CCService` schedules
    work on its simulated clock, not what any run computes.

    ``concurrency`` is the number of simulated workers that may
    compute at once.  ``max_queue_ms`` caps the planner-predicted
    simulated-ms backlog admitted into the queue; ``max_queue_depth``
    caps the queued request count (``None`` disables either check —
    the default service never rejects).  ``tenant_quota_ms`` caps one
    tenant's outstanding (queued + running) predicted ms, so a heavy
    tenant is rejected before it can starve the rest.  ``num_lanes``
    is the number of strict-priority lanes; a request's ``priority``
    is clamped into ``[0, num_lanes)``, lane 0 drains first.

    ``delta_serving`` enables the incremental tier: a cache miss on a
    mutated graph may be served by delta-updating a predecessor's
    cached labels instead of recomputing (bit-identical labels, see
    :mod:`repro.incremental`).  ``max_delta_chain`` bounds how many
    lineage steps the executor walks looking for a cached seed — a
    longer chain replays more batched edges, and past the bound a
    recompute is predicted cheaper anyway.

    ``feedback`` enables the measured-cost feedback loop: every
    executed run feeds its measured simulated-ms back into the
    registry's :class:`~repro.service.feedback.RouterFeedback`
    posterior, and routing / admission / delta gating apply the
    learned per-fingerprint corrections on top of the static cost
    model.  With no observations the corrections are exactly 1.0, so
    enabling feedback never changes cold-start routing.
    ``explore_rate`` is the epsilon of the seeded epsilon-greedy
    exploration policy: when the correction-adjusted
    :attr:`~repro.service.planner.RoutePlan.margin` of an auto-routed
    request falls below ``explore_margin``, the runner-up family is
    deliberately run with probability ``explore_rate`` (deterministic
    given ``explore_seed``), so a near-margin wrong prior gets the
    measured observation that falsifies it.  The default rate of 0.0
    never explores.
    """

    concurrency: int = 1
    max_queue_ms: float | None = None
    max_queue_depth: int | None = None
    tenant_quota_ms: float | None = None
    num_lanes: int = 2
    delta_serving: bool = True
    max_delta_chain: int = 8
    feedback: bool = True
    explore_margin: float = 1.25
    explore_rate: float = 0.0
    explore_seed: int = 0

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.num_lanes < 1:
            raise ValueError("num_lanes must be >= 1")
        if self.max_delta_chain < 1:
            raise ValueError("max_delta_chain must be >= 1")
        if self.max_queue_ms is not None and self.max_queue_ms < 0:
            raise ValueError("max_queue_ms must be >= 0")
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if self.tenant_quota_ms is not None and self.tenant_quota_ms <= 0:
            raise ValueError("tenant_quota_ms must be > 0")
        if self.explore_margin < 1.0:
            raise ValueError("explore_margin must be >= 1.0")
        if not 0.0 <= self.explore_rate <= 1.0:
            raise ValueError("explore_rate must be in [0, 1]")


@dataclass(frozen=True)
class ConnectItOptions:
    """One (sampling, finish) point of the ConnectIt design space.

    ``k`` parameterizes k-out sampling and ``rounds`` the BFS/LDD
    sampling strategies; ``None`` keeps the strategy's own default.
    """

    sampling: str = "kout"
    finish: str = "skip-giant"
    seed: int = 0
    local: bool = True
    k: int | None = None
    rounds: int | None = None


#: method name -> its options dataclass.  ``KLAOptions`` is the
#: canonical KLA configuration object reused as-is.
OPTION_TYPES: dict[str, type] = {
    "thrifty": ThriftyOptions,
    "dolp": DOLPOptions,
    "unified": UnifiedOptions,
    "sv": UnionFindOptions,
    "fastsv": FastSVOptions,
    "lp-shortcut": LPShortcutOptions,
    "jt": JTOptions,
    "afforest": AfforestOptions,
    "bfs": BFSOptions,
    "kla": KLAOptions,
    "connectit": ConnectItOptions,
    "distributed": DistributedOptions,
}


def options_for(method: str, **fields_) -> Any:
    """Construct the right options dataclass for ``method``.

    Raises ``ValueError`` for an unknown method or an unknown option
    field, naming the valid choices in both cases.
    """
    try:
        cls = OPTION_TYPES[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; pick one of "
            f"{sorted([*OPTION_TYPES, 'auto'])}") from None
    valid = {f.name for f in fields(cls)}
    unknown = sorted(set(fields_) - valid)
    if unknown:
        raise ValueError(
            f"unknown option(s) {unknown} for method {method!r}; "
            f"valid options: {sorted(valid) or '(none)'}")
    return cls(**fields_)


def to_call_kwargs(options: Any) -> dict[str, Any]:
    """Flatten an options dataclass into algorithm keyword arguments.

    ``None`` fields mean "algorithm default" and are omitted, so the
    callee's own defaults stay the single source of truth.
    """
    return {f.name: v for f in fields(options)
            if (v := getattr(options, f.name)) is not None}


def resolve_options(method: str, options: Any,
                    legacy_kwargs: dict[str, Any],
                    *, stacklevel: int = 3) -> Any:
    """Canonicalize the (options=, **kwargs) front-door inputs.

    Exactly one spelling may be used.  Legacy keywords are mapped onto
    the method's dataclass with a :class:`DeprecationWarning`; a
    ``None`` options value resolves to the method's defaults.  The
    returned instance is always of ``OPTION_TYPES[method]`` exactly,
    making it safe to use as a canonical cache-key component.
    """
    cls = OPTION_TYPES.get(method)
    if cls is None:
        raise ValueError(
            f"unknown method {method!r}; pick one of "
            f"{sorted([*OPTION_TYPES, 'auto'])}")
    if legacy_kwargs:
        if options is not None:
            raise ValueError(
                "pass either options= or legacy keyword options, "
                "not both")
        rendered = ", ".join(f"{k}={v!r}"
                             for k, v in legacy_kwargs.items())
        warnings.warn(
            _DEPRECATION_MESSAGE.format(cls=cls.__name__,
                                        kwargs=rendered),
            DeprecationWarning, stacklevel=stacklevel)
        return options_for(method, **legacy_kwargs)
    if options is None:
        return cls()
    if type(options) is not cls:
        raise TypeError(
            f"method {method!r} takes {cls.__name__}, "
            f"got {type(options).__name__}")
    return options

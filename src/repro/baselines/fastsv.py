"""FastSV [63] — the LP-flavoured Shiloach-Vishkin variant.

The paper's Related Work singles out FastSV (and LACC) as algorithms
that look like SV but "use the MIN operator over labels", making them
label-propagation variants.  Including it rounds out the LP family:

Per round (Zhang, Azad & Hu 2020), with parent vector f:

1. stochastic hooking:   f[f[v]] <- min over edges (u,v) of f[f[u]]
2. aggressive hooking:   f[v]    <- min over edges (u,v) of f[f[u]]
3. shortcutting:         f[v]    <- f[f[v]]

All three are min-scatters, so the vectorized implementation is exact.
Terminates when f stops changing; labels are the fully-shortcut roots.

Cost per round: two passes over all edges plus a vertex pass — cheaper
rounds than SV (no full pointer-jump per round) and usually fewer of
them, but still processing all edges every round, which Thrifty avoids.
The final root extraction rides the touched-set ``flatten_parents``
(repro.baselines.disjoint_set): only non-flat entries are revisited
after the discovery sweep, with a bit-identical result.
"""

from __future__ import annotations

import numpy as np

from ..core.result import CCResult
from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters
from ..instrument.trace import Direction, IterationRecord, RunTrace
from ..parallel.machine import SKYLAKEX, MachineSpec
from .disjoint_set import flatten_parents

__all__ = ["fastsv_cc"]

_MAX_ROUNDS = 10_000


def fastsv_cc(graph: CSRGraph, *,
              machine: MachineSpec = SKYLAKEX,
              dataset: str = "") -> CCResult:
    """Run FastSV to convergence; labels are component roots.

    ``machine`` is accepted for front-door uniformity; execution is
    machine-independent (the cost model applies it at timing).
    """
    del machine
    n = graph.num_vertices
    trace = RunTrace(algorithm="fastsv", dataset=dataset)
    f = np.arange(n, dtype=np.int64)
    trace.setup_counters.sequential_accesses += n
    trace.setup_counters.label_writes += n
    if n == 0:
        return CCResult(labels=f, trace=trace)
    src = graph.edge_sources()
    dst = graph.indices.astype(np.int64)
    m = src.size

    for _ in range(_MAX_ROUNDS):
        counters = OpCounters()
        prev = f.copy()
        grandparent = f[f]
        counters.random_accesses += n
        counters.label_reads += n
        gu = grandparent[src]        # f[f[u]] per edge
        counters.edges_processed += m
        counters.random_accesses += 2 * m
        counters.label_reads += 2 * m
        counters.branches += 2 * m
        counters.unpredictable_branches += m
        # 1. stochastic hooking: targets are f[f[v]].
        np.minimum.at(f, grandparent[dst], gu)
        # 2. aggressive hooking: targets are v themselves.
        np.minimum.at(f, dst, gu)
        counters.cas_attempts += 2 * m
        # 3. shortcutting.
        np.minimum.at(f, np.arange(n), f[f])
        counters.random_accesses += n
        counters.label_reads += n
        counters.sequential_accesses += n
        changed = int(np.count_nonzero(f != prev))
        counters.record_cas_successes(changed)
        counters.iterations = 1
        trace.add(IterationRecord(
            index=trace.num_iterations,
            direction=Direction.PUSH,
            density=1.0,
            active_vertices=n,
            active_edges=m,
            changed_vertices=changed,
            converged_fraction=0.0,
            counters=counters,
        ))
        if changed == 0:
            break
    else:
        raise RuntimeError("FastSV failed to converge")
    trace.iterations[-1].converged_fraction = 1.0
    labels = flatten_parents(f)
    return CCResult(labels=labels, trace=trace)

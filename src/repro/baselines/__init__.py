"""Baseline CC algorithms the paper compares against."""

from .afforest import afforest_cc
from .bfs_cc import bfs_cc
from .fastsv import fastsv_cc
from .disjoint_set import (
    DisjointSet,
    charge_finds,
    charge_union,
    flatten_parents,
    link_roots,
    pointer_jump_roots,
    resolve_roots_local,
    shortcut_parents,
    union_edge_batch,
)
from .jayanti_tarjan import jayanti_tarjan_cc
from .lp_shortcut import lp_shortcut_cc
from .shiloach_vishkin import shiloach_vishkin_cc

__all__ = [
    "DisjointSet",
    "pointer_jump_roots",
    "link_roots",
    "flatten_parents",
    "shortcut_parents",
    "resolve_roots_local",
    "union_edge_batch",
    "charge_union",
    "charge_finds",
    "shiloach_vishkin_cc",
    "fastsv_cc",
    "lp_shortcut_cc",
    "jayanti_tarjan_cc",
    "afforest_cc",
    "bfs_cc",
]

"""BFS-CC [30]: one direction-optimizing BFS per component.

Flood-filling CC: repeatedly pick the lowest-id unvisited vertex and
run a direction-optimizing (push/pull a.k.a. top-down/bottom-up) BFS
labelling everything reachable.  Strong on a single low-diameter
component; weak when the graph has many components (per-component
launch + per-level barrier costs) or a high diameter (many levels) —
both visible in Table IV.

Direction switching follows Beamer's heuristic: go bottom-up when the
frontier's out-edges exceed the unexplored edges / alpha; return
top-down when the frontier shrinks below |V| / beta.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import concat_adjacency
from ..core.result import CCResult
from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters
from ..instrument.trace import Direction, IterationRecord, RunTrace
from ..parallel.machine import SKYLAKEX, MachineSpec

__all__ = ["bfs_cc"]

_ALPHA = 14        # top-down -> bottom-up switch (Beamer)
_BETA = 24         # bottom-up -> top-down switch


def _first_hit_lengths(counts: np.ndarray, hit: np.ndarray) -> np.ndarray:
    """Per-segment scan length until the first True in ``hit``.

    ``counts`` are segment lengths partitioning ``hit``; returns, per
    segment, the 1-based position of its first hit, or the full length
    when it has none.
    """
    offsets = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    ends = offsets + counts
    hit_pos = np.flatnonzero(hit)
    if hit_pos.size == 0:
        return counts.copy()
    k = np.searchsorted(hit_pos, offsets, side="left")
    k_clip = np.minimum(k, hit_pos.size - 1)
    first = hit_pos[k_clip]
    has = (k < hit_pos.size) & (first < ends)
    return np.where(has, first - offsets + 1, counts)


def bfs_cc(graph: CSRGraph, *,
           machine: MachineSpec = SKYLAKEX,
           dataset: str = "") -> CCResult:
    """Run BFS-CC; labels are the seed (minimum) vertex id per component.

    ``machine`` is accepted for front-door uniformity; execution is
    machine-independent (the cost model applies it at timing).
    """
    del machine
    n = graph.num_vertices
    trace = RunTrace(algorithm="bfs-cc", dataset=dataset)
    comp = np.full(n, -1, dtype=np.int64)
    trace.setup_counters.sequential_accesses += n
    trace.setup_counters.label_writes += n
    if n == 0:
        return CCResult(labels=comp, trace=trace)
    degrees = graph.degrees
    total_edges = graph.num_edges
    explored_edges = 0
    visited_count = 0
    next_seed = 0

    while visited_count < n:
        while comp[next_seed] != -1:
            next_seed += 1
        seed = next_seed
        comp[seed] = seed
        visited_count += 1
        frontier = np.array([seed], dtype=np.int64)
        bottom_up = False
        while frontier.size:
            counters = OpCounters()
            frontier_edges = int(degrees[frontier].sum())
            unexplored = total_edges - explored_edges
            if not bottom_up and frontier_edges > unexplored / _ALPHA:
                bottom_up = True
            elif bottom_up and frontier.size < n / _BETA:
                bottom_up = False

            if bottom_up:
                # Every unvisited vertex scans until a frontier neighbour.
                in_frontier = np.zeros(n, dtype=bool)
                in_frontier[frontier] = True
                unvisited = np.flatnonzero(comp == -1)
                targets, counts = concat_adjacency(graph, unvisited)
                hit = in_frontier[targets]
                scan = _first_hit_lengths(counts, hit)
                joined_mask = np.zeros(unvisited.size, dtype=bool)
                if targets.size:
                    # a vertex joined iff its scan ended on a hit
                    offsets = np.zeros(counts.size, dtype=np.int64)
                    np.cumsum(counts[:-1], out=offsets[1:])
                    pos = offsets + scan - 1
                    valid = counts > 0
                    joined_mask[valid] = hit[pos[valid]]
                new = unvisited[joined_mask]
                edges_scanned = int(scan.sum())
                counters.record_pull_scan(edges_scanned,
                                          int(unvisited.size))
                direction = Direction.PULL
            else:
                targets, counts = concat_adjacency(graph, frontier)
                fresh = targets[comp[targets] == -1]
                new = np.unique(fresh).astype(np.int64)
                edges_scanned = int(targets.size)
                counters.record_push_scan(edges_scanned,
                                          int(frontier.size))
                counters.cas_attempts += int(targets.size)
                direction = Direction.PUSH

            if new.size:
                comp[new] = seed
                visited_count += int(new.size)
                counters.record_label_commits(int(new.size), random=True)
                counters.record_frontier_updates(int(new.size))
            explored_edges += frontier_edges
            counters.iterations = 1
            trace.add(IterationRecord(
                index=trace.num_iterations,
                direction=direction,
                density=(frontier.size + frontier_edges) / max(total_edges, 1),
                active_vertices=int(frontier.size),
                active_edges=frontier_edges,
                changed_vertices=int(new.size),
                converged_fraction=visited_count / n,
                counters=counters,
            ))
            frontier = new
    return CCResult(labels=comp, trace=trace)

"""Shiloach-Vishkin connected components [19] — the oldest baseline.

Each round makes a full pass over all edges (hook) followed by
pointer-jumping to flat trees (shortcut); O(log n) rounds.  This is
why SV is the slowest algorithm in Table IV: every round re-processes
every edge.

The implementation follows the GAPBS variant: hook an edge (u, v) when
``comp[u] < comp[v]`` and ``comp[v]`` is a root, then shortcut all
trees to depth 1.  Hooking races resolve towards the minimum, which is
what the vectorized scatter-min produces.  ``changed_vertices`` counts
the distinct roots whose label dropped in the round — duplicate hooks
into the same root are one linearized commit, not several.

Cost accounting per round: 2|E| random component reads for the edge
pass, the hook writes, and the shortcut's pointer chases.  With
``local=True`` (default) the shortcut gets the touched-set treatment:
one flatness sweep over the vertices plus, per jump round, reads and
writes only for the entries that actually moved (see
repro.baselines.disjoint_set).  ``local=False`` charges the
historical all-vertex quantity — every vertex reads its parent every
jump round — as the reference accounting; labels and link counts are
identical either way.
"""

from __future__ import annotations

import numpy as np

from ..core.result import CCResult
from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters
from ..instrument.trace import Direction, IterationRecord, RunTrace
from ..core.backends import get_backend
from ..parallel.machine import SKYLAKEX, MachineSpec
from .disjoint_set import shortcut_parents

__all__ = ["shiloach_vishkin_cc"]

_MAX_ROUNDS = 10_000


def shiloach_vishkin_cc(graph: CSRGraph, *,
                        machine: MachineSpec = SKYLAKEX,
                        dataset: str = "",
                        local: bool = True,
                        backend: str | None = None) -> CCResult:
    """Run SV to convergence; returns labels = component root ids.

    ``machine`` is accepted for front-door uniformity; execution is
    machine-independent (the cost model applies it at timing).
    ``backend`` selects the kernel backend the hook scatter runs on;
    results are bit-identical across backends.
    """
    del machine
    kb = get_backend(backend)
    n = graph.num_vertices
    trace = RunTrace(algorithm="sv", dataset=dataset)
    comp = np.arange(n, dtype=np.int64)
    trace.setup_counters.sequential_accesses += n
    trace.setup_counters.label_writes += n
    if n == 0:
        return CCResult(labels=comp, trace=trace)
    src = graph.edge_sources()
    dst = graph.indices.astype(np.int64)
    m = src.size

    for _ in range(_MAX_ROUNDS):
        counters = OpCounters()
        # --- hook: one full pass over all (directed) edges ---
        cu = comp[src]
        cv = comp[dst]
        counters.edges_processed += m
        counters.label_reads += 2 * m
        counters.random_accesses += 2 * m
        counters.branches += 2 * m
        counters.unpredictable_branches += m
        # comp[v] must be a root and comp[u] smaller.
        is_root = comp[cv] == cv
        counters.random_accesses += m       # root check gather
        hook = is_root & (cu < cv)
        targets = cv[hook]
        values = cu[hook]
        changed = 0
        if targets.size:
            # Count per distinct root, not per hooking edge: several
            # edges lowering the same root are one linearized commit —
            # exactly the unique changed-target set the batch
            # atomic-min reports.
            changed = int(kb.batch_atomic_min(comp, targets,
                                              values).size)
            counters.record_cas_successes(changed)
        # --- shortcut: pointer jumping until trees are flat ---
        jump_rounds, touched = shortcut_parents(comp, local=local)
        if local:
            # Touched-set accounting: one flatness sweep (own parent +
            # grandparent per vertex), then per jump round only the
            # entries that actually moved chase and rewrite pointers.
            counters.sequential_accesses += n
            counters.random_accesses += n
            counters.label_reads += 2 * n
            counters.branches += n
            counters.dependent_accesses += 2 * touched
            counters.label_reads += 2 * touched
            counters.record_label_commits(touched, random=True)
        else:
            # Historical all-vertex accounting: every vertex reads its
            # parent in every jump round, including the final
            # confirming one, and the whole array is rewritten once.
            hops = n * (jump_rounds + 1)
            counters.dependent_accesses += hops
            counters.label_reads += hops
            counters.sequential_accesses += n    # shortcut writes
            counters.label_writes += n
        counters.iterations = 1
        trace.add(IterationRecord(
            index=trace.num_iterations,
            direction=Direction.PUSH,        # edge-centric pass
            density=1.0,
            active_vertices=n,
            active_edges=m,
            changed_vertices=changed,
            converged_fraction=0.0,
            counters=counters,
        ))
        if changed == 0:
            break
    else:
        raise RuntimeError("Shiloach-Vishkin failed to converge")

    # converged fraction per round is not tracked for SV (labels jump
    # non-monotonically); leave at 0 except the final round.
    trace.iterations[-1].converged_fraction = 1.0
    return CCResult(labels=comp, trace=trace)

"""Shiloach-Vishkin connected components [19] — the oldest baseline.

Each round makes a full pass over all edges (hook) followed by full
pointer-jumping (shortcut); O(log n) rounds.  This is why SV is the
slowest algorithm in Table IV: every round re-processes every edge.

The implementation follows the GAPBS variant: hook an edge (u, v) when
``comp[u] < comp[v]`` and ``comp[v]`` is a root, then shortcut all
trees to depth 1.  Hooking races resolve towards the minimum, which is
what the vectorized scatter-min produces.

Cost accounting per round: 2|E| random component reads for the edge
pass, the hook writes, and the shortcut's dependent pointer chases —
all recorded in the trace so the cost model can price each round.
"""

from __future__ import annotations

import numpy as np

from ..core.result import CCResult
from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters
from ..instrument.trace import Direction, IterationRecord, RunTrace

__all__ = ["shiloach_vishkin_cc"]

_MAX_ROUNDS = 10_000


def shiloach_vishkin_cc(graph: CSRGraph, *, dataset: str = "") -> CCResult:
    """Run SV to convergence; returns labels = component root ids."""
    n = graph.num_vertices
    trace = RunTrace(algorithm="sv", dataset=dataset)
    comp = np.arange(n, dtype=np.int64)
    trace.setup_counters.sequential_accesses += n
    trace.setup_counters.label_writes += n
    if n == 0:
        return CCResult(labels=comp, trace=trace)
    src = graph.edge_sources()
    dst = graph.indices.astype(np.int64)
    m = src.size

    for _ in range(_MAX_ROUNDS):
        counters = OpCounters()
        # --- hook: one full pass over all (directed) edges ---
        cu = comp[src]
        cv = comp[dst]
        counters.edges_processed += m
        counters.label_reads += 2 * m
        counters.random_accesses += 2 * m
        counters.branches += 2 * m
        counters.unpredictable_branches += m
        # comp[v] must be a root and comp[u] smaller.
        is_root = comp[cv] == cv
        counters.random_accesses += m       # root check gather
        hook = is_root & (cu < cv)
        targets = cv[hook]
        values = cu[hook]
        changed = 0
        if targets.size:
            before = comp[targets].copy()
            np.minimum.at(comp, targets, values)
            changed = int(np.count_nonzero(comp[targets] < before))
            counters.record_cas_successes(changed)
        # --- shortcut: pointer jumping until trees are flat ---
        hops = 0
        while True:
            nxt = comp[comp]
            moved = int(np.count_nonzero(nxt != comp))
            hops += n                        # every vertex reads its parent
            if moved == 0:
                break
            comp = nxt
        counters.dependent_accesses += hops
        counters.label_reads += hops
        counters.sequential_accesses += n    # shortcut writes
        counters.label_writes += n
        counters.iterations = 1
        trace.add(IterationRecord(
            index=trace.num_iterations,
            direction=Direction.PUSH,        # edge-centric pass
            density=1.0,
            active_vertices=n,
            active_edges=m,
            changed_vertices=changed,
            converged_fraction=0.0,
            counters=counters,
        ))
        if changed == 0:
            break
    else:
        raise RuntimeError("Shiloach-Vishkin failed to converge")

    # converged fraction per round is not tracked for SV (labels jump
    # non-monotonically); leave at 0 except the final round.
    trace.iterations[-1].converged_fraction = 1.0
    return CCResult(labels=comp, trace=trace)

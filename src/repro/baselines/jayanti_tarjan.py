"""Jayanti-Tarjan concurrent union-find CC [21].

JT processes each edge exactly once: ``union(u, v)`` with a
linearizable randomized linking strategy (link the root with lower
random priority under the other) and path splitting on finds.

Simulation model: the edge set (each undirected edge once, as in the
paper's coordinate-format input) is processed in batches.  Each batch
round computes roots of the surviving endpoints and applies a
linearized batch of priority links; unresolved edges (both endpoints
ended in different sets due to intra-batch races) retry in the next
round — exactly the retry a real CAS-based link performs.  This is
``union_edge_batch`` with a priority array.

Cost accounting routes through the shared :func:`charge_union`
recipe: each undirected edge is charged once (``edges_processed``)
with both endpoint gathers, and the find cost is the worklist-local
``hops`` — the dependent parent reads per-endpoint sequential finds
with path compression would make (see repro.baselines.disjoint_set).
``local=False`` keeps the historical all-vertex pointer-jumping
simulation, whose hops it amortizes over 2 finds/edge floored at one
hop per find; labels and link counts are identical either way.
"""

from __future__ import annotations

import numpy as np

from ..core.result import CCResult
from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters
from ..instrument.trace import Direction, IterationRecord, RunTrace
from ..core.backends import get_backend
from ..parallel.machine import SKYLAKEX, MachineSpec
from .disjoint_set import (
    charge_union,
    flatten_parents,
    link_roots,
    pointer_jump_roots,
    union_edge_batch,
)

__all__ = ["jayanti_tarjan_cc"]

_MAX_ROUNDS = 10_000


def jayanti_tarjan_cc(graph: CSRGraph, *, seed: int = 0,
                      machine: MachineSpec = SKYLAKEX,
                      dataset: str = "", local: bool = True,
                      backend: str | None = None) -> CCResult:
    """Run JT; labels are fully-compressed parent ids.

    ``machine`` is accepted for front-door uniformity; execution is
    machine-independent (the cost model applies it at timing).
    ``backend`` selects the kernel backend for the link scatters;
    results are bit-identical across backends.
    """
    del machine
    kb = get_backend(backend)
    n = graph.num_vertices
    trace = RunTrace(algorithm="jt", dataset=dataset)
    parent = np.arange(n, dtype=np.int64)
    trace.setup_counters.sequential_accesses += 2 * n
    trace.setup_counters.label_writes += 2 * n
    if n == 0:
        return CCResult(labels=parent, trace=trace)
    # Each undirected edge once (coordinate representation).
    src = graph.edge_sources()
    dst = graph.indices.astype(np.int64)
    once = src < dst
    eu = src[once]
    ev = dst[once]
    m = eu.size

    rng = np.random.default_rng(seed)
    priority = rng.permutation(n).astype(np.int64)

    counters = OpCounters()
    if local:
        links, hops = union_edge_batch(parent, eu, ev,
                                       priority=priority,
                                       max_rounds=_MAX_ROUNDS, kb=kb)
        charge_union(counters, m, links, hops, endpoint_reads=2)
    else:
        counters.edges_processed += m      # each edge processed once
        counters.random_accesses += 2 * m  # endpoint reads
        counters.label_reads += 2 * m
        counters.cas_attempts += m
        counters.branches += 2 * m
        counters.unpredictable_branches += m
        total_hops = 0
        rounds = 0
        while eu.size and rounds < _MAX_ROUNDS:
            rounds += 1
            roots, hops = pointer_jump_roots(parent)
            total_hops += hops
            ru = roots[eu]
            rv = roots[ev]
            cross = ru != rv
            eu, ev = eu[cross], ev[cross]
            ru, rv = ru[cross], rv[cross]
            if eu.size == 0:
                break
            linked = link_roots(parent, ru, rv, priority, kb=kb)
            counters.record_cas_successes(linked)
        if eu.size:
            raise RuntimeError("Jayanti-Tarjan failed to converge")
        # Find cost: amortized pointer-chasing hops.  The all-vertex
        # simulation revisits parents; charge the modelled per-edge
        # finds (2 per edge) at the average observed path length,
        # floored at one hop per find.
        avg_path = max(1.0, total_hops / max(2 * m, 1))
        counters.record_finds(2 * m, avg_path)
    counters.iterations = 1
    trace.add(IterationRecord(
        index=0,
        direction=Direction.PUSH,
        density=1.0,
        active_vertices=n,
        active_edges=2 * m,
        changed_vertices=n,
        converged_fraction=1.0,
        counters=counters,
    ))
    labels = flatten_parents(parent)
    return CCResult(labels=labels, trace=trace)

"""Label propagation with shortcutting [65] (Stergiou et al. style).

The paper's Related Work: "Shortcutting technique is used in [65] to
accelerate the label propagation CC."  The idea: treat labels as
parent pointers and periodically apply pointer jumping
(``label[v] <- label[label[v]]``), letting information travel
exponentially instead of one hop per iteration — an orthogonal answer
to the slow-wavefront problem that Thrifty attacks with the Unified
Labels Array.

One round here is: a synchronous min-propagation step over all edges,
followed by ``shortcut_depth`` pointer-jump passes over the label
array.  With labels initialized to vertex ids, ``label[v]`` is always
a vertex id of a (transitively) smaller-labelled vertex in the same
component, so jumping preserves correctness.
"""

from __future__ import annotations

import numpy as np

from ..core.result import CCResult
from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters
from ..instrument.trace import Direction, IterationRecord, RunTrace
from ..parallel.machine import SKYLAKEX, MachineSpec

__all__ = ["lp_shortcut_cc"]

_MAX_ROUNDS = 10_000


def lp_shortcut_cc(graph: CSRGraph, *, shortcut_depth: int = 2,
                   machine: MachineSpec = SKYLAKEX,
                   dataset: str = "") -> CCResult:
    """Run shortcutting LP; labels are component-minimum vertex ids.

    ``machine`` is accepted for front-door uniformity; execution is
    machine-independent (the cost model applies it at timing).
    """
    del machine
    if shortcut_depth < 0:
        raise ValueError("shortcut_depth must be >= 0")
    n = graph.num_vertices
    trace = RunTrace(algorithm="lp-shortcut", dataset=dataset)
    labels = np.arange(n, dtype=np.int64)
    trace.setup_counters.sequential_accesses += n
    trace.setup_counters.label_writes += n
    if n == 0:
        return CCResult(labels=labels, trace=trace)
    src = graph.edge_sources()
    m = src.size

    for _ in range(_MAX_ROUNDS):
        counters = OpCounters()
        prev = labels.copy()
        # Propagation step: min over neighbours.
        gathered = labels[graph.indices]
        np.minimum.at(labels, src, gathered)
        counters.record_pull_scan(m, n)
        # Shortcutting: label[v] <- label[label[v]], repeated.
        for _d in range(shortcut_depth):
            nxt = labels[labels]
            counters.random_accesses += n
            counters.label_reads += n
            if np.array_equal(nxt, labels):
                break
            labels = nxt
            counters.label_writes += n
            counters.sequential_accesses += n
        changed = int(np.count_nonzero(labels != prev))
        counters.record_label_commits(changed, random=False)
        counters.iterations = 1
        trace.add(IterationRecord(
            index=trace.num_iterations,
            direction=Direction.PULL,
            density=1.0,
            active_vertices=n,
            active_edges=m,
            changed_vertices=changed,
            converged_fraction=0.0,
            counters=counters,
        ))
        if changed == 0:
            break
    else:
        raise RuntimeError("shortcutting LP failed to converge")
    trace.iterations[-1].converged_fraction = 1.0
    return CCResult(labels=labels.copy(), trace=trace)

"""Disjoint-set (union-find) substrate for the tree-hooking baselines.

Two layers:

* :class:`DisjointSet` — a classic scalar union-find with union by
  rank and path halving.  Used directly by tests and by small-scale
  verification; too slow (pure Python) for the benchmark graphs.
* Vectorized primitives — :func:`pointer_jump_roots` and
  :func:`link_roots` — batched equivalents of rounds of concurrent
  hooking, used by the SV / JT / Afforest simulations.  They operate
  on a parent array with NumPy scatter/gather; every round is a
  linearization of a batch of concurrent links, the same modelling
  step as ``batch_atomic_min`` (see repro.parallel.atomics).
"""

from __future__ import annotations

import numpy as np

__all__ = ["DisjointSet", "pointer_jump_roots", "link_roots",
           "flatten_parents", "union_edge_batch"]


class DisjointSet:
    """Scalar union-find with union-by-rank and path halving."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)
        self._num_sets = n

    def find(self, x: int) -> int:
        """Root of x's set, halving the path along the way."""
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = int(p[x])
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of a and b; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self._num_sets -= 1
        return True

    def same_set(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    @property
    def num_sets(self) -> int:
        return self._num_sets

    def labels(self) -> np.ndarray:
        """Root id of every element (fully compressed)."""
        return flatten_parents(self.parent.copy())


def union_edge_batch(parent: np.ndarray, eu: np.ndarray, ev: np.ndarray,
                     *, max_rounds: int = 10_000) -> tuple[int, int]:
    """Union a batch of edges to quiescence (linearized rounds).

    Returns ``(links, hops)``: successful links and total pointer-jump
    hops spent resolving roots — the modelled find cost the callers
    charge to their counters.
    """
    links = 0
    hops = 0
    rounds = 0
    while eu.size and rounds < max_rounds:
        rounds += 1
        roots, h = pointer_jump_roots(parent)
        hops += h
        ru, rv = roots[eu], roots[ev]
        cross = ru != rv
        eu, ev = eu[cross], ev[cross]
        ru, rv = ru[cross], rv[cross]
        if eu.size == 0:
            break
        links += link_roots(parent, ru, rv)
    if eu.size:
        raise RuntimeError("union batch failed to converge")
    return links, hops


def pointer_jump_roots(parent: np.ndarray) -> tuple[np.ndarray, int]:
    """Roots of all elements via repeated parent[parent] jumping.

    Returns ``(roots, hops)`` where ``hops`` is the total number of
    dependent parent reads a per-element sequential walk would have
    made — the quantity the cost model charges for find operations.
    """
    roots = parent.copy()
    hops = 0
    while True:
        nxt = roots[roots]
        moved = nxt != roots
        n_moved = int(np.count_nonzero(moved))
        hops += n_moved
        if n_moved == 0:
            return roots, hops
        roots = nxt


def flatten_parents(parent: np.ndarray) -> np.ndarray:
    """Fully compress a parent array in place; returns it."""
    while True:
        nxt = parent[parent]
        if np.array_equal(nxt, parent):
            return parent
        parent[:] = nxt


def link_roots(parent: np.ndarray,
               a_roots: np.ndarray,
               b_roots: np.ndarray,
               priority: np.ndarray | None = None) -> int:
    """Linearized batch of concurrent root links.

    For each pair, the root with the larger priority value is pointed
    at the one with the smaller (priority defaults to the vertex id,
    i.e. link-to-smaller-id, the LP minimum convention).  Conflicting
    links to the same loser keep the best winner, matching the winner
    of a CAS loop.  Returns the number of roots actually linked.

    Acyclicity: parent pointers always lead to strictly smaller
    priority, so no cycle can form within or across batches.

    Contract: a batch may re-link an element that stopped being a root
    earlier in the same batch, which can temporarily split a merged
    set — exactly as racy concurrent hooking does.  Callers must loop
    until no edge crosses two sets (as SV/JT/Afforest all do).
    """
    if priority is None:
        # Smaller id = higher priority (becomes the winner/parent).
        lo = np.minimum(a_roots, b_roots)
        hi = np.maximum(a_roots, b_roots)
    else:
        a_first = priority[a_roots] < priority[b_roots]
        lo = np.where(a_first, a_roots, b_roots)
        hi = np.where(a_first, b_roots, a_roots)
    mask = lo != hi
    lo, hi = lo[mask], hi[mask]
    if hi.size == 0:
        return 0
    if priority is None:
        before = parent[hi].copy()
        np.minimum.at(parent, hi, lo)
        return int(np.count_nonzero(parent[hi] < before))
    # Keep, per loser, the winner with the best (lowest) priority.
    order = np.lexsort((priority[lo], hi))
    hi_sorted = hi[order]
    lo_sorted = lo[order]
    first = np.ones(hi_sorted.size, dtype=bool)
    first[1:] = hi_sorted[1:] != hi_sorted[:-1]
    losers = hi_sorted[first]
    winners = lo_sorted[first]
    changed = parent[losers] != winners
    parent[losers[changed]] = winners[changed]
    return int(np.count_nonzero(changed))

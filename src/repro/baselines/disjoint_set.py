"""Disjoint-set (union-find) substrate for the tree-hooking baselines.

Three layers:

* :class:`DisjointSet` — a classic scalar union-find with union by
  rank and path halving.  Used directly by tests and by small-scale
  verification; too slow (pure Python) for the benchmark graphs.
* Vectorized primitives — :func:`resolve_roots_local`,
  :func:`pointer_jump_roots`, :func:`link_roots` and
  :func:`shortcut_parents` — batched equivalents of rounds of
  concurrent hooking, used by the SV / JT / Afforest simulations.
  They operate on a parent array with NumPy scatter/gather; every
  round is a linearization of a batch of concurrent links, the same
  modelling step as ``batch_atomic_min`` (see repro.parallel.atomics).
* Shared accounting — :func:`charge_union` / :func:`charge_finds`
  apply the one per-edge counter recipe every union call site uses,
  so the recipe cannot drift between baselines (it used to be
  copy-pasted into SV, Afforest and both ConnectIt phases, and had
  diverged).

Worklist-local vs all-vertex resolution
---------------------------------------

``union_edge_batch(..., local=True)`` (the default) resolves roots
only for the endpoints present in the batch: restricted pointer
jumping over the touched set with a memoized per-batch root cache
(path compression of the touched entries).  Each round costs
O(touched), never O(n).  ``local=False`` keeps the historical
all-vertex implementation — :func:`pointer_jump_roots` over the whole
parent array every round — as a bit-comparable reference: both paths
produce **identical final labels and identical link counts**, because
links depend only on endpoint roots and path compression never
changes any vertex's root.

Find-cost (``hops``) contract
-----------------------------

The ``hops`` returned by the local path count exactly the dependent
parent reads a per-endpoint sequential find would make under path
compression:

* the first find of a distinct endpoint in a batch round costs
  ``max(depth, 1)`` reads, where ``depth`` is its distance from its
  root when the round starts;
* every further find of that endpoint in the same round hits the
  memoized (compressed) entry and costs 1 read.

No vertex outside the batch is ever charged.  The all-vertex
reference instead charges the historical pointer-jumping quantity
(one read per still-moving vertex per doubling round over all n),
which is what the issue calls the O(n)-per-round accounting skew.
"""

from __future__ import annotations

import numpy as np

from ..core.backends import get_backend
from ..instrument.counters import OpCounters

__all__ = ["DisjointSet", "pointer_jump_roots", "link_roots",
           "flatten_parents", "shortcut_parents", "resolve_roots_local",
           "union_edge_batch", "charge_union", "charge_finds"]


class DisjointSet:
    """Scalar union-find with union-by-rank and path halving."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)
        self._num_sets = n

    def find(self, x: int) -> int:
        """Root of x's set, halving the path along the way."""
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = int(p[x])
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of a and b; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self._num_sets -= 1
        return True

    def same_set(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    @property
    def num_sets(self) -> int:
        return self._num_sets

    def labels(self) -> np.ndarray:
        """Root id of every element (fully compressed)."""
        return flatten_parents(self.parent.copy())


# -- shared counter recipes ------------------------------------------------

def charge_finds(counters: OpCounters, hops: int) -> None:
    """Charge ``hops`` union-find root-resolution reads.

    Each hop is a serially-dependent random parent read feeding the
    next one, so it lands in ``dependent_accesses`` (priced without
    memory-level parallelism by the cost model) and ``label_reads``.
    """
    counters.dependent_accesses += hops
    counters.label_reads += hops


def charge_union(counters: OpCounters, edges: int, links: int, hops: int,
                 *, endpoint_reads: int = 1) -> None:
    """The one per-edge accounting recipe for a union-edge batch.

    ``edges`` edges were offered, ``links`` roots were actually linked
    and ``hops`` dependent parent reads resolved the endpoint roots
    (see the module docstring for the hops contract).
    ``endpoint_reads`` is the random endpoint gathers per edge: 1 when
    the source side comes off a worklist scan (Afforest's neighbour
    rounds, ConnectIt sampling/skip-giant), 2 when both endpoints are
    gathered from an edge list (JT, all-edges finish).
    """
    counters.edges_processed += edges
    counters.random_accesses += endpoint_reads * edges
    counters.label_reads += endpoint_reads * edges
    counters.cas_attempts += edges
    counters.branches += edges
    counters.unpredictable_branches += edges
    counters.record_cas_successes(links)
    charge_finds(counters, hops)


# -- root resolution -------------------------------------------------------

def resolve_roots_local(parent: np.ndarray,
                        vertices: np.ndarray) -> tuple[np.ndarray, int]:
    """Roots of exactly the given vertices (duplicates welcome).

    Restricted pointer jumping: only the touched entries and their
    ancestor chains are walked; the rest of the parent array is never
    read.  Touched entries are path-compressed in place (the memoized
    per-batch root cache), which never changes any vertex's root.

    Returns ``(roots, hops)`` with ``roots`` aligned to ``vertices``
    and ``hops`` following the sequential-find contract: ``max(depth,
    1)`` reads for the first find of each distinct vertex, 1 read for
    each repeat find within the batch.
    """
    vertices = np.asarray(vertices)
    if vertices.size == 0:
        return np.empty(0, dtype=parent.dtype), 0
    if vertices.size >= parent.size // 8:
        # Large batch: dedupe with a byte stamp instead of a sort.
        # The memset is O(n) but linear-scan cheap; the batch itself
        # is already a constant fraction of n here, so the round stays
        # O(touched) up to that scan.
        seen = np.zeros(parent.size, dtype=bool)
        seen[vertices] = True
        uniq = np.flatnonzero(seen)
    else:
        # Sort-based dedupe: O(touched log touched), independent of n.
        uniq = np.sort(vertices)
        keep = np.empty(uniq.size, dtype=bool)
        keep[0] = True
        np.not_equal(uniq[1:], uniq[:-1], out=keep[1:])
        uniq = uniq[keep]
    roots = parent[uniq]
    hops = int(vertices.size)           # every find reads parent[x] once
    walking = np.flatnonzero(parent[roots] != roots)
    while walking.size:
        hops += int(walking.size)
        nxt = parent[roots[walking]]
        roots[walking] = nxt
        walking = walking[parent[nxt] != nxt]
    parent[uniq] = roots                # memoized compression
    # Every occurrence now reads its compressed entry straight off.
    return parent[vertices], hops


def pointer_jump_roots(parent: np.ndarray) -> tuple[np.ndarray, int]:
    """Roots of all elements via repeated parent[parent] jumping.

    The all-vertex reference: returns ``(roots, hops)`` where ``hops``
    is the total number of dependent parent reads a per-element
    sequential walk would have made — the historical quantity the
    ``local=False`` paths charge for find operations.
    """
    roots = parent.copy()
    hops = 0
    while True:
        nxt = roots[roots]
        moved = nxt != roots
        n_moved = int(np.count_nonzero(moved))
        hops += n_moved
        if n_moved == 0:
            return roots, hops
        roots = nxt


def shortcut_parents(parent: np.ndarray, *,
                     local: bool = True) -> tuple[int, int]:
    """Pointer-jump every tree to depth <= 1, in place.

    The SV shortcut / final flatten.  Returns ``(rounds, touched)``:
    ``rounds`` is the number of jump rounds in which anything moved and
    ``touched`` the total entries rewritten across those rounds — the
    writes actually performed, which is what the touched-set accounting
    charges.

    ``local=True`` restricts each round to the not-yet-flat entries
    (an entry is flat once its parent is a root, and flatness is
    monotone under shortcutting, so the active set only shrinks);
    ``local=False`` recomputes the full ``parent[parent]`` array every
    round, the historical reference.  Both produce bit-identical
    arrays: updating a flat entry is a no-op.
    """
    rounds = 0
    touched = 0
    if local:
        active = np.flatnonzero(parent[parent] != parent)
        while active.size:
            rounds += 1
            touched += int(active.size)
            parent[active] = parent[parent[active]]
            still = parent[parent[active]] != parent[active]
            active = active[still]
        return rounds, touched
    while True:
        nxt = parent[parent]
        moved = int(np.count_nonzero(nxt != parent))
        if moved == 0:
            return rounds, touched
        rounds += 1
        touched += moved
        parent[:] = nxt


def flatten_parents(parent: np.ndarray) -> np.ndarray:
    """Fully compress a parent array in place; returns it.

    Touched-set jumping under the hood (:func:`shortcut_parents` with
    ``local=True``): after one discovery sweep, only non-flat entries
    are revisited — the result is bit-identical to the historical
    full-array fixpoint loop.
    """
    shortcut_parents(parent, local=True)
    return parent


def union_edge_batch(parent: np.ndarray, eu: np.ndarray, ev: np.ndarray,
                     *, priority: np.ndarray | None = None,
                     max_rounds: int = 10_000,
                     local: bool = True,
                     kb=None) -> tuple[int, int]:
    """Union a batch of edges to quiescence (linearized rounds).

    Returns ``(links, hops)``: successful links and the find cost the
    callers charge to their counters (see the module docstring; the
    meaning of ``hops`` depends on ``local``).  ``priority`` selects
    randomized linking (JT) instead of link-to-smaller-id.

    ``local=True`` resolves roots only for the endpoints still in the
    batch each round — O(touched) per round; ``local=False`` is the
    all-vertex reference.  Both produce identical links and final
    labels.  ``kb`` is the kernel backend the link scatter dispatches
    through (default: the canonical numpy backend).
    """
    links = 0
    hops = 0
    rounds = 0
    while eu.size and rounds < max_rounds:
        rounds += 1
        if local:
            touched = np.concatenate((eu, ev))
            troots, h = resolve_roots_local(parent, touched)
            hops += h
            ru, rv = troots[:eu.size], troots[eu.size:]
        else:
            roots, h = pointer_jump_roots(parent)
            hops += h
            ru, rv = roots[eu], roots[ev]
        cross = ru != rv
        eu, ev = eu[cross], ev[cross]
        ru, rv = ru[cross], rv[cross]
        if eu.size == 0:
            break
        links += link_roots(parent, ru, rv, priority, kb=kb)
    if eu.size:
        raise RuntimeError("union batch failed to converge")
    return links, hops


def link_roots(parent: np.ndarray,
               a_roots: np.ndarray,
               b_roots: np.ndarray,
               priority: np.ndarray | None = None,
               *, kb=None) -> int:
    """Linearized batch of concurrent root links.

    For each pair, the root with the larger priority value is pointed
    at the one with the smaller (priority defaults to the vertex id,
    i.e. link-to-smaller-id, the LP minimum convention).  Conflicting
    links to the same loser keep the best winner, matching the winner
    of a CAS loop.  Returns the number of roots actually linked.

    Acyclicity: parent pointers always lead to strictly smaller
    priority, so no cycle can form within or across batches.

    Contract: a batch may re-link an element that stopped being a root
    earlier in the same batch, which can temporarily split a merged
    set — exactly as racy concurrent hooking does.  Callers must loop
    until no edge crosses two sets (as SV/JT/Afforest all do).

    The id-priority link is one atomic-min scatter with per-slot
    success counting; it dispatches through ``kb`` (default: the
    canonical numpy backend).
    """
    if priority is None:
        # Smaller id = higher priority (becomes the winner/parent).
        lo = np.minimum(a_roots, b_roots)
        hi = np.maximum(a_roots, b_roots)
    else:
        a_first = priority[a_roots] < priority[b_roots]
        lo = np.where(a_first, a_roots, b_roots)
        hi = np.where(a_first, b_roots, a_roots)
    mask = lo != hi
    lo, hi = lo[mask], hi[mask]
    if hi.size == 0:
        return 0
    if priority is None:
        return (kb or get_backend()).scatter_min_count(parent, hi, lo)
    # Keep, per loser, the winner with the best (lowest) priority.
    order = np.lexsort((priority[lo], hi))
    hi_sorted = hi[order]
    lo_sorted = lo[order]
    first = np.ones(hi_sorted.size, dtype=bool)
    first[1:] = hi_sorted[1:] != hi_sorted[:-1]
    losers = hi_sorted[first]
    winners = lo_sorted[first]
    changed = parent[losers] != winners
    parent[losers[changed]] = winners[changed]
    return int(np.count_nonzero(changed))

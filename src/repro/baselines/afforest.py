"""Afforest [22] — subgraph sampling + giant-component skipping.

Afforest exploits the same structural property as Thrifty (the giant
component of skewed graphs), on the disjoint-set side:

1. *Neighbour rounds*: union every vertex with its first
   ``neighbor_rounds`` (default 2) neighbours only — a cheap sampled
   spanning forest that already merges most of the giant component.
2. *Component sampling*: sample vertices, find the most frequent
   component c.
3. *Final phase*: only vertices **outside** c process their remaining
   edges; members of the giant component skip theirs entirely.

Cost accounting mirrors the real algorithm via the shared
:func:`charge_union` recipe: the actually-offered phase-1 edges (not
``neighbor_rounds * |V|`` — rounds can break early and degrees can be
short), the find cost of the *sampled* vertices in phase 2, and in
phase 3 the remaining degrees of non-giant vertices — which on the
paper's graphs is a tiny fraction of |E| (that is why Afforest is the
strongest baseline).  ``local=True`` (default) resolves roots only
for touched endpoints (see repro.baselines.disjoint_set);
``local=False`` keeps the historical all-vertex reference with its
flat ``2 x sample_size`` phase-2 charge.  Labels and link counts are
identical either way.
"""

from __future__ import annotations

import numpy as np

from ..core.result import CCResult
from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters
from ..instrument.trace import Direction, IterationRecord, RunTrace
from ..core.backends import get_backend
from ..parallel.machine import SKYLAKEX, MachineSpec
from .disjoint_set import (
    charge_finds,
    charge_union,
    flatten_parents,
    pointer_jump_roots,
    resolve_roots_local,
    union_edge_batch,
)

__all__ = ["afforest_cc"]


def afforest_cc(graph: CSRGraph, *, neighbor_rounds: int = 2,
                sample_size: int = 1024, seed: int = 0,
                machine: MachineSpec = SKYLAKEX,
                dataset: str = "", local: bool = True,
                backend: str | None = None) -> CCResult:
    """Run Afforest; labels are fully-compressed parent ids.

    ``machine`` is accepted for front-door uniformity; execution is
    machine-independent (the cost model applies it at timing).
    ``backend`` selects the kernel backend for the union scatters;
    results are bit-identical across backends.
    """
    del machine
    kb = get_backend(backend)
    n = graph.num_vertices
    trace = RunTrace(algorithm="afforest", dataset=dataset)
    parent = np.arange(n, dtype=np.int64)
    trace.setup_counters.sequential_accesses += n
    trace.setup_counters.label_writes += n
    if n == 0:
        return CCResult(labels=parent, trace=trace)
    degrees = graph.degrees

    # --- phase 1: neighbour rounds ------------------------------------
    phase1 = OpCounters()
    phase1_edges = 0
    for r in range(neighbor_rounds):
        has = np.flatnonzero(degrees > r)
        if has.size == 0:
            break
        nbr_r = graph.indices[graph.indptr[has] + r].astype(np.int64)
        links, hops = union_edge_batch(parent, has, nbr_r, local=local,
                                       kb=kb)
        charge_union(phase1, int(has.size), links, hops)
        phase1_edges += int(has.size)
    phase1.iterations = 1
    trace.add(IterationRecord(
        index=0, direction=Direction.PUSH, density=1.0,
        active_vertices=n, active_edges=phase1_edges,
        changed_vertices=n, converged_fraction=0.0, counters=phase1))

    # --- phase 2: sample the giant component --------------------------
    phase2 = OpCounters()
    rng = np.random.default_rng(seed)
    sample = rng.integers(0, n, size=min(sample_size, n))
    if local:
        # Charge the modelled find cost of exactly the sampled
        # vertices — what the real algorithm's sampled finds pay.
        sample_roots, sample_hops = resolve_roots_local(parent, sample)
        charge_finds(phase2, sample_hops)
    else:
        all_roots, _ = pointer_jump_roots(parent)
        sample_roots = all_roots[sample]
        phase2.dependent_accesses += int(sample.size) * 2  # flat charge
        phase2.label_reads += int(sample.size) * 2
    giant = int(np.bincount(sample_roots).argmax())
    # Full membership view for the skip test below; a simulation
    # device shared by both paths (the real algorithm folds this find
    # into each vertex's phase-3 visit), so it is not charged.
    roots, _ = pointer_jump_roots(parent)
    phase2.iterations = 1
    trace.add(IterationRecord(
        index=1, direction=Direction.PUSH, density=0.0,
        active_vertices=int(sample.size), active_edges=0,
        changed_vertices=0,
        converged_fraction=float(np.count_nonzero(roots == giant) / n),
        counters=phase2))

    # --- phase 3: finish everything outside the giant component -------
    phase3 = OpCounters()
    outside = np.flatnonzero(roots != giant)
    remaining_deg = np.maximum(degrees[outside] - neighbor_rounds, 0)
    active_edges = int(remaining_deg.sum())
    if outside.size:
        take = degrees[outside] > neighbor_rounds
        rows = outside[take]
        if rows.size:
            # Gather each remaining adjacency slice (beyond the first
            # neighbor_rounds entries already unioned in phase 1).
            counts = (degrees[rows] - neighbor_rounds).astype(np.int64)
            offsets = np.zeros(rows.size, dtype=np.int64)
            np.cumsum(counts[:-1], out=offsets[1:])
            total = int(counts.sum())
            idx = np.arange(total, dtype=np.int64)
            seg = np.searchsorted(offsets, idx, side="right") - 1
            pos = (graph.indptr[rows][seg] + neighbor_rounds
                   + (idx - offsets[seg]))
            targets = graph.indices[pos].astype(np.int64)
            sources = np.repeat(rows, counts)
            links, hops = union_edge_batch(parent, sources, targets,
                                           local=local, kb=kb)
            charge_union(phase3, total, links, hops)
    phase3.sequential_accesses += n        # final compression pass
    phase3.label_writes += n
    phase3.iterations = 1
    trace.add(IterationRecord(
        index=2, direction=Direction.PUSH, density=0.0,
        active_vertices=int(outside.size), active_edges=active_edges,
        changed_vertices=int(outside.size),
        converged_fraction=1.0, counters=phase3))

    labels = flatten_parents(parent)
    return CCResult(labels=labels, trace=trace)

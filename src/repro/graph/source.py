"""One graph front door: :func:`load` / :class:`GraphSource`.

Every graph entering the system — API, CLI, service, tests — comes
through here.  ``load`` accepts any of:

* a :class:`~repro.graph.csr.CSRGraph` (returned as-is) or an
  out-of-core :class:`~repro.storage.BlockedGraph` (as-is, never
  materialized);
* a :class:`~repro.graph.coo.EdgeList` or a COO-ish value (an
  ``(src, dst)`` array pair or a sequence of ``(u, v)`` pairs),
  normalized through :func:`~repro.graph.builders.build_graph`;
* a Table II dataset name (``"Twtr"``, ``"GBRd"``, ...), built and
  memoized exactly as the legacy ``load_dataset`` was — repeated
  ``load(name, scale=s)`` calls return the *same* object;
* a file path: blocked-CSR (``.rbcsr`` / magic-sniffed — opened
  streaming, not materialized), ``.npz`` CSR snapshots, ``.mtx``
  MatrixMarket, KONECT ``out.*`` files, or whitespace edge-list text.

The legacy scattered loaders (``graph.io`` readers,
``datasets.load_dataset``) are DeprecationWarning shims over the same
implementations — promoted to errors under pytest.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from .builders import build_graph, from_pairs
from .coo import EdgeList
from .csr import CSRGraph
from .datasets import DATASETS, _load_dataset
from .io import _load_file

__all__ = ["GraphSource", "load"]

_BLOCKED_SUFFIX = ".rbcsr"


def _is_blocked_path(path: Path) -> bool:
    if path.suffix == _BLOCKED_SUFFIX:
        return True
    from ..storage import is_blocked_file
    return is_blocked_file(path)


@dataclass(frozen=True)
class GraphSource:
    """A classified graph source: ``kind`` + the raw ``value``.

    ``kind`` is one of ``"graph"`` (an in-memory or blocked graph
    object), ``"edges"`` (EdgeList / COO-ish value), ``"dataset"``
    (surrogate name), ``"file"`` (serialized graph file) or
    ``"blocked"`` (out-of-core blocked-CSR file).  Build one with
    :meth:`infer` (what :func:`load` uses) or directly when the kind
    is already known and a string is ambiguous.
    """

    kind: str
    value: Any

    _KINDS = ("graph", "edges", "dataset", "file", "blocked")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown source kind {self.kind!r}; one of {self._KINDS}")

    @classmethod
    def infer(cls, source: Any) -> "GraphSource":
        """Classify ``source`` (see module docstring for the rules)."""
        if isinstance(source, GraphSource):
            return source
        if isinstance(source, CSRGraph) or hasattr(source, "block_cache"):
            return cls("graph", source)
        if isinstance(source, EdgeList):
            return cls("edges", source)
        if isinstance(source, (str, os.PathLike)):
            text = os.fspath(source)
            if isinstance(text, str) and text in DATASETS:
                return cls("dataset", text)
            path = Path(text)
            if path.exists():
                if _is_blocked_path(path):
                    return cls("blocked", text)
                return cls("file", text)
            raise ValueError(
                f"cannot load graph source {text!r}: not a known dataset "
                f"name (one of {', '.join(DATASETS)}) and no such file")
        if isinstance(source, tuple) and len(source) == 2:
            return cls("edges", source)
        if isinstance(source, np.ndarray) or isinstance(source, (list,)):
            return cls("edges", source)
        raise TypeError(
            f"cannot load graph source of type {type(source).__name__}; "
            "expected a CSRGraph, BlockedGraph, EdgeList, (src, dst) "
            "arrays, a sequence of (u, v) pairs, a dataset name, or a "
            "file path")

    def resolve(self, *, scale: float = 1.0,
                num_vertices: int | None = None,
                resident_bytes: int | None = None,
                mode: str = "mmap", **build_kwargs):
        """Materialize the source into a graph object."""
        if self.kind == "graph":
            return self.value
        if self.kind == "edges":
            value = self.value
            if isinstance(value, EdgeList):
                return build_graph(value, **build_kwargs)
            if isinstance(value, tuple) and len(value) == 2 and \
                    not np.isscalar(value[0]):
                src = np.asarray(value[0], dtype=np.int64)
                dst = np.asarray(value[1], dtype=np.int64)
                n = num_vertices
                if n is None:
                    n = int(max(src.max(initial=-1),
                                dst.max(initial=-1))) + 1
                return build_graph(EdgeList(src, dst, n), **build_kwargs)
            return build_graph(from_pairs(value, num_vertices),
                               **build_kwargs)
        if self.kind == "dataset":
            return _load_dataset(self.value, scale)
        if self.kind == "blocked":
            from ..storage import BlockedGraph
            return BlockedGraph.open(self.value,
                                     resident_bytes=resident_bytes,
                                     mode=mode)
        return _load_file(self.value, **build_kwargs)


def load(source: Any, scale: float = 1.0, *,
         num_vertices: int | None = None,
         resident_bytes: int | None = None,
         mode: str = "mmap", **build_kwargs):
    """Load a graph from any supported source (see module docstring).

    ``scale`` applies to dataset names only; ``num_vertices`` to COO
    inputs whose vertex count is not implied; ``resident_bytes`` and
    ``mode`` to blocked files (the block-cache budget and reader
    mode); remaining keywords go to
    :func:`~repro.graph.builders.build_graph` for edge-list sources.
    Returns a :class:`CSRGraph`, or a
    :class:`~repro.storage.BlockedGraph` for blocked files (streamed,
    never materialized).
    """
    return GraphSource.infer(source).resolve(
        scale=scale, num_vertices=num_vertices,
        resident_bytes=resident_bytes, mode=mode, **build_kwargs)

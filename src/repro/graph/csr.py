"""Compressed Sparse Row graph representation.

Matches the paper's storage convention (Section V-A): ``|V|+1`` index
values (here int64, the paper uses 8 bytes) and ``|E|`` neighbour ids
(int32 when the graph fits, as in the paper's 4-byte neighbour ids).
Each undirected edge appears twice, once per direction, which is what
lets both push and pull traversals follow edges in either direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .coo import EdgeList

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """Immutable undirected graph in CSR form.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; neighbours of
        vertex ``v`` live in ``indices[indptr[v]:indptr[v+1]]``.
    indices:
        Neighbour ids, sorted within each vertex's adjacency list.
    """

    indptr: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size == 0:
            raise ValueError("indptr must be a non-empty 1-D array")
        if indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = indptr.size - 1
        dtype = np.int32 if n <= np.iinfo(np.int32).max else np.int64
        indices = np.ascontiguousarray(self.indices, dtype=dtype)
        if indices.ndim != 1:
            raise ValueError("indices must be a 1-D array")
        if indptr[-1] != indices.size:
            raise ValueError(
                f"indptr[-1]={indptr[-1]} but indices has {indices.size} entries"
            )
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("neighbour id out of range")
        # Invariant: adjacency lists are sorted (binary-search lookups,
        # reduceat segments).  Normalize builders that deliver rows in
        # arbitrary order.
        if indices.size:
            row_start = np.zeros(indices.size, dtype=bool)
            row_start[indptr[:-1][indptr[:-1] < indices.size]] = True
            unsorted = (~row_start[1:]) & (indices[1:] < indices[:-1])
            if unsorted.any():
                rows = np.repeat(np.arange(n, dtype=np.int64),
                                 np.diff(indptr))
                order = np.lexsort((indices, rows))
                indices = np.ascontiguousarray(indices[order])
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)

    # -- basic shape ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Directed edge count (= 2x undirected edges for simple graphs)."""
        return int(self.indices.size)

    @property
    def num_undirected_edges(self) -> int:
        return self.num_edges // 2

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (== degree for symmetric graphs).

        Computed once and cached; hot paths (frontier bookkeeping,
        adjacency gathers) read it per iteration.
        """
        cached = self.__dict__.get("_degrees")
        if cached is None:
            cached = np.diff(self.indptr)
            cached.flags.writeable = False
            object.__setattr__(self, "_degrees", cached)
        return cached

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """View (not copy) of v's sorted adjacency list."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def max_degree_vertex(self) -> int:
        """Lowest-id vertex with the maximum degree.

        This is the vertex Zero Planting targets.  Ties broken towards
        the smaller id, matching a deterministic parallel max-reduction
        over thread-local maxima scanned in ascending order.
        """
        if self.num_vertices == 0:
            raise ValueError("empty graph has no max-degree vertex")
        return int(np.argmax(self.degrees))

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        return i < nbrs.size and int(nbrs[i]) == v

    # -- conversions ----------------------------------------------------

    @classmethod
    def from_edge_list(cls, edges: EdgeList) -> "CSRGraph":
        """Build CSR from a (already symmetric, deduplicated) edge list.

        Adjacency lists come out sorted because we sort by the combined
        (src, dst) key.
        """
        n = edges.num_vertices
        order = np.lexsort((edges.dst, edges.src))
        src = edges.src[order]
        dst = edges.dst[order]
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst)

    def to_edge_list(self) -> EdgeList:
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                        self.degrees)
        return EdgeList(src, self.indices.astype(np.int64),
                        self.num_vertices)

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every directed edge slot, aligned with indices."""
        return np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                         self.degrees)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CSRGraph(|V|={self.num_vertices}, "
                f"|E|={self.num_undirected_edges} undirected)")

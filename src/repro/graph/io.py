"""Graph serialization: whitespace edge-list text and .npz binary.

Text format is one ``u v`` pair per line with ``#`` comments — the same
shape as SNAP / KONECT / NetworkRepository downloads, so real datasets
drop in unchanged if available.  The .npz format stores the CSR arrays
directly and round-trips losslessly.

The public ``load_*`` readers are **deprecated shims** (promoted to
errors under pytest, the PR 4/5 convention): graph ingestion goes
through the one front door, :func:`repro.graph.load`, which dispatches
on the source kind — in-memory CSR, COO edge list, dataset name,
serialized file, or out-of-core blocked file.  The savers remain
first-class (there is exactly one writer per format).
"""

from __future__ import annotations

import io
import os
import warnings
from pathlib import Path

import numpy as np

from .builders import build_graph
from .coo import EdgeList
from .csr import CSRGraph

__all__ = [
    "load_edge_list_text",
    "save_edge_list_text",
    "load_csr_npz",
    "save_csr_npz",
    "load_matrix_market",
    "save_matrix_market",
    "load_konect",
    "load_graph",
]

_SHIM_MESSAGE = ("legacy graph loader {name}() is deprecated; use "
                 "repro.graph.load({hint}) instead")


def _warn_shim(name: str, hint: str) -> None:
    warnings.warn(_SHIM_MESSAGE.format(name=name, hint=hint),
                  DeprecationWarning, stacklevel=3)


def _load_edge_list_text(path: str | os.PathLike | io.TextIOBase,
                         *, num_vertices: int | None = None) -> EdgeList:
    if isinstance(path, io.TextIOBase):
        text = path.read()
    else:
        text = Path(path).read_text()
    rows: list[tuple[int, int]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "%")):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise ValueError(f"line {lineno}: expected 'u v', got {line!r}")
        rows.append((int(parts[0]), int(parts[1])))
    if not rows:
        return EdgeList(np.empty(0, np.int64), np.empty(0, np.int64),
                        int(num_vertices or 0))
    arr = np.asarray(rows, dtype=np.int64)
    n = int(num_vertices) if num_vertices is not None else int(arr.max()) + 1
    return EdgeList(arr[:, 0], arr[:, 1], n)


def load_edge_list_text(path: str | os.PathLike | io.TextIOBase,
                        *, num_vertices: int | None = None) -> EdgeList:
    """Deprecated shim: parse a whitespace edge list (`#` comments).

    Use :func:`repro.graph.load` (which builds a CSR directly) instead.
    """
    _warn_shim("load_edge_list_text", "path")
    return _load_edge_list_text(path, num_vertices=num_vertices)


def save_edge_list_text(edges: EdgeList,
                        path: str | os.PathLike,
                        *, header: str | None = None) -> None:
    """Write an edge list as text; ``header`` becomes a ``#`` comment."""
    with open(path, "w") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        np.savetxt(fh, np.column_stack([edges.src, edges.dst]), fmt="%d")


def save_csr_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Binary CSR snapshot (compressed npz)."""
    np.savez_compressed(path, indptr=graph.indptr, indices=graph.indices)


def _load_csr_npz(path: str | os.PathLike) -> CSRGraph:
    with np.load(path) as data:
        return CSRGraph(data["indptr"], data["indices"])


def load_csr_npz(path: str | os.PathLike) -> CSRGraph:
    """Deprecated shim: use :func:`repro.graph.load` instead."""
    _warn_shim("load_csr_npz", "path")
    return _load_csr_npz(path)


def _load_matrix_market(path: str | os.PathLike | io.TextIOBase
                        ) -> EdgeList:
    if isinstance(path, io.TextIOBase):
        lines = path.read().splitlines()
    else:
        lines = Path(path).read_text().splitlines()
    if not lines or not lines[0].startswith("%%MatrixMarket"):
        raise ValueError("missing %%MatrixMarket header")
    header = lines[0].split()
    if len(header) < 5 or header[1] != "matrix" \
            or header[2] != "coordinate":
        raise ValueError(f"unsupported MatrixMarket type: {lines[0]!r}")
    symmetric = header[4] == "symmetric"
    body = [ln for ln in lines[1:]
            if ln.strip() and not ln.lstrip().startswith("%")]
    if not body:
        raise ValueError("missing size line")
    size = body[0].split()
    rows_n, cols_n = int(size[0]), int(size[1])
    n = max(rows_n, cols_n)
    src_list: list[int] = []
    dst_list: list[int] = []
    for ln in body[1:]:
        parts = ln.split()
        u, v = int(parts[0]) - 1, int(parts[1]) - 1
        src_list.append(u)
        dst_list.append(v)
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    if symmetric:
        keep = src != dst
        src, dst = (np.concatenate([src, dst[keep]]),
                    np.concatenate([dst, src[keep]]))
    return EdgeList(src, dst, n)


def load_matrix_market(path: str | os.PathLike | io.TextIOBase
                       ) -> EdgeList:
    """Deprecated shim: parse a MatrixMarket coordinate file.

    MatrixMarket is 1-indexed; ids are shifted to 0-based.  Use
    :func:`repro.graph.load` instead.
    """
    _warn_shim("load_matrix_market", "path")
    return _load_matrix_market(path)


def save_matrix_market(edges: EdgeList, path: str | os.PathLike,
                       *, comment: str | None = None) -> None:
    """Write a 1-indexed general pattern MatrixMarket file."""
    with open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        n = edges.num_vertices
        fh.write(f"{n} {n} {edges.num_edges}\n")
        np.savetxt(fh, np.column_stack([edges.src + 1, edges.dst + 1]),
                   fmt="%d")


def _load_konect(path: str | os.PathLike | io.TextIOBase) -> EdgeList:
    if isinstance(path, io.TextIOBase):
        text = path.read()
    else:
        text = Path(path).read_text()
    rows: list[tuple[int, int]] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        parts = stripped.split()
        rows.append((int(parts[0]) - 1, int(parts[1]) - 1))
    if not rows:
        return EdgeList(np.empty(0, np.int64), np.empty(0, np.int64), 0)
    arr = np.asarray(rows, dtype=np.int64)
    if arr.min() < 0:
        raise ValueError("KONECT ids must be 1-based")
    return EdgeList(arr[:, 0], arr[:, 1], int(arr.max()) + 1)


def load_konect(path: str | os.PathLike | io.TextIOBase) -> EdgeList:
    """Deprecated shim: parse a KONECT ``out.*`` file (1-based ids).

    Use :func:`repro.graph.load` instead.
    """
    _warn_shim("load_konect", "path")
    return _load_konect(path)


def _load_file(path: str | os.PathLike, **build_kwargs) -> CSRGraph:
    """Extension-dispatched file loader (the front door's file leg).

    ``.npz`` -> binary CSR; ``.mtx`` -> MatrixMarket; files whose name
    starts with ``out.`` -> KONECT; anything else -> whitespace edge
    list.
    """
    p = Path(path)
    if p.suffix == ".npz":
        return _load_csr_npz(p)
    if p.suffix == ".mtx":
        return build_graph(_load_matrix_market(p), **build_kwargs)
    if p.name.startswith("out."):
        return build_graph(_load_konect(p), **build_kwargs)
    return build_graph(_load_edge_list_text(p), **build_kwargs)


def load_graph(path: str | os.PathLike, **build_kwargs) -> CSRGraph:
    """Deprecated shim: use :func:`repro.graph.load` instead."""
    _warn_shim("load_graph", "path")
    return _load_file(path, **build_kwargs)

"""Graph mutation helpers: batched edge insertion / removal on CSR.

:class:`~repro.graph.csr.CSRGraph` is immutable by design — every
consumer (kernels, caches, fingerprints) relies on the arrays never
changing under it.  Mutation therefore means *building a new graph*:
these helpers take a graph plus an undirected edge batch and return
the successor graph, along with the canonical batch that actually
changed the structure (deduplicated, self-loops dropped, already-
present edges filtered out).  The canonical batch is what the
incremental CC tier records as delta lineage: replaying exactly those
edges on the predecessor's labels reproduces the successor's
components.

Cost shape: one merge-sort-style rebuild over ``O(m + b log b)`` for a
batch of ``b`` undirected pairs — no per-edge Python work.
"""

from __future__ import annotations

import numpy as np

from .coo import EdgeList, _edge_keys
from .csr import CSRGraph

__all__ = ["canonical_edge_batch", "insert_edges", "remove_edges"]


def canonical_edge_batch(src, dst) -> tuple[np.ndarray, np.ndarray]:
    """Normalize an undirected edge batch to sorted unique (lo, hi) pairs.

    Drops self-loops and duplicate pairs (in either orientation).
    Returns int64 arrays with ``src < dst``, sorted lexicographically —
    a canonical form, so equal batches compare equal element-wise.
    """
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise ValueError("edge batch src/dst lengths differ")
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    if lo.size == 0:
        return lo, hi
    span = int(hi.max()) + 1
    keys = np.unique(lo * span + hi)
    return keys // span, keys % span


def _edge_key_set(graph: CSRGraph) -> np.ndarray:
    """Sorted directed-edge keys of the graph (for membership tests)."""
    src = graph.edge_sources()
    return _edge_keys(src, graph.indices.astype(np.int64),
                      graph.num_vertices)


def insert_edges(graph: CSRGraph, src, dst
                 ) -> tuple[CSRGraph, np.ndarray, np.ndarray]:
    """Insert an undirected edge batch; returns the successor graph.

    Returns ``(new_graph, ins_src, ins_dst)`` where the two arrays are
    the canonical batch of edges that were genuinely new (absent from
    ``graph``); edges already present are filtered out.  Vertex ids
    must be in range — mutation never grows the vertex set.  When
    nothing is new, the *same* graph object is returned with empty
    batch arrays.
    """
    n = graph.num_vertices
    lo, hi = canonical_edge_batch(src, dst)
    if lo.size and (int(lo.min()) < 0 or int(hi.max()) >= n):
        raise ValueError("edge endpoint out of range for "
                         f"num_vertices={n}")
    if lo.size:
        # Filter pairs already present (adjacency lists are sorted, so
        # one membership probe over the directed keys suffices).
        existing = _edge_keys(graph.edge_sources(),
                              graph.indices.astype(np.int64), n)
        probe = _edge_keys(lo, hi, n)
        pos = np.searchsorted(existing, probe)
        pos = np.minimum(pos, existing.size - 1) if existing.size \
            else np.zeros_like(pos)
        present = existing.size > 0
        if present:
            found = existing[pos] == probe
            lo, hi = lo[~found], hi[~found]
    if lo.size == 0:
        return graph, lo, hi
    add_src = np.concatenate((lo, hi))
    add_dst = np.concatenate((hi, lo))
    merged = EdgeList(
        np.concatenate((graph.edge_sources(), add_src)),
        np.concatenate((graph.indices.astype(np.int64), add_dst)), n)
    return CSRGraph.from_edge_list(merged), lo, hi


def remove_edges(graph: CSRGraph, src, dst) -> CSRGraph:
    """Remove an undirected edge batch; returns the successor graph.

    Edges not present are ignored.  Removal can split components, so
    the incremental tier records no delta lineage for it — successors
    built here are served by full recompute (the planner's fallback).
    """
    n = graph.num_vertices
    lo, hi = canonical_edge_batch(src, dst)
    if lo.size == 0:
        return graph
    if int(lo.min()) < 0 or int(hi.max()) >= n:
        raise ValueError(f"edge endpoint out of range for num_vertices={n}")
    drop = np.concatenate((_edge_keys(lo, hi, n), _edge_keys(hi, lo, n)))
    drop.sort()
    keys = _edge_key_set(graph)
    pos = np.searchsorted(drop, keys)
    pos = np.minimum(pos, drop.size - 1)
    keep = drop[pos] != keys
    if bool(keep.all()):
        return graph
    kept = EdgeList(graph.edge_sources()[keep],
                    graph.indices.astype(np.int64)[keep], n)
    counts = np.bincount(kept.src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, kept.dst)

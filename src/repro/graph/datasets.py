"""Surrogate registry for the paper's 17 evaluation datasets (Table II).

The paper evaluates on real graphs from KONECT / NetworkRepository /
LAW, up to 1.7 B vertices and 15.6 B edges.  Those inputs are not
available offline and do not fit a laptop; per DESIGN.md each dataset
is replaced by a *synthetic surrogate* that matches the structural
properties Thrifty's optimizations depend on:

* skew — power-law datasets use RMAT or Chung-Lu with a heavy tail;
  roads use perturbed lattices with degree in {2..4};
* giant component — surrogates reproduce the ">94% of vertices in the
  hub's component" premise (validated by Experiment T1);
* component count character — |CC| = 1 datasets are cut to their giant
  component; crawls with many components get dust components attached;
* relative size ordering — surrogate |V| scales with the paper's |V|
  (heavily compressed: ~2^10 smaller) so "large graph" trends survive.

Every spec records the paper's original |V| (millions), |E| (billions)
and |CC| for EXPERIMENTS.md comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from .csr import CSRGraph
from .generators import (
    barabasi_albert_graph,
    chung_lu_graph,
    rmat_graph,
    road_network_graph,
    with_dust_components,
    with_tendrils,
)
from .properties import component_labels_reference

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "ALL_DATASET_NAMES",
    "POWER_LAW_DATASET_NAMES",
    "ROAD_DATASET_NAMES",
    "LARGE_DATASET_NAMES",
    "load_dataset",
    "extract_giant_component",
]


def extract_giant_component(graph: CSRGraph) -> CSRGraph:
    """Restrict a graph to its largest connected component, relabelled."""
    labels = component_labels_reference(graph)
    if labels.size == 0:
        return graph
    giant = np.argmax(np.bincount(labels))
    keep = np.flatnonzero(labels == giant)
    remap = np.full(graph.num_vertices, -1, dtype=np.int64)
    remap[keep] = np.arange(keep.size, dtype=np.int64)
    # Slice CSR rows directly: all neighbours of kept vertices are kept.
    degs = graph.degrees[keep]
    indptr = np.zeros(keep.size + 1, dtype=np.int64)
    np.cumsum(degs, out=indptr[1:])
    starts = graph.indptr[keep]
    total = int(degs.sum())
    idx = np.arange(total, dtype=np.int64)
    seg = np.searchsorted(indptr[1:], idx, side="right")
    pos = starts[seg] + (idx - indptr[seg])
    indices = remap[graph.indices[pos]]
    return CSRGraph(indptr, indices)


@dataclass(frozen=True)
class DatasetSpec:
    """One Table II dataset and its surrogate recipe."""

    name: str
    full_name: str
    kind: str              # "road" | "social" | "web" | "knowledge"
    power_law: bool
    paper_vertices_m: float
    paper_edges_b: float
    paper_cc: int
    builder: Callable[[float], CSRGraph]

    def build(self, scale: float = 1.0) -> CSRGraph:
        """Materialize the surrogate; ``scale`` shrinks/grows |V|."""
        return self.builder(scale)


def _giant(graph: CSRGraph) -> CSRGraph:
    return extract_giant_component(graph)


def _social(n: int, scale: float, *, seed: int, avg_degree: float = 16.0,
            exponent: float = 2.1, single_component: bool,
            dust: int = 0, tendril_depth: tuple[int, int] = (4, 14)
            ) -> CSRGraph:
    """Chung-Lu-based social-network surrogate.

    Hub weights are capped at the structural cutoff (~3 sqrt(n)) so the
    maximum degree is a few percent of |V|, as in real social graphs,
    and path tendrils are attached to recover the effective diameter
    (and hence the DO-LP iteration counts) of the paper's datasets.
    """
    nv = max(int(n * scale), 64)
    g = chung_lu_graph(nv, avg_degree, exponent=exponent,
                       max_weight=3.0 * np.sqrt(nv), seed=seed)
    if single_component:
        g = _giant(g)
    g = with_tendrils(g, max(g.num_vertices // 40, 1),
                      min_depth=tendril_depth[0],
                      max_depth=tendril_depth[1],
                      permute_fraction=0.4, seed=seed + 7000)
    if dust:
        g = with_dust_components(g, max(int(dust * scale), 1), seed=seed)
    return g


def _web(scale_bits: int, scale: float, *, seed: int,
         edge_factor: int = 12, dust: int = 0,
         single_component: bool = False,
         tendril_depth: tuple[int, int] = (10, 40),
         tendril_permute: float = 0.3,
         tendril_divisor: int = 60) -> CSRGraph:
    """RMAT-based web-crawl surrogate (higher skew than Chung-Lu).

    Web crawls have much longer whiskers than social networks (page
    chains), which is why the paper's web graphs need tens to hundreds
    of LP iterations; ``tendril_depth`` controls that.
    """
    bits = scale_bits
    # `scale` shrinks by whole powers of two (RMAT vertex count is 2^bits).
    while scale < 0.75 and bits > 6:
        bits -= 1
        scale *= 2
        dust = max(dust // 2, 1)   # keep the dust share proportional
    g = rmat_graph(bits, edge_factor, seed=seed)
    if single_component:
        g = _giant(g)
    g = with_tendrils(g, max(g.num_vertices // tendril_divisor, 1),
                      min_depth=tendril_depth[0],
                      max_depth=tendril_depth[1],
                      permute_fraction=tendril_permute, seed=seed + 7000)
    if dust:
        g = with_dust_components(g, dust, seed=seed)
    return g


def _road(rows: int, cols: int, scale: float, *, seed: int,
          permute: float = 0.25) -> CSRGraph:
    s = float(np.sqrt(scale))
    return road_network_graph(max(int(rows * s), 8), max(int(cols * s), 8),
                              permute_fraction=permute, seed=seed)


# Registry ordered as in Table II.  Surrogate sizes compress the paper's
# |V| by roughly 2^10 while preserving the ordering between datasets.
DATASETS: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    if spec.name in DATASETS:
        raise ValueError(f"duplicate dataset {spec.name}")
    DATASETS[spec.name] = spec


# Road grids are stretched (high aspect ratio): compressing the paper's
# 8M/24M-vertex road networks ~2^10x would otherwise compress their
# diameter ~32x, erasing the many-iterations behaviour that makes
# label propagation lose on roads.  The skinny grids keep diameter in
# the hundreds-to-thousands range the cost contrast depends on.
_register(DatasetSpec(
    "GBRd", "GB Roads (surrogate)", "road", False, 8, 0.016, 1,
    lambda s: _road(420, 20, s, seed=101)))
_register(DatasetSpec(
    "USRd", "US Roads (surrogate)", "road", False, 24, 0.058, 1,
    lambda s: _road(1900, 12, s, seed=102, permute=0.1)))
_register(DatasetSpec(
    "Pkc", "Pokec (surrogate)", "social", True, 1.6, 0.044, 1,
    lambda s: barabasi_albert_graph(max(int(3_000 * s), 64), 12, seed=103)))
_register(DatasetSpec(
    "WWiki", "War Wikipedia (surrogate)", "knowledge", True, 2, 0.052, 1245,
    lambda s: _social(3_500, s, seed=104, avg_degree=24, exponent=2.3,
                      single_component=False, dust=40)))
_register(DatasetSpec(
    "LJLnks", "LiveJournal links (surrogate)", "social", True, 5, 0.098, 4945,
    lambda s: _social(8_000, s, seed=105, avg_degree=18,
                      single_component=False, dust=80)))
_register(DatasetSpec(
    "LJGrp", "LiveJournal groups (surrogate)", "social", True, 7, 0.225, 1,
    lambda s: _social(10_000, s, seed=106, avg_degree=30,
                      single_component=True)))
_register(DatasetSpec(
    "Twtr10", "Twitter 2010 (surrogate)", "social", True, 21, 0.530, 1,
    lambda s: _social(20_000, s, seed=107, avg_degree=24, exponent=2.0,
                      single_component=True)))
_register(DatasetSpec(
    "Twtr", "Twitter (surrogate)", "social", True, 28, 0.956, 31445,
    lambda s: _social(26_000, s, seed=108, avg_degree=28, exponent=2.0,
                      single_component=False, dust=250)))
_register(DatasetSpec(
    "Wbbs", "WebBase-2001 (surrogate)", "web", True, 115, 1.737, 236185,
    lambda s: _web(16, s, seed=109, edge_factor=8, dust=500,
                   tendril_depth=(40, 120), tendril_permute=0.12,
                   tendril_divisor=200)))
_register(DatasetSpec(
    "TwtrMpi", "Twitter-MPI (surrogate)", "social", True, 41, 2.405, 1,
    lambda s: _social(36_000, s, seed=110, avg_degree=32, exponent=2.0,
                      single_component=True)))
_register(DatasetSpec(
    "Frndstr", "Friendster (surrogate)", "social", True, 65, 3.612, 1,
    lambda s: _social(56_000, s, seed=111, avg_degree=28, exponent=2.2,
                      single_component=True)))
_register(DatasetSpec(
    "SK", "SK-Domain (surrogate)", "web", True, 50, 3.639, 45,
    lambda s: _web(15, s, seed=112, edge_factor=16, dust=45)))
_register(DatasetSpec(
    "WbCc", "Web-CC12 (surrogate)", "web", True, 89, 3.872, 464919,
    lambda s: _web(16, s, seed=113, edge_factor=10, dust=700)))
_register(DatasetSpec(
    "UKDls", "UK-Delis (surrogate)", "web", True, 110, 6.919, 80443,
    lambda s: _web(16, s, seed=114, edge_factor=14, dust=400)))
_register(DatasetSpec(
    "UU", "UK-Union (surrogate)", "web", True, 133, 9.359, 278716,
    lambda s: _web(17, s, seed=115, edge_factor=12, dust=700)))
_register(DatasetSpec(
    "UKDmn", "UK-Domain (surrogate)", "web", True, 105, 6.603, 14333,
    lambda s: _web(16, s, seed=116, edge_factor=16, dust=600)))
_register(DatasetSpec(
    "ClWb9", "ClueWeb09 (surrogate)", "web", True, 1685, 15.622, 5642809,
    lambda s: _web(17, s, seed=117, edge_factor=8, dust=900)))


ALL_DATASET_NAMES: tuple[str, ...] = tuple(DATASETS)
POWER_LAW_DATASET_NAMES: tuple[str, ...] = tuple(
    name for name, spec in DATASETS.items() if spec.power_law)
ROAD_DATASET_NAMES: tuple[str, ...] = tuple(
    name for name, spec in DATASETS.items() if not spec.power_law)
# Paper Section I: "graph datasets larger than one billion edges".
LARGE_DATASET_NAMES: tuple[str, ...] = tuple(
    name for name, spec in DATASETS.items() if spec.paper_edges_b >= 1.0)


@lru_cache(maxsize=64)
def _load_dataset(name: str, scale: float = 1.0) -> CSRGraph:
    """Build (and memoize) the surrogate for a Table II dataset.

    Internal: the public entry is :func:`repro.graph.load`, which
    dispatches dataset names here and shares this memo (so
    ``load(name, scale=s) is load(name, scale=s)``).
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        known = ", ".join(DATASETS)
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    return spec.build(scale)


def load_dataset(name: str, scale: float = 1.0) -> CSRGraph:
    """Deprecated shim: use ``repro.graph.load(name, scale=...)``."""
    import warnings
    warnings.warn(
        "legacy graph loader load_dataset() is deprecated; use "
        "repro.graph.load(name, scale=...) instead",
        DeprecationWarning, stacklevel=2)
    return _load_dataset(name, scale)

"""Coordinate (edge-list) graph representation and normalization.

The paper represents undirected graphs in CSR with every edge stored in
both directions (Section II).  Raw inputs (generators, files) arrive as
COO edge lists; this module canonicalizes them: symmetrization,
deduplication, self-loop removal, and basic sanity checking.

All operations are vectorized; a million-edge list normalizes in a few
tens of milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EdgeList",
    "symmetrize",
    "dedup",
    "remove_self_loops",
]


@dataclass(frozen=True)
class EdgeList:
    """A directed edge list over vertices ``0..num_vertices-1``.

    ``src`` and ``dst`` are equal-length integer arrays.  An undirected
    graph is an :class:`EdgeList` that is symmetric (closed under
    swapping ``src``/``dst``); :func:`symmetrize` establishes that
    property.
    """

    src: np.ndarray
    dst: np.ndarray
    num_vertices: int

    def __post_init__(self) -> None:
        src = np.ascontiguousarray(self.src, dtype=np.int64)
        dst = np.ascontiguousarray(self.dst, dtype=np.int64)
        if src.ndim != 1 or dst.ndim != 1:
            raise ValueError("src/dst must be 1-D arrays")
        if src.shape != dst.shape:
            raise ValueError(
                f"src and dst lengths differ: {src.shape[0]} != {dst.shape[0]}"
            )
        n = int(self.num_vertices)
        if n < 0:
            raise ValueError("num_vertices must be non-negative")
        if src.size:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 0:
                raise ValueError("negative vertex id in edge list")
            if hi >= n:
                raise ValueError(
                    f"vertex id {hi} out of range for num_vertices={n}"
                )
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        object.__setattr__(self, "num_vertices", n)

    @property
    def num_edges(self) -> int:
        """Number of directed edges (array length)."""
        return int(self.src.size)

    def is_symmetric(self) -> bool:
        """True if for every (u, v) the edge (v, u) is also present."""
        fwd = _edge_keys(self.src, self.dst, self.num_vertices)
        rev = _edge_keys(self.dst, self.src, self.num_vertices)
        return bool(np.array_equal(np.sort(fwd), np.sort(rev)))


def _edge_keys(src: np.ndarray, dst: np.ndarray, n: int) -> np.ndarray:
    """Encode edge pairs as single int64 keys for sorting/dedup."""
    # n can be 0 for an empty graph; guard the multiplier.
    return src * max(n, 1) + dst


def remove_self_loops(edges: EdgeList) -> EdgeList:
    """Drop edges (v, v).

    Self-loops never affect connectivity but inflate degree counts,
    which matters for Zero Planting (max-degree selection).
    """
    keep = edges.src != edges.dst
    if bool(keep.all()):
        return edges
    return EdgeList(edges.src[keep], edges.dst[keep], edges.num_vertices)


def dedup(edges: EdgeList) -> EdgeList:
    """Remove duplicate directed edges, preserving no particular order."""
    if edges.num_edges == 0:
        return edges
    keys = _edge_keys(edges.src, edges.dst, edges.num_vertices)
    uniq = np.unique(keys)
    n = max(edges.num_vertices, 1)
    return EdgeList(uniq // n, uniq % n, edges.num_vertices)


def symmetrize(edges: EdgeList) -> EdgeList:
    """Return the undirected closure: both (u,v) and (v,u), deduplicated.

    This mirrors the paper's CSR convention where each undirected edge
    is represented twice.
    """
    src = np.concatenate([edges.src, edges.dst])
    dst = np.concatenate([edges.dst, edges.src])
    return dedup(EdgeList(src, dst, edges.num_vertices))

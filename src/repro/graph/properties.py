"""Structural graph properties the paper's analysis relies on.

The Thrifty optimizations are justified by three structural facts about
real-world skewed-degree graphs (Sections III-IV):

* a heavy-tailed (power-law-ish) degree distribution,
* a giant component containing >94% of the vertices (Table I),
* hub vertices being few hops from everything (low effective diameter).

This module measures all three on arbitrary graphs so the synthetic
surrogates can be validated against the paper's premises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = [
    "DegreeStats",
    "degree_stats",
    "estimate_power_law_exponent",
    "is_skewed",
    "component_labels_reference",
    "component_sizes",
    "giant_component_fraction",
    "sampled_giant_fraction",
    "max_degree_component_fraction",
    "estimate_diameter",
]


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree distribution."""

    min: int
    max: int
    mean: float
    median: float
    p99: float
    gini: float
    top1pct_edge_share: float

    @property
    def skew_ratio(self) -> float:
        """max degree / mean degree — crude but robust skew indicator."""
        return self.max / self.mean if self.mean else 0.0


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Compute :class:`DegreeStats` for a graph."""
    d = graph.degrees.astype(np.float64)
    if d.size == 0:
        return DegreeStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    d_sorted = np.sort(d)
    total = d_sorted.sum()
    # Gini coefficient of the degree distribution.
    n = d_sorted.size
    if total > 0:
        cum = np.cumsum(d_sorted)
        gini = float((n + 1 - 2 * (cum / total).sum()) / n)
    else:
        gini = 0.0
    # Share of edges incident to the top 1% highest-degree vertices.
    k = max(1, n // 100)
    top_share = float(d_sorted[-k:].sum() / total) if total else 0.0
    return DegreeStats(
        min=int(d_sorted[0]),
        max=int(d_sorted[-1]),
        mean=float(d.mean()),
        median=float(np.median(d_sorted)),
        p99=float(np.percentile(d_sorted, 99)),
        gini=gini,
        top1pct_edge_share=top_share,
    )


def estimate_power_law_exponent(graph: CSRGraph,
                                *, k_min: int = 2) -> float:
    """Discrete power-law exponent via the Clauset-Shalizi-Newman MLE.

    Fits P(k) ~ k^-gamma to the degree tail (degrees >= ``k_min``)
    using the continuous approximation of the maximum-likelihood
    estimator::

        gamma = 1 + n_tail / sum(ln(k_i / (k_min - 0.5)))

    Real social networks sit around gamma = 2-3; road networks have no
    meaningful fit (with ``k_min`` above their 2-4 degree bulk the
    estimator returns a large value because no tail remains).  Pick
    ``k_min`` above the bulk of the distribution — at ``k_min`` inside
    the bulk the continuous MLE is meaningless for any graph.  Used to
    validate the surrogates against Table II's Power-Law column.
    """
    d = graph.degrees
    tail = d[d >= k_min].astype(np.float64)
    if tail.size < 2:
        return float("inf")
    return float(1.0 + tail.size
                 / np.log(tail / (k_min - 0.5)).sum())


def is_skewed(graph: CSRGraph, *,
              min_skew_ratio: float = 10.0,
              min_top1pct_share: float = 0.05) -> bool:
    """Heuristic test for a heavy-tailed degree distribution.

    Mirrors the paper's informal "Power-Law: Yes/No" dataset column: a
    graph is considered skewed when the max degree dwarfs the mean and
    the top-1% of vertices carry a disproportionate share of edges.
    Road networks (near-uniform small degrees) fail both conditions.
    """
    stats = degree_stats(graph)
    return (stats.skew_ratio >= min_skew_ratio
            and stats.top1pct_edge_share >= min_top1pct_share)


def component_labels_reference(graph: CSRGraph) -> np.ndarray:
    """Ground-truth component labels via scipy's connected_components.

    Used only for validation — the library's own algorithms live in
    :mod:`repro.core` and :mod:`repro.baselines`.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components

    n = graph.num_vertices
    mat = csr_matrix(
        (np.ones(graph.num_edges, dtype=np.int8),
         graph.indices.astype(np.int64), graph.indptr),
        shape=(n, n),
    )
    _, labels = connected_components(mat, directed=False)
    return labels.astype(np.int64)


def component_sizes(graph: CSRGraph) -> np.ndarray:
    """Sizes of all connected components, descending."""
    labels = component_labels_reference(graph)
    if labels.size == 0:
        return np.empty(0, dtype=np.int64)
    sizes = np.bincount(labels)
    return np.sort(sizes)[::-1].astype(np.int64)


def giant_component_fraction(graph: CSRGraph) -> float:
    """Fraction of vertices in the largest component."""
    sizes = component_sizes(graph)
    if sizes.size == 0:
        return 0.0
    return float(sizes[0] / graph.num_vertices)


def sampled_giant_fraction(graph: CSRGraph, *, samples: int = 256,
                           seed: int = 0) -> float:
    """Cheap giant-component vertex-fraction estimate via a hub BFS.

    One BFS from the maximum-degree vertex marks its component — on
    skewed graphs the hub almost surely lives in the giant component
    (the Zero Planting premise, Table I), and on road-like graphs the
    single component is found regardless of the seed.  With
    ``samples > 0`` the fraction is estimated from that many uniformly
    sampled vertices (deterministic given ``seed``); ``samples == 0``
    counts the mask exactly.  Unlike :func:`giant_component_fraction`
    this never materializes a scipy sparse matrix, so the serving
    layer can afford it as a structural probe.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    hub = graph.max_degree_vertex()
    visited = np.zeros(n, dtype=bool)
    visited[hub] = True
    frontier = np.array([hub], dtype=np.int64)
    while frontier.size:
        counts = graph.degrees[frontier]
        nbrs = _gather_neighbors(graph, frontier, counts)
        new = np.unique(nbrs[~visited[nbrs]])
        if new.size == 0:
            break
        visited[new] = True
        frontier = new
    if samples <= 0 or samples >= n:
        return float(np.count_nonzero(visited) / n)
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, n, size=samples)
    return float(np.count_nonzero(visited[picks]) / samples)


def max_degree_component_fraction(graph: CSRGraph) -> float:
    """Table I quantity: % of vertices sharing a component with the
    maximum-degree vertex.

    The Zero Planting heuristic bets this is ~the giant component; on
    all of the paper's power-law datasets it is >94%.
    """
    if graph.num_vertices == 0:
        return 0.0
    labels = component_labels_reference(graph)
    hub = graph.max_degree_vertex()
    return float((labels == labels[hub]).sum() / graph.num_vertices)


def estimate_diameter(graph: CSRGraph, *, num_sources: int = 4,
                      seed: int = 0) -> int:
    """Lower-bound diameter estimate by double-sweep BFS.

    Runs BFS from a few pseudo-random sources plus the farthest vertex
    found from each (the classic double sweep), returning the largest
    eccentricity seen.  Exact for trees/paths; a tight lower bound in
    practice.  Used to check road surrogates are high-diameter and
    power-law surrogates are low-diameter.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    sources = set(int(v) for v in rng.integers(0, n, size=num_sources))
    for s in sources:
        dist, far = _bfs_eccentricity(graph, s)
        best = max(best, dist)
        dist2, _ = _bfs_eccentricity(graph, far)
        best = max(best, dist2)
    return best


def _bfs_eccentricity(graph: CSRGraph, source: int) -> tuple[int, int]:
    """(eccentricity within source's component, farthest vertex)."""
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    level = 0
    last = source
    while frontier.size:
        counts = graph.degrees[frontier]
        nbrs = _gather_neighbors(graph, frontier, counts)
        new = np.unique(nbrs[~visited[nbrs]])
        if new.size == 0:
            break
        visited[new] = True
        frontier = new
        level += 1
        last = int(new[0])
    return level, last


def _gather_neighbors(graph: CSRGraph, frontier: np.ndarray,
                      counts: np.ndarray) -> np.ndarray:
    """Concatenate adjacency lists of all frontier vertices, vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=graph.indices.dtype)
    starts = graph.indptr[frontier]
    # offsets[i] = position in the output where frontier[i]'s list begins
    offsets = np.zeros(frontier.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    idx = np.arange(total, dtype=np.int64)
    seg = np.searchsorted(offsets, idx, side="right") - 1
    pos = starts[seg] + (idx - offsets[seg])
    return graph.indices[pos]

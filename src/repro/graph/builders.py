"""End-to-end builders: raw edges -> canonical CSR graph.

The paper removes zero-degree vertices before processing "because of
their destructive effect" (Table II caption); :func:`build_graph`
implements the same normalization pipeline:

    raw edges -> drop self-loops -> symmetrize+dedup
              -> (optionally) drop zero-degree vertices and relabel
              -> CSR
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .coo import EdgeList, remove_self_loops, symmetrize
from .csr import CSRGraph

__all__ = ["build_graph", "build_graph_streamed", "from_pairs",
           "compact_vertices"]


def from_pairs(pairs: Sequence[tuple[int, int]],
               num_vertices: int | None = None) -> EdgeList:
    """Convenience: build an :class:`EdgeList` from python pairs."""
    if len(pairs) == 0:
        return EdgeList(np.empty(0, np.int64), np.empty(0, np.int64),
                        int(num_vertices or 0))
    arr = np.asarray(pairs, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("pairs must be a sequence of (u, v) tuples")
    n = int(num_vertices) if num_vertices is not None else int(arr.max()) + 1
    return EdgeList(arr[:, 0], arr[:, 1], n)


def compact_vertices(edges: EdgeList) -> tuple[EdgeList, np.ndarray]:
    """Drop vertices that appear in no edge; relabel the rest densely.

    Returns the compacted edge list and ``old_ids`` such that
    ``old_ids[new_id] == original vertex id``.
    """
    if edges.num_edges == 0:
        return (EdgeList(edges.src, edges.dst, 0),
                np.empty(0, dtype=np.int64))
    used = np.zeros(edges.num_vertices, dtype=bool)
    used[edges.src] = True
    used[edges.dst] = True
    old_ids = np.flatnonzero(used)
    remap = np.full(edges.num_vertices, -1, dtype=np.int64)
    remap[old_ids] = np.arange(old_ids.size, dtype=np.int64)
    return (EdgeList(remap[edges.src], remap[edges.dst], old_ids.size),
            old_ids)


def build_graph_streamed(chunks,
                         num_vertices: int,
                         *,
                         drop_zero_degree: bool = True) -> CSRGraph:
    """Two-pass streaming CSR construction from edge chunks.

    For inputs too large to materialize as one EdgeList (the paper's
    datasets reach 15.6 B edges), the standard out-of-core recipe is
    two passes over the stream: count degrees, then scatter neighbours
    into a preallocated array.  ``chunks`` is any re-iterable of
    ``(src, dst)`` array pairs (e.g. a generator factory's output
    consumed twice via a list, or chunked reads of a file).

    Normalization matches :func:`build_graph`: self-loops dropped,
    edges symmetrized, duplicates removed, zero-degree vertices
    optionally compacted away.
    """
    chunk_list = list(chunks)
    n = int(num_vertices)
    # Pass 1: degree count (both directions, self-loops dropped).
    counts = np.zeros(n, dtype=np.int64)
    for src, dst in chunk_list:
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        if src.size and (min(src.min(), dst.min()) < 0
                         or max(src.max(), dst.max()) >= n):
            raise ValueError("vertex id out of range in chunk")
        keep = src != dst
        counts += np.bincount(src[keep], minlength=n)
        counts += np.bincount(dst[keep], minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    # Pass 2: scatter into place.
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    cursor = indptr[:-1].copy()
    for src, dst in chunk_list:
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        keep = src != dst
        for a, b in ((src[keep], dst[keep]), (dst[keep], src[keep])):
            order = np.argsort(a, kind="stable")
            a_sorted, b_sorted = a[order], b[order]
            uniq, start_idx = np.unique(a_sorted, return_index=True)
            group_counts = np.diff(np.append(start_idx,
                                             a_sorted.size))
            offs = np.repeat(cursor[uniq], group_counts)
            within = np.arange(a_sorted.size) - np.repeat(
                start_idx, group_counts)
            indices[offs + within] = b_sorted
            cursor[uniq] += group_counts
    # Sort rows + dedup within rows.
    rows = np.repeat(np.arange(n, dtype=np.int64), counts)
    order = np.lexsort((indices, rows))
    rows, indices = rows[order], indices[order]
    if rows.size:
        dup = np.zeros(rows.size, dtype=bool)
        dup[1:] = (rows[1:] == rows[:-1]) & (indices[1:] == indices[:-1])
        rows, indices = rows[~dup], indices[~dup]
    final_counts = np.bincount(rows, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(final_counts, out=indptr[1:])
    graph = CSRGraph(indptr, indices)
    if drop_zero_degree:
        edges, _ = compact_vertices(graph.to_edge_list())
        return CSRGraph.from_edge_list(edges)
    return graph


def build_graph(edges: EdgeList,
                *,
                drop_zero_degree: bool = True,
                keep_self_loops: bool = False) -> CSRGraph:
    """Normalize an arbitrary edge list into the canonical CSR form.

    Parameters
    ----------
    drop_zero_degree:
        Remove isolated vertices and relabel, as the paper's datasets do.
    keep_self_loops:
        Self-loops are dropped by default; they carry no connectivity.
    """
    if not keep_self_loops:
        edges = remove_self_loops(edges)
    edges = symmetrize(edges)
    if drop_zero_degree:
        edges, _ = compact_vertices(edges)
    return CSRGraph.from_edge_list(edges)

"""Synthetic graph generators used as dataset surrogates.

See DESIGN.md Section 2: the paper's real-world datasets are replaced
by generators that control the structural properties Thrifty exploits —
degree skew, giant-component fraction, and diameter.
"""

from .barabasi_albert import barabasi_albert_edges, barabasi_albert_graph
from .chung_lu import chung_lu_edges, chung_lu_graph, power_law_weights
from .erdos_renyi import erdos_renyi_edges, erdos_renyi_graph
from .rmat import rmat_edges, rmat_graph
from .road import cycle_graph, grid_edges, path_graph, road_network_graph
from .rng import as_generator, split
from .stitched import (
    disjoint_union,
    star_graph,
    with_dust_components,
    with_tendrils,
)

__all__ = [
    "as_generator",
    "split",
    "barabasi_albert_edges",
    "barabasi_albert_graph",
    "chung_lu_edges",
    "chung_lu_graph",
    "power_law_weights",
    "erdos_renyi_edges",
    "erdos_renyi_graph",
    "rmat_edges",
    "rmat_graph",
    "grid_edges",
    "road_network_graph",
    "path_graph",
    "cycle_graph",
    "disjoint_union",
    "with_dust_components",
    "with_tendrils",
    "star_graph",
]

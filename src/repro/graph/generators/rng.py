"""Seed plumbing shared by all generators.

Every generator takes ``seed: int | np.random.Generator``; this module
normalizes that to a Generator so sub-streams can be split off
deterministically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "split"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed-ish value into a numpy Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def split(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one parent."""
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]

"""Erdős-Rényi G(n, m) generator — the non-skewed control case.

Uniform random graphs have a Poisson (light-tailed) degree
distribution; Thrifty's structural assumptions (hubs, skew) do not
hold, making ER useful as a negative control in tests and ablations.
"""

from __future__ import annotations

import numpy as np

from ..builders import build_graph
from ..coo import EdgeList
from ..csr import CSRGraph
from .rng import as_generator

__all__ = ["erdos_renyi_edges", "erdos_renyi_graph"]


def erdos_renyi_edges(num_vertices: int,
                      num_edges: int,
                      *,
                      seed: int | np.random.Generator | None = 0
                      ) -> EdgeList:
    """Draw ``num_edges`` uniform directed edges (with replacement)."""
    rng = as_generator(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    return EdgeList(src, dst, num_vertices)


def erdos_renyi_graph(num_vertices: int,
                      avg_degree: float = 8.0,
                      *,
                      seed: int | np.random.Generator | None = 0,
                      drop_zero_degree: bool = True) -> CSRGraph:
    """Uniform random CSR graph with the given average degree."""
    m = int(round(num_vertices * avg_degree / 2))
    edges = erdos_renyi_edges(num_vertices, m, seed=seed)
    return build_graph(edges, drop_zero_degree=drop_zero_degree)

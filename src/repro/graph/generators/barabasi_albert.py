"""Barabási-Albert preferential attachment generator.

Produces connected scale-free graphs (gamma = 3).  Unlike RMAT and
Chung-Lu the result is connected by construction, which is useful for
surrogates of single-component datasets (Pokec, Friendster, ...,
|CC| = 1 in Table II).

Preferential attachment is inherently sequential, but the standard
repeated-endpoints trick keeps it O(m) with only a thin Python loop
over *vertices* (each step vectorized over its m attachment targets):
sampling uniformly from the flat array of all previous edge endpoints
is exactly degree-proportional sampling.
"""

from __future__ import annotations

import numpy as np

from ..builders import build_graph
from ..coo import EdgeList
from ..csr import CSRGraph
from .rng import as_generator

__all__ = ["barabasi_albert_edges", "barabasi_albert_graph"]


def barabasi_albert_edges(num_vertices: int,
                          attach: int = 8,
                          *,
                          seed: int | np.random.Generator | None = 0
                          ) -> EdgeList:
    """Grow a BA graph: each new vertex attaches to ``attach`` targets."""
    if attach < 1:
        raise ValueError("attach must be >= 1")
    if num_vertices <= attach:
        raise ValueError("num_vertices must exceed attach")
    rng = as_generator(seed)
    m = attach
    # Endpoint pool: every edge contributes both endpoints, so uniform
    # draws from the pool are degree-proportional.
    num_new = num_vertices - (m + 1)
    total_edges = m * (m + 1) // 2 + num_new * m
    src = np.empty(total_edges, dtype=np.int64)
    dst = np.empty(total_edges, dtype=np.int64)
    pool = np.empty(2 * total_edges, dtype=np.int64)
    # Seed clique on vertices 0..m.
    k = 0
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            src[k], dst[k] = u, v
            pool[2 * k], pool[2 * k + 1] = u, v
            k += 1
    for v in range(m + 1, num_vertices):
        # Draw with replacement then dedup; top up until m distinct
        # targets — duplicates are rare once the pool is large.
        targets = np.unique(pool[rng.integers(0, 2 * k, size=m)])
        while targets.size < m:
            extra = pool[rng.integers(0, 2 * k, size=m)]
            targets = np.unique(np.concatenate([targets, extra]))[:m]
        e = slice(k, k + m)
        src[e] = v
        dst[e] = targets
        pool[2 * k: 2 * k + 2 * m: 2] = v
        pool[2 * k + 1: 2 * k + 2 * m: 2] = targets
        k += m
    return EdgeList(src, dst, num_vertices)


def barabasi_albert_graph(num_vertices: int,
                          attach: int = 8,
                          *,
                          seed: int | np.random.Generator | None = 0
                          ) -> CSRGraph:
    """Connected scale-free CSR graph (single component by construction)."""
    edges = barabasi_albert_edges(num_vertices, attach, seed=seed)
    return build_graph(edges, drop_zero_degree=False)

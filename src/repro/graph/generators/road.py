"""Road-network surrogates: perturbed 2-D lattices.

GB/US Roads in Table II are the paper's non-power-law datasets: degree
is nearly uniform (2-4), and the diameter is enormous, which is exactly
why label propagation (wavefront per iteration) loses to disjoint-set
algorithms there.  A 2-D grid with a small fraction of removed and
added-shortcut edges reproduces both properties at any scale:

* degree stays in {2, 3, 4} (plus a few shortcut endpoints),
* diameter ~ O(sqrt(|V|)), i.e. hundreds of LP iterations.
"""

from __future__ import annotations

import numpy as np

from ..builders import build_graph
from ..coo import EdgeList
from ..csr import CSRGraph
from .rng import as_generator

__all__ = ["grid_edges", "road_network_graph", "path_graph", "cycle_graph"]


def grid_edges(rows: int, cols: int) -> EdgeList:
    """4-connected lattice edges over ``rows x cols`` vertices."""
    if rows < 1 or cols < 1:
        raise ValueError("grid must be at least 1x1")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz_src = ids[:, :-1].ravel()
    horiz_dst = ids[:, 1:].ravel()
    vert_src = ids[:-1, :].ravel()
    vert_dst = ids[1:, :].ravel()
    return EdgeList(np.concatenate([horiz_src, vert_src]),
                    np.concatenate([horiz_dst, vert_dst]),
                    rows * cols)


def road_network_graph(rows: int, cols: int,
                       *,
                       remove_fraction: float = 0.05,
                       shortcut_fraction: float = 0.005,
                       permute_fraction: float = 0.25,
                       seed: int | np.random.Generator | None = 0
                       ) -> CSRGraph:
    """Perturbed lattice: drop a few street segments, add a few bridges.

    ``remove_fraction`` of lattice edges are deleted (dead ends, rivers)
    and ``shortcut_fraction * |E|`` random short-range shortcuts are
    added (bridges, motorways).  Shortcuts connect vertices within a
    small Manhattan radius so the diameter stays O(sqrt(n)), like real
    road networks.

    ``permute_fraction`` of vertex ids are scattered randomly: real
    road datasets have partial (not perfect row-major) spatial id
    locality, and a perfectly ordered lattice would let an in-order
    label sweep flood the whole map in one iteration.
    """
    if not (0.0 <= permute_fraction <= 1.0):
        raise ValueError("permute_fraction must be in [0, 1]")
    rng = as_generator(seed)
    base = grid_edges(rows, cols)
    m = base.num_edges
    keep = rng.random(m) >= remove_fraction
    src = base.src[keep]
    dst = base.dst[keep]
    num_short = int(round(shortcut_fraction * m))
    if num_short:
        r = rng.integers(0, rows, size=num_short)
        c = rng.integers(0, cols, size=num_short)
        dr = rng.integers(-3, 4, size=num_short)
        dc = rng.integers(-3, 4, size=num_short)
        r2 = np.clip(r + dr, 0, rows - 1)
        c2 = np.clip(c + dc, 0, cols - 1)
        src = np.concatenate([src, r * cols + c])
        dst = np.concatenate([dst, r2 * cols + c2])
    n = rows * cols
    k = int(round(permute_fraction * n))
    if k > 1:
        remap = np.arange(n, dtype=np.int64)
        sel = rng.choice(n, size=k, replace=False)
        remap[sel] = sel[rng.permutation(k)]
        src = remap[src]
        dst = remap[dst]
    edges = EdgeList(src, dst, n)
    return build_graph(edges, drop_zero_degree=True)


def path_graph(num_vertices: int) -> CSRGraph:
    """Simple path 0-1-...-n-1: the worst case for label propagation."""
    if num_vertices < 1:
        raise ValueError("path needs at least one vertex")
    v = np.arange(num_vertices - 1, dtype=np.int64)
    return build_graph(EdgeList(v, v + 1, num_vertices),
                       drop_zero_degree=False)


def cycle_graph(num_vertices: int) -> CSRGraph:
    """Cycle 0-1-...-n-1-0."""
    if num_vertices < 3:
        raise ValueError("cycle needs at least three vertices")
    v = np.arange(num_vertices, dtype=np.int64)
    return build_graph(EdgeList(v, (v + 1) % num_vertices, num_vertices),
                       drop_zero_degree=False)

"""Chung-Lu random graphs with a prescribed expected degree sequence.

Given weights w_v, edge (u, v) appears with probability proportional to
w_u * w_v.  Feeding a power-law weight sequence produces graphs whose
*realized* degree distribution follows the same tail, with independent
edges — a cleaner null model than RMAT (no quadrant locality).

Sampling is done by drawing endpoints independently with probability
proportional to weight (the "fast Chung-Lu" / edge-skeleton variant),
which preserves expected degrees and is fully vectorizable.
"""

from __future__ import annotations

import numpy as np

from ..builders import build_graph
from ..coo import EdgeList
from ..csr import CSRGraph
from .rng import as_generator

__all__ = ["power_law_weights", "chung_lu_edges", "chung_lu_graph"]


def power_law_weights(num_vertices: int,
                      exponent: float = 2.1,
                      *,
                      min_weight: float = 1.0,
                      max_weight: float | None = None,
                      seed: int | np.random.Generator | None = 0
                      ) -> np.ndarray:
    """Draw i.i.d. Pareto(exponent-1) weights, the classic scale-free tail.

    ``exponent`` is the degree-distribution exponent gamma (P(k) ~
    k^-gamma); real social networks sit around 2-3.
    """
    if exponent <= 1.0:
        raise ValueError("exponent must exceed 1")
    rng = as_generator(seed)
    u = rng.random(num_vertices)
    w = min_weight * (1.0 - u) ** (-1.0 / (exponent - 1.0))
    if max_weight is not None:
        np.minimum(w, max_weight, out=w)
    return w


def chung_lu_edges(weights: np.ndarray,
                   num_edges: int,
                   *,
                   seed: int | np.random.Generator | None = 0) -> EdgeList:
    """Sample ``num_edges`` directed edges with endpoint P(v) ∝ w_v."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    rng = as_generator(seed)
    p = weights / weights.sum()
    # Inverse-CDF sampling keeps memory flat for large num_edges.
    cdf = np.cumsum(p)
    cdf[-1] = 1.0
    src = np.searchsorted(cdf, rng.random(num_edges), side="right")
    dst = np.searchsorted(cdf, rng.random(num_edges), side="right")
    return EdgeList(src.astype(np.int64), dst.astype(np.int64),
                    weights.size)


def chung_lu_graph(num_vertices: int,
                   avg_degree: float = 16.0,
                   *,
                   exponent: float = 2.1,
                   max_weight: float | None = None,
                   seed: int | np.random.Generator | None = 0,
                   drop_zero_degree: bool = True) -> CSRGraph:
    """Power-law Chung-Lu graph in canonical CSR form."""
    rng = as_generator(seed)
    w = power_law_weights(num_vertices, exponent,
                          max_weight=max_weight, seed=rng)
    m = int(round(num_vertices * avg_degree / 2))
    edges = chung_lu_edges(w, m, seed=rng)
    return build_graph(edges, drop_zero_degree=drop_zero_degree)

"""RMAT / stochastic-Kronecker power-law graph generator.

RMAT recursively subdivides the adjacency matrix into quadrants with
probabilities (a, b, c, d); skew in (a vs d) yields the heavy-tailed
degree distribution of social networks and web crawls.  This is the
generator GAPBS and Graph500 use for their synthetic skewed inputs, so
it is the natural surrogate for the paper's social/web datasets.

Fully vectorized: all ``num_edges`` bit paths are drawn at once as a
(num_edges, scale) boolean matrix per dimension.
"""

from __future__ import annotations

import numpy as np

from ..builders import build_graph
from ..coo import EdgeList
from ..csr import CSRGraph
from .rng import as_generator

__all__ = ["rmat_edges", "rmat_graph"]


def rmat_edges(scale: int,
               num_edges: int,
               *,
               a: float = 0.57, b: float = 0.19, c: float = 0.19,
               seed: int | np.random.Generator | None = 0) -> EdgeList:
    """Draw ``num_edges`` directed RMAT edges over ``2**scale`` vertices.

    Default (a, b, c) are the Graph500 parameters (d = 1-a-b-c = 0.05).
    """
    if scale < 0:
        raise ValueError("scale must be >= 0")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative")
    rng = as_generator(seed)
    n = 1 << scale
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # For each of `scale` levels decide the quadrant for every edge.
    # P(src bit = 1) = c + d; P(dst bit = 1 | src bit) follows the
    # conditional quadrant distribution.
    p_src1 = c + d
    for _ in range(scale):
        u = rng.random(num_edges)
        v = rng.random(num_edges)
        src_bit = u < p_src1
        # Conditional probability that the dst bit is 1:
        #   given src_bit=0 -> b / (a + b); given src_bit=1 -> d / (c + d)
        p_dst1 = np.where(src_bit,
                          d / (c + d) if (c + d) > 0 else 0.0,
                          b / (a + b) if (a + b) > 0 else 0.0)
        dst_bit = v < p_dst1
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return EdgeList(src, dst, n)


def rmat_graph(scale: int,
               edge_factor: int = 16,
               *,
               a: float = 0.57, b: float = 0.19, c: float = 0.19,
               seed: int | np.random.Generator | None = 0,
               drop_zero_degree: bool = True) -> CSRGraph:
    """Canonical CSR RMAT graph with ``edge_factor * 2**scale`` edge draws.

    Zero-degree vertices are removed by default, matching the paper's
    dataset preparation.
    """
    edges = rmat_edges(scale, edge_factor * (1 << scale),
                       a=a, b=b, c=c, seed=seed)
    return build_graph(edges, drop_zero_degree=drop_zero_degree)

"""Multi-component graph construction.

Table II lists datasets with anything from 1 to 5.6M connected
components; web crawls in particular pair a giant component with a dust
cloud of tiny ones.  :func:`with_dust_components` attaches that dust to
any base graph so surrogates can match the paper's |CC| character, and
:func:`disjoint_union` combines arbitrary graphs.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from .rng import as_generator

__all__ = ["disjoint_union", "with_dust_components", "with_tendrils",
           "star_graph"]


def disjoint_union(graphs: list[CSRGraph]) -> CSRGraph:
    """Concatenate graphs with shifted vertex ids; components add up."""
    if not graphs:
        raise ValueError("need at least one graph")
    indptrs = []
    indices = []
    offset = 0
    edge_offset = 0
    for g in graphs:
        ip = g.indptr[1:] if indptrs else g.indptr
        indptrs.append(ip + edge_offset)
        indices.append(g.indices.astype(np.int64) + offset)
        offset += g.num_vertices
        edge_offset += g.num_edges
    return CSRGraph(np.concatenate(indptrs), np.concatenate(indices))


def with_dust_components(base: CSRGraph,
                         num_dust: int,
                         *,
                         max_dust_size: int = 6,
                         seed: int | np.random.Generator | None = 0
                         ) -> CSRGraph:
    """Append ``num_dust`` tiny extra components (paths of 2..max size).

    The giant component's identity is preserved: the base graph keeps
    vertex ids 0..|V|-1, dust vertices come after, so degree-based hub
    selection still lands in the base graph (dust degrees <= 2).
    """
    if num_dust == 0:
        return base
    rng = as_generator(seed)
    sizes = rng.integers(2, max_dust_size + 1, size=num_dust)
    total = int(sizes.sum())
    # Build all dust paths at once: edges (v, v+1) within each path.
    starts = base.num_vertices + np.concatenate(
        [[0], np.cumsum(sizes[:-1])])
    src_parts = []
    for s, size in zip(starts, sizes):
        v = np.arange(s, s + size - 1, dtype=np.int64)
        src_parts.append(v)
    src = np.concatenate(src_parts)
    dst = src + 1
    # Dust CSR: each path vertex has degree 1 or 2.
    both_src = np.concatenate([src, dst])
    both_dst = np.concatenate([dst, src])
    order = np.argsort(both_src, kind="stable")
    both_src = both_src[order]
    both_dst = both_dst[order]
    counts = np.bincount(both_src - base.num_vertices, minlength=total)
    dust_indptr = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(counts, out=dust_indptr[1:])
    indptr = np.concatenate([base.indptr,
                             base.num_edges + dust_indptr[1:]])
    indices = np.concatenate([base.indices.astype(np.int64), both_dst])
    return CSRGraph(indptr, indices)


def with_tendrils(base: CSRGraph,
                  num_tendrils: int,
                  *,
                  min_depth: int = 4,
                  max_depth: int = 12,
                  permute_fraction: float = 1.0,
                  seed: int | np.random.Generator | None = 0) -> CSRGraph:
    """Attach path "tendrils" (whiskers) to random base vertices.

    Real social networks and especially web crawls have long
    low-degree chains hanging off the core; they are what gives those
    graphs their large effective diameter and what makes synchronous
    label propagation need many iterations (paper Table V: WebBase
    needs 744 DO-LP iterations).  Pure RMAT/Chung-Lu cores have
    diameter ~log n, so surrogates add tendrils to recover the paper's
    iteration-count behaviour.

    Tendril vertices are appended after the base ids and are connected
    to the giant component (unlike :func:`with_dust_components`), so
    component counts and Table I fractions are unaffected.

    ``permute_fraction`` of the tendril vertex ids are scattered
    randomly within the appended range.  At 0.0 every chain is
    id-ascending, which an in-order unified-labels sweep floods in a
    single iteration; at 1.0 ids are fully random and propagation
    degenerates to ~1 hop/iteration.  Real crawl/social ids have
    partial locality (BFS crawl order), i.e. something in between —
    the fraction is the dataset surrogates' diameter-behaviour knob.
    """
    if not (0.0 <= permute_fraction <= 1.0):
        raise ValueError("permute_fraction must be in [0, 1]")
    if num_tendrils == 0:
        return base
    if base.num_vertices == 0:
        raise ValueError("cannot attach tendrils to an empty graph")
    if not (1 <= min_depth <= max_depth):
        raise ValueError("need 1 <= min_depth <= max_depth")
    rng = as_generator(seed)
    depths = rng.integers(min_depth, max_depth + 1, size=num_tendrils)
    anchors = rng.integers(0, base.num_vertices, size=num_tendrils)
    total = int(depths.sum())
    n0 = base.num_vertices
    starts = n0 + np.concatenate([[0], np.cumsum(depths[:-1])])
    src_parts = [anchors.astype(np.int64)]   # anchor -> first path vertex
    dst_parts = [starts.astype(np.int64)]
    for s, d in zip(starts, depths):
        if d > 1:
            v = np.arange(s, s + d - 1, dtype=np.int64)
            src_parts.append(v)
            dst_parts.append(v + 1)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    k = int(round(permute_fraction * total))
    if k > 1:
        remap = np.arange(n0 + total, dtype=np.int64)
        sel = rng.choice(total, size=k, replace=False)
        remap[n0 + sel] = n0 + rng.permutation(sel)
        src = remap[src]
        dst = remap[dst]
    # Merge into CSR without a full rebuild: count new degrees.
    n = n0 + total
    both_src = np.concatenate([src, dst])
    both_dst = np.concatenate([dst, src])
    extra_deg = np.bincount(both_src, minlength=n)
    new_indptr = np.zeros(n + 1, dtype=np.int64)
    new_indptr[1:n0 + 1] = base.indptr[1:]
    new_indptr[n0 + 1:] = base.num_edges   # tendril rows start empty
    new_indptr[1:] += np.cumsum(extra_deg)
    new_indices = np.empty(base.num_edges + both_src.size, dtype=np.int64)
    # Place base adjacency, then tendril edges, bucketed per vertex.
    cursor = new_indptr[:-1].copy()
    base_deg = base.degrees
    for_rows = np.repeat(np.arange(n0, dtype=np.int64), base_deg)
    pos = cursor[for_rows] + (np.arange(base.num_edges)
                              - base.indptr[for_rows])
    new_indices[pos] = base.indices
    cursor[:n0] += base_deg
    order = np.argsort(both_src, kind="stable")
    bs = both_src[order]
    bd = both_dst[order]
    offs = np.zeros(n, dtype=np.int64)
    counts = np.bincount(bs, minlength=n)
    np.cumsum(counts[:-1], out=offs[1:])
    pos2 = cursor[bs] + (np.arange(bs.size) - offs[bs])
    new_indices[pos2] = bd
    return CSRGraph(new_indptr, new_indices)


def star_graph(num_leaves: int) -> CSRGraph:
    """Hub-and-spokes: vertex 0 connected to 1..num_leaves.

    The extreme skew case — useful for unit-testing Zero Planting and
    Initial Push (one push converges everything).
    """
    if num_leaves < 1:
        raise ValueError("star needs at least one leaf")
    n = num_leaves + 1
    indptr = np.concatenate([[0, num_leaves],
                             num_leaves + np.arange(1, n, dtype=np.int64)])
    indices = np.concatenate([np.arange(1, n, dtype=np.int64),
                              np.zeros(num_leaves, dtype=np.int64)])
    return CSRGraph(indptr.astype(np.int64), indices)

"""Content fingerprints for CSR graphs.

The serving layer keys everything — registry entries, cached
structural probes, cached results — by *what the graph is*, not by
object identity or a user-supplied name.  Two CSRGraph instances built
from the same edge list hash to the same fingerprint (CSRGraph
normalizes adjacency order at construction), so a client re-uploading
a graph it already submitted gets registry and result-cache hits for
free.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["graph_fingerprint", "FINGERPRINT_BITS"]

# 64 hex chars is overkill for a registry key that also travels through
# report tables; 16 (64 bits) keeps accidental-collision odds negligible
# for any realistic registry size while staying readable.
FINGERPRINT_BITS = 64


def graph_fingerprint(graph: CSRGraph) -> str:
    """Hex digest of the graph's CSR content (structure only).

    Hashes the vertex count, the index dtype, and the raw bytes of the
    ``indptr``/``indices`` arrays.  Because ``CSRGraph.__post_init__``
    sorts every adjacency list, any two structurally-equal graphs
    produce identical bytes regardless of input edge order.

    Out-of-core graphs (anything exposing ``iter_index_blocks``) are
    hashed by streaming their index blocks through the same digest —
    the concatenated block bytes are exactly the resident array's
    bytes, so a blocked file fingerprints identically to the resident
    graph it was packed from and shares its cached results.
    """
    h = hashlib.sha256()
    h.update(b"csr-v1:")
    h.update(np.int64(graph.num_vertices).tobytes())
    h.update(str(graph.indices.dtype).encode())
    h.update(np.ascontiguousarray(graph.indptr).tobytes())
    iter_blocks = getattr(graph, "iter_index_blocks", None)
    if iter_blocks is not None:
        for chunk in iter_blocks():
            h.update(np.ascontiguousarray(chunk).tobytes())
    else:
        h.update(np.ascontiguousarray(graph.indices).tobytes())
    return h.hexdigest()[:FINGERPRINT_BITS // 4]

"""Graph registry: fingerprint-keyed graph store with cached probes.

Structural probes (degree skew, sampled giant-component fraction,
diameter estimate) are what the planner routes on, and they cost BFS
sweeps — far cheaper than a CC run but far too expensive to redo per
request.  The registry computes them once per distinct graph content
and serves them from the entry afterwards.

Mutation and staleness
----------------------

Graphs are immutable by contract, and the registry now *enforces*
that: registration freezes the CSR arrays (``writeable=False``), and
the sanctioned way to change a graph is :meth:`GraphRegistry.mutate`,
which builds a successor entry under a new fingerprint and records
the insertion batch as delta lineage (``parent_fingerprint`` +
canonical inserted edges) for the incremental CC tier.

Because a determined client can still write through a view created
before registration, every ``id()``-memo hit in
:meth:`fingerprint_of` is additionally guarded by a cheap version
token (array sizes + strided content samples).  A token mismatch
means the arrays changed in place under a memoized fingerprint — the
old fingerprint's cached probes and results are silently wrong, so
the entry is quarantined: dropped from the registry and reported via
:meth:`drain_stale` so the service can invalidate its result cache.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from ..graph import properties
from ..graph.csr import CSRGraph
from ..graph.mutate import insert_edges, remove_edges
from .feedback import RouterFeedback
from .fingerprint import graph_fingerprint

__all__ = ["GraphProbes", "GraphEntry", "GraphRegistry", "probe_graph",
           "version_token"]

#: Max array elements sampled per array by :func:`version_token`.
_TOKEN_SAMPLES = 4096


def version_token(graph: CSRGraph) -> tuple:
    """Cheap content token for in-place-mutation detection.

    O(1) metadata plus a strided sample of at most ``4096`` elements
    per array — constant work per check, independent of graph size.
    Not a fingerprint: equal tokens do not prove equal content (a
    write that dodges every sampled position escapes), but any bulk
    in-place mutation flips it with overwhelming probability.  The
    hard guarantee comes from the registry freezing registered arrays;
    the token is the dirty check for writes that predate or evade the
    freeze.

    Out-of-core graphs (anything carrying a ``block_cache``) keep
    their indices on disk behind a read-only reader, so only the
    resident ``indptr`` is sampled; the header metadata stands in for
    the index bytes (sampling them would stream the whole file).
    """
    lazy = hasattr(graph, "block_cache")
    h = hashlib.blake2b(digest_size=8)
    arrays = (graph.indptr,) if lazy else (graph.indptr, graph.indices)
    for arr in arrays:
        stride = max(1, arr.size // _TOKEN_SAMPLES)
        h.update(np.ascontiguousarray(arr[::stride]).tobytes())
        if arr.size:
            h.update(arr[-1:].tobytes())
    if lazy:
        h.update(repr(graph.header).encode())
    return (graph.indptr.size, graph.indices.size, h.hexdigest())


def _freeze(graph: CSRGraph) -> None:
    """Best-effort write protection of the CSR arrays.

    Lazy on-disk indices have no ``flags`` — the file reader is
    read-only by construction, so there is nothing to freeze.
    """
    for arr in (graph.indptr, graph.indices):
        flags = getattr(arr, "flags", None)
        if flags is None:
            continue
        try:
            flags.writeable = False
        except ValueError:  # pragma: no cover - non-owning base array
            pass


def _as_edge_batch(pairs) -> tuple[np.ndarray, np.ndarray]:
    """Normalize ``(src, dst)`` arrays or an ``(k, 2)`` array of pairs."""
    if isinstance(pairs, tuple) and len(pairs) == 2:
        src, dst = pairs
    else:
        arr = np.asarray(pairs, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(
                "edge batch must be a (src, dst) pair of arrays or an "
                "(k, 2) array of vertex pairs")
        src, dst = arr[:, 0], arr[:, 1]
    return (np.asarray(src, dtype=np.int64).ravel(),
            np.asarray(dst, dtype=np.int64).ravel())


@dataclass(frozen=True)
class GraphProbes:
    """The structural facts the planner routes on."""

    num_vertices: int
    num_edges: int
    mean_degree: float
    skew_ratio: float
    top1pct_edge_share: float
    giant_fraction: float
    diameter: int


def probe_graph(graph: CSRGraph, *, giant_samples: int = 4096,
                diameter_sources: int = 4) -> GraphProbes:
    """Measure a graph's routing-relevant structure.

    Uses the sampled (hub-BFS) giant-fraction estimate and the
    double-sweep diameter lower bound — both linear-ish probes, no
    scipy materialization.
    """
    stats = properties.degree_stats(graph)
    return GraphProbes(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        mean_degree=stats.mean,
        skew_ratio=stats.skew_ratio,
        top1pct_edge_share=stats.top1pct_edge_share,
        giant_fraction=properties.sampled_giant_fraction(
            graph, samples=giant_samples),
        diameter=properties.estimate_diameter(
            graph, num_sources=diameter_sources),
    )


class GraphEntry:
    """One registered graph: content fingerprint + lazily-cached probes.

    Entries created by :meth:`GraphRegistry.mutate` additionally carry
    delta lineage: ``parent_fingerprint`` names the predecessor and
    ``delta_src``/``delta_dst`` hold the canonical batch of undirected
    edges whose insertion turns the predecessor into this graph.
    Lineage is only recorded for pure insertions (removals are not
    delta-maintainable); ``version`` counts mutation steps from the
    lineage root.
    """

    __slots__ = ("fingerprint", "graph", "name", "token", "version",
                 "parent_fingerprint", "delta_src", "delta_dst",
                 "_probes", "probe_computations")

    def __init__(self, fingerprint: str, graph: CSRGraph,
                 name: str = "") -> None:
        self.fingerprint = fingerprint
        self.graph = graph
        self.name = name
        self.token = version_token(graph)
        self.version = 0
        self.parent_fingerprint: str | None = None
        self.delta_src: np.ndarray | None = None
        self.delta_dst: np.ndarray | None = None
        self._probes: GraphProbes | None = None
        self.probe_computations = 0

    @property
    def probes(self) -> GraphProbes:
        """Structural probes, computed on first access and cached."""
        if self._probes is None:
            self._probes = probe_graph(self.graph)
            self.probe_computations += 1
        return self._probes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or self.fingerprint
        return (f"GraphEntry({label}, n={self.graph.num_vertices}, "
                f"m={self.graph.num_edges})")


class GraphRegistry:
    """Fingerprint-keyed graph store.

    ``register`` is idempotent on content: submitting the same graph
    (or an equal copy) twice returns the same entry, so its cached
    probes — and any cached results keyed by the fingerprint — are
    reused.  A per-instance ``id()`` memo skips re-hashing the arrays
    when the *same object* is submitted repeatedly; it is only
    consulted for objects the registry holds strongly, so id reuse
    after garbage collection cannot alias, and every memo hit is
    verified against the object's cheap :func:`version_token` so an
    in-place mutation can never serve a stale fingerprint.  Two tiers
    of memo exist: the permanent one for each entry's own graph
    object, and a bounded LRU of recently-seen *equal copies* — a
    client that constructs a fresh-but-equal graph object and then
    resubmits that same object per request pays the full array hash
    only on first sight, not on every request.  The copy memo keeps a
    strong reference to each memoized object for as long as its id is
    memoized, preserving the id-reuse safety argument.

    :meth:`mutate` is the sanctioned mutation path: it derives a
    successor graph, registers it under its own fingerprint with delta
    lineage, and re-points the entry's name at the successor — old
    entries stay addressable by fingerprint (their cached results
    remain valid for the old content).
    """

    #: Bound on the recently-seen equal-copy memo (strong refs held).
    COPY_MEMO_CAPACITY = 64

    def __init__(self) -> None:
        self._by_fingerprint: dict[str, GraphEntry] = {}
        self._by_name: dict[str, str] = {}
        self._id_memo: dict[int, str] = {}
        self._copy_memo: OrderedDict[
            int, tuple[CSRGraph, str, tuple]] = OrderedDict()
        #: Full array hashes actually computed (testable: copies are
        #: hashed once, not once per request).
        self.fingerprint_computations = 0
        #: Quarantined fingerprints awaiting :meth:`drain_stale`.
        self._stale: list[str] = []
        #: In-place mutations detected over the registry's lifetime.
        self.stale_detections = 0
        #: Measured-cost correction posteriors, keyed by fingerprint
        #: like the cached probes — and invalidated with them: a
        #: quarantined or superseded fingerprint's corrections describe
        #: content that no longer receives traffic.
        self.feedback = RouterFeedback()

    def register(self, graph: CSRGraph, *, name: str = "") -> GraphEntry:
        """Add a graph (idempotent); returns its entry.

        ``name`` attaches a human alias usable with :meth:`get`.
        Re-registering the same content under a new name just adds the
        alias.  Registration freezes the graph's arrays — mutate via
        :meth:`mutate`, not in place.
        """
        fp = self.fingerprint_of(graph)
        entry = self._by_fingerprint.get(fp)
        if entry is None:
            entry = self._add_entry(fp, graph, name)
        if name:
            existing = self._by_name.get(name)
            if existing is not None and existing != fp:
                raise ValueError(
                    f"name {name!r} already registered for a different "
                    f"graph (fingerprint {existing})")
            self._by_name[name] = fp
            if not entry.name:
                entry.name = name
        return entry

    def register_path(self, path, *, name: str = "",
                      resident_bytes: int | None = None,
                      mode: str = "mmap") -> GraphEntry:
        """Register a blocked on-disk graph without materializing it.

        Opens ``path`` (an ``.rbcsr`` file written by
        :func:`repro.storage.write_blocked`) as a
        :class:`~repro.storage.BlockedGraph` whose edge blocks stay on
        disk behind a cache bounded by ``resident_bytes``, and
        registers it like any other graph — the streaming fingerprint
        matches the resident graph's, so cached results transfer.
        """
        from ..storage import BlockedGraph

        graph = BlockedGraph.open(path, resident_bytes=resident_bytes,
                                  mode=mode)
        return self.register(graph, name=name)

    def _add_entry(self, fp: str, graph: CSRGraph,
                   name: str) -> GraphEntry:
        _freeze(graph)
        entry = GraphEntry(fp, graph, name)
        self._by_fingerprint[fp] = entry
        self._id_memo[id(graph)] = fp
        return entry

    def mutate(self, key: str, *, insert=None, remove=None,
               name: str | None = None) -> GraphEntry:
        """Apply an edge mutation; returns the successor entry.

        ``insert``/``remove`` are undirected edge batches — a
        ``(src, dst)`` pair of arrays or an ``(k, 2)`` array of vertex
        pairs; removal applies first.  The predecessor's name (or the
        explicit ``name``) re-points to the successor, so key-based
        requests transparently see the mutated graph; the predecessor
        stays addressable by fingerprint.

        A pure-insertion mutation records delta lineage on the
        successor (predecessor fingerprint + the canonical batch of
        genuinely-new edges), which is what lets the serving layer
        delta-update cached results instead of recomputing.  Any
        removal breaks the lineage: deletions are served by full
        recompute.  A no-op mutation (nothing removed, nothing new to
        insert) returns the predecessor entry unchanged.
        """
        entry = self.get(key)
        graph = entry.graph
        if hasattr(graph, "block_cache"):
            raise ValueError(
                "out-of-core graphs are immutable on disk; materialize "
                "and re-register before mutating")
        removed = False
        ins_src = ins_dst = None
        if remove is not None:
            rs, rd = _as_edge_batch(remove)
            successor = remove_edges(graph, rs, rd)
            removed = successor is not graph
            graph = successor
        if insert is not None:
            is_, id_ = _as_edge_batch(insert)
            graph, lo, hi = insert_edges(graph, is_, id_)
            if lo.size and not removed:
                ins_src, ins_dst = lo, hi
        if graph is entry.graph:
            return entry
        fp = self.fingerprint_of(graph)
        successor = self._by_fingerprint.get(fp)
        if successor is None:
            successor = self._add_entry(fp, graph, "")
            if ins_src is not None:
                successor.parent_fingerprint = entry.fingerprint
                successor.delta_src = ins_src
                successor.delta_dst = ins_dst
            successor.version = entry.version + 1
            if entry._probes is not None:
                # Inherit the predecessor's probes with the exact new
                # edge count: a batch of b edges cannot move skew /
                # giant fraction / diameter estimates meaningfully,
                # and re-probing per mutation would cost BFS sweeps —
                # the planner routes on the inherited approximation.
                n = graph.num_vertices
                successor._probes = replace(
                    entry._probes, num_edges=graph.num_edges,
                    mean_degree=graph.num_edges / max(n, 1))
            # The successor's content starts from the clean feedback
            # prior by construction (new fingerprint, no cells); the
            # predecessor's corrections describe content the name no
            # longer points at, so they are dropped with the lineage
            # step rather than left to linger in the LRU.
            self.feedback.invalidate_fingerprint(entry.fingerprint)
        alias = name if name is not None else entry.name
        if alias:
            self._by_name[alias] = fp
            if not successor.name:
                successor.name = alias
        return successor

    def fingerprint_of(self, graph: CSRGraph) -> str:
        """Content fingerprint, memoized for recently-seen objects.

        Permanent memo for each entry's own graph; bounded LRU memo
        for equal copies.  Both are consulted only while the registry
        holds the object strongly, so a recycled ``id()`` can never
        alias to a dead graph's fingerprint — and both verify the
        object's :func:`version_token` on every hit, so a graph
        mutated in place is re-hashed (and, for registered entries,
        quarantined) instead of served its stale fingerprint.
        """
        fp = self._id_memo.get(id(graph))
        if fp is not None:
            held = self._by_fingerprint.get(fp)
            if held is not None and held.graph is graph:
                if held.token == version_token(graph):
                    return fp
                # The entry's own arrays changed under it: every
                # cached fact keyed by this fingerprint (probes,
                # results, plans) describes content that no longer
                # exists.  Quarantine the entry and fall through to
                # re-hash the current content.
                self._quarantine(held)
        memo = self._copy_memo.get(id(graph))
        if memo is not None and memo[0] is graph:
            if memo[2] == version_token(graph):
                self._copy_memo.move_to_end(id(graph))
                return memo[1]
            del self._copy_memo[id(graph)]
        fp = graph_fingerprint(graph)
        self.fingerprint_computations += 1
        self._copy_memo[id(graph)] = (graph, fp, version_token(graph))
        self._copy_memo.move_to_end(id(graph))
        while len(self._copy_memo) > self.COPY_MEMO_CAPACITY:
            self._copy_memo.popitem(last=False)
        return fp

    def _quarantine(self, entry: GraphEntry) -> None:
        """Drop an entry whose content mutated under its fingerprint."""
        self._by_fingerprint.pop(entry.fingerprint, None)
        self._id_memo.pop(id(entry.graph), None)
        for alias in [a for a, f in self._by_name.items()
                      if f == entry.fingerprint]:
            del self._by_name[alias]
        self._stale.append(entry.fingerprint)
        self.stale_detections += 1
        self.feedback.invalidate_fingerprint(entry.fingerprint)

    def drain_stale(self) -> list[str]:
        """Fingerprints quarantined since the last drain (then cleared).

        The serving layer polls this to invalidate cached results and
        memoized plans keyed by dead fingerprints.
        """
        stale, self._stale = self._stale, []
        return stale

    def get(self, key: str) -> GraphEntry:
        """Look up by name or fingerprint; KeyError when absent."""
        fp = self._by_name.get(key, key)
        try:
            return self._by_fingerprint[fp]
        except KeyError:
            raise KeyError(
                f"no registered graph named or fingerprinted {key!r}"
            ) from None

    def entries(self) -> list[GraphEntry]:
        """All registered entries, in registration order."""
        return list(self._by_fingerprint.values())

    def __len__(self) -> int:
        return len(self._by_fingerprint)

    def __contains__(self, key: str) -> bool:
        return key in self._by_fingerprint or key in self._by_name

    @property
    def probe_computations(self) -> int:
        """Total structural-probe evaluations across all entries."""
        return sum(e.probe_computations
                   for e in self._by_fingerprint.values())

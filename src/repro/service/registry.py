"""Graph registry: fingerprint-keyed graph store with cached probes.

Structural probes (degree skew, sampled giant-component fraction,
diameter estimate) are what the planner routes on, and they cost BFS
sweeps — far cheaper than a CC run but far too expensive to redo per
request.  The registry computes them once per distinct graph content
and serves them from the entry afterwards.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..graph import properties
from ..graph.csr import CSRGraph
from .fingerprint import graph_fingerprint

__all__ = ["GraphProbes", "GraphEntry", "GraphRegistry", "probe_graph"]


@dataclass(frozen=True)
class GraphProbes:
    """The structural facts the planner routes on."""

    num_vertices: int
    num_edges: int
    mean_degree: float
    skew_ratio: float
    top1pct_edge_share: float
    giant_fraction: float
    diameter: int


def probe_graph(graph: CSRGraph, *, giant_samples: int = 4096,
                diameter_sources: int = 4) -> GraphProbes:
    """Measure a graph's routing-relevant structure.

    Uses the sampled (hub-BFS) giant-fraction estimate and the
    double-sweep diameter lower bound — both linear-ish probes, no
    scipy materialization.
    """
    stats = properties.degree_stats(graph)
    return GraphProbes(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        mean_degree=stats.mean,
        skew_ratio=stats.skew_ratio,
        top1pct_edge_share=stats.top1pct_edge_share,
        giant_fraction=properties.sampled_giant_fraction(
            graph, samples=giant_samples),
        diameter=properties.estimate_diameter(
            graph, num_sources=diameter_sources),
    )


class GraphEntry:
    """One registered graph: content fingerprint + lazily-cached probes."""

    __slots__ = ("fingerprint", "graph", "name", "_probes",
                 "probe_computations")

    def __init__(self, fingerprint: str, graph: CSRGraph,
                 name: str = "") -> None:
        self.fingerprint = fingerprint
        self.graph = graph
        self.name = name
        self._probes: GraphProbes | None = None
        self.probe_computations = 0

    @property
    def probes(self) -> GraphProbes:
        """Structural probes, computed on first access and cached."""
        if self._probes is None:
            self._probes = probe_graph(self.graph)
            self.probe_computations += 1
        return self._probes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or self.fingerprint
        return (f"GraphEntry({label}, n={self.graph.num_vertices}, "
                f"m={self.graph.num_edges})")


class GraphRegistry:
    """Fingerprint-keyed graph store.

    ``register`` is idempotent on content: submitting the same graph
    (or an equal copy) twice returns the same entry, so its cached
    probes — and any cached results keyed by the fingerprint — are
    reused.  A per-instance ``id()`` memo skips re-hashing the arrays
    when the *same object* is submitted repeatedly; it is only
    consulted for objects the registry holds strongly, so id reuse
    after garbage collection cannot alias.  Two tiers of memo exist:
    the permanent one for each entry's own graph object, and a bounded
    LRU of recently-seen *equal copies* — a client that constructs a
    fresh-but-equal graph object and then resubmits that same object
    per request pays the full array hash only on first sight, not on
    every request.  The copy memo keeps a strong reference to each
    memoized object for as long as its id is memoized, preserving the
    id-reuse safety argument.
    """

    #: Bound on the recently-seen equal-copy memo (strong refs held).
    COPY_MEMO_CAPACITY = 64

    def __init__(self) -> None:
        self._by_fingerprint: dict[str, GraphEntry] = {}
        self._by_name: dict[str, str] = {}
        self._id_memo: dict[int, str] = {}
        self._copy_memo: OrderedDict[int, tuple[CSRGraph, str]] = \
            OrderedDict()
        #: Full array hashes actually computed (testable: copies are
        #: hashed once, not once per request).
        self.fingerprint_computations = 0

    def register(self, graph: CSRGraph, *, name: str = "") -> GraphEntry:
        """Add a graph (idempotent); returns its entry.

        ``name`` attaches a human alias usable with :meth:`get`.
        Re-registering the same content under a new name just adds the
        alias.
        """
        fp = self.fingerprint_of(graph)
        entry = self._by_fingerprint.get(fp)
        if entry is None:
            entry = GraphEntry(fp, graph, name)
            self._by_fingerprint[fp] = entry
            self._id_memo[id(entry.graph)] = fp
        if name:
            existing = self._by_name.get(name)
            if existing is not None and existing != fp:
                raise ValueError(
                    f"name {name!r} already registered for a different "
                    f"graph (fingerprint {existing})")
            self._by_name[name] = fp
            if not entry.name:
                entry.name = name
        return entry

    def fingerprint_of(self, graph: CSRGraph) -> str:
        """Content fingerprint, memoized for recently-seen objects.

        Permanent memo for each entry's own graph; bounded LRU memo
        for equal copies.  Both are consulted only while the registry
        holds the object strongly, so a recycled ``id()`` can never
        alias to a dead graph's fingerprint.
        """
        fp = self._id_memo.get(id(graph))
        if fp is not None:
            held = self._by_fingerprint.get(fp)
            if held is not None and held.graph is graph:
                return fp
        memo = self._copy_memo.get(id(graph))
        if memo is not None and memo[0] is graph:
            self._copy_memo.move_to_end(id(graph))
            return memo[1]
        fp = graph_fingerprint(graph)
        self.fingerprint_computations += 1
        self._copy_memo[id(graph)] = (graph, fp)
        self._copy_memo.move_to_end(id(graph))
        while len(self._copy_memo) > self.COPY_MEMO_CAPACITY:
            self._copy_memo.popitem(last=False)
        return fp

    def get(self, key: str) -> GraphEntry:
        """Look up by name or fingerprint; KeyError when absent."""
        fp = self._by_name.get(key, key)
        try:
            return self._by_fingerprint[fp]
        except KeyError:
            raise KeyError(
                f"no registered graph named or fingerprinted {key!r}"
            ) from None

    def entries(self) -> list[GraphEntry]:
        """All registered entries, in registration order."""
        return list(self._by_fingerprint.values())

    def __len__(self) -> int:
        return len(self._by_fingerprint)

    def __contains__(self, key: str) -> bool:
        return key in self._by_fingerprint or key in self._by_name

    @property
    def probe_computations(self) -> int:
        """Total structural-probe evaluations across all entries."""
        return sum(e.probe_computations
                   for e in self._by_fingerprint.values())

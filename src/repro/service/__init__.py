"""The serving layer: registry, planner, result cache, executor.

This package turns the algorithm library into the production-shaped
system the ROADMAP aims at: clients submit graphs and get components
back, with the service deciding *which* algorithm runs (the
structure-aware ``auto`` planner reproducing Table IV's LP-vs-UF
crossover), *whether* anything runs at all (a content-fingerprint
result cache — repeats are free), and *what happens when a run blows
its budget* (Thrifty→Afforest fallback), all measured through
``repro.instrument``.

Entry points:

* :class:`CCService` — the request executor (submit/submit_batch).
* :func:`plan_for_graph` — what ``connected_components(method="auto")``
  calls under the hood.
* :class:`GraphRegistry` / :func:`graph_fingerprint` — content-keyed
  graph store with cached structural probes.
"""

from ..options import ServiceOptions
from .cache import ResultCache, result_cache_key
from .executor import (
    REJECT_QUEUE_DEPTH,
    REJECT_QUEUE_FULL,
    REJECT_TENANT_QUOTA,
    CCRequest,
    CCResponse,
    CCService,
)
from .feedback import RouterFeedback, delta_feedback_key
from .fingerprint import graph_fingerprint
from .metrics import ServiceMetrics
from .planner import (
    DISTRIBUTED_METHOD,
    LP_METHOD,
    UF_METHOD,
    RoutePlan,
    edge_array_bytes,
    method_family,
    plan,
    plan_for_graph,
    predict_delta_ms,
    predict_family_costs,
    predicted_method_ms,
    replan,
    runner_up,
)
from .registry import (
    GraphEntry,
    GraphProbes,
    GraphRegistry,
    probe_graph,
    version_token,
)

__all__ = [
    "CCRequest",
    "CCResponse",
    "CCService",
    "DISTRIBUTED_METHOD",
    "GraphEntry",
    "GraphProbes",
    "GraphRegistry",
    "LP_METHOD",
    "REJECT_QUEUE_DEPTH",
    "REJECT_QUEUE_FULL",
    "REJECT_TENANT_QUOTA",
    "UF_METHOD",
    "ResultCache",
    "RoutePlan",
    "RouterFeedback",
    "ServiceMetrics",
    "ServiceOptions",
    "delta_feedback_key",
    "edge_array_bytes",
    "graph_fingerprint",
    "method_family",
    "plan",
    "plan_for_graph",
    "predict_delta_ms",
    "predict_family_costs",
    "predicted_method_ms",
    "probe_graph",
    "replan",
    "result_cache_key",
    "runner_up",
    "version_token",
]

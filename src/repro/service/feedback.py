"""Measured-cost feedback for the router: the self-tuning posterior.

The planner's synthetic-counter cost model was calibrated *once*
against Table IV winners; under real traffic a misprediction is
invisible and repeats forever, because nothing ever compares
``RoutePlan.predicted_ms`` against the measured simulated-ms the
executor has in hand after every run.  This module closes that loop.

:class:`RouterFeedback` keeps one cell per ``(fingerprint, method,
machine)`` — an online posterior over the static model's error for
that exact graph content, expressed as a log-space EWMA of the
``measured / predicted`` ratio plus an observation count:

* **log-space** because prediction error is multiplicative (a model
  that is 4x optimistic one run and 4x pessimistic the next is *right*
  on average, and averaging raw ratios would say 2.1x); the EWMA of
  ``log(measured/predicted)`` starts at 0, i.e. the prior is "the
  static model is correct", which is exactly what makes cold-start
  routing bit-identical to the uncorrected planner.
* **EWMA** rather than a plain mean so the posterior tracks drift
  (cache pressure, mutation-shifted structure) instead of being
  anchored to ancient observations; with the default ``alpha=0.5``
  the correction reaches ``ratio**0.875`` of a persistent error after
  three observations — fast enough that a badly mispredicted route
  flips on the very next request.
* **per-observation clamping** (``max_log_ratio``) so one pathological
  run cannot slingshot the correction by orders of magnitude.

The correction is *multiplicative*: :meth:`correction` returns
``exp(ewma)``, and the planner multiplies it onto
:func:`~repro.service.planner.predict_family_costs` before choosing a
family (see :func:`repro.service.planner.replan`).  Corrections also
flow into ``predicted_method_ms`` / ``predict_delta_ms``, so admission
control and delta gating charge corrected costs instead of trusting
stale predictions.

Feedback is keyed by content fingerprint and therefore *dies with the
fingerprint*: a :meth:`GraphRegistry.mutate` successor starts from the
clean prior (its content is new; corrections learned for the
predecessor do not follow), and a quarantined fingerprint's cells are
purged outright.  The store is a bounded LRU so a service that sees
millions of distinct graphs cannot grow it without bound.
"""

from __future__ import annotations

import math
from collections import OrderedDict

from ..core.backends import DEFAULT_BACKEND

__all__ = ["RouterFeedback", "backend_feedback_key",
           "delta_feedback_key"]


def backend_feedback_key(method: str, backend: str | None) -> str:
    """Feedback/metrics method key for a run on ``backend``.

    Kernel backends are bit-identical on counters but not on
    wall-clock, so a compiled backend's measured costs must not feed
    the default backend's posterior (and vice versa).  The default
    backend — spelled ``None`` or by name — keeps the bare method key,
    preserving every historical key; any other backend gets a
    ``"<method>@<backend>"`` key, used both for
    :meth:`RouterFeedback.observe`/:meth:`RouterFeedback.correction`
    and for per-method metrics attribution in the executor.
    """
    if backend is None or backend == DEFAULT_BACKEND:
        return method
    return f"{method}@{backend}"


def delta_feedback_key(method: str) -> str:
    """Feedback method key for delta-updating ``method``'s labels.

    Delta updates have their own cost predictor
    (:func:`~repro.service.planner.predict_delta_ms`) and their own
    error behaviour, so their observations must not pollute the full
    run posterior of the same method.  Matches the ``"<method>+delta"``
    algorithm name the incremental tier stamps on its traces.
    """
    return f"{method}+delta"


class _Cell:
    """One (fingerprint, method, machine) posterior."""

    __slots__ = ("log_ewma", "count", "last_ratio")

    def __init__(self) -> None:
        self.log_ewma = 0.0     # prior: the static model is correct
        self.count = 0
        self.last_ratio = 1.0


class RouterFeedback:
    """Bounded store of measured/predicted correction posteriors."""

    def __init__(self, *, alpha: float = 0.5,
                 max_log_ratio: float = math.log(64.0),
                 capacity: int = 4096) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if max_log_ratio <= 0.0:
            raise ValueError("max_log_ratio must be > 0")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.alpha = alpha
        self.max_log_ratio = max_log_ratio
        self.capacity = capacity
        self._cells: OrderedDict[tuple[str, str, str], _Cell] = \
            OrderedDict()
        #: Totals over the store's lifetime (survive cell eviction).
        self.total_observations = 0
        self.invalidated_cells = 0

    # -- writing -------------------------------------------------------

    def observe(self, fingerprint: str, method: str,
                predicted_ms: float, measured_ms: float, *,
                machine: str = "") -> float:
        """Fold one executed run into the posterior; returns the new
        correction factor.

        ``predicted_ms`` must be the *uncorrected* static prediction —
        feeding corrected predictions back would compound the
        correction onto itself instead of estimating the static
        model's error.  Non-positive predictions (degenerate graphs)
        are ignored; non-positive measurements clamp to the ratio
        floor.
        """
        if predicted_ms <= 0.0:
            return self.correction(fingerprint, method, machine=machine)
        ratio = max(measured_ms, 1e-12) / predicted_ms
        log_ratio = min(max(math.log(ratio), -self.max_log_ratio),
                        self.max_log_ratio)
        key = (fingerprint, method, machine)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = _Cell()
            while len(self._cells) > self.capacity:
                self._cells.popitem(last=False)
        cell.log_ewma = (self.alpha * log_ratio
                         + (1.0 - self.alpha) * cell.log_ewma)
        cell.count += 1
        cell.last_ratio = ratio
        self.total_observations += 1
        self._cells.move_to_end(key)
        return math.exp(cell.log_ewma)

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every cell for one fingerprint; returns the count.

        Called when the fingerprint's content is gone (in-place
        mutation quarantine) or superseded (sanctioned
        :meth:`GraphRegistry.mutate` lineage step): corrections
        learned for content that no longer receives traffic must not
        linger, and the successor fingerprint starts from the clean
        prior by construction.
        """
        doomed = [k for k in self._cells if k[0] == fingerprint]
        for key in doomed:
            del self._cells[key]
        self.invalidated_cells += len(doomed)
        return len(doomed)

    # -- reading -------------------------------------------------------

    def correction(self, fingerprint: str, method: str, *,
                   machine: str = "") -> float:
        """Multiplicative correction for one prediction (1.0 = trust
        the static model — the value for every unobserved key)."""
        cell = self._cells.get((fingerprint, method, machine))
        return math.exp(cell.log_ewma) if cell is not None else 1.0

    def observations(self, fingerprint: str, method: str, *,
                     machine: str = "") -> int:
        """How many runs informed this key's posterior (0 = prior)."""
        cell = self._cells.get((fingerprint, method, machine))
        return cell.count if cell is not None else 0

    def __len__(self) -> int:
        return len(self._cells)

    def snapshot(self) -> dict:
        """Plain-dict dump for reports / the serve CLI."""
        corrections = {
            f"{fp[:12]}/{method}": round(math.exp(cell.log_ewma), 4)
            for (fp, method, _machine), cell in self._cells.items()}
        return {
            "cells": len(self._cells),
            "total_observations": self.total_observations,
            "invalidated_cells": self.invalidated_cells,
            "corrections": corrections,
        }

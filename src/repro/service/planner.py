"""Structure-aware planner: route a graph to the right CC family.

Table IV's lesson is a crossover, not a winner: Thrifty's label
propagation dominates on skewed low-diameter graphs (it touches each
giant-component vertex a handful of times and skips converged work),
while union-find — Afforest in particular — wins on high-diameter
road networks where LP's wavefront needs hundreds of rounds.  The
planner reproduces that decision from structural probes alone, without
running anything.

Mechanism: build *synthetic* per-iteration :class:`OpCounters` for an
idealized run of each family, shaped by the probes, and price them
with the repo's own :class:`CostModel` — so the routing decision and
the benchmark harness share one notion of cost, on the machine the
request targets.

* LP model: ``I = 3 + 0.4 * diameter`` pull iterations (floor 3 — the
  plateau/shrink phases exist even on diameter-2 graphs) over a total
  edge volume of ``(0.04 + 0.0006 * diameter) * m`` — Thrifty's
  converged-block skipping and zero-convergence filtering mean only a
  few percent of edges are ever scanned on skewed graphs, growing with
  diameter as the wavefront lingers.  Work decays geometrically
  (ratio 0.9) across iterations: head iterations carry the bulk and
  parallelize well, tail iterations are barrier-bound.
* UF model: three phases (Afforest's neighbour rounds / sampling /
  finish, weighted 0.5/0.25/0.25) over ``2n + (1 - giant) * m``
  offered edges — the giant component's edges are skipped after
  sampling — with ``8n + 2 * (1 - giant) * m`` dependent parent-chase
  accesses, which the cost model refuses to scale past 8-way.

The constants were calibrated once against measured Table IV winners
on all 17 dataset surrogates at scales 0.2-1.0 (85/85 agreement on
the LP-vs-UF family decision); ``tests/test_service_router.py`` and
``benchmarks/test_ext_service_throughput.py`` re-assert the agreement
at their respective scales.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.csr import CSRGraph
from ..instrument.costmodel import CostModel
from ..instrument.counters import OpCounters
from ..parallel.machine import SKYLAKEX, MachineSpec
from .registry import GraphProbes, probe_graph

__all__ = ["RoutePlan", "predict_family_costs", "predicted_method_ms",
           "predict_delta_ms", "plan", "plan_for_graph",
           "LP_METHOD", "UF_METHOD", "DISTRIBUTED_METHOD"]

# Concrete algorithm each family resolves to: the best member of each
# family in Table IV.
LP_METHOD = "thrifty"
UF_METHOD = "afforest"
# Routed to when the graph exceeds the single-node edge budget: the
# sharded tier (Section VII), distributed Thrifty on the fabric.
DISTRIBUTED_METHOD = "distributed"

# Which cost predictor each concrete method prices under for admission
# control.  The union-find/traversal family shares the parent-chase
# predictor; everything label-propagation-shaped (including the
# sharded tier, whose per-rank compute is LP) uses the LP predictor.
_UF_FAMILY_METHODS = frozenset(
    {"sv", "jt", "afforest", "fastsv", "connectit", "bfs"})

# Calibrated predictor constants (see module docstring).
_LP_EDGE_FRACTION_BASE = 0.04      # edge share scanned at diameter 0
_LP_EDGE_FRACTION_PER_DIAM = 0.0006
_LP_ITERS_BASE = 3.0
_LP_ITERS_PER_DIAM = 0.4
_LP_MIN_ITERS = 3
_LP_WORK_DECAY = 0.9               # geometric per-iteration work ratio
_UF_DEP_PER_VERTEX = 8.0           # parent chases per vertex
_UF_DEP_PER_NONGIANT_EDGE = 2.0
_UF_PHASE_SPLIT = (0.5, 0.25, 0.25)
# Delta-update predictor: per inserted edge, a short dependent root
# chase on a depth-<=1 forest (decode keeps trees shallow), plus one
# vectorized relabel pass over the labels array when anything merged.
_DELTA_DEP_PER_EDGE = 6.0          # find hops per batch edge (both ends)
_DELTA_SEQ_PER_VERTEX = 2.0        # relabel gather + map read


@dataclass(frozen=True)
class RoutePlan:
    """A routing decision plus the evidence it was made on."""

    method: str                 # concrete algorithm ("thrifty"/"afforest")
    family: str                 # "lp" or "uf"
    predicted_lp_ms: float
    predicted_uf_ms: float
    machine: str
    probes: GraphProbes

    @property
    def margin(self) -> float:
        """Predicted speedup of the chosen family over the other."""
        lo = min(self.predicted_lp_ms, self.predicted_uf_ms)
        hi = max(self.predicted_lp_ms, self.predicted_uf_ms)
        return hi / lo if lo > 0 else float("inf")

    @property
    def predicted_ms(self) -> float:
        """Predicted cost of the routed method — what admission control
        charges against the service's queue capacity before anything
        runs.  The distributed tier prices under the cheaper family
        (its per-node compute is LP-shaped, but the fabric is priced
        only after the run)."""
        if self.family == "lp":
            return self.predicted_lp_ms
        if self.family == "uf":
            return self.predicted_uf_ms
        return min(self.predicted_lp_ms, self.predicted_uf_ms)


def _lp_cost_ms(probes: GraphProbes, model: CostModel) -> float:
    """Predicted Thrifty cost: decaying pull iterations."""
    n, m = probes.num_vertices, probes.num_edges
    diam = probes.diameter
    iters = max(_LP_MIN_ITERS,
                int(round(_LP_ITERS_BASE + _LP_ITERS_PER_DIAM * diam)))
    edge_fraction = min(1.0, _LP_EDGE_FRACTION_BASE
                        + _LP_EDGE_FRACTION_PER_DIAM * diam)
    total_edges = edge_fraction * m
    weights = [_LP_WORK_DECAY ** k for k in range(iters)]
    norm = sum(weights)
    total = 0.0
    for w in weights:
        share = w / norm
        counters = OpCounters()
        counters.record_pull_scan(int(total_edges * share),
                                  int(2 * n * share) + 1)
        total += model.iteration_ms(counters)
    return total


def _uf_cost_ms(probes: GraphProbes, model: CostModel) -> float:
    """Predicted Afforest cost: three union-find-shaped phases."""
    n, m = probes.num_vertices, probes.num_edges
    non_giant = 1.0 - probes.giant_fraction
    edges = 2.0 * n + non_giant * m
    dependent = (_UF_DEP_PER_VERTEX * n
                 + _UF_DEP_PER_NONGIANT_EDGE * non_giant * m)
    total = 0.0
    for frac in _UF_PHASE_SPLIT:
        counters = OpCounters()
        counters.edges_processed = int(edges * frac)
        counters.random_accesses = int(2 * edges * frac)
        counters.dependent_accesses = int(dependent * frac)
        counters.label_reads = int((dependent + edges) * frac)
        counters.branches = int((dependent + edges) * frac)
        counters.vertex_reads = int(2 * n * frac)
        total += model.iteration_ms(counters)
    return total


def predict_family_costs(probes: GraphProbes,
                         machine: MachineSpec = SKYLAKEX,
                         ) -> tuple[float, float]:
    """(predicted LP ms, predicted union-find ms) for one graph."""
    model = CostModel(machine, probes.num_vertices)
    return _lp_cost_ms(probes, model), _uf_cost_ms(probes, model)


def predicted_method_ms(probes: GraphProbes, method: str,
                        machine: MachineSpec = SKYLAKEX) -> float:
    """Predicted simulated-ms of running ``method`` on this graph.

    This is the admission-control yardstick: an explicitly-requested
    method is priced by its family's synthetic-counter predictor (the
    same one ``method="auto"`` routes on), so queueing decisions and
    routing decisions share one notion of cost.
    """
    lp_ms, uf_ms = predict_family_costs(probes, machine)
    return uf_ms if method in _UF_FAMILY_METHODS else lp_ms


def predict_delta_ms(num_vertices: int, batch_edges: int,
                     machine: MachineSpec = SKYLAKEX) -> float:
    """Predicted simulated-ms of delta-updating cached labels.

    The touched-set cost estimate the planner weighs against a full
    recompute (``predicted_method_ms`` / ``RoutePlan.predicted_ms``):
    synthetic :class:`OpCounters` shaped like one
    :func:`repro.incremental.delta_update` call — union charges for
    ``batch_edges`` inserted edges plus the O(n) relabel pass — priced
    by the same :class:`CostModel` full runs are priced by.
    ``batch_edges`` is the *total* lineage batch (summed over a delta
    chain when several mutations are replayed at once).
    """
    n, b = num_vertices, batch_edges
    model = CostModel(machine, n)
    counters = OpCounters()
    counters.edges_processed = b
    counters.random_accesses = 2 * b
    counters.dependent_accesses = int(_DELTA_DEP_PER_EDGE * b)
    counters.label_reads = n + int(_DELTA_DEP_PER_EDGE * b) + 2 * b
    counters.sequential_accesses = int(_DELTA_SEQ_PER_VERTEX * n)
    counters.label_writes = b
    counters.branches = n + b
    counters.cas_attempts = b
    return model.iteration_ms(counters)


def plan(probes: GraphProbes,
         machine: MachineSpec = SKYLAKEX, *,
         single_node_edge_budget: int | None = None) -> RoutePlan:
    """Route from already-measured probes (the registry's cached ones).

    ``single_node_edge_budget`` is the capacity cliff: a graph whose
    edge count exceeds it does not fit one node's memory/bandwidth
    envelope, so the planner routes it to the sharded tier
    (``"distributed"``) regardless of the LP-vs-UF cost race.  ``None``
    (the default) means "one node always suffices" — the shared-memory
    crossover decides alone.
    """
    lp_ms, uf_ms = predict_family_costs(probes, machine)
    if (single_node_edge_budget is not None
            and probes.num_edges > single_node_edge_budget):
        method, family = DISTRIBUTED_METHOD, "distributed"
    elif lp_ms <= uf_ms:
        method, family = LP_METHOD, "lp"
    else:
        method, family = UF_METHOD, "uf"
    return RoutePlan(method=method, family=family,
                     predicted_lp_ms=lp_ms, predicted_uf_ms=uf_ms,
                     machine=machine.name, probes=probes)


def plan_for_graph(graph: CSRGraph, *,
                   machine: MachineSpec = SKYLAKEX,
                   single_node_edge_budget: int | None = None
                   ) -> RoutePlan:
    """Probe an unregistered graph and route it.

    One-shot convenience for ``connected_components(method="auto")``;
    services with repeat traffic should register graphs and route via
    the cached :attr:`GraphEntry.probes` instead.
    """
    return plan(probe_graph(graph), machine,
                single_node_edge_budget=single_node_edge_budget)

"""Structure-aware planner: route a graph to the right CC family.

Table IV's lesson is a crossover, not a winner: Thrifty's label
propagation dominates on skewed low-diameter graphs (it touches each
giant-component vertex a handful of times and skips converged work),
while union-find — Afforest in particular — wins on high-diameter
road networks where LP's wavefront needs hundreds of rounds.  The
planner reproduces that decision from structural probes alone, without
running anything.

Mechanism: build *synthetic* per-iteration :class:`OpCounters` for an
idealized run of each family, shaped by the probes, and price them
with the repo's own :class:`CostModel` — so the routing decision and
the benchmark harness share one notion of cost, on the machine the
request targets.

* LP model: ``I = 3 + 0.4 * diameter`` pull iterations (floor 3 — the
  plateau/shrink phases exist even on diameter-2 graphs) over a total
  edge volume of ``(0.04 + 0.0006 * diameter) * m`` — Thrifty's
  converged-block skipping and zero-convergence filtering mean only a
  few percent of edges are ever scanned on skewed graphs, growing with
  diameter as the wavefront lingers.  Work decays geometrically
  (ratio 0.9) across iterations: head iterations carry the bulk and
  parallelize well, tail iterations are barrier-bound.
* UF model: three phases (Afforest's neighbour rounds / sampling /
  finish, weighted 0.5/0.25/0.25) over ``2n + (1 - giant) * m``
  offered edges — the giant component's edges are skipped after
  sampling — with ``8n + 2 * (1 - giant) * m`` dependent parent-chase
  accesses, which the cost model refuses to scale past 8-way.

The constants were calibrated once against measured Table IV winners
on all 17 dataset surrogates at scales 0.2-1.0 (85/85 agreement on
the LP-vs-UF family decision); ``tests/test_service_router.py`` and
``benchmarks/test_ext_service_throughput.py`` re-assert the agreement
at their respective scales.

A-priori calibration is also the model's weakness: on content the
constants mis-describe, the same wrong decision repeats forever.  The
serving layer therefore closes the loop with
:class:`~repro.service.feedback.RouterFeedback` — a per-(fingerprint,
method) posterior over the model's error, fed by the executor with
every run's *measured* simulated-ms.  :func:`replan` applies those
multiplicative corrections on top of :func:`predict_family_costs`
before choosing a family; with an empty store every correction is 1.0
and the decision is bit-identical to the static planner, so cold-start
routing (and the 17/17 Table IV agreement) is preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..graph.csr import CSRGraph
from ..instrument.costmodel import CostModel
from ..instrument.counters import OpCounters
from ..parallel.machine import SKYLAKEX, MachineSpec
from .feedback import RouterFeedback, delta_feedback_key
from .registry import GraphProbes, probe_graph

__all__ = ["RoutePlan", "predict_family_costs", "predicted_method_ms",
           "predict_delta_ms", "plan", "plan_for_graph", "replan",
           "runner_up", "method_family", "edge_array_bytes",
           "LP_METHOD", "UF_METHOD", "DISTRIBUTED_METHOD"]

# Concrete algorithm each family resolves to: the best member of each
# family in Table IV.
LP_METHOD = "thrifty"
UF_METHOD = "afforest"
# Routed to when the graph exceeds the single-node edge budget: the
# sharded tier (Section VII), distributed Thrifty on the fabric.
DISTRIBUTED_METHOD = "distributed"

# Which cost predictor each concrete method prices under for admission
# control.  The union-find/traversal family shares the parent-chase
# predictor; everything label-propagation-shaped (including the
# sharded tier, whose per-rank compute is LP) uses the LP predictor.
_UF_FAMILY_METHODS = frozenset(
    {"sv", "jt", "afforest", "fastsv", "connectit", "bfs"})

# Calibrated predictor constants (see module docstring).
_LP_EDGE_FRACTION_BASE = 0.04      # edge share scanned at diameter 0
_LP_EDGE_FRACTION_PER_DIAM = 0.0006
_LP_ITERS_BASE = 3.0
_LP_ITERS_PER_DIAM = 0.4
_LP_MIN_ITERS = 3
_LP_WORK_DECAY = 0.9               # geometric per-iteration work ratio
_UF_DEP_PER_VERTEX = 8.0           # parent chases per vertex
_UF_DEP_PER_NONGIANT_EDGE = 2.0
_UF_PHASE_SPLIT = (0.5, 0.25, 0.25)
# Delta-update predictor: per inserted edge, a short dependent root
# chase on a depth-<=1 forest (decode keeps trees shallow), plus one
# vectorized relabel pass over the labels array when anything merged.
_DELTA_DEP_PER_EDGE = 6.0          # find hops per batch edge (both ends)
_DELTA_SEQ_PER_VERTEX = 2.0        # relabel gather + map read


def method_family(method: str) -> str:
    """Cost-predictor family of a concrete method (``"lp"``/``"uf"``)."""
    return "uf" if method in _UF_FAMILY_METHODS else "lp"


@dataclass(frozen=True)
class RoutePlan:
    """A routing decision plus the evidence it was made on.

    ``predicted_lp_ms``/``predicted_uf_ms`` are always the *static*
    model's predictions; ``correction_lp``/``correction_uf`` carry the
    measured-cost feedback multipliers that were in force when the
    decision was made (1.0 when feedback is off or unobserved — the
    cold-start plan is field-for-field identical to the historical
    one).  ``explored`` marks a deliberate runner-up run scheduled by
    the epsilon-greedy exploration policy, not a cost-race winner.
    ``storage`` is the engine tier the run executes under:
    ``"resident"`` (the in-memory default) or ``"out_of_core"`` when
    the graph's edge array does not fit the service's resident-memory
    byte budget — a fit decision like the distributed cliff, not a
    cost race.
    """

    method: str                 # concrete algorithm ("thrifty"/"afforest")
    family: str                 # "lp" or "uf"
    predicted_lp_ms: float
    predicted_uf_ms: float
    machine: str
    probes: GraphProbes
    correction_lp: float = 1.0  # feedback multiplier on the LP cost
    correction_uf: float = 1.0  # feedback multiplier on the UF cost
    explored: bool = False      # epsilon-greedy runner-up decision
    storage: str = "resident"   # engine tier ("resident"/"out_of_core")

    @property
    def corrected_lp_ms(self) -> float:
        """LP prediction with the feedback correction applied."""
        return self.predicted_lp_ms * self.correction_lp

    @property
    def corrected_uf_ms(self) -> float:
        """Union-find prediction with the feedback correction applied."""
        return self.predicted_uf_ms * self.correction_uf

    @property
    def margin(self) -> float:
        """Correction-adjusted predicted speedup of the chosen family
        over the other — the exploration policy's near-margin gate."""
        lo = min(self.corrected_lp_ms, self.corrected_uf_ms)
        hi = max(self.corrected_lp_ms, self.corrected_uf_ms)
        return hi / lo if lo > 0 else float("inf")

    @property
    def predicted_ms(self) -> float:
        """Correction-adjusted cost of the routed method — what
        admission control charges against the service's queue capacity
        before anything runs.  The distributed tier prices under the
        cheaper family (its per-node compute is LP-shaped, but the
        fabric is priced only after the run)."""
        if self.family == "lp":
            return self.corrected_lp_ms
        if self.family == "uf":
            return self.corrected_uf_ms
        return min(self.corrected_lp_ms, self.corrected_uf_ms)


_INT32_MAX = 2**31 - 1


def edge_array_bytes(probes: GraphProbes) -> int:
    """Resident footprint of the CSR indices array, from probes alone.

    Mirrors :class:`~repro.graph.csr.CSRGraph`'s dtype choice (int32
    while vertex ids fit, int64 past that) so the planner's fit check
    against a resident-memory byte budget agrees with what building
    the graph in memory would actually cost.
    """
    itemsize = 4 if probes.num_vertices <= _INT32_MAX else 8
    return probes.num_edges * itemsize


def _lp_cost_ms(probes: GraphProbes, model: CostModel) -> float:
    """Predicted Thrifty cost: decaying pull iterations."""
    n, m = probes.num_vertices, probes.num_edges
    diam = probes.diameter
    iters = max(_LP_MIN_ITERS,
                int(round(_LP_ITERS_BASE + _LP_ITERS_PER_DIAM * diam)))
    edge_fraction = min(1.0, _LP_EDGE_FRACTION_BASE
                        + _LP_EDGE_FRACTION_PER_DIAM * diam)
    total_edges = edge_fraction * m
    weights = [_LP_WORK_DECAY ** k for k in range(iters)]
    norm = sum(weights)
    total = 0.0
    for w in weights:
        share = w / norm
        counters = OpCounters()
        counters.record_pull_scan(int(total_edges * share),
                                  int(2 * n * share) + 1)
        total += model.iteration_ms(counters)
    return total


def _uf_cost_ms(probes: GraphProbes, model: CostModel) -> float:
    """Predicted Afforest cost: three union-find-shaped phases."""
    n, m = probes.num_vertices, probes.num_edges
    non_giant = 1.0 - probes.giant_fraction
    edges = 2.0 * n + non_giant * m
    dependent = (_UF_DEP_PER_VERTEX * n
                 + _UF_DEP_PER_NONGIANT_EDGE * non_giant * m)
    total = 0.0
    for frac in _UF_PHASE_SPLIT:
        counters = OpCounters()
        counters.edges_processed = int(edges * frac)
        counters.random_accesses = int(2 * edges * frac)
        counters.dependent_accesses = int(dependent * frac)
        counters.label_reads = int((dependent + edges) * frac)
        counters.branches = int((dependent + edges) * frac)
        counters.vertex_reads = int(2 * n * frac)
        total += model.iteration_ms(counters)
    return total


def predict_family_costs(probes: GraphProbes,
                         machine: MachineSpec = SKYLAKEX,
                         ) -> tuple[float, float]:
    """(predicted LP ms, predicted union-find ms) for one graph."""
    model = CostModel(machine, probes.num_vertices)
    return _lp_cost_ms(probes, model), _uf_cost_ms(probes, model)


def predicted_method_ms(probes: GraphProbes, method: str,
                        machine: MachineSpec = SKYLAKEX, *,
                        feedback: RouterFeedback | None = None,
                        fingerprint: str | None = None,
                        feedback_method: str | None = None) -> float:
    """Predicted simulated-ms of running ``method`` on this graph.

    This is the admission-control yardstick: an explicitly-requested
    method is priced by its family's synthetic-counter predictor (the
    same one ``method="auto"`` routes on), so queueing decisions and
    routing decisions share one notion of cost.  When ``feedback``
    and ``fingerprint`` are given, the method's measured-cost
    correction is applied on top, so admission control charges what
    runs on this content have actually cost instead of trusting a
    stale prediction.  ``feedback_method`` overrides the posterior key
    alone (family classification still uses ``method``) — the executor
    passes the backend-qualified
    :func:`~repro.service.feedback.backend_feedback_key` so a compiled
    backend's runs are priced by their own learned costs.
    """
    lp_ms, uf_ms = predict_family_costs(probes, machine)
    base = uf_ms if method in _UF_FAMILY_METHODS else lp_ms
    if feedback is not None and fingerprint is not None:
        base *= feedback.correction(fingerprint,
                                    feedback_method or method,
                                    machine=machine.name)
    return base


def predict_delta_ms(num_vertices: int, batch_edges: int,
                     machine: MachineSpec = SKYLAKEX, *,
                     method: str | None = None,
                     feedback: RouterFeedback | None = None,
                     fingerprint: str | None = None) -> float:
    """Predicted simulated-ms of delta-updating cached labels.

    The touched-set cost estimate the planner weighs against a full
    recompute (``predicted_method_ms`` / ``RoutePlan.predicted_ms``):
    synthetic :class:`OpCounters` shaped like one
    :func:`repro.incremental.delta_update` call — union charges for
    ``batch_edges`` inserted edges plus the O(n) relabel pass — priced
    by the same :class:`CostModel` full runs are priced by.
    ``batch_edges`` is the *total* lineage batch (summed over a delta
    chain when several mutations are replayed at once).

    With ``method``/``feedback``/``fingerprint`` given, the delta
    posterior (keyed :func:`delta_feedback_key`, separate from the
    full-run posterior of the same method) corrects the estimate, so
    the delta-vs-recompute gate compares two measured-informed costs.
    """
    n, b = num_vertices, batch_edges
    model = CostModel(machine, n)
    counters = OpCounters()
    counters.edges_processed = b
    counters.random_accesses = 2 * b
    counters.dependent_accesses = int(_DELTA_DEP_PER_EDGE * b)
    counters.label_reads = n + int(_DELTA_DEP_PER_EDGE * b) + 2 * b
    counters.sequential_accesses = int(_DELTA_SEQ_PER_VERTEX * n)
    counters.label_writes = b
    counters.branches = n + b
    counters.cas_attempts = b
    ms = model.iteration_ms(counters)
    if (feedback is not None and fingerprint is not None
            and method is not None):
        ms *= feedback.correction(fingerprint, delta_feedback_key(method),
                                  machine=machine.name)
    return ms


def plan(probes: GraphProbes,
         machine: MachineSpec = SKYLAKEX, *,
         single_node_edge_budget: int | None = None,
         resident_byte_budget: int | None = None,
         feedback: RouterFeedback | None = None,
         fingerprint: str | None = None) -> RoutePlan:
    """Route from already-measured probes (the registry's cached ones).

    ``single_node_edge_budget`` is the capacity cliff: a graph whose
    edge count exceeds it does not fit one node's memory/bandwidth
    envelope, so the planner routes it to the sharded tier
    (``"distributed"``) regardless of the LP-vs-UF cost race.  ``None``
    (the default) means "one node always suffices" — the shared-memory
    crossover decides alone.

    ``resident_byte_budget`` is the memory cliff below the distributed
    one: a graph that fits the node's edge budget but whose edge array
    (:func:`edge_array_bytes`) exceeds the resident-memory budget runs
    *out of core* — always label propagation (``storage`` set to
    ``"out_of_core"``), because Thrifty's blocked pulls stream the
    edge file sequentially through a bounded block cache while
    union-find's parent chases would thrash it.

    ``feedback``/``fingerprint`` apply the measured-cost corrections
    learned for this exact content on top of the static predictions
    (see :func:`replan`); with no feedback (or none observed) the
    decision is the static planner's, bit for bit.
    """
    lp_ms, uf_ms = predict_family_costs(probes, machine)
    storage = "resident"
    if (single_node_edge_budget is not None
            and probes.num_edges > single_node_edge_budget):
        method, family = DISTRIBUTED_METHOD, "distributed"
    elif (resident_byte_budget is not None
            and edge_array_bytes(probes) > resident_byte_budget):
        method, family = LP_METHOD, "lp"
        storage = "out_of_core"
    elif lp_ms <= uf_ms:
        method, family = LP_METHOD, "lp"
    else:
        method, family = UF_METHOD, "uf"
    base = RoutePlan(method=method, family=family,
                     predicted_lp_ms=lp_ms, predicted_uf_ms=uf_ms,
                     machine=machine.name, probes=probes,
                     storage=storage)
    return replan(base, feedback, fingerprint)


def replan(base: RoutePlan, feedback: RouterFeedback | None,
           fingerprint: str | None) -> RoutePlan:
    """Re-decide a memoized base plan under measured-cost corrections.

    The service memoizes one *static* plan per fingerprint (probes are
    immutable, so the expensive cost-model evaluation happens once);
    corrections change per run, so each request re-decides cheaply on
    top of the memoized base.  Corrections multiply onto the family
    costs and the LP-vs-UF race is re-run; the capacity cliffs
    (``"distributed"``, ``storage="out_of_core"``) are fit decisions,
    not cost races, so those bases keep their route (but still carry
    the corrections for admission pricing).  With both corrections at
    1.0 — the empty-feedback cold start — ``base`` is returned
    unchanged, object-identical.
    """
    if feedback is None or fingerprint is None:
        return base
    c_lp = feedback.correction(fingerprint, LP_METHOD,
                               machine=base.machine)
    c_uf = feedback.correction(fingerprint, UF_METHOD,
                               machine=base.machine)
    if c_lp == 1.0 and c_uf == 1.0:
        return base
    if base.family == "distributed" or base.storage == "out_of_core":
        return replace(base, correction_lp=c_lp, correction_uf=c_uf)
    if base.predicted_lp_ms * c_lp <= base.predicted_uf_ms * c_uf:
        method, family = LP_METHOD, "lp"
    else:
        method, family = UF_METHOD, "uf"
    return replace(base, method=method, family=family,
                   correction_lp=c_lp, correction_uf=c_uf)


def runner_up(route: RoutePlan) -> RoutePlan:
    """The losing family's plan — what the exploration policy runs.

    A near-margin decision under a wrong prior can stay wrong forever
    if the runner-up is never measured (its prediction gets no
    observations); deliberately running it occasionally is what lets
    the feedback posterior falsify the prior.  Only meaningful for the
    LP-vs-UF race; distributed and out-of-core routes are fit
    decisions and are returned unchanged.
    """
    if route.storage == "out_of_core":
        return route
    if route.family == "lp":
        return replace(route, method=UF_METHOD, family="uf",
                       explored=True)
    if route.family == "uf":
        return replace(route, method=LP_METHOD, family="lp",
                       explored=True)
    return route


def plan_for_graph(graph: CSRGraph, *,
                   machine: MachineSpec = SKYLAKEX,
                   single_node_edge_budget: int | None = None,
                   resident_byte_budget: int | None = None
                   ) -> RoutePlan:
    """Probe an unregistered graph and route it.

    One-shot convenience for ``connected_components(method="auto")``;
    services with repeat traffic should register graphs and route via
    the cached :attr:`GraphEntry.probes` instead.
    """
    return plan(probe_graph(graph), machine,
                single_node_edge_budget=single_node_edge_budget,
                resident_byte_budget=resident_byte_budget)

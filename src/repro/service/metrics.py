"""Service metrics: hit rates, per-method counts, latency histograms.

Everything a serving dashboard would scrape, built from the repo's
instrumentation primitives: simulated latencies go into
:class:`repro.instrument.LatencyHistogram` (overall and per method),
and every *actual* algorithm execution folds its trace's
:class:`OpCounters` into a cumulative ``algorithm_work`` tally — which
is how tests assert that cache hits perform literally zero algorithm
work (the counter delta across a hit is exactly zero on every field).
"""

from __future__ import annotations

from ..instrument.counters import OpCounters
from ..instrument.metrics import LatencyHistogram

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Aggregated counters for one :class:`~repro.service.CCService`."""

    def __init__(self) -> None:
        self.requests = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.fallbacks = 0
        self.auto_routed = 0
        self.per_method: dict[str, int] = {}
        self.latency = LatencyHistogram()
        self.per_method_latency: dict[str, LatencyHistogram] = {}
        # Sum of OpCounters over every actually-executed run (cache
        # hits contribute nothing, by definition).
        self.algorithm_work = OpCounters()

    def record_request(self, method: str, simulated_ms: float, *,
                       cache_hit: bool, auto_routed: bool = False,
                       fallback: bool = False,
                       work: OpCounters | None = None) -> None:
        """Record one served request under its resolved method."""
        self.requests += 1
        if cache_hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        if auto_routed:
            self.auto_routed += 1
        if fallback:
            self.fallbacks += 1
        self.per_method[method] = self.per_method.get(method, 0) + 1
        self.latency.observe(simulated_ms)
        hist = self.per_method_latency.get(method)
        if hist is None:
            hist = self.per_method_latency[method] = LatencyHistogram()
        hist.observe(simulated_ms)
        if work is not None:
            self.algorithm_work += work

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    def work_snapshot(self) -> OpCounters:
        """Copy of the cumulative algorithm-work counters.

        Take one before and one after a request; if the request was a
        cache hit, ``after - before`` is all-zero.
        """
        return self.algorithm_work.copy()

    def snapshot(self) -> dict:
        """Plain-dict dump for reports / JSON export."""
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "fallbacks": self.fallbacks,
            "auto_routed": self.auto_routed,
            "per_method": dict(sorted(self.per_method.items())),
            "latency": self.latency.summary(),
            "per_method_latency": {
                m: h.summary()
                for m, h in sorted(self.per_method_latency.items())},
            "algorithm_work": self.algorithm_work.as_dict(),
        }

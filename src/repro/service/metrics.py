"""Service metrics: hit rates, per-method counts, latency histograms.

Everything a serving dashboard would scrape, built from the repo's
instrumentation primitives: simulated latencies go into
:class:`repro.instrument.LatencyHistogram` (overall, per method, per
tenant, plus a queue-delay histogram for scheduled requests), and
every *actual* algorithm execution folds its trace's
:class:`OpCounters` into a cumulative ``algorithm_work`` tally — which
is how tests assert that cache hits perform literally zero algorithm
work (the counter delta across a hit is exactly zero on every field).

Accounting contract (the async executor feeds this):

* ``cache_hits`` / ``cache_misses`` — a *miss* is a request whose
  compute ran from scratch; a coalesced waiter is neither (its work
  ran once, under the primary), it increments ``coalesced`` instead;
  a request served by delta-updating a predecessor's cached labels is
  neither hit nor miss — it increments ``delta_hits`` (touched-set
  work ran, full algorithm work did not).
* ``per_method`` attributes each request to the method the router
  *chose* (its primary).  A blown-budget fallback run is counted
  separately in ``fallback_per_method`` under the method that ran as
  fallback — so routing mispredictions stay visible per method
  instead of being silently re-attributed to union-find.
* ``fallbacks`` counts executed fallback runs; ``flag_replays``
  counts cache hits that replayed a recorded over-budget outcome
  (honest flags, zero work).
* ``rejected`` / ``rejected_by_reason`` count admission-control
  refusals (queue capacity, queue depth, tenant quota).  Rejections
  increment ``requests`` but NOT the hit/miss tallies, so both hit
  rates are computed over ``served`` (= requests - rejected): an
  overloaded service shedding half its traffic reports the hit rate
  of the traffic it actually served, not a number deflated by the
  shed half.
* ``invalidations`` counts result-cache entries dropped (explicit
  invalidation plus quarantined-fingerprint sweeps), fed by
  :meth:`ServiceMetrics.record_invalidations`.
* ``predictions`` / ``mispredictions`` + per-method
  ``prediction_error`` histograms track the cost model's honesty:
  every executed run feeds :meth:`ServiceMetrics.record_prediction`
  with the static (uncorrected) prediction and the measured
  simulated-ms; a run whose measured/predicted ratio falls outside
  ``[1/MISPREDICTION_RATIO, MISPREDICTION_RATIO]`` counts as a
  misprediction.  ``route_flips`` counts requests where the measured
  -cost corrections overturned the static family choice, and
  ``explorations`` counts deliberate runner-up runs (the seeded
  epsilon-greedy policy) — together they say whether the feedback
  loop is actively steering or merely confirming the prior.
"""

from __future__ import annotations

from ..instrument.counters import OpCounters
from ..instrument.metrics import LatencyHistogram

__all__ = ["ServiceMetrics", "MISPREDICTION_RATIO"]

#: A run counts as mispredicted when measured/predicted leaves
#: ``[1/2, 2]`` — one doubling of error in either direction.
MISPREDICTION_RATIO = 2.0


class ServiceMetrics:
    """Aggregated counters for one :class:`~repro.service.CCService`."""

    def __init__(self) -> None:
        self.requests = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.delta_hits = 0
        self.fallbacks = 0
        self.flag_replays = 0
        self.coalesced = 0
        self.rejected = 0
        self.invalidations = 0
        self.auto_routed = 0
        self.predictions = 0
        self.mispredictions = 0
        self.route_flips = 0
        self.explorations = 0
        self.per_method: dict[str, int] = {}
        self.fallback_per_method: dict[str, int] = {}
        self.rejected_by_reason: dict[str, int] = {}
        self.per_tenant: dict[str, int] = {}
        self.prediction_error: dict[str, LatencyHistogram] = {}
        self.latency = LatencyHistogram()
        self.queue_delay = LatencyHistogram()
        self.per_method_latency: dict[str, LatencyHistogram] = {}
        self.per_tenant_latency: dict[str, LatencyHistogram] = {}
        # Sum of OpCounters over every actually-executed run (cache
        # hits and coalesced waiters contribute nothing, by definition).
        self.algorithm_work = OpCounters()

    def record_request(self, method: str, simulated_ms: float, *,
                       cache_hit: bool, auto_routed: bool = False,
                       fallback: bool = False,
                       fallback_method: str | None = None,
                       flag_replay: bool = False,
                       coalesced: bool = False,
                       delta_hit: bool = False,
                       tenant: str = "default",
                       queue_delay_ms: float | None = None,
                       work: OpCounters | None = None) -> None:
        """Record one served request under its *routed* method.

        ``simulated_ms`` is the request's latency on the simulated
        clock (queue delay + charged compute; 0 for cache hits).
        ``fallback_method`` names the method that ran as the budget
        fallback, counted in :attr:`fallback_per_method`.
        """
        self.requests += 1
        if cache_hit:
            self.cache_hits += 1
        elif coalesced:
            self.coalesced += 1
        elif delta_hit:
            self.delta_hits += 1
        else:
            self.cache_misses += 1
        if auto_routed:
            self.auto_routed += 1
        if fallback:
            self.fallbacks += 1
            key = fallback_method if fallback_method is not None else method
            self.fallback_per_method[key] = \
                self.fallback_per_method.get(key, 0) + 1
        if flag_replay:
            self.flag_replays += 1
        self.per_method[method] = self.per_method.get(method, 0) + 1
        self.per_tenant[tenant] = self.per_tenant.get(tenant, 0) + 1
        self.latency.observe(simulated_ms)
        hist = self.per_method_latency.get(method)
        if hist is None:
            hist = self.per_method_latency[method] = LatencyHistogram()
        hist.observe(simulated_ms)
        thist = self.per_tenant_latency.get(tenant)
        if thist is None:
            thist = self.per_tenant_latency[tenant] = LatencyHistogram()
        thist.observe(simulated_ms)
        if queue_delay_ms is not None:
            self.queue_delay.observe(queue_delay_ms)
        if work is not None:
            self.algorithm_work += work

    def record_rejection(self, reason: str, *,
                         tenant: str = "default") -> None:
        """Record one admission-control refusal (no latency observed)."""
        self.requests += 1
        self.rejected += 1
        self.rejected_by_reason[reason] = \
            self.rejected_by_reason.get(reason, 0) + 1
        self.per_tenant[tenant] = self.per_tenant.get(tenant, 0) + 1

    def record_invalidations(self, count: int = 1) -> None:
        """Record dropped result-cache entries (mutation / quarantine)."""
        self.invalidations += count

    def record_prediction(self, method: str, predicted_ms: float,
                          measured_ms: float) -> None:
        """Record one executed run's predicted-vs-measured outcome.

        ``predicted_ms`` is the *static* (uncorrected) prediction, so
        the error histogram measures the cost model itself — not the
        cost model after the feedback loop has papered over it.
        Degenerate non-positive predictions are skipped.
        """
        if predicted_ms <= 0.0:
            return
        ratio = max(measured_ms, 0.0) / predicted_ms
        self.predictions += 1
        if ratio >= MISPREDICTION_RATIO or ratio <= 1.0 / MISPREDICTION_RATIO:
            self.mispredictions += 1
        hist = self.prediction_error.get(method)
        if hist is None:
            hist = self.prediction_error[method] = LatencyHistogram()
        hist.observe(ratio)

    def record_route_flip(self) -> None:
        """Record a request whose measured-cost corrections overturned
        the static planner's family choice."""
        self.route_flips += 1

    def record_exploration(self) -> None:
        """Record a deliberate runner-up run (epsilon-greedy policy)."""
        self.explorations += 1

    @property
    def served(self) -> int:
        """Requests actually served (admitted): ``requests - rejected``."""
        return self.requests - self.rejected

    @property
    def hit_rate(self) -> float:
        served = self.served
        return self.cache_hits / served if served else 0.0

    @property
    def effective_hit_rate(self) -> float:
        """Share of *served* requests answered without a from-scratch
        compute: cache hits, coalesced waiters (whose compute ran once,
        under another request), and delta hits (touched-set update of a
        predecessor's cached labels).  Rejections are excluded from the
        denominator — an overloaded service's rate describes the
        traffic it served, not the traffic it shed."""
        served = self.served
        if not served:
            return 0.0
        return (self.cache_hits + self.coalesced
                + self.delta_hits) / served

    def work_snapshot(self) -> OpCounters:
        """Copy of the cumulative algorithm-work counters.

        Take one before and one after a request; if the request was a
        cache hit, ``after - before`` is all-zero.
        """
        return self.algorithm_work.copy()

    def snapshot(self) -> dict:
        """Plain-dict dump for reports / JSON export."""
        return {
            "requests": self.requests,
            "served": self.served,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "effective_hit_rate": self.effective_hit_rate,
            "coalesced": self.coalesced,
            "delta_hits": self.delta_hits,
            "invalidations": self.invalidations,
            "rejected": self.rejected,
            "rejected_by_reason": dict(sorted(
                self.rejected_by_reason.items())),
            "fallbacks": self.fallbacks,
            "flag_replays": self.flag_replays,
            "fallback_per_method": dict(sorted(
                self.fallback_per_method.items())),
            "auto_routed": self.auto_routed,
            "predictions": self.predictions,
            "mispredictions": self.mispredictions,
            "route_flips": self.route_flips,
            "explorations": self.explorations,
            "prediction_error": {
                m: h.summary()
                for m, h in sorted(self.prediction_error.items())},
            "per_method": dict(sorted(self.per_method.items())),
            "per_tenant": dict(sorted(self.per_tenant.items())),
            "latency": self.latency.summary(),
            "queue_delay": self.queue_delay.summary(),
            "per_method_latency": {
                m: h.summary()
                for m, h in sorted(self.per_method_latency.items())},
            "per_tenant_latency": {
                t: h.summary()
                for t, h in sorted(self.per_tenant_latency.items())},
            "algorithm_work": self.algorithm_work.as_dict(),
        }

"""Service metrics: hit rates, per-method counts, latency histograms.

Everything a serving dashboard would scrape, built from the repo's
instrumentation primitives: simulated latencies go into
:class:`repro.instrument.LatencyHistogram` (overall, per method, per
tenant, plus a queue-delay histogram for scheduled requests), and
every *actual* algorithm execution folds its trace's
:class:`OpCounters` into a cumulative ``algorithm_work`` tally — which
is how tests assert that cache hits perform literally zero algorithm
work (the counter delta across a hit is exactly zero on every field).

Accounting contract (the async executor feeds this):

* ``cache_hits`` / ``cache_misses`` — a *miss* is a request whose
  compute ran from scratch; a coalesced waiter is neither (its work
  ran once, under the primary), it increments ``coalesced`` instead;
  a request served by delta-updating a predecessor's cached labels is
  neither hit nor miss — it increments ``delta_hits`` (touched-set
  work ran, full algorithm work did not).
* ``per_method`` attributes each request to the method the router
  *chose* (its primary).  A blown-budget fallback run is counted
  separately in ``fallback_per_method`` under the method that ran as
  fallback — so routing mispredictions stay visible per method
  instead of being silently re-attributed to union-find.
* ``fallbacks`` counts executed fallback runs; ``flag_replays``
  counts cache hits that replayed a recorded over-budget outcome
  (honest flags, zero work).
* ``rejected`` / ``rejected_by_reason`` count admission-control
  refusals (queue capacity, queue depth, tenant quota).
* ``invalidations`` counts result-cache entries dropped (explicit
  invalidation plus quarantined-fingerprint sweeps), fed by
  :meth:`ServiceMetrics.record_invalidations`.
"""

from __future__ import annotations

from ..instrument.counters import OpCounters
from ..instrument.metrics import LatencyHistogram

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Aggregated counters for one :class:`~repro.service.CCService`."""

    def __init__(self) -> None:
        self.requests = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.delta_hits = 0
        self.fallbacks = 0
        self.flag_replays = 0
        self.coalesced = 0
        self.rejected = 0
        self.invalidations = 0
        self.auto_routed = 0
        self.per_method: dict[str, int] = {}
        self.fallback_per_method: dict[str, int] = {}
        self.rejected_by_reason: dict[str, int] = {}
        self.per_tenant: dict[str, int] = {}
        self.latency = LatencyHistogram()
        self.queue_delay = LatencyHistogram()
        self.per_method_latency: dict[str, LatencyHistogram] = {}
        self.per_tenant_latency: dict[str, LatencyHistogram] = {}
        # Sum of OpCounters over every actually-executed run (cache
        # hits and coalesced waiters contribute nothing, by definition).
        self.algorithm_work = OpCounters()

    def record_request(self, method: str, simulated_ms: float, *,
                       cache_hit: bool, auto_routed: bool = False,
                       fallback: bool = False,
                       fallback_method: str | None = None,
                       flag_replay: bool = False,
                       coalesced: bool = False,
                       delta_hit: bool = False,
                       tenant: str = "default",
                       queue_delay_ms: float | None = None,
                       work: OpCounters | None = None) -> None:
        """Record one served request under its *routed* method.

        ``simulated_ms`` is the request's latency on the simulated
        clock (queue delay + charged compute; 0 for cache hits).
        ``fallback_method`` names the method that ran as the budget
        fallback, counted in :attr:`fallback_per_method`.
        """
        self.requests += 1
        if cache_hit:
            self.cache_hits += 1
        elif coalesced:
            self.coalesced += 1
        elif delta_hit:
            self.delta_hits += 1
        else:
            self.cache_misses += 1
        if auto_routed:
            self.auto_routed += 1
        if fallback:
            self.fallbacks += 1
            key = fallback_method if fallback_method is not None else method
            self.fallback_per_method[key] = \
                self.fallback_per_method.get(key, 0) + 1
        if flag_replay:
            self.flag_replays += 1
        self.per_method[method] = self.per_method.get(method, 0) + 1
        self.per_tenant[tenant] = self.per_tenant.get(tenant, 0) + 1
        self.latency.observe(simulated_ms)
        hist = self.per_method_latency.get(method)
        if hist is None:
            hist = self.per_method_latency[method] = LatencyHistogram()
        hist.observe(simulated_ms)
        thist = self.per_tenant_latency.get(tenant)
        if thist is None:
            thist = self.per_tenant_latency[tenant] = LatencyHistogram()
        thist.observe(simulated_ms)
        if queue_delay_ms is not None:
            self.queue_delay.observe(queue_delay_ms)
        if work is not None:
            self.algorithm_work += work

    def record_rejection(self, reason: str, *,
                         tenant: str = "default") -> None:
        """Record one admission-control refusal (no latency observed)."""
        self.requests += 1
        self.rejected += 1
        self.rejected_by_reason[reason] = \
            self.rejected_by_reason.get(reason, 0) + 1
        self.per_tenant[tenant] = self.per_tenant.get(tenant, 0) + 1

    def record_invalidations(self, count: int = 1) -> None:
        """Record dropped result-cache entries (mutation / quarantine)."""
        self.invalidations += count

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def effective_hit_rate(self) -> float:
        """Share of requests served without a from-scratch compute:
        cache hits, coalesced waiters (whose compute ran once, under
        another request), and delta hits (touched-set update of a
        predecessor's cached labels)."""
        if not self.requests:
            return 0.0
        return (self.cache_hits + self.coalesced
                + self.delta_hits) / self.requests

    def work_snapshot(self) -> OpCounters:
        """Copy of the cumulative algorithm-work counters.

        Take one before and one after a request; if the request was a
        cache hit, ``after - before`` is all-zero.
        """
        return self.algorithm_work.copy()

    def snapshot(self) -> dict:
        """Plain-dict dump for reports / JSON export."""
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "effective_hit_rate": self.effective_hit_rate,
            "coalesced": self.coalesced,
            "delta_hits": self.delta_hits,
            "invalidations": self.invalidations,
            "rejected": self.rejected,
            "rejected_by_reason": dict(sorted(
                self.rejected_by_reason.items())),
            "fallbacks": self.fallbacks,
            "flag_replays": self.flag_replays,
            "fallback_per_method": dict(sorted(
                self.fallback_per_method.items())),
            "auto_routed": self.auto_routed,
            "per_method": dict(sorted(self.per_method.items())),
            "per_tenant": dict(sorted(self.per_tenant.items())),
            "latency": self.latency.summary(),
            "queue_delay": self.queue_delay.summary(),
            "per_method_latency": {
                m: h.summary()
                for m, h in sorted(self.per_method_latency.items())},
            "per_tenant_latency": {
                t: h.summary()
                for t, h in sorted(self.per_tenant_latency.items())},
            "algorithm_work": self.algorithm_work.as_dict(),
        }

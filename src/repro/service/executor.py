"""The request executor: CCService and its request/response types.

This is the serving loop the ROADMAP's production framing asks for:
clients submit (graph, method, options, budget) requests — singly or
in batches — and the service registers the graph, routes ``auto``
through the structure-aware planner, consults the LRU result cache,
runs the algorithm only on a miss, enforces per-request simulated-time
budgets with a Thrifty→Afforest fallback, and keeps dashboard metrics
(hit rate, per-method counts, latency histograms, cumulative
algorithm-work counters).

Time here is *simulated* milliseconds from the repo's CostModel —
the serving layer inherits the cost semantics every benchmark in this
repo uses, so "the run blew its budget" means the same thing in a
service trace as in Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import ALGORITHMS, AUTO_METHOD
from ..core.result import CCResult
from ..distributed import simulate_distributed_time
from ..graph.csr import CSRGraph
from ..instrument.costmodel import simulate_run_time
from ..options import DistributedOptions, resolve_options, to_call_kwargs
from ..parallel.machine import SKYLAKEX, MachineSpec
from .cache import ResultCache, result_cache_key
from .metrics import ServiceMetrics
from .planner import DISTRIBUTED_METHOD, UF_METHOD, RoutePlan, plan
from .registry import GraphEntry, GraphRegistry

__all__ = ["CCRequest", "CCResponse", "CCService"]


@dataclass(eq=False)
class CCRequest:
    """One unit of service work.

    Provide either ``graph`` (registered on submit) or ``key`` (the
    name or fingerprint of an already-registered graph).  ``method``
    defaults to ``"auto"`` — the planner picks; ``budget_ms`` caps the
    request's simulated time, triggering the union-find fallback when
    the primary run exceeds it.  ``eq=False``: requests are identities
    (the embedded ndarray-bearing graph makes value equality
    ill-defined and useless here).
    """

    graph: CSRGraph | None = None
    key: str | None = None
    method: str = AUTO_METHOD
    options: object = None
    budget_ms: float | None = None
    name: str = ""          # alias to register the graph under


@dataclass(eq=False)
class CCResponse:
    """What the service returns for one request."""

    request: CCRequest
    fingerprint: str
    method: str                   # resolved concrete algorithm that ran
    result: CCResult
    simulated_ms: float           # total charged time (incl. fallback)
    cache_hit: bool
    fallback: bool = False        # budget blown -> Afforest finished it
    budget_exceeded: bool = False
    plan: RoutePlan | None = None  # set when method was "auto"

    @property
    def num_components(self) -> int:
        return self.result.num_components


class CCService:
    """Connected-components serving front end.

    One service instance owns a graph registry, a result cache, and a
    metrics aggregator, all scoped to one target machine model.
    """

    def __init__(self, *, machine: MachineSpec = SKYLAKEX,
                 cache_capacity: int = 128,
                 registry: GraphRegistry | None = None,
                 single_node_edge_budget: int | None = None) -> None:
        self.machine = machine
        self.registry = registry if registry is not None else GraphRegistry()
        self.cache = ResultCache(cache_capacity)
        self.metrics = ServiceMetrics()
        # Graphs whose probed edge count exceeds this route to the
        # sharded tier under method="auto" (None: never).
        self.single_node_edge_budget = single_node_edge_budget

    # -- graph management ---------------------------------------------

    def register(self, graph: CSRGraph, *, name: str = "") -> GraphEntry:
        """Pre-register a graph (optional; submit registers implicitly)."""
        return self.registry.register(graph, name=name)

    # -- request execution --------------------------------------------

    def submit(self, request: CCRequest) -> CCResponse:
        """Execute one request through registry, planner, and cache."""
        entry = self._resolve_entry(request)
        route: RoutePlan | None = None
        method = request.method
        if method == AUTO_METHOD:
            if isinstance(request.options, DistributedOptions):
                # The request already describes a multi-node job: a
                # DistributedOptions value with num_ranks > 1 IS the
                # routing decision — run it on the sharded tier.
                if request.options.num_ranks > 1:
                    method = DISTRIBUTED_METHOD
                else:
                    raise ValueError(
                        "method='auto' with DistributedOptions needs "
                        "num_ranks > 1; pass method='distributed' to "
                        "force a single-rank sharded run")
            elif request.options is not None:
                raise ValueError(
                    "method='auto' picks the algorithm itself and "
                    "takes no options")
            else:
                route = plan(
                    entry.probes, self.machine,
                    single_node_edge_budget=self.single_node_edge_budget)
                method = route.method
        elif method not in ALGORITHMS:
            known = sorted([*ALGORITHMS, AUTO_METHOD])
            raise ValueError(f"unknown method {method!r}; known: {known}")
        options = resolve_options(method, request.options, {})

        cache_key = result_cache_key(entry.fingerprint, method,
                                     self.machine.name, options)
        cached = self.cache.get(cache_key)
        if cached is not None:
            self.metrics.record_request(
                method, 0.0, cache_hit=True,
                auto_routed=route is not None)
            return CCResponse(request=request,
                              fingerprint=entry.fingerprint,
                              method=method, result=cached,
                              simulated_ms=0.0, cache_hit=True,
                              plan=route)

        result, simulated_ms = self._run(entry, method, options)
        work = result.trace.total_counters()
        self.cache.put(cache_key, result)

        fallback = False
        budget_exceeded = False
        total_ms = simulated_ms
        if (request.budget_ms is not None
                and simulated_ms > request.budget_ms):
            budget_exceeded = True
            if method != UF_METHOD:
                # The budget is already blown; finish with the
                # strongest union-find baseline and charge for both
                # runs — the honest cost of a mispredicted route.
                fb_options = resolve_options(UF_METHOD, None, {})
                fb_result, fb_ms = self._run(entry, UF_METHOD,
                                             fb_options)
                work += fb_result.trace.total_counters()
                self.cache.put(
                    result_cache_key(entry.fingerprint, UF_METHOD,
                                     self.machine.name, fb_options),
                    fb_result)
                result = fb_result
                method = UF_METHOD
                total_ms = simulated_ms + fb_ms
                fallback = True

        self.metrics.record_request(
            method, total_ms, cache_hit=False,
            auto_routed=route is not None, fallback=fallback,
            work=work)
        return CCResponse(request=request, fingerprint=entry.fingerprint,
                          method=method, result=result,
                          simulated_ms=total_ms, cache_hit=False,
                          fallback=fallback,
                          budget_exceeded=budget_exceeded, plan=route)

    def submit_batch(self, requests: list[CCRequest]) -> list[CCResponse]:
        """Execute a batch in order; later requests see earlier caching."""
        return [self.submit(r) for r in requests]

    def connected_components(self, graph: CSRGraph, *,
                             method: str = AUTO_METHOD,
                             options: object = None,
                             budget_ms: float | None = None,
                             name: str = "") -> CCResponse:
        """One-call convenience wrapper around :meth:`submit`."""
        return self.submit(CCRequest(graph=graph, method=method,
                                     options=options,
                                     budget_ms=budget_ms, name=name))

    # -- internals ----------------------------------------------------

    def _resolve_entry(self, request: CCRequest) -> GraphEntry:
        if request.graph is not None:
            return self.registry.register(request.graph,
                                          name=request.name)
        if request.key is not None:
            return self.registry.get(request.key)
        raise ValueError("request needs a graph or a registry key")

    def _run(self, entry: GraphEntry, method: str,
             options: object) -> tuple[CCResult, float]:
        """Actually execute one algorithm and price its trace."""
        fn = ALGORITHMS[method]
        result = fn(entry.graph, machine=self.machine,
                    dataset=entry.name or entry.fingerprint,
                    **to_call_kwargs(options))
        if method == DISTRIBUTED_METHOD:
            # Sharded runs are priced with the alpha-beta network
            # model on top of per-node compute; one `machine` node
            # per rank.
            return result, simulate_distributed_time(
                result, entry.graph.num_vertices, node=self.machine)
        timed = simulate_run_time(result.trace, self.machine,
                                  entry.graph.num_vertices)
        return result, timed.total_ms

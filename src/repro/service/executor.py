"""The request executor: CCService and its async scheduler.

This is the serving loop the ROADMAP's production framing asks for,
rebuilt around an event-loop scheduler on a *simulated clock*:

* Requests arrive with timestamps (``CCRequest.arrival_ms``) and are
  scheduled onto a pool of ``ServiceOptions.concurrency`` simulated
  workers; every request is registered, ``auto``-routed through the
  structure-aware planner (one plan per fingerprint, memoized), and
  checked against the LRU result cache before anything runs.
* **Coalescing** — identical in-flight requests (same canonical cache
  key *and* budget) share one compute: the first becomes the job's
  primary, later arrivals attach as waiters and all of them observe
  the same :class:`CCResult` object at the job's completion.
* **Admission control + backpressure** — when all workers are busy, a
  new job's planner-predicted simulated-ms is charged against
  ``max_queue_ms`` / ``max_queue_depth``; over-capacity requests are
  *rejected* (``status="rejected"``) instead of growing the queue
  without bound.  Per-tenant ``tenant_quota_ms`` caps one tenant's
  outstanding predicted work so a heavy tenant cannot starve the rest.
* **Priority lanes + fair tenants** — queued jobs sit in strict
  priority lanes (``CCRequest.priority``, clamped to
  ``ServiceOptions.num_lanes``); within a lane the scheduler picks the
  tenant with the least served predicted-ms (deficit-style weighted
  fairness), FIFO per tenant.
* **Measured-cost feedback** — every executed run's measured
  simulated-ms is fed back into the registry's
  :class:`~repro.service.feedback.RouterFeedback` posterior (keyed by
  fingerprint, method and machine, always against the *uncorrected*
  static prediction), and auto routing re-decides each arrival on the
  correction-adjusted family costs (:func:`~repro.service.planner.
  replan` over the memoized static plan).  Corrections also price
  admission control and delta gating.  Near-margin decisions are
  occasionally sent to the runner-up family by a deterministic seeded
  epsilon-greedy policy (``ServiceOptions.explore_rate`` /
  ``explore_margin``), so a wrong prior gets the observation that
  falsifies it.  With feedback empty (or disabled) routing is
  bit-identical to the static planner.
* **Budgets** — per-request simulated-time budgets with the
  Thrifty→Afforest fallback, with *honest accounting*: the budget
  outcome of every executed run is recorded alongside its cache
  entry, so a later cache hit replays the recorded
  ``budget_exceeded``/``fallback`` flags (and the fallback's cached
  result) instead of silently reporting the blown primary as healthy.

The synchronous API is a thin wrapper: ``submit`` schedules one
arrival at the current clock and drains the loop, which reduces to
exactly the old route→cache→run→fallback sequence — results, flags
and metrics on that path are unchanged (bit-identical labels).

Time here is *simulated* milliseconds from the repo's CostModel —
the serving layer inherits the cost semantics every benchmark in this
repo uses, so "the run blew its budget" means the same thing in a
service trace as in Table IV.
"""

from __future__ import annotations

import heapq
import random
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace

import numpy as np

from ..api import ALGORITHMS, AUTO_METHOD
from ..core.result import CCResult, validate_extras
from ..distributed import simulate_distributed_time
from ..graph.csr import CSRGraph
from ..incremental import (DELTA_METHODS, PLANTED_METHODS,
                           DeltaIneligible, delta_update, hub_stable)
from ..instrument.costmodel import CostModel, simulate_run_time
from ..instrument.counters import OpCounters
from ..instrument.trace import RunTrace
from ..options import (DistributedOptions, ServiceOptions,
                       resolve_options, to_call_kwargs)
from ..parallel.machine import SKYLAKEX, MachineSpec
from .cache import ResultCache, result_cache_key
from .feedback import (RouterFeedback, backend_feedback_key,
                       delta_feedback_key)
from .metrics import ServiceMetrics
from .planner import (DISTRIBUTED_METHOD, UF_METHOD, RoutePlan,
                      method_family, plan, predict_delta_ms,
                      predicted_method_ms, replan, runner_up)
from .registry import GraphEntry, GraphRegistry

__all__ = ["CCRequest", "CCResponse", "CCService",
           "REJECT_QUEUE_FULL", "REJECT_QUEUE_DEPTH",
           "REJECT_TENANT_QUOTA"]

#: Admission-control rejection reasons (``CCResponse.reject_reason``).
REJECT_QUEUE_FULL = "queue-full"
REJECT_QUEUE_DEPTH = "queue-depth"
REJECT_TENANT_QUOTA = "tenant-quota"

_ARRIVE = 0
_FINISH = 1


@dataclass(eq=False, slots=True)
class CCRequest:
    """One unit of service work.

    Provide either ``graph`` (registered on submit) or ``key`` (the
    name or fingerprint of an already-registered graph).  ``method``
    defaults to ``"auto"`` — the planner picks; ``budget_ms`` caps the
    request's simulated time, triggering the union-find fallback when
    the primary run exceeds it.

    Scheduling fields (all optional; the defaults reproduce the
    synchronous behaviour): ``tenant`` attributes the request for
    quotas and per-tenant metrics; ``priority`` selects the strict
    lane (0 drains first, clamped to the service's ``num_lanes``);
    ``arrival_ms`` places the request on the simulated clock (``None``
    = the service's current clock, i.e. "now").

    ``eq=False``: requests are identities (the embedded
    ndarray-bearing graph makes value equality ill-defined and
    useless here).
    """

    graph: CSRGraph | None = None
    key: str | None = None
    method: str = AUTO_METHOD
    options: object = None
    budget_ms: float | None = None
    name: str = ""          # alias to register the graph under
    tenant: str = "default"
    priority: int = 0
    arrival_ms: float | None = None


@dataclass(eq=False, slots=True)
class CCResponse:
    """What the service returns for one request.

    ``simulated_ms`` is the *charged compute* that produced the result
    (0 for cache hits; primary + fallback for blown budgets; shared
    verbatim by coalesced waiters — the work ran once).  The request's
    end-to-end simulated latency is ``finish_ms - arrival_ms``
    (= ``queue_delay_ms`` + charged compute for the job's primary).
    Check ``status`` before touching ``result``: an admission-control
    rejection carries ``status="rejected"``, a ``reject_reason``, and
    no result.
    """

    request: CCRequest
    fingerprint: str
    method: str                   # resolved concrete algorithm that ran
    result: CCResult | None
    simulated_ms: float           # total charged time (incl. fallback)
    cache_hit: bool
    fallback: bool = False        # budget blown -> Afforest finished it
    budget_exceeded: bool = False
    plan: RoutePlan | None = None  # set when method was "auto"
    status: str = "ok"            # "ok" | "rejected"
    reject_reason: str = ""
    coalesced: bool = False       # rode along on another compute
    # Served by delta-updating a predecessor's cached labels instead
    # of recomputing (bit-identical result, touched-set work only).
    delta_hit: bool = False
    queue_delay_ms: float = 0.0
    arrival_ms: float = 0.0
    start_ms: float = 0.0
    finish_ms: float = 0.0
    tenant: str = "default"

    @property
    def num_components(self) -> int:
        if self.result is None:
            raise ValueError(
                f"request was {self.status} ({self.reject_reason}); "
                "no result to read")
        return self.result.num_components


@dataclass(eq=False, slots=True)
class _Member:
    """One request riding on a job (index 0 = primary, rest waiters)."""

    request: CCRequest
    slot: int
    responses: list
    arrival_ms: float
    route: RoutePlan | None
    auto_routed: bool


@dataclass(eq=False, slots=True)
class _DeltaPlan:
    """A resolved delta-serving opportunity for one cache miss.

    ``seed`` is a cached result of the same (method, machine, options)
    on the ancestor ``seed_fingerprint``; ``src``/``dst`` concatenate
    the lineage batches from that ancestor down to the requested
    graph (``chain`` mutation steps); ``hub`` is the seed's planting
    hub for planted methods (``None`` otherwise).
    """

    seed: CCResult
    seed_fingerprint: str
    src: np.ndarray
    dst: np.ndarray
    chain: int
    hub: int | None
    predicted_ms: float
    # The *uncorrected* static delta prediction — what feedback
    # observations are measured against (``predicted_ms`` may carry a
    # learned correction, which must not compound onto itself).
    base_predicted_ms: float = 0.0


@dataclass(eq=False, slots=True)
class _Job:
    """One scheduled compute: a primary request plus coalesced waiters."""

    entry: GraphEntry
    method: str                   # method that runs as the primary
    options: object
    cache_key: tuple
    coalesce_key: tuple
    budget_ms: float | None
    tenant: str
    lane: int
    predicted_ms: float
    members: list[_Member]
    # A cache hit whose recorded run blew this request's budget, with
    # the fallback result evicted: the job runs the fallback only,
    # with the outcome flags preset (the primary is known-blown).
    preset_exceeded: bool = False
    preset_fallback: bool = False
    primary_method: str = ""      # routed method, for metrics attribution
    # Serve this job by delta-updating the plan's cached seed labels
    # instead of a from-scratch run (cleared if the update bails).
    delta: _DeltaPlan | None = None
    # Filled by _execute / scheduling:
    start_ms: float = 0.0
    total_ms: float = 0.0
    final_method: str = ""
    final_result: CCResult | None = None
    fallback: bool = False
    exceeded: bool = False
    work: OpCounters = field(default_factory=OpCounters)
    # (cache_key, result, run_ms) inserts deferred to the FINISH
    # event: on the simulated clock the result does not exist until
    # the job completes, so caching at execute time would serve
    # anachronistic hits to requests arriving mid-flight (they must
    # coalesce instead).
    cache_puts: list = field(default_factory=list)


class CCService:
    """Connected-components serving front end.

    One service instance owns a graph registry, a result cache, a
    metrics aggregator, and an event-loop scheduler on a simulated
    clock, all scoped to one target machine model.  ``submit`` /
    ``submit_batch`` are synchronous wrappers over the scheduler;
    ``run_trace`` drives a timestamped multi-tenant workload through
    it (coalescing, admission control, priority lanes).
    """

    def __init__(self, *, machine: MachineSpec = SKYLAKEX,
                 cache_capacity: int = 128,
                 registry: GraphRegistry | None = None,
                 single_node_edge_budget: int | None = None,
                 resident_byte_budget: int | None = None,
                 service_options: ServiceOptions | None = None) -> None:
        self.machine = machine
        self.registry = registry if registry is not None else GraphRegistry()
        self.cache = ResultCache(cache_capacity)
        self.metrics = ServiceMetrics()
        # Graphs whose probed edge count exceeds this route to the
        # sharded tier under method="auto" (None: never).
        self.single_node_edge_budget = single_node_edge_budget
        # Graphs that fit a node but whose edge array exceeds this
        # byte budget run out-of-core under method="auto" (None:
        # everything is resident); it also bounds the block cache of
        # out-of-core runs and of register_path opens.
        if resident_byte_budget is not None and resident_byte_budget < 1:
            raise ValueError("resident_byte_budget must be >= 1")
        self.resident_byte_budget = resident_byte_budget
        self.options = (service_options if service_options is not None
                        else ServiceOptions())
        # Deterministic exploration stream: same seed + same trace =>
        # the same runner-up choices, replayable in tests.
        self._explore_rng = random.Random(self.options.explore_seed)
        # -- scheduler state (simulated clock) ------------------------
        self.clock_ms = 0.0
        self._events: list[tuple[float, int, int, object]] = []
        self._seq = 0
        self._running = 0
        self._lanes: list[dict[str, deque[_Job]]] = [
            {} for _ in range(self.options.num_lanes)]
        self._queued_depth = 0
        self._queued_pred_ms = 0.0
        self._inflight: dict[tuple, _Job] = {}
        self._outstanding_ms: dict[str, float] = {}
        self._tenant_served_ms: dict[str, float] = {}
        # Budget-outcome metadata parallel to the result cache: cache
        # key -> simulated ms of the run that produced the entry, so a
        # hit can replay the honest budget/fallback flags.  Bounded
        # LRU (cache evictions are not observable from here).
        self._run_meta: OrderedDict[tuple, float] = OrderedDict()
        # One routing decision per fingerprint: probes are immutable,
        # so repeat auto requests reuse the plan instead of re-pricing
        # the cost model per request.
        self._plan_memo: dict[str, RoutePlan] = {}

    # -- graph management ---------------------------------------------

    def register(self, graph: CSRGraph, *, name: str = "") -> GraphEntry:
        """Pre-register a graph (optional; submit registers implicitly)."""
        entry = self.registry.register(graph, name=name)
        self._sweep_stale()
        return entry

    def register_path(self, path, *, name: str = "",
                      resident_bytes: int | None = None,
                      mode: str = "mmap") -> GraphEntry:
        """Register a blocked on-disk graph without materializing it.

        ``resident_bytes`` bounds the opened graph's block cache and
        defaults to the service's ``resident_byte_budget``.
        """
        entry = self.registry.register_path(
            path, name=name,
            resident_bytes=(resident_bytes if resident_bytes is not None
                            else self.resident_byte_budget),
            mode=mode)
        self._sweep_stale()
        return entry

    def mutate(self, key: str, *, insert=None, remove=None,
               name: str | None = None) -> GraphEntry:
        """Apply an edge mutation to a registered graph.

        The sanctioned mutation path: delegates to
        :meth:`GraphRegistry.mutate` (successor entry under a new
        fingerprint, name re-pointed, insertion lineage recorded) and
        sweeps any quarantined fingerprints out of the result cache.
        Subsequent key-based requests see the successor; with
        ``ServiceOptions.delta_serving`` they are served by
        delta-updating the predecessor's cached labels when that is
        predicted cheaper than recomputing.
        """
        entry = self.registry.mutate(key, insert=insert, remove=remove,
                                     name=name)
        self._sweep_stale()
        return entry

    def _sweep_stale(self) -> None:
        """Purge cached state keyed by quarantined fingerprints.

        The registry quarantines a fingerprint when it detects that a
        registered graph's arrays were mutated in place (the unsanctioned
        path): every cached result, memoized plan and run record for
        that fingerprint describes content that no longer exists.
        """
        for fp in self.registry.drain_stale():
            dropped = self.cache.invalidate_fingerprint(fp)
            self.metrics.record_invalidations(dropped)
            self._plan_memo.pop(fp, None)
            for key in [k for k in self._run_meta if k[0] == fp]:
                del self._run_meta[key]

    # -- request execution --------------------------------------------

    def submit(self, request: CCRequest) -> CCResponse:
        """Execute one request through registry, planner, and cache.

        Synchronous wrapper over the scheduler: the request arrives at
        the current simulated clock and the loop drains before
        returning, which reduces to the classic route → cache → run →
        fallback sequence (a lone request never queues or coalesces).
        """
        return self.run_trace([request])[0]

    def submit_batch(self, requests: list[CCRequest]) -> list[CCResponse]:
        """Execute a batch in order; later requests see earlier caching."""
        return [self.submit(r) for r in requests]

    def run_trace(self, requests: list[CCRequest]) -> list[CCResponse]:
        """Drive a timestamped request trace through the scheduler.

        Arrivals happen at each request's ``arrival_ms`` (clamped to
        the current clock; ``None`` means "now"); the loop runs until
        every request has completed or been rejected, and responses
        are returned in input order.  Requests should be valid — a
        resolution error (unknown method, missing graph) propagates
        and aborts the remainder of the trace.
        """
        responses: list = [None] * len(requests)
        base = self.clock_ms
        for slot, req in enumerate(requests):
            arrival = base if req.arrival_ms is None \
                else max(req.arrival_ms, base)
            self._push(arrival, _ARRIVE, (req, slot, responses))
        try:
            self._drain()
        except BaseException:
            self._reset_scheduler()
            raise
        return responses

    def connected_components(self, graph: CSRGraph, *,
                             method: str = AUTO_METHOD,
                             options: object = None,
                             budget_ms: float | None = None,
                             name: str = "") -> CCResponse:
        """One-call convenience wrapper around :meth:`submit`."""
        return self.submit(CCRequest(graph=graph, method=method,
                                     options=options,
                                     budget_ms=budget_ms, name=name))

    # -- event loop ---------------------------------------------------

    def _push(self, time_ms: float, kind: int, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._events, (time_ms, self._seq, kind, payload))

    def _drain(self) -> None:
        while self._events:
            time_ms, _, kind, payload = heapq.heappop(self._events)
            self.clock_ms = max(self.clock_ms, time_ms)
            if kind == _ARRIVE:
                req, slot, responses = payload
                self._on_arrive(req, slot, responses, self.clock_ms)
            else:
                self._on_finish(payload, self.clock_ms)

    def _reset_scheduler(self) -> None:
        """Discard pending scheduler state after a trace error."""
        self._events.clear()
        self._lanes = [{} for _ in range(self.options.num_lanes)]
        self._queued_depth = 0
        self._queued_pred_ms = 0.0
        self._inflight.clear()
        self._outstanding_ms.clear()
        self._running = 0

    # -- arrival ------------------------------------------------------

    def _on_arrive(self, request: CCRequest, slot: int, responses: list,
                   now: float) -> None:
        entry = self._resolve_entry(request)
        route: RoutePlan | None = None
        method = request.method
        if method == AUTO_METHOD:
            if isinstance(request.options, DistributedOptions):
                # The request already describes a multi-node job: a
                # DistributedOptions value with num_ranks > 1 IS the
                # routing decision — run it on the sharded tier.
                if request.options.num_ranks > 1:
                    method = DISTRIBUTED_METHOD
                else:
                    raise ValueError(
                        "method='auto' with DistributedOptions needs "
                        "num_ranks > 1; pass method='distributed' to "
                        "force a single-rank sharded run")
            elif request.options is not None:
                raise ValueError(
                    "method='auto' picks the algorithm itself and "
                    "takes no options")
            else:
                route = self._route(entry)
                method = route.method
        elif method not in ALGORITHMS:
            known = sorted([*ALGORITHMS, AUTO_METHOD])
            raise ValueError(f"unknown method {method!r}; known: {known}")
        options = resolve_options(method, request.options, {})
        if (route is not None and route.storage == "out_of_core"
                and hasattr(options, "storage")):
            # The planner's fit decision becomes engine configuration:
            # the run streams edge blocks under the service's
            # resident-memory budget instead of materializing them.
            options = replace(options, storage=route.storage,
                              resident_bytes=self.resident_byte_budget)
        # Attribution name for metrics and the feedback posterior: the
        # bare method on the default backend, "<method>@<backend>"
        # otherwise, so per-backend costs never mix.
        attributed = backend_feedback_key(
            method, getattr(options, "backend", None))
        cache_key = result_cache_key(entry.fingerprint, method,
                                     self.machine.name, options)
        member = _Member(request=request, slot=slot, responses=responses,
                         arrival_ms=now, route=route,
                         auto_routed=route is not None)

        cached = self.cache.get(cache_key)
        preset_fb = False
        if cached is not None:
            hit = self._replay_hit(member, entry, method, cache_key,
                                   cached, now, queue_delay_ms=None,
                                   attributed=attributed)
            if hit:
                return
            # Recorded run blew this budget and the fallback result
            # is gone from the cache: run the fallback as a job with
            # the outcome flags preset.
            preset_fb = True
            primary_method = attributed
            method = UF_METHOD
            options = resolve_options(UF_METHOD, None, {})
            cache_key = result_cache_key(entry.fingerprint, UF_METHOD,
                                         self.machine.name, options)
            coalesce_key = (cache_key, "replay")
        else:
            primary_method = attributed
            coalesce_key = (cache_key, request.budget_ms)

        inflight = self._inflight.get(coalesce_key)
        if inflight is not None:
            inflight.members.append(member)
            return

        delta_plan = None if preset_fb else self._plan_delta(
            entry, method, options, route)

        opts = self.options
        admission = (opts.max_queue_ms is not None
                     or opts.max_queue_depth is not None
                     or opts.tenant_quota_ms is not None)
        if delta_plan is not None:
            # A delta job's honest admission weight is the touched-set
            # estimate, not the full-run prediction it avoids.
            predicted = delta_plan.predicted_ms
        elif route is not None:
            predicted = route.predicted_ms
        elif admission:
            predicted = predicted_method_ms(
                entry.probes, method, self.machine,
                feedback=self._feedback(), fingerprint=entry.fingerprint,
                feedback_method=attributed)
        else:
            # Fairness-only weight; explicit-method requests are not
            # probed unless admission control needs the prediction.
            predicted = 1.0
        tenant = request.tenant
        if (opts.tenant_quota_ms is not None
                and self._outstanding_ms.get(tenant, 0.0) + predicted
                > opts.tenant_quota_ms):
            self._reject(member, entry, method, REJECT_TENANT_QUOTA)
            return
        idle = self._running < opts.concurrency and self._queued_depth == 0
        if not idle:
            if (opts.max_queue_depth is not None
                    and self._queued_depth >= opts.max_queue_depth):
                self._reject(member, entry, method, REJECT_QUEUE_DEPTH)
                return
            if (opts.max_queue_ms is not None
                    and self._queued_pred_ms + predicted
                    > opts.max_queue_ms):
                self._reject(member, entry, method, REJECT_QUEUE_FULL)
                return

        lane = min(max(request.priority, 0), opts.num_lanes - 1)
        job = _Job(entry=entry, method=method, options=options,
                   cache_key=cache_key, coalesce_key=coalesce_key,
                   budget_ms=None if preset_fb else request.budget_ms,
                   tenant=tenant, lane=lane, predicted_ms=predicted,
                   members=[member], preset_exceeded=preset_fb,
                   preset_fallback=preset_fb,
                   primary_method=primary_method, delta=delta_plan)
        self._inflight[coalesce_key] = job
        self._outstanding_ms[tenant] = \
            self._outstanding_ms.get(tenant, 0.0) + predicted
        self._lanes[lane].setdefault(tenant, deque()).append(job)
        self._queued_depth += 1
        self._queued_pred_ms += predicted
        self._dispatch(now)

    # -- dispatch / execution -----------------------------------------

    def _pick_next(self) -> _Job | None:
        """Next queued job: strict lanes, least-served tenant, FIFO."""
        for lane in self._lanes:
            if not lane:
                continue
            tenant = min(lane, key=lambda t:
                         (self._tenant_served_ms.get(t, 0.0), t))
            queue = lane[tenant]
            job = queue.popleft()
            if not queue:
                del lane[tenant]
            return job
        return None

    def _dispatch(self, now: float) -> None:
        while self._running < self.options.concurrency:
            job = self._pick_next()
            if job is None:
                return
            self._queued_depth -= 1
            self._queued_pred_ms = max(
                0.0, self._queued_pred_ms - job.predicted_ms)
            self._tenant_served_ms[job.tenant] = \
                self._tenant_served_ms.get(job.tenant, 0.0) \
                + job.predicted_ms
            if self._start_job(job, now):
                continue  # served from cache at dequeue; worker free

    def _start_job(self, job: _Job, now: float) -> bool:
        """Start one dequeued job; True if it resolved without a worker.

        A queued job's key may have been computed by an earlier job
        while this one waited — re-check the cache at dequeue time so
        duplicates that missed the coalescing window (e.g. a
        different ``budget_ms``) still cost zero algorithm work.  The
        re-check is an internal probe, not a client lookup: it goes
        through ``peek`` so it cannot inflate the cache hit rate (the
        members' arrival-time lookups already counted their misses).
        """
        cached = self.cache.peek(job.cache_key)
        if cached is not None and not job.preset_fallback:
            self.cache.touch(job.cache_key)
            self._inflight.pop(job.coalesce_key, None)
            self._release_outstanding(job)
            for member in job.members:
                served = self._replay_hit(
                    member, job.entry, job.method, job.cache_key,
                    cached, now, queue_delay_ms=now - member.arrival_ms)
                if not served:  # pragma: no cover - needs mid-queue
                    # eviction of the fallback entry; re-run for safety
                    self._run_fallback_inline(member, job, now)
            return True
        job.start_ms = now
        self._running += 1
        self._execute(job)
        self._push(now + job.total_ms, _FINISH, job)
        return False

    def _execute(self, job: _Job) -> None:
        """Run the job's algorithm(s) and price its simulated duration."""
        result = None
        if job.delta is not None:
            try:
                result, sim_ms = self._run_delta(job)
            except DeltaIneligible:
                # The cached seed turned out not to decode (defensive:
                # planning already checked eligibility); fall back to
                # the from-scratch run.
                job.delta = None
        if result is None:
            result, sim_ms = self._run(job.entry, job.method, job.options)
            self._observe_run(job.entry, job.method, sim_ms,
                              options=job.options)
        else:
            self._observe_run(job.entry, job.method, sim_ms,
                              options=job.options, delta=job.delta)
        job.work = result.trace.total_counters()
        job.cache_puts.append((job.cache_key, result, sim_ms))
        job.total_ms = sim_ms
        job.final_method, job.final_result = job.method, result
        job.exceeded = job.preset_exceeded
        job.fallback = job.preset_fallback
        if (job.budget_ms is not None and sim_ms > job.budget_ms
                and not job.preset_exceeded):
            job.exceeded = True
            if job.method != UF_METHOD:
                # The budget is already blown; finish with the
                # strongest union-find baseline and charge for both
                # runs — the honest cost of a mispredicted route.
                fb_options = resolve_options(UF_METHOD, None, {})
                fb_result, fb_ms = self._run(job.entry, UF_METHOD,
                                             fb_options)
                self._observe_run(job.entry, UF_METHOD, fb_ms,
                                  options=fb_options)
                job.work += fb_result.trace.total_counters()
                fb_key = result_cache_key(
                    job.entry.fingerprint, UF_METHOD,
                    self.machine.name, fb_options)
                job.cache_puts.append((fb_key, fb_result, fb_ms))
                job.final_method, job.final_result = UF_METHOD, fb_result
                job.total_ms = sim_ms + fb_ms
                job.fallback = True

    def _run_fallback_inline(self, member: _Member, job: _Job,
                             now: float) -> None:  # pragma: no cover
        """Degenerate dequeue path: replay needs a fallback re-run."""
        fb_job = _Job(entry=job.entry, method=UF_METHOD,
                      options=resolve_options(UF_METHOD, None, {}),
                      cache_key=result_cache_key(
                          job.entry.fingerprint, UF_METHOD,
                          self.machine.name,
                          resolve_options(UF_METHOD, None, {})),
                      coalesce_key=(job.cache_key, "replay"),
                      budget_ms=None, tenant=member.request.tenant,
                      lane=job.lane, predicted_ms=job.predicted_ms,
                      members=[member], preset_exceeded=True,
                      preset_fallback=True, primary_method=job.method)
        fb_job.start_ms = now
        self._running += 1
        self._execute(fb_job)
        self._push(now + fb_job.total_ms, _FINISH, fb_job)

    # -- completion ---------------------------------------------------

    def _on_finish(self, job: _Job, now: float) -> None:
        self._running -= 1
        self._inflight.pop(job.coalesce_key, None)
        self._release_outstanding(job)
        # The result exists as of *now* on the simulated clock.
        for key, result, run_ms in job.cache_puts:
            self.cache.put(key, result)
            self._remember_run(key, run_ms)
        for index, member in enumerate(job.members):
            primary = index == 0
            # A waiter that arrived after the compute started waited
            # zero: it rode along on an already-running job.
            queue_delay = max(0.0, job.start_ms - member.arrival_ms)
            latency = now - member.arrival_ms
            request = member.request
            response = CCResponse(
                request=request, fingerprint=job.entry.fingerprint,
                method=job.final_method, result=job.final_result,
                simulated_ms=job.total_ms, cache_hit=False,
                fallback=job.fallback, budget_exceeded=job.exceeded,
                plan=member.route, coalesced=not primary,
                delta_hit=job.delta is not None,
                queue_delay_ms=queue_delay,
                arrival_ms=member.arrival_ms, start_ms=job.start_ms,
                finish_ms=now, tenant=request.tenant)
            if primary:
                self.metrics.record_request(
                    job.primary_method, latency, cache_hit=False,
                    auto_routed=member.auto_routed,
                    fallback=job.fallback,
                    fallback_method=(job.final_method if job.fallback
                                     else None),
                    delta_hit=job.delta is not None,
                    tenant=request.tenant, queue_delay_ms=queue_delay,
                    work=job.work)
            else:
                self.metrics.record_request(
                    job.primary_method, latency, cache_hit=False,
                    auto_routed=member.auto_routed, coalesced=True,
                    tenant=request.tenant, queue_delay_ms=queue_delay)
            member.responses[member.slot] = response
        self._dispatch(now)

    # -- cache-hit / rejection paths ----------------------------------

    def _replay_hit(self, member: _Member, entry: GraphEntry,
                    method: str, cache_key: tuple, cached: CCResult,
                    now: float,
                    queue_delay_ms: float | None,
                    attributed: str | None = None) -> bool:
        """Serve one request from the cache, replaying the recorded
        budget outcome of the run that produced the entry.

        Returns False in exactly one case: the recorded run blew this
        request's budget, the contract promises the union-find
        fallback, and the fallback's cached result has been evicted —
        the caller must then schedule a fallback run.
        """
        request = member.request
        final_method, final_result = method, cached
        exceeded = False
        fallback = False
        replayed = False
        run_ms = self._run_meta.get(cache_key)
        if (request.budget_ms is not None and run_ms is not None
                and run_ms > request.budget_ms):
            exceeded = True
            replayed = True
            if method != UF_METHOD:
                fb_options = resolve_options(UF_METHOD, None, {})
                fb_key = result_cache_key(entry.fingerprint, UF_METHOD,
                                          self.machine.name, fb_options)
                # Internal probe for the replay contract, not a client
                # lookup — stat-neutral, recency refreshed on serve.
                fb_cached = self.cache.peek(fb_key)
                if fb_cached is None:
                    return False
                self.cache.touch(fb_key)
                final_method, final_result = UF_METHOD, fb_cached
                fallback = True
        latency = 0.0 if queue_delay_ms is None else queue_delay_ms
        response = CCResponse(
            request=request, fingerprint=entry.fingerprint,
            method=final_method, result=final_result,
            simulated_ms=0.0, cache_hit=True, fallback=fallback,
            budget_exceeded=exceeded, plan=member.route,
            queue_delay_ms=latency, arrival_ms=member.arrival_ms,
            start_ms=now, finish_ms=now, tenant=request.tenant)
        self.metrics.record_request(
            attributed or method, latency, cache_hit=True,
            auto_routed=member.auto_routed, flag_replay=replayed,
            tenant=request.tenant, queue_delay_ms=queue_delay_ms)
        member.responses[member.slot] = response
        return True

    def _reject(self, member: _Member, entry: GraphEntry, method: str,
                reason: str) -> None:
        request = member.request
        member.responses[member.slot] = CCResponse(
            request=request, fingerprint=entry.fingerprint,
            method=method, result=None, simulated_ms=0.0,
            cache_hit=False, plan=member.route, status="rejected",
            reject_reason=reason, arrival_ms=member.arrival_ms,
            start_ms=member.arrival_ms, finish_ms=member.arrival_ms,
            tenant=request.tenant)
        self.metrics.record_rejection(reason, tenant=request.tenant)

    # -- internals ----------------------------------------------------

    def _plan_for(self, entry: GraphEntry) -> RoutePlan:
        """Static route once per fingerprint; probes are immutable."""
        route = self._plan_memo.get(entry.fingerprint)
        if route is None:
            route = plan(
                entry.probes, self.machine,
                single_node_edge_budget=self.single_node_edge_budget,
                resident_byte_budget=self.resident_byte_budget)
            self._plan_memo[entry.fingerprint] = route
        return route

    def _feedback(self) -> RouterFeedback | None:
        """The registry's feedback store, or None when disabled."""
        return self.registry.feedback if self.options.feedback else None

    def _route(self, entry: GraphEntry) -> RoutePlan:
        """Route one auto request: memoized static plan, re-decided
        under the current measured-cost corrections, with seeded
        epsilon-greedy exploration of near-margin decisions.

        The expensive cost-model evaluation is memoized per
        fingerprint (:meth:`_plan_for`); corrections change with every
        observation, so the cheap :func:`replan` re-decision runs per
        arrival.  With feedback disabled or empty this returns the
        memoized plan object itself.
        """
        base = self._plan_for(entry)
        route = replan(base, self._feedback(), entry.fingerprint)
        if route.method != base.method:
            self.metrics.record_route_flip()
        opts = self.options
        if (opts.explore_rate > 0.0
                and route.family in ("lp", "uf")
                and route.margin < opts.explore_margin
                and self._explore_rng.random() < opts.explore_rate):
            route = runner_up(route)
            self.metrics.record_exploration()
        return route

    def _plan_delta(self, entry: GraphEntry, method: str,
                    options: object,
                    route: RoutePlan | None) -> _DeltaPlan | None:
        """Find a delta-serving opportunity for a cache miss.

        Walks the entry's mutation lineage (at most
        ``ServiceOptions.max_delta_chain`` steps) looking for an
        ancestor with a cached result under the identical (method,
        machine, options) key.  Returns ``None`` — full compute —
        when delta serving is off, the method is not delta-eligible,
        the lineage breaks (a removal, an unregistered ancestor, the
        chain bound), a planted method's hub moved, or the touched-set
        cost estimate does not beat the predicted full run.
        """
        opts = self.options
        if not opts.delta_serving or method not in DELTA_METHODS:
            return None
        if entry.parent_fingerprint is None:
            return None
        srcs: list[np.ndarray] = []
        dsts: list[np.ndarray] = []
        cur = entry
        seed = None
        seed_entry = None
        seed_key = None
        for _ in range(opts.max_delta_chain):
            if cur.parent_fingerprint is None or cur.delta_src is None:
                return None
            try:
                parent = self.registry.get(cur.parent_fingerprint)
            except KeyError:
                return None
            srcs.append(cur.delta_src)
            dsts.append(cur.delta_dst)
            seed_key = result_cache_key(parent.fingerprint, method,
                                        self.machine.name, options)
            seed = self.cache.peek(seed_key)
            if seed is not None:
                seed_entry = parent
                break
            cur = parent
        if seed is None:
            return None
        hub = None
        if method in PLANTED_METHODS:
            # The seed's labels are planted at the seed graph's hub; a
            # fresh run on the successor would plant at its own.  Only
            # identical hubs reproduce bit-identical labels.
            hub = seed_entry.graph.max_degree_vertex()
            if not hub_stable(entry.graph, hub):
                return None
        src = srcs[0] if len(srcs) == 1 else np.concatenate(srcs[::-1])
        dst = dsts[0] if len(dsts) == 1 else np.concatenate(dsts[::-1])
        base_predicted = predict_delta_ms(entry.graph.num_vertices,
                                          int(src.size), self.machine)
        # The delta-vs-recompute gate races *corrected* predictions on
        # both sides: a delta path whose touched-set model has proven
        # optimistic here stops beating a full run it cannot beat.
        # Corrections are read under the backend-qualified key the
        # executed run will observe under.
        attributed = backend_feedback_key(
            method, getattr(options, "backend", None))
        predicted = predict_delta_ms(
            entry.graph.num_vertices, int(src.size), self.machine,
            method=attributed, feedback=self._feedback(),
            fingerprint=entry.fingerprint)
        full_ms = route.predicted_ms if route is not None \
            else predicted_method_ms(
                entry.probes, method, self.machine,
                feedback=self._feedback(), fingerprint=entry.fingerprint,
                feedback_method=attributed)
        if predicted >= full_ms:
            return None
        self.cache.touch(seed_key)
        return _DeltaPlan(seed=seed,
                          seed_fingerprint=seed_entry.fingerprint,
                          src=src, dst=dst, chain=len(srcs), hub=hub,
                          predicted_ms=predicted,
                          base_predicted_ms=base_predicted)

    def _run_delta(self, job: _Job) -> tuple[CCResult, float]:
        """Delta-update the seed's cached labels; price the touched set.

        The produced labels are bit-identical to a from-scratch run of
        ``job.method`` on ``job.entry.graph`` (the
        :mod:`repro.incremental` contract), so the result is cached
        under the same key a full run would fill.
        """
        plan_ = job.delta
        entry = job.entry
        counters = OpCounters()
        outcome = delta_update(plan_.seed.labels, plan_.src, plan_.dst,
                               method=job.method, hub=plan_.hub,
                               counters=counters)
        trace = RunTrace(algorithm=f"{job.method}+delta",
                         dataset=entry.name or entry.fingerprint,
                         setup_counters=counters)
        result = CCResult(labels=outcome.labels, trace=trace,
                          extras={"delta": outcome.delta.as_dict(),
                                  "delta_base": plan_.seed_fingerprint,
                                  "delta_chain": plan_.chain})
        validate_extras(result.extras)
        model = CostModel(self.machine, entry.graph.num_vertices)
        return result, model.iteration_ms(counters)

    def _release_outstanding(self, job: _Job) -> None:
        remaining = self._outstanding_ms.get(job.tenant, 0.0) \
            - job.predicted_ms
        if remaining <= 0.0:
            self._outstanding_ms.pop(job.tenant, None)
        else:
            self._outstanding_ms[job.tenant] = remaining

    def _remember_run(self, cache_key: tuple, run_ms: float) -> None:
        """Record a run's cost alongside its cache entry (bounded LRU)."""
        self._run_meta[cache_key] = run_ms
        self._run_meta.move_to_end(cache_key)
        while len(self._run_meta) > 4 * self.cache.capacity:
            self._run_meta.popitem(last=False)

    def _base_predicted(self, entry: GraphEntry,
                        method: str) -> float | None:
        """Static (uncorrected) prediction for a full run, or None.

        ``None`` — skip the observation — for the sharded tier (its
        fabric cost has no single-node predictor to correct) and for
        entries that were never probed: explicit-method traffic on an
        unprobed graph must not start paying BFS probe sweeps just to
        feed the posterior.
        """
        if method == DISTRIBUTED_METHOD or entry._probes is None:
            return None
        base = self._plan_for(entry)
        return (base.predicted_uf_ms if method_family(method) == "uf"
                else base.predicted_lp_ms)

    def _observe_run(self, entry: GraphEntry, method: str,
                     measured_ms: float, *,
                     options: object = None,
                     delta: _DeltaPlan | None = None) -> None:
        """Fold one executed run's measured cost into the loop.

        Feeds the registry's :class:`RouterFeedback` posterior (when
        enabled) and the misprediction metrics — both against the
        *uncorrected* static prediction, so the posterior estimates
        the static model's error rather than compounding its own
        correction, and the error histograms describe the cost model
        itself.  Delta runs observe under their own
        :func:`delta_feedback_key` posterior.  Runs on a non-default
        kernel backend observe under their
        :func:`backend_feedback_key` — the static prediction is
        backend-agnostic (counters are bit-identical across backends),
        so the per-backend posterior is exactly the learned wall-clock
        ratio of that backend on this content.
        """
        base_method = backend_feedback_key(
            method, getattr(options, "backend", None))
        if delta is not None:
            key_method = delta_feedback_key(base_method)
            predicted = delta.base_predicted_ms
        else:
            key_method = base_method
            predicted = self._base_predicted(entry, method)
        if predicted is None or predicted <= 0.0:
            return
        self.metrics.record_prediction(key_method, predicted, measured_ms)
        feedback = self._feedback()
        if feedback is not None:
            feedback.observe(entry.fingerprint, key_method, predicted,
                             measured_ms, machine=self.machine.name)

    def _resolve_entry(self, request: CCRequest) -> GraphEntry:
        if request.graph is not None:
            # Registration fingerprints the graph, which may detect an
            # in-place mutation and quarantine the old fingerprint —
            # go through `register` so the sweep runs.
            return self.register(request.graph, name=request.name)
        if request.key is not None:
            return self.registry.get(request.key)
        raise ValueError("request needs a graph or a registry key")

    def _run(self, entry: GraphEntry, method: str,
             options: object) -> tuple[CCResult, float]:
        """Actually execute one algorithm and price its trace."""
        fn = ALGORITHMS[method]
        result = fn(entry.graph, machine=self.machine,
                    dataset=entry.name or entry.fingerprint,
                    **to_call_kwargs(options))
        validate_extras(result.extras)
        if method == DISTRIBUTED_METHOD:
            # Sharded runs are priced with the alpha-beta network
            # model on top of per-node compute; one `machine` node
            # per rank.
            return result, simulate_distributed_time(
                result, entry.graph.num_vertices, node=self.machine)
        timed = simulate_run_time(result.trace, self.machine,
                                  entry.graph.num_vertices)
        total_ms = timed.total_ms
        io = result.extras.get("io")
        if io is not None:
            # Streamed runs pay for their block fetches: the disk's
            # alpha-beta time joins the compute time, same as the
            # distributed tier's fabric charge.
            total_ms += io["modeled_ms"]
        return result, total_ms

"""LRU result cache keyed by (fingerprint, method, machine, options).

A repeated request must cost *zero algorithm work* — not "a fast
re-run" but a dictionary move-to-front.  The key is fully canonical:

* the graph enters as its content fingerprint, so equal graphs share
  entries regardless of object identity;
* options enter as the resolved frozen dataclass (every front door
  path — typed, legacy kwargs, defaults — normalizes to one), so
  ``ThriftyOptions()`` and ``options=None`` and ``**{}`` all hit the
  same entry;
* the machine enters by name (MachineSpec instances are frozen and
  registry-owned, but the name keeps keys printable).

Eviction is plain LRU over distinct keys.  Stored CCResults are
returned as-is — they are treated as immutable by convention
(callers get the same labels array a fresh run would return).

Lookup vs peek
--------------

``get`` is the *client-visible* lookup: it counts toward
``hits``/``misses`` and refreshes recency.  Internal existence probes
— the executor's dequeue-time re-check, the flag-replay fallback
probe, the incremental tier's delta-seed search — go through ``peek``,
which touches no statistics and no recency, so ``hit_rate`` reflects
only what clients actually experienced.  ``touch`` refreshes recency
alone, for when a peeked entry ends up being served.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from ..core.result import CCResult

__all__ = ["ResultCache", "result_cache_key"]


def result_cache_key(fingerprint: str, method: str, machine_name: str,
                     options: Hashable) -> tuple:
    """Canonical cache key for one (graph, algorithm, config) request."""
    return (fingerprint, method, machine_name, options)


class ResultCache:
    """Bounded LRU mapping canonical request keys to CCResults."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._store: OrderedDict[tuple, CCResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: tuple) -> CCResult | None:
        """Client-visible lookup; counts hit/miss, refreshes recency."""
        result = self._store.get(key)
        if result is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return result

    def peek(self, key: tuple) -> CCResult | None:
        """Stat-neutral probe: no hit/miss counted, no recency change.

        For internal bookkeeping lookups that are not client requests.
        """
        return self._store.get(key)

    def touch(self, key: tuple) -> None:
        """Refresh a key's LRU recency without counting a lookup."""
        if key in self._store:
            self._store.move_to_end(key)

    def put(self, key: tuple, result: CCResult) -> None:
        """Insert (or refresh) a result, evicting the LRU entry if full.

        Re-putting an existing key replaces the value in place — it
        occupies one slot before and after, so it never triggers an
        eviction (capacity is counted over distinct keys, not puts).
        """
        if key in self._store:
            self._store.move_to_end(key)
            self._store[key] = result
            return
        self._store[key] = result
        if len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: tuple) -> bool:
        """Drop one entry (e.g. after a graph mutation); True if present.

        Counted in :attr:`invalidations` (surfaced through
        ``ServiceMetrics.snapshot()``), so post-mutation cache churn is
        observable instead of silently looking like cold misses.
        """
        if self._store.pop(key, None) is None:
            return False
        self.invalidations += 1
        return True

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry for one graph fingerprint; returns count.

        The bulk path for quarantined graphs: a fingerprint whose
        content is gone (in-place mutation detected) has every cached
        result for it invalidated at once.
        """
        doomed = [k for k in self._store if k[0] == fingerprint]
        for key in doomed:
            del self._store[key]
        self.invalidations += len(doomed)
        return len(doomed)

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: tuple) -> bool:
        return key in self._store

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._store.clear()

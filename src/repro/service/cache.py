"""LRU result cache keyed by (fingerprint, method, machine, options).

A repeated request must cost *zero algorithm work* — not "a fast
re-run" but a dictionary move-to-front.  The key is fully canonical:

* the graph enters as its content fingerprint, so equal graphs share
  entries regardless of object identity;
* options enter as the resolved frozen dataclass (every front door
  path — typed, legacy kwargs, defaults — normalizes to one), so
  ``ThriftyOptions()`` and ``options=None`` and ``**{}`` all hit the
  same entry;
* the machine enters by name (MachineSpec instances are frozen and
  registry-owned, but the name keeps keys printable).

Eviction is plain LRU over distinct keys.  Stored CCResults are
returned as-is — they are treated as immutable by convention
(callers get the same labels array a fresh run would return).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from ..core.result import CCResult

__all__ = ["ResultCache", "result_cache_key"]


def result_cache_key(fingerprint: str, method: str, machine_name: str,
                     options: Hashable) -> tuple:
    """Canonical cache key for one (graph, algorithm, config) request."""
    return (fingerprint, method, machine_name, options)


class ResultCache:
    """Bounded LRU mapping canonical request keys to CCResults."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._store: OrderedDict[tuple, CCResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> CCResult | None:
        """Look up a key; refreshes recency on hit."""
        result = self._store.get(key)
        if result is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return result

    def put(self, key: tuple, result: CCResult) -> None:
        """Insert (or refresh) a result, evicting the LRU entry if full."""
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = result
        if len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: tuple) -> bool:
        """Drop one entry (e.g. after a graph mutation); True if present."""
        return self._store.pop(key, None) is not None

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: tuple) -> bool:
        return key in self._store

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._store.clear()

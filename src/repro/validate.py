"""Correctness validation of CC results.

Two independent checks:

* :func:`same_partition` — two results agree as vertex partitions
  (canonical labels equal), algorithm-independent.
* :func:`validate_against_reference` — a result matches scipy's
  connected_components on the same graph (external oracle).
* :func:`check_labels_consistent` — structural invariant: every edge
  joins vertices with equal labels, and vertices with equal labels are
  genuinely connected (oracle-free necessary+sufficient check).
"""

from __future__ import annotations

import numpy as np

from .core.result import CCResult
from .graph.csr import CSRGraph
from .graph.properties import component_labels_reference

__all__ = [
    "same_partition",
    "validate_against_reference",
    "check_labels_consistent",
    "canonicalize",
]


def canonicalize(labels: np.ndarray) -> np.ndarray:
    """Relabel a component assignment by minimum member vertex id."""
    labels = np.asarray(labels)
    n = labels.size
    if n == 0:
        return labels.astype(np.int64)
    uniq, inv = np.unique(labels, return_inverse=True)
    mins = np.full(uniq.size, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(mins, inv, np.arange(n, dtype=np.int64))
    return mins[inv]


def same_partition(a: np.ndarray | CCResult,
                   b: np.ndarray | CCResult) -> bool:
    """True iff two label arrays induce the same vertex partition."""
    la = a.labels if isinstance(a, CCResult) else np.asarray(a)
    lb = b.labels if isinstance(b, CCResult) else np.asarray(b)
    if la.shape != lb.shape:
        return False
    return bool(np.array_equal(canonicalize(la), canonicalize(lb)))


def validate_against_reference(graph: CSRGraph,
                               result: CCResult) -> None:
    """Raise AssertionError unless ``result`` matches scipy's CC."""
    ref = component_labels_reference(graph)
    if not same_partition(result.labels, ref):
        got = np.unique(result.labels).size
        want = np.unique(ref).size
        raise AssertionError(
            f"{result.algorithm}: wrong components "
            f"({got} found, {want} expected)")


def check_labels_consistent(graph: CSRGraph,
                            labels: np.ndarray) -> None:
    """Oracle-free consistency check.

    1. No edge crosses two labels (labels are unions of components).
    2. The number of distinct labels equals the number of components
       found by a simple BFS sweep (labels are not coarser either).
    """
    labels = np.asarray(labels)
    if labels.shape != (graph.num_vertices,):
        raise AssertionError("labels has the wrong shape")
    src = graph.edge_sources()
    if src.size and np.any(labels[src] != labels[graph.indices]):
        bad = np.flatnonzero(labels[src] != labels[graph.indices])[0]
        raise AssertionError(
            f"edge ({src[bad]}, {graph.indices[bad]}) crosses labels")
    # Count true components with an ad-hoc visited sweep.
    n = graph.num_vertices
    seen = np.zeros(n, dtype=bool)
    true_components = 0
    for seed in range(n):
        if seen[seed]:
            continue
        true_components += 1
        frontier = np.array([seed], dtype=np.int64)
        seen[seed] = True
        while frontier.size:
            nxt_parts = [graph.neighbors(int(v)) for v in frontier]
            nxt = (np.unique(np.concatenate(nxt_parts))
                   if nxt_parts else np.empty(0, dtype=np.int64))
            nxt = nxt[~seen[nxt]]
            seen[nxt] = True
            frontier = nxt.astype(np.int64)
    found = int(np.unique(labels).size)
    if found != true_components:
        raise AssertionError(
            f"{found} labels but {true_components} true components")

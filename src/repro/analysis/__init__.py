"""Structural analysis: wavefront statistics and vertex reordering."""

from .reordering import (
    bfs_relabel,
    degree_sort_relabel,
    hub_cluster_relabel,
    random_relabel,
    relabel,
)
from .wavefront import (
    DistanceProfile,
    WavefrontStats,
    hub_distance_profile,
    wavefront_statistics,
)

__all__ = [
    "WavefrontStats",
    "wavefront_statistics",
    "DistanceProfile",
    "hub_distance_profile",
    "relabel",
    "degree_sort_relabel",
    "bfs_relabel",
    "random_relabel",
    "hub_cluster_relabel",
]

"""Quantifying Section III: repeated wavefronts and hub centrality.

The paper motivates Thrifty with two structural observations:

* III-A/III-C — synchronous LP with structure-oblivious initial labels
  overwrites the same vertices repeatedly as successive wavefronts
  carrying smaller labels ripple through the graph.
  :func:`wavefront_statistics` measures exactly that: how many times
  each vertex's label changes before convergence, under identity
  initialization vs Zero Planting.
* IV-C — the maximum-degree vertex is a hub: almost every vertex in
  its component is a small number of hops away, so planting the
  minimum there shortens every propagation path.
  :func:`hub_distance_profile` measures the BFS distance distribution
  from the hub and from a reference vertex.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.properties import _gather_neighbors

__all__ = [
    "WavefrontStats",
    "wavefront_statistics",
    "hub_distance_profile",
    "DistanceProfile",
]


@dataclass(frozen=True)
class WavefrontStats:
    """Per-vertex label-update behaviour of synchronous LP."""

    iterations: int
    total_updates: int
    mean_updates_per_vertex: float
    max_updates: int
    update_histogram: np.ndarray   # index k = #vertices updated k times

    @property
    def overwrite_fraction(self) -> float:
        """Fraction of updates that were later overwritten (wasted).

        A vertex updated k times only needed the final one; the other
        k-1 writes are the "repeated wavefront" waste of Section III-A.
        """
        if self.total_updates == 0:
            return 0.0
        updated_vertices = int(self.update_histogram[1:].sum())
        return 1.0 - updated_vertices / self.total_updates


def wavefront_statistics(graph: CSRGraph,
                         *, zero_planted: bool = False) -> WavefrontStats:
    """Run synchronous (Jacobi) LP counting per-vertex label updates.

    With ``zero_planted`` the labels start as ``v+1`` with 0 on the
    max-degree vertex (the Thrifty assignment); otherwise identity.
    Every committed label change counts as one update; the returned
    histogram shows how many vertices changed 0, 1, 2, ... times —
    the paper's "repeated wavefronts" are vertices with count >= 2.
    """
    n = graph.num_vertices
    if n == 0:
        return WavefrontStats(0, 0, 0.0, 0, np.zeros(1, dtype=np.int64))
    if zero_planted:
        labels = np.arange(1, n + 1, dtype=np.int64)
        labels[graph.max_degree_vertex()] = 0
    else:
        labels = np.arange(n, dtype=np.int64)
    updates = np.zeros(n, dtype=np.int64)
    iterations = 0
    src = graph.edge_sources()
    while True:
        iterations += 1
        # One synchronous round: min over neighbours.
        gathered = labels[graph.indices]
        new = labels.copy()
        np.minimum.at(new, src, gathered)
        changed = new < labels
        if not changed.any():
            break
        updates[changed] += 1
        labels = new
    hist = np.bincount(updates)
    return WavefrontStats(
        iterations=iterations,
        total_updates=int(updates.sum()),
        mean_updates_per_vertex=float(updates.mean()),
        max_updates=int(updates.max()),
        update_histogram=hist.astype(np.int64),
    )


@dataclass(frozen=True)
class DistanceProfile:
    """BFS distance distribution from one source."""

    source: int
    histogram: np.ndarray        # index d = #vertices at distance d
    unreachable: int

    @property
    def eccentricity(self) -> int:
        return int(self.histogram.size - 1)

    @property
    def mean_distance(self) -> float:
        total = int(self.histogram.sum())
        if total == 0:
            return 0.0
        d = np.arange(self.histogram.size)
        return float((d * self.histogram).sum() / total)

    def coverage_within(self, hops: int) -> float:
        """Fraction of the graph within ``hops`` of the source."""
        total = int(self.histogram.sum()) + self.unreachable
        if total == 0:
            return 0.0
        reach = int(self.histogram[:hops + 1].sum())
        return reach / total


def hub_distance_profile(graph: CSRGraph,
                         source: int | None = None) -> DistanceProfile:
    """BFS distance histogram from ``source`` (default: the hub).

    Supports the Zero Planting rationale: compare
    ``hub_distance_profile(g).mean_distance`` against
    ``hub_distance_profile(g, source=0)``.
    """
    n = graph.num_vertices
    if n == 0:
        return DistanceProfile(-1, np.zeros(1, dtype=np.int64), 0)
    src = graph.max_degree_vertex() if source is None else int(source)
    dist = np.full(n, -1, dtype=np.int64)
    dist[src] = 0
    frontier = np.array([src], dtype=np.int64)
    level = 0
    counts = [1]
    while frontier.size:
        level += 1
        nbrs = _gather_neighbors(graph, frontier,
                                 graph.degrees[frontier])
        new = np.unique(nbrs[dist[nbrs] < 0])
        if new.size == 0:
            break
        dist[new] = level
        counts.append(int(new.size))
        frontier = new.astype(np.int64)
    return DistanceProfile(
        source=src,
        histogram=np.array(counts, dtype=np.int64),
        unreachable=int(np.count_nonzero(dist < 0)),
    )

"""Vertex relabeling (reordering) utilities.

The paper's introduction lists locality-optimizing relabeling as one
of CC's applications, and the reproduction surfaced a subtler
connection: with a Unified Labels Array, *how vertex ids are ordered
relative to the graph structure changes how far labels travel per
iteration* (an in-order sweep floods id-ascending paths instantly).
These utilities produce the standard orderings so that sensitivity can
be measured (extension experiment E2).

All functions return a **new graph** plus the permutation used:
``new_id = perm[old_id]``.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.properties import _gather_neighbors

__all__ = [
    "relabel",
    "degree_sort_relabel",
    "bfs_relabel",
    "random_relabel",
    "hub_cluster_relabel",
]


def relabel(graph: CSRGraph, perm: np.ndarray, *,
            assume_permutation: bool = False
            ) -> tuple[CSRGraph, np.ndarray]:
    """Apply an explicit permutation: ``new_id = perm[old_id]``.

    Fully vectorized: one lexsort over the relabelled edge list stands
    in for the per-vertex scatter loop (the sort key is (new row, new
    neighbour), which lands every edge in its CSR slot with neighbours
    ascending — the exact layout the loop produced).
    ``assume_permutation=True`` skips the validity check for callers
    that constructed ``perm`` themselves (the orderings below — they
    invert an argsort, a permutation by construction).
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = graph.num_vertices
    if perm.shape != (n,):
        raise ValueError("perm must have one entry per vertex")
    if not assume_permutation and n:
        # Negative ids get their own check and message: they are the
        # signature of an inverted-argsort bug in the caller (a slot
        # left at its -1 fill value), not a merely out-of-range id.
        if perm.min() < 0:
            raise ValueError(
                f"perm contains negative ids (min {perm.min()}); "
                "it must be a permutation of 0..n-1")
        # Bincount beats the old full np.sort: O(n) with no copy of
        # a sorted array, and it catches out-of-range ids before the
        # fancy-indexing below would.
        if (perm.max() >= n
                or np.any(np.bincount(perm, minlength=n) != 1)):
            raise ValueError("perm must be a permutation of 0..n-1")
    # new indptr from permuted degrees.
    new_deg = np.zeros(n, dtype=np.int64)
    new_deg[perm] = graph.degrees
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(new_deg, out=indptr[1:])
    # Relabel both endpoints of every edge, then sort edges by (new
    # source, new destination): rows land in new-id order with each
    # row's neighbours ascending — bit-identical to scattering row by
    # row and sorting each row.
    new_src = perm[np.repeat(np.arange(n, dtype=np.int64),
                             graph.degrees)]
    new_dst = perm[graph.indices]
    order = np.lexsort((new_dst, new_src))
    indices = np.ascontiguousarray(new_dst[order])
    return CSRGraph(indptr, indices), perm


def degree_sort_relabel(graph: CSRGraph, *, descending: bool = True
                        ) -> tuple[CSRGraph, np.ndarray]:
    """Relabel by degree (hubs first by default) — the classic
    frequency-based locality ordering."""
    order = np.argsort(-graph.degrees if descending else graph.degrees,
                       kind="stable")
    perm = np.empty(graph.num_vertices, dtype=np.int64)
    perm[order] = np.arange(graph.num_vertices, dtype=np.int64)
    return relabel(graph, perm, assume_permutation=True)


def bfs_relabel(graph: CSRGraph, source: int | None = None
                ) -> tuple[CSRGraph, np.ndarray]:
    """Relabel in BFS visit order from the hub (default).

    Vertices outside the source's component keep their relative order
    after all reached vertices.
    """
    n = graph.num_vertices
    if n == 0:
        return graph, np.empty(0, dtype=np.int64)
    src = graph.max_degree_vertex() if source is None else int(source)
    order = np.full(n, -1, dtype=np.int64)
    seen = np.zeros(n, dtype=bool)
    seen[src] = True
    frontier = np.array([src], dtype=np.int64)
    pos = 0
    while frontier.size:
        order[pos:pos + frontier.size] = frontier
        pos += frontier.size
        nbrs = _gather_neighbors(graph, frontier,
                                 graph.degrees[frontier])
        new = np.unique(nbrs[~seen[nbrs]])
        seen[new] = True
        frontier = new.astype(np.int64)
    rest = np.flatnonzero(~seen)
    order[pos:pos + rest.size] = rest
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n, dtype=np.int64)
    return relabel(graph, perm, assume_permutation=True)


def hub_cluster_relabel(graph: CSRGraph, *, num_hubs: int | None = None
                        ) -> tuple[CSRGraph, np.ndarray]:
    """Relabel with hubs first, each hub's neighbours clustered after it.

    The skew-aware ordering for skewed-degree graphs: the top
    ``num_hubs`` vertices by degree (default ``ceil(sqrt(n))``) get
    the lowest ids in degree-descending order, and immediately after
    each hub come its not-yet-placed neighbours (in ascending old-id
    order, so the layout is deterministic).  Remaining vertices keep
    their relative order at the tail.  Hub labels then flood their
    clusters in a single in-order sweep, while the hub block itself
    stays resident in cache — the combination the degree-only and
    BFS orderings each get half of.
    """
    n = graph.num_vertices
    if n == 0:
        return graph, np.empty(0, dtype=np.int64)
    if num_hubs is None:
        num_hubs = int(np.ceil(np.sqrt(n)))
    num_hubs = max(1, min(int(num_hubs), n))
    by_degree = np.argsort(-graph.degrees, kind="stable")
    hubs = by_degree[:num_hubs]
    order = np.empty(n, dtype=np.int64)
    placed = np.zeros(n, dtype=bool)
    placed[hubs] = True
    pos = 0
    for hub in hubs:
        order[pos] = hub
        pos += 1
        nbrs = np.unique(graph.neighbors(hub))
        fresh = nbrs[~placed[nbrs]]
        order[pos:pos + fresh.size] = fresh
        placed[fresh] = True
        pos += fresh.size
    rest = np.flatnonzero(~placed)
    order[pos:pos + rest.size] = rest
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n, dtype=np.int64)
    return relabel(graph, perm, assume_permutation=True)


def random_relabel(graph: CSRGraph, seed: int = 0
                   ) -> tuple[CSRGraph, np.ndarray]:
    """Relabel uniformly at random — the structure-oblivious baseline."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(graph.num_vertices).astype(np.int64)
    return relabel(graph, perm, assume_permutation=True)

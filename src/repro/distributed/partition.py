"""Vertex-to-rank partitioning strategies for the distributed tier.

Two strategies, selected by ``DistributedOptions.partition``:

* ``"block"`` — equal *vertex* counts per rank (the historical
  linspace split).  Simple, but on skewed graphs the hubs concentrate
  edges (and therefore compute and boundary traffic) onto few ranks.
* ``"degree_balanced"`` — equal *edge* counts per rank, reusing the
  same prefix-sum edge partitioner as the shared-memory runtime
  (:func:`repro.parallel.partition.edge_balanced_partitions` with one
  partition per rank), so both layers share one notion of balance.

Both produce contiguous vertex ranges, which keeps ghost/mirror
metadata a pure function of the rank bounds.  :func:`edge_cut` reports
the number of directed edges crossing rank boundaries — the structural
upper bound on per-superstep communication — for every run.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.partition import edge_balanced_partitions

__all__ = ["PARTITION_STRATEGIES", "rank_bounds", "rank_of_vertex",
           "edge_cut", "intra_rank_blocks"]

PARTITION_STRATEGIES = ("block", "degree_balanced")


def rank_bounds(graph: CSRGraph, num_ranks: int,
                strategy: str = "block") -> np.ndarray:
    """Rank boundary array of length ``num_ranks + 1``.

    Rank ``r`` owns vertices ``[bounds[r], bounds[r+1])``.
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    if strategy == "block":
        return np.linspace(0, graph.num_vertices,
                           num_ranks + 1).astype(np.int64)
    if strategy == "degree_balanced":
        return edge_balanced_partitions(graph, num_ranks, 1).bounds
    raise ValueError(f"unknown partition strategy {strategy!r}; "
                     f"pick one of {list(PARTITION_STRATEGIES)}")


def rank_of_vertex(bounds: np.ndarray, n: int) -> np.ndarray:
    """Owner rank of every vertex (handles empty ranks: duplicate
    bounds resolve to the unique non-empty range)."""
    return np.searchsorted(bounds[1:], np.arange(n), side="right")


def edge_cut(graph: CSRGraph, rank_of: np.ndarray) -> int:
    """Directed edges whose endpoints live on different ranks."""
    if graph.num_edges == 0:
        return 0
    src = graph.edge_sources()
    dst = graph.indices
    return int(np.count_nonzero(rank_of[src] != rank_of[dst]))


def intra_rank_blocks(graph: CSRGraph, lo: int, hi: int,
                      num_blocks: int) -> np.ndarray:
    """Edge-balanced block bounds inside one rank's range ``[lo, hi)``.

    The rank-local pull visits these blocks the way the shared-memory
    engine visits its partitions: converged (all-zero) blocks are
    skipped without touching their rows.  Same prefix-sum cut as
    :func:`repro.parallel.partition.edge_balanced_partitions`, offset
    into the rank's slice; blocks may be empty on extreme skew.
    """
    if hi <= lo:
        return np.array([lo, lo], dtype=np.int64)
    num_blocks = max(1, min(num_blocks, hi - lo))
    e0 = int(graph.indptr[lo])
    e1 = int(graph.indptr[hi])
    targets = e0 + (e1 - e0) * np.arange(1, num_blocks,
                                         dtype=np.float64) / num_blocks
    cut = lo + 1 + np.searchsorted(graph.indptr[lo + 1:hi],
                                   targets, side="left")
    bounds = np.empty(num_blocks + 1, dtype=np.int64)
    bounds[0] = lo
    bounds[1:-1] = np.minimum(cut, hi)
    bounds[-1] = hi
    np.maximum.accumulate(bounds, out=bounds)
    return bounds
